"""Paper-vs-measured comparison records.

EXPERIMENTS.md tracks, per figure, what the paper reported and what this
reproduction measures, together with whether the *qualitative shape*
holds.  :class:`Comparison` is that record; :func:`shape_holds` implements
the standard checks used across figures (ordering, factor, flatness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class Comparison:
    """One paper-vs-measured line item."""

    figure: str
    metric: str
    paper: str
    measured: str
    holds: bool
    note: str = ""

    def as_row(self) -> List[str]:
        status = "yes" if self.holds else "NO"
        return [self.figure, self.metric, self.paper, self.measured, status, self.note]


@dataclass
class ComparisonReport:
    """Collects comparisons and renders the EXPERIMENTS.md table body."""

    items: List[Comparison] = field(default_factory=list)

    def add(self, figure, metric, paper, measured, holds, note=""):
        """Record one line item and return it."""
        item = Comparison(figure, metric, str(paper), str(measured), bool(holds), note)
        self.items.append(item)
        return item

    @property
    def all_hold(self) -> bool:
        return all(item.holds for item in self.items)

    def failures(self) -> List[Comparison]:
        return [item for item in self.items if not item.holds]

    def rows(self) -> List[List[str]]:
        return [item.as_row() for item in self.items]


def ordering_holds(values: Dict[str, float], expected_order: Sequence[str]) -> bool:
    """True when values[k] is non-decreasing along ``expected_order``."""
    ordered = [values[name] for name in expected_order]
    return all(a <= b for a, b in zip(ordered, ordered[1:]))


def within_factor(measured: float, reference: float, factor: float) -> bool:
    """True when measured is within ``factor``x of the reference."""
    if reference == 0:
        return measured == 0
    ratio = measured / reference
    return 1.0 / factor <= ratio <= factor


def at_least_factor(larger: float, smaller: float, factor: float) -> bool:
    """True when ``larger`` exceeds ``smaller`` by at least ``factor``x."""
    if smaller <= 0:
        return larger > 0
    return larger / smaller >= factor


def flat_within(values: Sequence[float], tolerance: float) -> bool:
    """True when a series varies by at most ``tolerance`` (fractional)."""
    if not values:
        return True
    lo, hi = min(values), max(values)
    if hi == 0:
        return True
    return (hi - lo) / hi <= tolerance
