"""Telemetry sessions: one handle owning a network's observability.

A :class:`Telemetry` session bundles the metric registry, the per-agent
slot recorder and the flight recorder for one network, selected by a
*mode*:

* ``off``      — nothing attached (the default; near-zero cost).
* ``counters`` — registry only; the snapshot pass copies tracer
  counters, port/queue state and transport gauges into it.
* ``slots``    — counters plus the per-slot ``(T, E, rho, rtt_m, rtt_b,
  W, queue_bytes)`` recorder on every TFC agent.
* ``full``     — slots plus the flight-recorder ring buffer.

Sessions attach through three doors, all arriving at :func:`install`:

* ``Network(config=SimConfig(telemetry=...))`` — explicit, per network;
* the ``REPRO_TELEMETRY`` environment variable via :func:`maybe_install`
  (called by ``build_topology``, so experiment cells, chaos runs and the
  perf workloads are all covered without touching each driver);
* direct construction, for bespoke harnesses.

Every install lands the session in a small bounded *pending* queue; the
experiment runner drains it after each cell and, when a telemetry
directory is configured, exports the session's files labelled by cell.
The queue is bounded so stray installs (tests that never drain) cannot
pin an unbounded set of finished networks.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional

from .export import write_metrics_jsonl, write_slots_csv
from .flight import FlightRecorder
from .registry import MetricRegistry
from .slots import SlotTimelineRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..net.network import Network

#: Every accepted value for SimConfig.telemetry / $REPRO_TELEMETRY.
TELEMETRY_MODES = ("off", "counters", "slots", "full")

#: Recently installed, not-yet-exported sessions (bounded on purpose).
_PENDING: Deque["Telemetry"] = deque(maxlen=8)


class Telemetry:
    """One network's telemetry: registry + recorders + export."""

    def __init__(
        self,
        network: "Network",
        mode: str = "full",
        flight_capacity: int = 2048,
        dump_dir: Optional[str] = None,
    ):
        if mode not in TELEMETRY_MODES or mode == "off":
            raise ValueError(
                f"telemetry mode must be one of "
                f"{', '.join(TELEMETRY_MODES[1:])}; got {mode!r}"
            )
        self.network = network
        self.mode = mode
        self.registry = MetricRegistry()
        self.slots: Optional[SlotTimelineRecorder] = None
        self.flight: Optional[FlightRecorder] = None
        if mode in ("slots", "full"):
            self.slots = SlotTimelineRecorder(network)
        if mode == "full":
            self.flight = FlightRecorder(network, flight_capacity, dump_dir=dump_dir)

    # ------------------------------------------------------------------
    # Snapshot: pull every legacy surface into the registry
    # ------------------------------------------------------------------
    def snapshot(self) -> MetricRegistry:
        """Copy current simulator/tracer/port/transport state into the
        registry (idempotent; call again for a fresher snapshot)."""
        registry = self.registry
        network = self.network
        sim = network.sim

        registry.gauge("sim.now_ns").set(sim.now)
        registry.gauge("sim.events_processed").set(sim.events_processed)
        registry.gauge("sim.pending_events").set(sim.pending_events)
        registry.gauge("net.route_rebuilds").set(network.route_rebuilds)

        # Tracer counters migrate 1:1 (topic name == metric name).
        for topic in sorted(network.tracer.counters):
            registry.counter(topic).set_total(network.tracer.counters[topic])

        # Per-port datapath gauges (the state the golden tests pin).
        total_drops = 0
        for node in network.nodes:
            for port in node.ports:
                queue = port.queue
                prefix = f"port.{node.name}.{port.index}"
                registry.gauge(f"{prefix}.tx_bytes").set(port.tx_bytes)
                registry.gauge(f"{prefix}.tx_packets").set(port.tx_packets)
                registry.gauge(f"{prefix}.queue_bytes").set(queue.byte_length)
                registry.gauge(f"{prefix}.queue_drops").set(queue.drops)
                registry.gauge(f"{prefix}.queue_max_bytes").set(
                    queue.max_bytes_seen
                )
                total_drops += queue.drops
        registry.gauge("net.total_drops").set(total_drops)

        # Transport endpoint gauges (one-off counters like the receiver's
        # reordering count fold into aggregate metrics here).  Sender-side
        # stats additionally aggregate by the flow's tenant tag so
        # multi-tenant runs export per-tenant accounting rows.
        reordered = 0
        bytes_received = 0
        timeouts = 0
        tenant_rows: dict = {}
        for host in network.hosts:
            for endpoint in host._connections.values():
                if hasattr(endpoint, "reordered_segments"):
                    reordered += endpoint.reordered_segments
                if hasattr(endpoint, "bytes_received"):
                    bytes_received += endpoint.bytes_received
                stats = getattr(endpoint, "stats", None)
                if stats is not None:
                    timeouts += stats.timeouts
                    tenant = getattr(endpoint, "tenant", None)
                    if tenant is not None:
                        row = tenant_rows.setdefault(
                            tenant,
                            {"flows": 0, "completed": 0, "bytes_acked": 0,
                             "timeouts": 0},
                        )
                        row["flows"] += 1
                        row["completed"] += stats.complete_ns is not None
                        row["bytes_acked"] += stats.bytes_acked
                        row["timeouts"] += stats.timeouts
        registry.counter("transport.reordered_segments").set_total(reordered)
        registry.counter("transport.bytes_received").set_total(bytes_received)
        registry.counter("transport.timeouts").set_total(timeouts)
        for tenant in sorted(tenant_rows):
            row = tenant_rows[tenant]
            prefix = f"tenant.{tenant}"
            registry.gauge(f"{prefix}.flows").set(row["flows"])
            registry.gauge(f"{prefix}.flows_completed").set(row["completed"])
            registry.gauge(f"{prefix}.bytes_acked").set(row["bytes_acked"])
            registry.gauge(f"{prefix}.timeouts").set(row["timeouts"])
        return registry

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self, directory: str, label: str) -> List[str]:
        """Snapshot then write ``<label>.metrics.jsonl`` (always),
        ``<label>.slots.csv`` (slots/full) and ``<label>.flight.jsonl``
        (full) into ``directory``; returns the written paths."""
        import os

        os.makedirs(directory, exist_ok=True)
        self.snapshot()
        paths = [
            write_metrics_jsonl(
                self.registry, os.path.join(directory, f"{label}.metrics.jsonl")
            )
        ]
        if self.slots is not None:
            paths.append(
                write_slots_csv(
                    self.slots, os.path.join(directory, f"{label}.slots.csv")
                )
            )
        if self.flight is not None:
            paths.append(
                self.flight.write(
                    os.path.join(directory, f"{label}.flight.jsonl")
                )
            )
        return paths

    def detach(self) -> None:
        """Unsubscribe every recorder (recorded data is kept)."""
        if self.slots is not None:
            self.slots.detach()
        if self.flight is not None:
            self.flight.detach()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Telemetry mode={self.mode} metrics={len(self.registry)}>"


# ----------------------------------------------------------------------
# Install surfaces
# ----------------------------------------------------------------------
def install(
    network: "Network",
    mode: str = "full",
    dump_dir: Optional[str] = None,
) -> Telemetry:
    """Attach a telemetry session to ``network`` and queue it for export.

    The session is also stored as ``network.telemetry`` so drivers
    holding the network can reach it directly.
    """
    session = Telemetry(network, mode, dump_dir=dump_dir)
    network.telemetry = session
    _PENDING.append(session)
    return session


def maybe_install(network: "Network") -> Optional[Telemetry]:
    """Install from ``$REPRO_TELEMETRY`` (validated); None when off.

    The one hook shared by every topology-building chokepoint; networks
    that already carry a session (e.g. built with an explicit
    ``SimConfig``) are left alone.
    """
    if getattr(network, "telemetry", None) is not None:
        return network.telemetry
    from ..config import telemetry_dir, telemetry_mode

    mode = telemetry_mode()
    if mode == "off":
        return None
    return install(network, mode, dump_dir=telemetry_dir())


def drain_pending() -> List[Telemetry]:
    """Return and clear the pending-session queue (runner export hook)."""
    sessions = list(_PENDING)
    _PENDING.clear()
    return sessions
