"""FairQ endpoints — ECN-proportional senders under switch fair-shares.

The switch half of FairQ lives in :mod:`repro.net.fairq`: per-egress
agents measure per-flow rates each control interval and CE-mark only the
bytes a flow sends *beyond* its computed fair share.  The endpoint half
is deliberately thin — the protocol's design point is that fairness
comes from the switch, not from endpoint cleverness — so the sender is
the DCTCP machinery unchanged (ECN-capable data, alpha-proportional
cuts) and the receiver is the standard CE echo.  A flow above its share
sees marks on exactly its overshoot fraction, so DCTCP's
``cwnd *= (1 - alpha/2)`` backs it off in proportion; a compliant flow
sees no marks at all and keeps growing, which is what drives the
per-flow rates together.
"""

from __future__ import annotations

from .dctcp import DctcpReceiver, DctcpSender


class FairqSender(DctcpSender):
    """DCTCP sender driven by the switch's fair-share marks."""

    protocol_name = "fairq"


class FairqReceiver(DctcpReceiver):
    """Standard CE-echo receiver."""
