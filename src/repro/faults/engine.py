"""The fault-injection engine.

A :class:`FaultInjector` is bound to one :class:`~repro.net.network.Network`
and schedules fault primitives on its simulator, so a chaos run is an
ordinary deterministic simulation: same seed, same topology, same fault
schedule — bit-identical packet-level outcome.  Randomised faults (loss
models) draw from named child streams of the network's root seed.

Primitives map one-to-one onto the failure modes data-center operators
actually see:

* :meth:`link_down` / :meth:`link_flap` — cut a cable (both directions by
  default); frames serialised into a downed link vanish.
* :meth:`degrade_link` — failing optics / autoneg fallback: the link
  serialises slower than its nominal rate.
* :meth:`inject_loss`, :meth:`burst_loss`, :meth:`ack_loss` — attach a
  :class:`~repro.net.queues.LossModel` to a port's queue for a window
  (Gilbert–Elliott bursts, one-way ACK loss).
* :meth:`reset_switch` / :meth:`reset_port_agent` — wipe a TFC agent's
  learned token/E/rtt_b state mid-run (switch reboot), forcing re-learning.
* :meth:`kill_flow` / :meth:`kill_delimiter` — abort a sender with no FIN
  (process crash); killing the current delimiter drives the silent-death
  re-election backoff.
* :meth:`pause_host` — freeze a host (VM pause, GC stall) and resume it.

Every primitive records a :class:`FaultRecord` and emits
``FAULT_INJECTED`` / ``FAULT_CLEARED`` trace events, so experiments can
line recovery metrics up against the fault timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Optional

from ..net.queues import (
    BernoulliLoss,
    FilteredLoss,
    GilbertElliottLoss,
    LossModel,
    is_pure_ack,
)
from ..sim.trace import FAULT_CLEARED, FAULT_INJECTED

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..net.host import Host
    from ..net.network import Network
    from ..net.node import Switch
    from ..net.port import Port
    from ..transport.base import Sender


@dataclass
class FaultRecord:
    """One scheduled fault: what, where, and when."""

    kind: str
    target: str
    start_ns: int
    end_ns: Optional[int] = None  # None: one-shot or never cleared
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_ns(self) -> Optional[int]:
        """Length of the fault window (None for one-shot faults)."""
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns


def reverse_port(port: "Port") -> Optional["Port"]:
    """The peer port transmitting the opposite direction of ``port``'s cable."""
    for peer_port in port.peer_node.ports:
        link = peer_port.link
        if link.dst_node is port.node and link.dst_port_index == port.index:
            return peer_port
    return None


class FaultInjector:
    """Schedules deterministic faults against one network."""

    def __init__(self, network: "Network", name: str = "faults"):
        self.network = network
        self.sim = network.sim
        self.tracer = network.tracer
        # Child seed space: fault randomness is independent of (and cannot
        # perturb) the workload's streams, yet fully determined by the
        # network's root seed.
        self.seeds = network.seeds.spawn(name)
        self.records: list[FaultRecord] = []

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record(
        self,
        kind: str,
        target: str,
        start_ns: int,
        end_ns: Optional[int] = None,
        **detail: object,
    ) -> FaultRecord:
        record = FaultRecord(kind, target, start_ns, end_ns, dict(detail))
        self.records.append(record)
        return record

    def _at(self, time_ns: int, callback, *args) -> None:
        self.sim.schedule_at(max(time_ns, self.sim.now), callback, *args)

    def _emit(self, topic: str, record: FaultRecord, **extra) -> None:
        self.tracer.emit(topic, record=record, injector=self, **extra)

    @staticmethod
    def _port_name(port: "Port") -> str:
        return f"{port.node.name}[{port.index}]->{port.peer_node.name}"

    # ------------------------------------------------------------------
    # Link faults
    # ------------------------------------------------------------------
    def link_down(
        self,
        port: "Port",
        at_ns: int,
        duration_ns: Optional[int] = None,
        both_directions: bool = True,
        reroute: bool = False,
    ) -> FaultRecord:
        """Cut the cable behind ``port`` at ``at_ns``.

        Frames that finish serialising while the link is down vanish (the
        transmitting port keeps draining its queue into the cut — exactly
        what a NIC does until the carrier-loss interrupt).  With
        ``duration_ns`` the cable comes back afterwards.

        ``reroute=True`` models a fabric whose control plane notices the
        carrier loss: :meth:`~repro.net.network.Network.rebuild_routes`
        runs right after the cut (and again after the restore), steering
        traffic onto surviving equal-cost paths instead of letting the
        stale route blackhole it.  The default keeps the blackhole — the
        pessimistic case the recovery experiments compare against.
        """
        links = [port.link]
        if both_directions:
            reverse = reverse_port(port)
            if reverse is not None:
                links.append(reverse.link)
        end_ns = None if duration_ns is None else at_ns + duration_ns
        record = self._record(
            "link_down", self._port_name(port), at_ns, end_ns,
            reroute=reroute,
        )

        def down() -> None:
            for link in links:
                link.up = False
            if reroute:
                self.network.rebuild_routes()
            self._emit(FAULT_INJECTED, record)

        def up() -> None:
            for link in links:
                link.up = True
            if reroute:
                self.network.rebuild_routes()
            self._emit(FAULT_CLEARED, record)

        self._at(at_ns, down)
        if end_ns is not None:
            self._at(end_ns, up)
        return record

    def link_flap(
        self, port: "Port", at_ns: int, down_ns: int, reroute: bool = False
    ) -> FaultRecord:
        """Convenience alias: a transient :meth:`link_down`."""
        return self.link_down(
            port, at_ns, duration_ns=down_ns, reroute=reroute
        )

    def degrade_link(
        self,
        port: "Port",
        factor: float,
        at_ns: int,
        duration_ns: Optional[int] = None,
    ) -> FaultRecord:
        """Serialise ``port``'s link at ``factor`` x nominal rate.

        One direction only — degradation (unlike a cut) is routinely
        asymmetric in practice.  Protocol state keeps seeing the nominal
        rate; the feedback loops must discover the loss of capacity from
        queue growth and utilisation, which is the point.
        """
        end_ns = None if duration_ns is None else at_ns + duration_ns
        record = self._record(
            "degrade_link",
            self._port_name(port),
            at_ns,
            end_ns,
            factor=factor,
        )

        def degrade() -> None:
            port.link.degrade(factor)
            self._emit(FAULT_INJECTED, record)

        def restore() -> None:
            port.link.restore_rate()
            self._emit(FAULT_CLEARED, record)

        self._at(at_ns, degrade)
        if end_ns is not None:
            self._at(end_ns, restore)
        return record

    # ------------------------------------------------------------------
    # Loss faults
    # ------------------------------------------------------------------
    def inject_loss(
        self,
        port: "Port",
        model: LossModel,
        at_ns: int,
        duration_ns: Optional[int] = None,
    ) -> FaultRecord:
        """Attach ``model`` to ``port``'s queue for the fault window."""
        end_ns = None if duration_ns is None else at_ns + duration_ns
        record = self._record(
            "loss",
            self._port_name(port),
            at_ns,
            end_ns,
            model=type(model).__name__,
        )

        def start() -> None:
            port.queue.loss_model = model
            self._emit(FAULT_INJECTED, record)

        def stop() -> None:
            if port.queue.loss_model is model:
                port.queue.loss_model = None
            self._emit(FAULT_CLEARED, record)

        self._at(at_ns, start)
        if end_ns is not None:
            self._at(end_ns, stop)
        return record

    def burst_loss(
        self,
        port: "Port",
        at_ns: int,
        duration_ns: Optional[int] = None,
        mean_burst_packets: float = 8.0,
        mean_gap_packets: float = 200.0,
        loss_in_burst: float = 1.0,
    ) -> FaultRecord:
        """Correlated (Gilbert–Elliott) loss on ``port`` for a window."""
        stream = self.seeds.stream(
            f"burst:{port.node.name}:{port.index}:{at_ns}"
        )
        model = GilbertElliottLoss(
            stream,
            p_enter_bad=1.0 / max(mean_gap_packets, 1.0),
            p_exit_bad=1.0 / max(mean_burst_packets, 1.0),
            loss_bad=loss_in_burst,
        )
        return self.inject_loss(port, model, at_ns, duration_ns)

    def ack_loss(
        self,
        port: "Port",
        at_ns: int,
        duration_ns: Optional[int] = None,
        probability: float = 0.3,
    ) -> FaultRecord:
        """One-way loss: only pure ACKs crossing ``port`` are dropped."""
        stream = self.seeds.stream(
            f"ackloss:{port.node.name}:{port.index}:{at_ns}"
        )
        model = FilteredLoss(BernoulliLoss(probability, stream), is_pure_ack)
        return self.inject_loss(port, model, at_ns, duration_ns)

    # ------------------------------------------------------------------
    # Switch-state faults
    # ------------------------------------------------------------------
    def reset_port_agent(self, port: "Port", at_ns: int) -> FaultRecord:
        """Wipe one TFC port agent's learned state (targeted reboot)."""
        record = self._record(
            "agent_reset", self._port_name(port), at_ns
        )

        def reset() -> None:
            if port.agent is not None:
                port.agent.reset()
            self._emit(FAULT_INJECTED, record)

        self._at(at_ns, reset)
        return record

    def reset_switch(self, switch: "Switch", at_ns: int) -> FaultRecord:
        """Wipe every TFC agent on ``switch`` at once (full reboot)."""
        record = self._record("switch_reset", switch.name, at_ns)

        def reset() -> None:
            for port in switch.ports:
                if port.agent is not None:
                    port.agent.reset()
            self._emit(FAULT_INJECTED, record)

        self._at(at_ns, reset)
        return record

    # ------------------------------------------------------------------
    # Flow faults
    # ------------------------------------------------------------------
    def kill_flow(self, sender: "Sender", at_ns: int) -> FaultRecord:
        """Abort ``sender`` with no FIN at ``at_ns`` (process crash)."""
        record = self._record(
            "flow_kill", str(sender.flow_key), at_ns
        )

        def kill() -> None:
            sender.abort()
            self._emit(FAULT_INJECTED, record)

        self._at(at_ns, kill)
        return record

    def kill_delimiter(
        self, port: "Port", senders: Iterable["Sender"], at_ns: int
    ) -> FaultRecord:
        """Silently kill whichever flow is ``port``'s delimiter at ``at_ns``.

        The delimiter is only known at fault time, so the lookup happens
        inside the scheduled callback: the sender (from ``senders``) whose
        flow key matches the agent's current delimiter is aborted.  No FIN
        reaches the agent — re-election must come from the ``2^k x
        rtt_last`` silence backoff.
        """
        senders = list(senders)
        record = self._record(
            "delimiter_kill", self._port_name(port), at_ns
        )

        def kill() -> None:
            agent = port.agent
            key = None if agent is None else agent.delimiter_key
            record.detail["delimiter_key"] = key
            if key is None:
                return
            for sender in senders:
                if sender.flow_key == key:
                    sender.abort()
                    self._emit(FAULT_INJECTED, record)
                    return

        self._at(at_ns, kill)
        return record

    # ------------------------------------------------------------------
    # Host faults
    # ------------------------------------------------------------------
    def pause_host(
        self, host: "Host", at_ns: int, duration_ns: int
    ) -> FaultRecord:
        """Freeze ``host`` for ``duration_ns`` (VM pause / GC stall)."""
        end_ns = at_ns + duration_ns
        record = self._record("host_pause", host.name, at_ns, end_ns)

        def pause() -> None:
            host.pause()
            self._emit(FAULT_INJECTED, record)

        def resume() -> None:
            host.resume()
            self._emit(FAULT_CLEARED, record)

        self._at(at_ns, pause)
        self._at(end_ns, resume)
        return record

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector faults={len(self.records)}>"
