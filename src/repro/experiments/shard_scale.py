"""Sharded-vs-serial scaling cells (the ``shard`` runner figure).

One cell runs the canonical pod-traffic workload
(:mod:`repro.sim.shard.workload`) on a fat tree either serially (one
Simulator — the ground truth the equivalence tests pin) or sharded
across pod partitions with the conservative-lookahead coordinator.  The
pair of cells is the speedup measurement: identical workload, identical
results (bit-identical merged fingerprints), different wall-clock.

``pod_shards=None`` defers to the validated ``REPRO_SHARDS`` knob (the
runner's ``--shards`` flag pins it for a whole batch), falling back to
2 — the smallest honest split.
"""

from __future__ import annotations

from typing import Optional

from ..config import shard_count
from ..sim.shard import (
    ShardSpec,
    plan_fat_tree,
    run_serial_reference,
    run_sharded,
)
from ..sim.shard.workload import build_pod_traffic, collect_pod_traffic
from ..sim.units import MILLISECOND
from .common import ExperimentResult


def run_shard_cell(
    mode: str = "sharded",
    k: int = 4,
    pod_shards: Optional[int] = None,
    flows_per_pod: int = 2,
    duration_ms: float = 4.0,
    seed: int = 0,
    protocol: str = "tfc",
    exec_mode: str = "auto",
) -> ExperimentResult:
    """Run the pod-traffic workload, sharded or serial.

    Scalars: ``events`` (simulator events processed; the sharded count
    includes boundary capture/injection overhead), ``wall_s``,
    ``events_per_sec``, ``goodput_bps`` (sum over receivers), plus —
    for sharded runs — ``shards`` (total, pods + core), ``epochs`` and
    ``messages`` from the coordinator.

    ``mode="both"`` runs the serial reference *and* the sharded run on
    the same spec (same seed, same workload) in one cell and reports the
    head-to-head: ``speedup`` (serial wall / sharded wall) and ``match``
    (1.0 when the merged sharded metrics equal the serial metrics
    bit-for-bit — the live equivalence check).
    """
    if mode == "both":
        return _run_head_to_head(
            k, pod_shards, flows_per_pod, duration_ms, seed, protocol,
            exec_mode,
        )
    if mode not in ("sharded", "serial"):
        raise ValueError(f"unknown shard cell mode {mode!r}")
    if pod_shards is None:
        pod_shards = shard_count() or 2
    end_ns = int(duration_ms * MILLISECOND)
    plan = plan_fat_tree(k=k, pod_shards=pod_shards)
    spec = ShardSpec(
        plan=plan,
        build=build_pod_traffic,
        collect=collect_pod_traffic,
        end_ns=end_ns,
        root_seed=seed,
        build_kwargs={
            "k": k,
            "protocol": protocol,
            "flows_per_pod": flows_per_pod,
        },
    )
    scalars = {"sharded": 0.0, "duration_ms": float(duration_ms)}
    if mode == "serial":
        outcome = run_serial_reference(spec)
        metrics = outcome.metrics
        scalars["events"] = float(outcome.events)
        scalars["wall_s"] = outcome.wall_s
    else:
        result = run_sharded(spec, mode=exec_mode)
        metrics = result.merged()
        scalars["sharded"] = 1.0
        scalars["events"] = float(result.events)
        scalars["wall_s"] = result.wall_s
        scalars["shards"] = float(result.shards)
        scalars["epochs"] = float(result.epochs)
        scalars["messages"] = float(result.messages)
    scalars["events_per_sec"] = (
        scalars["events"] / scalars["wall_s"] if scalars["wall_s"] > 0 else 0.0
    )
    rx_bytes = sum(
        value[0] for key, value in metrics.items() if key.endswith(":rx")
    )
    scalars["goodput_bps"] = rx_bytes * 8 / (end_ns / 1e9)
    return ExperimentResult(
        name=f"shard_{mode}", protocol=protocol, scalars=scalars
    )


def _run_head_to_head(
    k: int,
    pod_shards: Optional[int],
    flows_per_pod: int,
    duration_ms: float,
    seed: int,
    protocol: str,
    exec_mode: str,
) -> ExperimentResult:
    """Serial reference and sharded run on one spec, compared live."""
    if pod_shards is None:
        pod_shards = shard_count() or 2
    end_ns = int(duration_ms * MILLISECOND)
    plan = plan_fat_tree(k=k, pod_shards=pod_shards)
    spec = ShardSpec(
        plan=plan,
        build=build_pod_traffic,
        collect=collect_pod_traffic,
        end_ns=end_ns,
        root_seed=seed,
        build_kwargs={
            "k": k,
            "protocol": protocol,
            "flows_per_pod": flows_per_pod,
        },
    )
    serial = run_serial_reference(spec)
    sharded = run_sharded(spec, mode=exec_mode)
    rx_bytes = sum(
        value[0]
        for key, value in serial.metrics.items()
        if key.endswith(":rx")
    )
    scalars = {
        "speedup": (
            serial.wall_s / sharded.wall_s if sharded.wall_s > 0 else 0.0
        ),
        "match": 1.0 if sharded.merged() == serial.metrics else 0.0,
        "shards": float(sharded.shards),
        "serial_wall_s": serial.wall_s,
        "sharded_wall_s": sharded.wall_s,
        "serial_events": float(serial.events),
        "sharded_events": float(sharded.events),
        "epochs": float(sharded.epochs),
        "messages": float(sharded.messages),
        "duration_ms": float(duration_ms),
        "goodput_bps": rx_bytes * 8 / (end_ns / 1e9),
    }
    return ExperimentResult(
        name="shard_both", protocol=protocol, scalars=scalars
    )
