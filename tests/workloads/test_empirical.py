"""Tests for the three-class benchmark workload generator."""

import pytest

from repro.metrics.fct import FctCollector
from repro.net.topology import testbed as build_testbed
from repro.sim.units import seconds
from repro.transport.registry import configure_network, queue_factory_for
from repro.workloads.empirical import BenchmarkWorkload


def make_topo():
    topo = build_testbed(queue_factory=queue_factory_for("tfc", 256_000))
    configure_network(topo.network, "tfc")
    return topo


def test_generates_all_three_classes():
    topo = make_topo()
    collector = FctCollector()
    workload = BenchmarkWorkload(
        topo.hosts, "tfc", duration_ns=seconds(0.5),
        query_rate_per_s=100, query_fanin=4,
        short_rate_per_s=20, background_rate_per_s=20,
        collector=collector,
    )
    topo.network.run_for(seconds(1.5))
    assert workload.queries_launched > 10
    assert collector.completed("query") >= 4 * 10
    assert collector.completed("short") > 0
    assert collector.completed("background") > 0


def test_query_fanin_respected():
    topo = make_topo()
    collector = FctCollector()
    workload = BenchmarkWorkload(
        topo.hosts, "tfc", duration_ns=seconds(0.3),
        query_rate_per_s=50, query_fanin=5,
        short_rate_per_s=0, background_rate_per_s=0,
        collector=collector,
    )
    topo.network.run_for(seconds(1))
    assert collector.completed("query") == workload.queries_launched * 5
    # Every query response is the paper's 2 KB.
    assert all(r.size_bytes == 2_000 for r in collector.records)


def test_deterministic_with_same_seed_name():
    counts = []
    for _ in range(2):
        topo = make_topo()
        workload = BenchmarkWorkload(
            topo.hosts, "tfc", duration_ns=seconds(0.2),
            query_rate_per_s=100, query_fanin=3,
            seed_name="det-test",
        )
        topo.network.run_for(seconds(0.25))
        counts.append((workload.queries_launched, workload.flows_launched))
    assert counts[0] == counts[1]


def test_different_seed_names_give_different_schedules():
    sizes = []
    for name in ("s1", "s2"):
        topo = make_topo()
        collector = FctCollector()
        BenchmarkWorkload(
            topo.hosts, "tfc", duration_ns=seconds(0.3),
            query_rate_per_s=0, query_fanin=3,
            short_rate_per_s=0, background_rate_per_s=100,
            seed_name=name, collector=collector,
        )
        topo.network.run_for(seconds(0.4))
        sizes.append(sorted(r.size_bytes for r in collector.records))
    assert sizes[0] != sizes[1]  # different seeds, different flow sizes


def test_validates_arguments():
    topo = make_topo()
    with pytest.raises(ValueError):
        BenchmarkWorkload(topo.hosts[:2], "tfc", duration_ns=seconds(0.1))
    with pytest.raises(ValueError):
        BenchmarkWorkload(
            topo.hosts, "tfc", duration_ns=seconds(0.1),
            query_fanin=len(topo.hosts),
        )
