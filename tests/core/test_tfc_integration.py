"""End-to-end TFC properties on real topologies (the paper's headline
claims, asserted at small scale so the suite stays fast)."""

import statistics

from repro.core.params import TfcParams
from repro.metrics.samplers import QueueSampler, RateSampler
from repro.metrics.stats import jain_fairness
from repro.net.topology import dumbbell, multi_bottleneck
from repro.sim.units import microseconds, milliseconds, seconds
from repro.transport.base import FlowState
from repro.transport.registry import configure_network, open_flow, queue_factory_for


def tfc_dumbbell(n, params=None, **kwargs):
    topo = dumbbell(n_senders=n, queue_factory=queue_factory_for("tfc", 256_000), **kwargs)
    configure_network(topo.network, "tfc", params)
    return topo


def test_near_zero_queueing_steady_state():
    topo = tfc_dumbbell(4)
    receiver = topo.hosts[-1]
    for host in topo.hosts[:4]:
        open_flow(host, receiver, "tfc")
    sampler = QueueSampler(topo.sim, topo.bottleneck("main"), microseconds(100))
    topo.network.run_for(seconds(0.5))
    # Paper Fig. 8: mean a couple of KB, max below ~10 KB.
    assert sampler.mean() < 10_000
    assert sampler.max() < 40_000


def test_high_utilisation():
    topo = tfc_dumbbell(4)
    receiver = topo.hosts[-1]
    flows = [open_flow(host, receiver, "tfc") for host in topo.hosts[:4]]
    rate = RateSampler(
        topo.sim,
        (lambda: sum(f.receiver.bytes_received for f in flows)),
        milliseconds(50),
    )
    topo.network.run_for(seconds(0.5))
    steady = statistics.mean(rate.values[-5:])
    assert steady > 0.80 * 1e9  # at least 80% of the 1 Gbps bottleneck


def test_fairness_across_flows():
    topo = tfc_dumbbell(6)
    receiver = topo.hosts[-1]
    flows = [open_flow(host, receiver, "tfc") for host in topo.hosts[:6]]
    topo.network.run_for(seconds(0.5))
    shares = [f.stats.bytes_acked for f in flows]
    assert jain_fairness(shares) > 0.99


def test_no_loss_with_many_concurrent_flows():
    """Paper section 4.6: no drops even when W < 1 MSS (60 flows here)."""
    topo = tfc_dumbbell(60)
    receiver = topo.hosts[-1]
    flows = [open_flow(host, receiver, "tfc") for host in topo.hosts[:60]]
    topo.network.run_for(seconds(0.5))
    assert topo.network.total_drops() == 0
    assert sum(f.stats.timeouts for f in flows) == 0
    assert all(f.stats.bytes_acked > 0 for f in flows)


def test_flash_crowd_of_new_flows_does_not_drop():
    """Window acquisition + grant budget: 100 simultaneous opens survive."""
    topo = tfc_dumbbell(100)
    receiver = topo.hosts[-1]
    flows = [
        open_flow(host, receiver, "tfc", size_bytes=50_000)
        for host in topo.hosts[:100]
    ]
    topo.network.run_for(seconds(2))
    assert topo.network.total_drops() == 0
    assert all(f.state is FlowState.DONE for f in flows)


def test_work_conserving_two_bottlenecks():
    topo = multi_bottleneck(queue_factory=queue_factory_for("tfc", 256_000))
    configure_network(topo.network, "tfc")
    h1, h2, h3, h4 = topo.hosts
    n1 = [open_flow(h1, h4, "tfc") for _ in range(8)]
    n2 = [open_flow(h1, h3, "tfc") for _ in range(2)]
    n3 = [open_flow(h2, h3, "tfc") for _ in range(2)]
    topo.network.run_for(seconds(0.6))
    s2_bytes = sum(f.stats.bytes_acked for f in n2 + n3)
    # The S2 downlink must be well utilised despite n2 being S1-limited:
    # without token adjustment it would sit near (2/10 + tiny) utilisation.
    s2_goodput = s2_bytes * 8 / 0.6
    assert s2_goodput > 0.75 * 1e9
    assert topo.network.total_drops() == 0


def test_silent_flows_release_bandwidth():
    """A silent flow's share is taken over within a few slots."""
    topo = tfc_dumbbell(2)
    receiver = topo.hosts[-1]
    active = open_flow(topo.hosts[0], receiver, "tfc")
    silent = open_flow(topo.hosts[1], receiver, "tfc", size_bytes=0)
    silent.fin_on_empty = False
    silent.queue_bytes(500_000)
    topo.network.run_for(seconds(0.2))  # both active, then one goes silent
    acked_at_silence = active.stats.bytes_acked
    topo.network.run_for(seconds(0.2))
    delta = active.stats.bytes_acked - acked_at_silence
    # The survivor should now run near the full link, not at half.
    assert delta * 8 / 0.2 > 0.8 * 1e9


def test_eq7_mode_underperforms_iterative():
    """The ablation the DESIGN.md documents: literal Eq. 7 loses goodput."""
    results = {}
    for mode in ("iterative", "eq7"):
        topo = tfc_dumbbell(4, params=TfcParams(token_adjustment=mode))
        receiver = topo.hosts[-1]
        flows = [open_flow(host, receiver, "tfc") for host in topo.hosts[:4]]
        topo.network.run_for(seconds(0.4))
        results[mode] = sum(f.stats.bytes_acked for f in flows)
    assert results["iterative"] > results["eq7"]


def test_rho0_controls_utilisation_direction():
    totals = {}
    for rho0 in (0.90, 1.00):
        topo = tfc_dumbbell(4, params=TfcParams(rho0=rho0))
        receiver = topo.hosts[-1]
        flows = [open_flow(host, receiver, "tfc") for host in topo.hosts[:4]]
        topo.network.run_for(seconds(0.4))
        totals[rho0] = sum(f.stats.bytes_acked for f in flows)
    assert totals[1.00] >= totals[0.90]


def test_tfc_vs_tcp_queue_comparison():
    """The core Fig. 8 claim: TFC's queue is orders below TCP's."""
    maxima = {}
    for proto in ("tfc", "tcp"):
        topo = dumbbell(n_senders=4, queue_factory=queue_factory_for(proto, 256_000))
        configure_network(topo.network, proto)
        receiver = topo.hosts[-1]
        for host in topo.hosts[:4]:
            open_flow(host, receiver, proto)
        topo.network.run_for(seconds(0.3))
        maxima[proto] = topo.bottleneck("main").queue.max_bytes_seen
    assert maxima["tfc"] < maxima["tcp"] / 5
