"""Fig. 6 — accuracy of the measured queue-free RTT (rtt_b).

Paper setup: hosts H1 and H2 each send two long-lived flows to H3; the
switch measures rtt_b (minimum delimiter RTT) once per second.  A separate
reference flow sends one MTU packet per RTT from H1 to H3 and its measured
round-trip times are the "referenced RTT".  The paper finds rtt_b ~59 us vs
referenced ~65 us — rtt_b excludes the random host processing delay, so it
sits a roughly constant few microseconds *below* the reference, which the
token adjustment then compensates.

Here the switch agent's rtt_b is sampled periodically and the reference RTT
is taken from the probe flow's clean RTT samples at the sender.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..metrics.stats import cdf_points, mean
from ..net.topology import testbed
from ..sim.units import microseconds, seconds, to_microseconds
from ..transport.registry import open_flow
from .common import ExperimentResult, build_topology


@dataclass
class RttbResult:
    """CDF samples of measured rtt_b and of the referenced RTT, in us."""

    rttb_samples_us: List[float] = field(default_factory=list)
    reference_samples_us: List[float] = field(default_factory=list)

    @property
    def rttb_mean_us(self) -> float:
        return mean(self.rttb_samples_us)

    @property
    def reference_mean_us(self) -> float:
        return mean(self.reference_samples_us)

    @property
    def gap_us(self) -> float:
        """How far rtt_b sits below the referenced RTT (paper: ~6 us)."""
        return self.reference_mean_us - self.rttb_mean_us

    def cdfs(self):
        """(rttb_cdf, reference_cdf) step functions for plotting."""
        return cdf_points(self.rttb_samples_us), cdf_points(
            self.reference_samples_us
        )


def run_fig06(
    duration_s: float = 4.0,
    sample_interval_s: float = 0.25,
    seed: int = 0,
) -> RttbResult:
    """Run the Fig. 6 scenario and collect both RTT estimates."""
    topo = build_topology(testbed, "tfc", buffer_bytes=256_000, seed=seed)
    net = topo.network
    h1, h2, h3 = topo.host(0), topo.host(1), topo.host(2)

    # Two long-lived flows from each of H1, H2 towards H3.
    for source in (h1, h1, h2, h2):
        open_flow(source, h3, "tfc")

    # Reference probe: one MTU-sized segment per round trip.  A TFC flow
    # with a one-MSS window behaves exactly like that, and its sender-side
    # clean RTT samples (srtt inputs) are the referenced RTT.
    probe = open_flow(h1, h3, "tfc", awnd_bytes=1460)
    result = RttbResult()

    def record_probe_rtt(rtt_ns: int) -> None:
        result.reference_samples_us.append(to_microseconds(rtt_ns))

    # Intercept the probe's RTT samples without disturbing the estimator.
    # The very first sample comes from the 40-byte SYN/SYN-ACK exchange,
    # not an MTU-sized round trip (the paper's reference sends full MTU
    # packets), so it is skipped.
    original_sample = probe.rto.sample
    skipped_handshake = [False]

    def sampling_wrapper(rtt_ns: int) -> None:
        if not skipped_handshake[0]:
            skipped_handshake[0] = True
        else:
            record_probe_rtt(rtt_ns)
        original_sample(rtt_ns)

    probe.rto.sample = sampling_wrapper  # type: ignore[method-assign]

    # The bottleneck agent is the leaf port feeding H3.
    agent = topo.bottleneck("to_H3").agent

    interval_ns = seconds(sample_interval_s)

    def sample_rttb() -> None:
        result.rttb_samples_us.append(to_microseconds(agent.rttb_ns))
        # Paper: rtt_b is "measured at the interval of 1 second", i.e. the
        # window restarts each sample; reset the minimum like the testbed.
        agent.rttb_ns = agent.params.init_rttb_ns
        net.sim.schedule(interval_ns, sample_rttb)

    net.sim.schedule(interval_ns, sample_rttb)
    net.run_for(seconds(duration_s))
    return result


def run_fig06_cell(
    duration_s: float = 4.0,
    sample_interval_s: float = 0.25,
    seed: int = 0,
) -> "ExperimentResult":
    """Picklable cell adapter for the parallel runner."""
    res = run_fig06(
        duration_s=duration_s, sample_interval_s=sample_interval_s, seed=seed
    )
    return ExperimentResult(
        name=f"fig06:seed{seed}",
        protocol="tfc",
        scalars={
            "rttb_mean_us": res.rttb_mean_us,
            "reference_mean_us": res.reference_mean_us,
            "gap_us": res.gap_us,
        },
        series={
            "rttb_samples_us": list(res.rttb_samples_us),
            "reference_samples_us": list(res.reference_samples_us),
        },
    )
