"""Nodes: the shared base for switches and hosts.

A :class:`Node` owns its outgoing :class:`~repro.net.port.Port` objects and
receives packets from incoming links.  Routing is static: topology builders
populate ``forwarding_table`` (destination node id -> the BFS-elected local
port index) and ``multipath_table`` (destination node id -> every
equal-cost port index, elected port first) from shortest paths after
wiring everything up.  Which port a packet actually takes is decided by
the network's :class:`~repro.routing.RoutingPolicy`; the default
``single`` policy leaves ``Switch.routing`` detached so the datapath is
the plain forwarding-table lookup.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.trace import Tracer
from .packet import Packet
from .port import Port


class Node:
    """A network element with ports and a forwarding table."""

    def __init__(self, sim: Simulator, node_id: int, name: str, tracer: Tracer):
        self.sim = sim
        self.node_id = node_id
        self.name = name
        self.tracer = tracer
        self.ports: List[Port] = []
        self.forwarding_table: Dict[int, int] = {}
        self.multipath_table: Dict[int, Tuple[int, ...]] = {}
        self.rx_packets = 0
        self.rx_bytes = 0

    # ------------------------------------------------------------------
    # Wiring (used by topology builders)
    # ------------------------------------------------------------------
    def add_port(self, port: Port) -> int:
        """Attach an outgoing port; returns its local index."""
        assert port.index == len(self.ports), "port indices must be dense"
        self.ports.append(port)
        return port.index

    def port_towards(self, dst_node_id: int) -> Port:
        """The (BFS-elected) outgoing port used to reach ``dst_node_id``."""
        return self.ports[self.forwarding_table[dst_node_id]]

    def ports_towards(self, dst_node_id: int) -> List[Port]:
        """Every equal-cost outgoing port towards ``dst_node_id``."""
        return [
            self.ports[index] for index in self.multipath_table[dst_node_id]
        ]

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, in_port_index: int) -> None:
        """Handle a fully received frame (store-and-forward boundary)."""
        self.rx_packets += 1
        self.rx_bytes += packet.frame_size
        self.handle_packet(packet, in_port_index)

    def handle_packet(self, packet: Packet, in_port_index: int) -> None:
        """Protocol behaviour; subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} ports={len(self.ports)}>"


class Switch(Node):
    """Output-queued store-and-forward switch.

    Per-port protocol agents (e.g. the TFC switch agent) hook two points:

    * ``agent.on_transit(packet)`` — every packet about to be queued on the
      agent's port (the *data direction* for that agent); may rewrite header
      fields (window stamping) and updates the token/E/rho counters.
    * ``agent.on_reverse_arrival(packet)`` — every packet arriving *from*
      the agent's link (the reverse direction, where RMA ACKs travel).
      Returns True when the agent consumed the packet (delay function) and
      will re-inject it later via :meth:`inject`.

    ``routing`` is the multi-path hook: the network's routing policy
    attaches itself here (see :meth:`repro.routing.RoutingPolicy.install`)
    and :meth:`forward` delegates the equal-cost pick to it.  The default
    ``single`` policy leaves it ``None``, keeping the original fixed
    next-hop lookup as the fast path.
    """

    routing = None  # RoutingPolicy instance, or None for fixed next hop

    def handle_packet(self, packet: Packet, in_port_index: int) -> None:
        ports = self.ports
        if 0 <= in_port_index < len(ports):
            agent = ports[in_port_index].agent
            if agent is not None and agent.on_reverse_arrival(packet):
                return  # held by the delay arbiter; re-injected later
        self.forward(packet)

    def forward(self, packet: Packet) -> None:
        """Route ``packet`` out a port towards its destination."""
        routing = self.routing
        if routing is None:
            out_index = self.forwarding_table.get(packet.dst)
            if out_index is None:
                raise KeyError(
                    f"{self.name}: no route to node {packet.dst} for {packet!r}"
                )
        else:
            try:
                out_index = routing.select(self, packet)
            except KeyError:
                raise KeyError(
                    f"{self.name}: no route to node {packet.dst} for {packet!r}"
                ) from None
        out_port = self.ports[out_index]
        if out_port.agent is not None:
            out_port.agent.on_transit(packet)
        out_port.send(packet)

    def inject(self, packet: Packet) -> None:
        """Re-inject a packet previously held by a port agent."""
        self.forward(packet)


class Endpoint(Node):
    """Anything that terminates flows (hosts). Subclassed in host.py."""

    def handle_packet(self, packet: Packet, in_port_index: int) -> None:
        raise NotImplementedError


def attach_port(
    sim: Simulator,
    node: Node,
    link,
    queue,
    tracer: Optional[Tracer] = None,
) -> Port:
    """Create a port on ``node`` transmitting into ``link``."""
    port = Port(sim, node, len(node.ports), link, queue, tracer)
    node.add_port(port)
    return port
