"""PFC-style per-priority lossless fabric: ingress pause/resume.

Priority Flow Control (IEEE 802.1Qbb) makes a fabric lossless by pausing
the *upstream transmitter* of a link before the local buffer can
overflow.  The model here follows the standard switch implementation
vocabulary (see the Backpressure Flow Control and Tiny Buffer TCP lines
of work): per-ingress byte accounting with an **XOFF** threshold that
triggers a pause frame upstream, an **XON** threshold that sends the
resume, and **headroom** — buffer reserved above XOFF to absorb the
frames already in flight while the pause propagates.  With headroom of
at least two link BDPs plus one MTU per ingress, no admitted packet is
ever dropped: the fabric is lossless.

Losslessness is exactly what buys the pathologies TFC claims to avoid:

* a paused port stalls *every* flow queued behind it, including flows
  whose own next hop is idle — head-of-line blocking;
* pause propagates hop by hop toward the sources, so one slow drain can
  blanket a whole subtree in pause frames — a pause storm;
* routes that thread paused buffers into a ring deadlock permanently —
  cyclic buffer dependency (CBD).

The detectors for all three live in :mod:`repro.faults.pathology`.

Structure
---------
* :class:`PfcParams` — thresholds, headroom and the lossless class set.
* :class:`PfcIngress` — per-(node, ingress-port) byte accounting.  Bytes
  are charged when a packet arrives from the ingress link and released
  when it is dequeued for transmission at any local egress port (or
  dropped), mirroring a shared-buffer switch with per-ingress counters.
* :class:`PfcPortAgent` — installed as ``port.agent`` on every switch
  port; does the ingress accounting in ``on_reverse_arrival`` and
  consumes pause frames addressed to its port.  An existing protocol
  agent (the TFC switch agent) is wrapped, not displaced: calls are
  delegated to ``inner``, so TFC and PFC can run on the same port.
* :class:`LosslessFabric` — the per-network install handle: owns the
  ingress table, the paused-port set the deadlock detector walks, and
  the pause/resume counters.

Pause frames are MAC control frames: they bypass the data queues (the
frame is carried straight on the link after the propagation delay) and
are consumed by the peer's port logic, never forwarded.  A pause stops
the peer port from *starting* new transmissions; the frame already being
serialised finishes, which is why headroom must cover in-flight bytes.

One honest simplification, stated loudly: ports own a single FIFO, not
per-class queues, so a pause on any lossless class stops the whole port.
That collapses per-class pause to per-port pause — which is precisely
the head-of-line blocking failure mode the pathology experiments pin.
Per-class *accounting* is still kept (``PfcParams.lossless_classes``,
``Packet.priority``), so best-effort traffic neither charges ingress
counters nor triggers pauses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..sim.trace import PACKET_DROP, PFC_PAUSE, PFC_RESUME
from .packet import MTU, Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network
    from .node import Node, Switch
    from .port import Port

@dataclass(frozen=True)
class PfcParams:
    """Thresholds and headroom for one lossless fabric.

    ``xoff_bytes``/``xon_bytes`` are per-ingress watermarks on the bytes
    a single ingress has buffered locally; ``headroom_bytes`` is the
    budget reserved above XOFF for in-flight absorption (the invariant
    the tests pin: ingress occupancy never exceeds
    ``xoff_bytes + headroom_bytes``).  ``lossless_classes`` lists the
    packet priorities under PFC protection; other priorities are
    best-effort and never charged.
    """

    xoff_bytes: int = 128_000
    xon_bytes: int = 96_000
    headroom_bytes: int = 128_000
    lossless_classes: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.xoff_bytes <= 0:
            raise ValueError(f"xoff must be positive, got {self.xoff_bytes}")
        if not 0 < self.xon_bytes <= self.xoff_bytes:
            raise ValueError(
                f"xon must be in (0, xoff], got xon={self.xon_bytes} "
                f"xoff={self.xoff_bytes}"
            )
        if self.headroom_bytes < MTU:
            raise ValueError(
                f"headroom must cover at least one MTU ({MTU} B), "
                f"got {self.headroom_bytes}"
            )
        if not self.lossless_classes:
            raise ValueError("need at least one lossless class")


def default_params_for(buffer_bytes: int) -> PfcParams:
    """Conservative thresholds scaled to a switch buffer size.

    XOFF at half the per-port buffer with the other half as headroom:
    loose enough that well-behaved transports (TFC keeps queues in the
    tens of kilobytes) never trip a pause, which is what lets the
    ``REPRO_LOSSLESS=pfc`` CI shard demand bit-identical golden results.
    Pathology scenarios pass tighter explicit thresholds instead.
    """
    xoff = max(buffer_bytes // 2, MTU)
    return PfcParams(
        xoff_bytes=xoff,
        xon_bytes=max((3 * buffer_bytes) // 8, MTU),
        headroom_bytes=max(buffer_bytes - xoff, MTU),
    )


class PauseFrame(Packet):
    """A per-priority pause/resume control frame (64-byte MAC control).

    ``pfc_op`` is ``"xoff"`` or ``"xon"``; ``pfc_class`` names the
    lossless class being paused.  The frame travels on the reverse
    direction of the congested ingress link, bypassing data queues.
    """

    __slots__ = ("pfc_op", "pfc_class")

    def __init__(self, src: int, dst: int, op: str, pfc_class: int):
        super().__init__(src=src, dst=dst, sport=0, dport=0)
        self.pfc_op = op
        self.pfc_class = pfc_class


def peer_tx_port(port: "Port") -> Optional["Port"]:
    """The peer's port transmitting the opposite direction of ``port``'s
    cable (the transmitter a pause frame from this side must stop)."""
    for peer_port in port.peer_node.ports:
        link = peer_port.link
        if link.dst_node is port.node and link.dst_port_index == port.index:
            return peer_port
    return None


class PfcIngress:
    """Per-(node, ingress) byte accounting with XOFF/XON watermarks.

    ``charge`` runs on packet arrival from the ingress link; ``release``
    when the packet is dequeued for transmission at a local egress port
    (or dropped).  Crossing XOFF from below sends a pause frame upstream
    through ``via_port`` (the local port transmitting back towards the
    ingress neighbour); draining to XON sends the resume.
    """

    __slots__ = (
        "fabric",
        "node",
        "via_port",
        "params",
        "bytes",
        "class_bytes",
        "paused_classes",
        "max_bytes_seen",
        "pause_frames_sent",
        "resume_frames_sent",
        "headroom_overflows",
    )

    def __init__(self, fabric: "LosslessFabric", via_port: "Port"):
        self.fabric = fabric
        self.node = via_port.node
        self.via_port = via_port
        self.params = fabric.params
        self.bytes = 0
        self.class_bytes: Dict[int, int] = {}
        self.paused_classes: set = set()
        self.max_bytes_seen = 0
        self.pause_frames_sent = 0
        self.resume_frames_sent = 0
        self.headroom_overflows = 0

    @property
    def name(self) -> str:
        """``node<-neighbour`` label used in traces and detector output."""
        return f"{self.node.name}<-{self.via_port.peer_node.name}"

    # ------------------------------------------------------------------
    def charge(self, packet: Packet) -> None:
        """Account an arrival from this ingress; maybe send XOFF."""
        cls = packet.priority
        if cls not in self.fabric.lossless_classes:
            return
        size = packet.size
        packet.pfc_ingress = self
        self.bytes += size
        self.class_bytes[cls] = self.class_bytes.get(cls, 0) + size
        if self.bytes > self.max_bytes_seen:
            self.max_bytes_seen = self.bytes
        if (
            self.bytes > self.params.xoff_bytes + self.params.headroom_bytes
        ):
            # Headroom exhausted: the fabric is no longer lossless.  The
            # counter (and the invariant test pinned on it) is the alarm.
            self.headroom_overflows += 1
        if (
            cls not in self.paused_classes
            and self.bytes > self.params.xoff_bytes
        ):
            self._send(True, cls)

    def release(self, packet: Packet) -> None:
        """Release a packet's bytes (egress dequeue or drop)."""
        cls = packet.priority
        size = packet.size
        self.bytes -= size
        remaining = self.class_bytes.get(cls, 0) - size
        if remaining > 0:
            self.class_bytes[cls] = remaining
        else:
            self.class_bytes.pop(cls, None)
        if self.paused_classes and self.bytes <= self.params.xon_bytes:
            for paused in sorted(self.paused_classes):
                self._send(False, paused)

    # ------------------------------------------------------------------
    def _send(self, pause: bool, cls: int) -> None:
        """Emit an XOFF/XON frame upstream, bypassing data queues."""
        upstream = self.via_port.peer_node
        frame = PauseFrame(
            src=self.node.node_id,
            dst=upstream.node_id,
            op="xoff" if pause else "xon",
            pfc_class=cls,
        )
        if pause:
            self.paused_classes.add(cls)
            self.pause_frames_sent += 1
        else:
            self.paused_classes.discard(cls)
            self.resume_frames_sent += 1
        # Control frames preempt data: carried straight on the link (one
        # propagation delay; the 64-byte serialisation time is noise at
        # fabric rates and would only shift every event by a constant).
        self.via_port.link.carry(frame)
        target = peer_tx_port(self.via_port)
        topic = PFC_PAUSE if pause else PFC_RESUME
        self.fabric.tracer.emit(
            topic,
            ingress=self.name,
            node=self.node.name,
            upstream=upstream.name,
            pfc_class=cls,
            bytes=self.bytes,
            port=target,
        )


class PfcPortAgent:
    """Per-port PFC logic, composable with an existing protocol agent.

    Two duties on the reverse path (packets arriving *from* this port's
    link): consume pause frames addressed to this port, and charge the
    ingress accounting for data arrivals.  ``on_transit`` only delegates
    to the wrapped agent (PFC never rewrites data packets).

    Deliberately not slotted: the invariant monitor shadows
    ``on_transit`` with an instance attribute on whichever object sits in
    ``port.agent``, and that requires a ``__dict__``.
    """

    def __init__(
        self,
        port: "Port",
        fabric: "LosslessFabric",
        ingress: PfcIngress,
        inner=None,
    ):
        self.port = port
        self.fabric = fabric
        self.ingress = ingress
        self.inner = inner
        # Lossless classes currently pausing *this* port's transmitter
        # (set by XOFF frames from the downstream neighbour).
        self.pfc_paused_classes: set = set()

    # ------------------------------------------------------------------
    # Agent protocol (same shape as TfcPortAgent)
    # ------------------------------------------------------------------
    def on_transit(self, packet: Packet) -> None:
        if self.inner is not None:
            self.inner.on_transit(packet)

    def on_reverse_arrival(self, packet: Packet) -> bool:
        op = packet.pfc_op
        if op is not None:
            self._apply(op, packet.pfc_class)
            return True  # control frame consumed, never forwarded
        self.ingress.charge(packet)
        if self.inner is not None:
            return self.inner.on_reverse_arrival(packet)
        return False

    def reset(self) -> None:
        """Fault hook (switch reboot): forget pause state, resume TX."""
        self.pfc_paused_classes.clear()
        self.ingress.paused_classes.clear()
        self.fabric.paused_ports.discard(self.port)
        self.port.resume()
        if self.inner is not None:
            self.inner.reset()

    #: attributes that live on the wrapper itself; everything else is
    #: the wrapped protocol agent's state and reads/writes pass through.
    _OWN_ATTRS = frozenset(
        {"port", "fabric", "ingress", "inner", "pfc_paused_classes"}
    )

    def __getattr__(self, name):
        # Transparent wrapper: anything PFC does not define (delimiter
        # bookkeeping, token state the invariant monitor reads) resolves
        # against the wrapped protocol agent.
        inner = self.inner
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    def __setattr__(self, name, value):
        # Writes must pass through too, or `port.agent.rttb_ns = x`
        # (the Fig. 6 sampler's reset, for one) lands on the wrapper and
        # permanently shadows the live value underneath.
        if name in self._OWN_ATTRS:
            object.__setattr__(self, name, value)
            return
        inner = self.__dict__.get("inner")
        if inner is None:
            object.__setattr__(self, name, value)
        else:
            setattr(inner, name, value)

    # ------------------------------------------------------------------
    def _apply(self, op: str, cls: int) -> None:
        fabric = self.fabric
        port = self.port
        if op == "xoff":
            was_paused = bool(self.pfc_paused_classes)
            self.pfc_paused_classes.add(cls)
            if not was_paused:
                port.pause()
                fabric.paused_ports.add(port)
                fabric.pause_events += 1
                fabric.note_pause(port, paused=True)
        else:
            self.pfc_paused_classes.discard(cls)
            if not self.pfc_paused_classes and port in fabric.paused_ports:
                fabric.paused_ports.discard(port)
                fabric.resume_events += 1
                fabric.note_pause(port, paused=False)
                port.resume()


def protocol_agent(agent):
    """The protocol agent beneath an optional PFC wrapper.

    Code that needs the *protocol* agent's identity (trace emissions
    carry the inner agent; the invariant monitor checks TFC state) must
    unwrap, because under ``REPRO_LOSSLESS=pfc`` every ``port.agent`` is
    a :class:`PfcPortAgent`.  A no-op for unwrapped agents and ``None``.
    """
    return agent.inner if isinstance(agent, PfcPortAgent) else agent


class LosslessFabric:
    """One network's PFC install: ingress table, paused set, counters."""

    def __init__(self, network: "Network", params: PfcParams):
        self.network = network
        self.tracer = network.tracer
        self.params = params
        self.lossless_classes = frozenset(params.lossless_classes)
        #: ingress accounting keyed by the local port facing the neighbour.
        self.ingresses: Dict["Port", PfcIngress] = {}
        #: transmit ports currently stopped by an XOFF (deadlock detector
        #: input; membership is updated where the pause is applied).
        self.paused_ports: set = set()
        self.pause_events = 0
        self.resume_events = 0
        #: per-port pause intervals: port -> list of [start_ns, end_ns]
        #: (end is None while still paused) — the pause-storm detector's
        #: raw material, kept tiny (appends only on state transitions).
        self.pause_intervals: Dict["Port", List[list]] = {}
        self._install()

    # ------------------------------------------------------------------
    def _install(self) -> None:
        network = self.network
        for switch in network.switches:
            for port in switch.ports:
                ingress = PfcIngress(self, port)
                self.ingresses[port] = ingress
                port.agent = PfcPortAgent(
                    port, self, ingress, inner=port.agent
                )
                port.on_dequeue = self._release
        # Hosts honour pause frames through their NIC hook; nothing to
        # install there.  Dropped packets must still release their
        # ingress charge or the counter leaks and the port never resumes.
        network.tracer.subscribe(PACKET_DROP, self._on_drop)

    def _release(self, packet: Packet) -> None:
        ingress = packet.pfc_ingress
        if ingress is not None:
            packet.pfc_ingress = None
            ingress.release(packet)

    def _on_drop(self, packet: Packet = None, **_kw) -> None:
        if packet is not None:
            self._release(packet)

    # ------------------------------------------------------------------
    # Pause bookkeeping for the detectors
    # ------------------------------------------------------------------
    def note_pause(self, port: "Port", paused: bool) -> None:
        intervals = self.pause_intervals.setdefault(port, [])
        now = self.network.sim.now
        if paused:
            intervals.append([now, None])
        elif intervals and intervals[-1][1] is None:
            intervals[-1][1] = now

    def any_paused(self) -> bool:
        """Whether any transmit port is currently PFC-paused."""
        return bool(self.paused_ports)

    # ------------------------------------------------------------------
    # Aggregates (assertion surface for the head-to-head experiments)
    # ------------------------------------------------------------------
    @property
    def pause_frames(self) -> int:
        """XOFF frames emitted across the fabric."""
        return self.tracer.count(PFC_PAUSE)

    @property
    def resume_frames(self) -> int:
        """XON frames emitted across the fabric."""
        return self.tracer.count(PFC_RESUME)

    @property
    def headroom_overflows(self) -> int:
        """Ingress occupancy excursions beyond XOFF + headroom (0 =
        the lossless guarantee held everywhere)."""
        return sum(i.headroom_overflows for i in self.ingresses.values())

    def max_ingress_bytes(self) -> int:
        """Peak per-ingress occupancy seen anywhere in the fabric."""
        if not self.ingresses:
            return 0
        return max(i.max_bytes_seen for i in self.ingresses.values())

    def register(self, registry) -> None:
        """Mirror fabric counters into a :class:`repro.obs` registry."""
        registry.counter(
            "pfc.pause_frames", help="XOFF frames sent"
        ).set_total(self.pause_frames)
        registry.counter(
            "pfc.resume_frames", help="XON frames sent"
        ).set_total(self.resume_frames)
        registry.counter(
            "pfc.headroom_overflows", help="lossless guarantee breaches"
        ).set_total(self.headroom_overflows)
        registry.gauge("pfc.max_ingress_bytes").set(self.max_ingress_bytes())
        registry.gauge("pfc.paused_ports").set(len(self.paused_ports))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LosslessFabric ingresses={len(self.ingresses)}"
            f" paused={len(self.paused_ports)}"
            f" pauses={self.pause_events}>"
        )


def enable_pfc(
    network: "Network", params: Optional[PfcParams] = None
) -> LosslessFabric:
    """Install PFC lossless classes on every switch of ``network``.

    Must run after the topology is wired (ports exist) and after any
    protocol agents are installed (they get wrapped, not displaced).
    Installing twice returns the existing fabric — the env-driven
    chokepoint and an explicit experiment install must not stack.
    """
    existing = getattr(network, "lossless", None)
    if existing is not None:
        return existing
    fabric = LosslessFabric(
        network,
        params
        if params is not None
        else default_params_for(network.default_buffer_bytes),
    )
    network.lossless = fabric
    return fabric
