"""Calendar-queue backend (Brown 1988) with adaptive bucket widths.

Events hash into ``nbuckets`` buckets by ``time >> width_shift`` (bucket
widths are powers of two, so the hot paths are shifts and masks, never
division); each bucket is a list kept sorted on the *negated* key
``(-time, -seq)`` so the earliest entry sits at the tail and pops are
``list.pop()`` — O(1), no memmove.  Inserts are ``bisect.insort`` (C)
into a bucket that holds, on average, O(1) entries, so schedule/pop are
amortised O(1) instead of the heap's O(log n).

The queue resizes itself: when the live population outgrows the bucket
array it doubles (and re-derives the bucket width from the inter-event
gaps near the head), and when it shrinks far below it halves.  Both
triggers depend only on deterministic entry counts, so resizing never
perturbs pop order — the golden-determinism and differential-fuzz tests
run bit-identical to the heap backend.

Events more than one "year" (``nbuckets << width_shift``) ahead alias
into the same buckets; the pop path skips entries belonging to later
years and falls back to a direct min-scan when a whole year turns up
empty (the classic calendar-queue long-jump).
"""

from __future__ import annotations

from bisect import insort
from typing import Iterator, List, Optional, Tuple

from .base import Entry, Scheduler

_MIN_BUCKETS = 8
_MAX_BUCKETS = 1 << 16
_NO_HORIZON = 1 << 62

# Negated storage key: ascending list order == descending (time, seq),
# so the earliest event is bucket[-1].
Key = Tuple[int, int, object]


class CalendarScheduler(Scheduler):
    """Amortised O(1) calendar queue tuned by live-population feedback."""

    name = "calendar"

    def __init__(self) -> None:
        super().__init__()
        self._nbuckets = _MIN_BUCKETS
        self._mask = _MIN_BUCKETS - 1
        self._wshift = 10  # bucket width 2**_wshift ns; re-derived on resize
        self._grow_at = _MIN_BUCKETS << 1
        self._buckets: List[List[Key]] = [[] for _ in range(_MIN_BUCKETS)]
        # Scan floor: time of the last popped event.  All stored entries
        # have time >= _floor (the kernel never schedules in the past),
        # so the pop scan always starts at _floor's bucket.  A horizon
        # probe that finds nothing due does NOT advance the floor, which
        # is what keeps later inserts into the probed region correct.
        self._floor = 0
        # Hot-pop cache: the floor's bucket and its year top.  While the
        # bucket's tail entry is live with time < _hot_top it is the
        # global minimum (the year scan would find it first), so it pops
        # without the scan preamble (the engine inlines this — see the
        # note in repro.sim.sched.base).  Invalidated (_hot_top = 0)
        # whenever the bucket array or the floor changes underneath it.
        self._hot_bucket: List[Key] = []
        self._hot_top = 0

    # ------------------------------------------------------------------
    def push(self, time_ns: int, seq: int, event) -> None:
        insort(
            self._buckets[(time_ns >> self._wshift) & self._mask],
            (-time_ns, -seq, event),
        )
        size = self._size + 1
        self._size = size
        if size - self._dead > self._grow_at and self._nbuckets < _MAX_BUCKETS:
            self._rebuild(self._nbuckets << 1)

    def pop_due(self, horizon_ns: int):
        free = self._free
        while self._size:
            if (
                self._nbuckets > _MIN_BUCKETS
                and (self._size - self._dead) << 2 < self._nbuckets
            ):
                self._rebuild(self._nbuckets >> 1)
            wshift = self._wshift
            width = 1 << wshift
            mask = self._mask
            buckets = self._buckets
            epoch = self._floor >> wshift
            i = epoch & mask
            top = (epoch + 1) << wshift
            for _ in range(self._nbuckets):
                bucket = buckets[i]
                while bucket:
                    key = bucket[-1]
                    time_ns = -key[0]
                    if time_ns >= top:
                        break  # belongs to a later year of this bucket
                    event = key[2]
                    if event.cancelled:
                        bucket.pop()
                        self._size -= 1
                        self._dead -= 1
                        free.append(event)
                        continue
                    # First live entry inside the year scan is the global
                    # minimum: earlier buckets held nothing below their
                    # windows, later buckets hold later times.
                    if time_ns > horizon_ns:
                        return None
                    bucket.pop()
                    self._size -= 1
                    self._floor = time_ns
                    self._hot_bucket = bucket
                    self._hot_top = top
                    return event
                i = (i + 1) & mask
                top += width
            # A whole year with no due entry: everything left is far in
            # the future.  Jump the floor to the global minimum and retry
            # (one more year scan, which then hits immediately).
            t_min = self._min_stored_time()
            if t_min is None:
                return None
            if t_min > horizon_ns:
                return None
            self._floor = t_min
        return None

    def next_live_time(self) -> Optional[int]:
        # Pop (which strips dead entries), then put the winner straight
        # back: (time, seq) keys make the re-insert land in exactly the
        # same order.  The floor must be restored afterwards: this is a
        # probe, not an execution — the engine's clock stays behind the
        # popped time, so later schedules may land below it, and the pop
        # scan must keep covering that region.
        saved_floor = self._floor
        event = self.pop_due(_NO_HORIZON)
        if event is None:
            return None
        insort(
            self._buckets[(event.time >> self._wshift) & self._mask],
            (-event.time, -event.seq, event),
        )
        self._size += 1
        self._floor = saved_floor
        self._hot_top = 0  # floor moved back; the hot cache is stale
        return event.time

    def peek_time(self) -> Optional[int]:
        # Fast path via the hot-pop cache: while the floor bucket's tail
        # entry is live with time < _hot_top it is the global minimum, so
        # no year scan (and no floor save/restore dance) is needed.
        bucket = self._hot_bucket
        top = self._hot_top
        if top and bucket:
            key = bucket[-1]
            if not key[2].cancelled and -key[0] < top:
                return -key[0]
        return self.next_live_time()

    # ------------------------------------------------------------------
    def _min_stored_time(self) -> Optional[int]:
        """Global minimum live time across all buckets (frees tail dead)."""
        free = self._free
        best = None
        for bucket in self._buckets:
            while bucket:
                key = bucket[-1]
                if key[2].cancelled:
                    bucket.pop()
                    self._size -= 1
                    self._dead -= 1
                    free.append(key[2])
                    continue
                break
            if bucket:
                time_ns = -bucket[-1][0]
                if best is None or time_ns < best:
                    best = time_ns
        return best

    def _rebuild(self, nbuckets: int) -> None:
        """Redistribute into ``nbuckets`` buckets with a re-derived width."""
        nbuckets = max(_MIN_BUCKETS, min(nbuckets, _MAX_BUCKETS))
        free = self._free
        keys: List[Key] = []
        for bucket in self._buckets:
            for key in bucket:
                if key[2].cancelled:
                    free.append(key[2])
                else:
                    keys.append(key)
        keys.sort()  # ascending key == descending (time, seq)
        self._wshift = self._choose_shift(keys)
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._grow_at = nbuckets << 1
        buckets: List[List[Key]] = [[] for _ in range(nbuckets)]
        wshift = self._wshift
        mask = self._mask
        for key in keys:  # ascending keys -> each bucket stays sorted
            buckets[(-key[0] >> wshift) & mask].append(key)
        self._buckets = buckets
        self._size = len(keys)
        self._dead = 0
        self._hot_bucket = []
        self._hot_top = 0

    def _choose_shift(self, keys_desc: List[Key]) -> int:
        """Width shift so 2**shift ~= 3x the mean head inter-event gap.

        ``keys_desc`` is sorted descending in time (ascending key order);
        the head of the queue is the *tail* of the list.  Deterministic:
        depends only on the stored population.
        """
        sample = keys_desc[-64:]
        if len(sample) < 2:
            return self._wshift
        span = (-sample[0][0]) - (-sample[-1][0])  # latest - earliest
        if span <= 0:
            return 0
        ideal = (3 * span) // (len(sample) - 1)
        if ideal <= 1:
            return 0
        return ideal.bit_length() - 1

    # ------------------------------------------------------------------
    def compact(self) -> None:
        free = self._free
        total = 0
        for bucket in self._buckets:
            live = [key for key in bucket if not key[2].cancelled]
            if len(live) != len(bucket):
                for key in bucket:
                    if key[2].cancelled:
                        free.append(key[2])
                bucket[:] = live  # in place: keeps aliases valid
            total += len(live)
        self._size = total
        self._dead = 0

    def drain_live(self) -> Iterator[Entry]:
        buckets = self._buckets
        self._buckets = [[] for _ in range(self._nbuckets)]
        self._size = 0
        self._dead = 0
        self._hot_bucket = []
        self._hot_top = 0
        free = self._free
        for bucket in buckets:
            for key in bucket:
                if key[2].cancelled:
                    free.append(key[2])
                else:
                    yield (-key[0], -key[1], key[2])

    def prefill(self, entries) -> None:
        """Bulk-load ``(time, seq, event)`` entries (adaptive migration)."""
        keys = [(-t, -s, event) for (t, s, event) in entries]
        # Seed bucket count at ~2x the population so the first rebuild
        # threshold is not hit immediately after migration.
        target = _MIN_BUCKETS
        while target < len(keys) * 2 and target < _MAX_BUCKETS:
            target <<= 1
        self._buckets = [keys]  # one fat bucket; _rebuild redistributes
        self._size = len(keys)
        self._dead = 0
        self._rebuild(target)
