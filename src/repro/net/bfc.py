"""BFC-style per-flow backpressure: per-hop pause at flow-queue granularity.

Backpressure Flow Control (Goyal et al., NSDI 2022) keeps PFC's hop-by-hop
pause signalling but moves the pause granularity from the *port* to the
*flow queue*: each egress port holds one FIFO per flow, and when a single
flow's queue crosses its occupancy threshold, only that flow is paused at
the upstream hop.  Other flows sharing the link keep flowing — which is
exactly the head-of-line-blocking victim collapse that per-port PFC
cannot avoid (see :mod:`repro.net.pfc` and the pathology detectors).

The model reuses the PFC machinery's vocabulary and plumbing:

* :class:`BfcQueue` — the per-flow-queue discipline installed on every
  port of a BFC fabric (switch egresses via the protocol's
  ``queue_factory`` hook, host NICs by :func:`enable_bfc`).  Flows are
  drained in deterministic round-robin among unpaused flows; per-flow
  occupancy crossings raise ``on_congested``/``on_drained`` callbacks.
* :class:`BfcFrame` — the pause/resume control frame.  Like PFC pause
  frames it bypasses data queues (``link.carry``), but it carries its
  own ``bfc_op``/``bfc_key`` fields so it composes with a PFC wrapper
  (a ``REPRO_LOSSLESS=pfc`` run must not mistake it for an 802.1Qbb
  frame), and rides priority 7 — outside PFC's lossless class 0 — so it
  never charges PFC ingress accounting.
* :class:`BfcPortAgent` — per switch port.  On the reverse path it
  consumes pause frames addressed to this port's transmitter (the agent
  receiving from a cable *is* the upstream tx port of that cable) and
  records which local port each arriving flow entered through, so pause
  frames for that flow know where upstream is.
* :class:`BfcFabric` / :func:`enable_bfc` — the install handle: wires
  queue callbacks to frame emission, replaces host NIC queues with
  per-flow queues, attaches NIC agents (consulted by ``Host.
  handle_packet``), and keeps the pause/resume counters the experiments
  assert on.

The endpoints are plain NewReno (:mod:`repro.transport.bfc`): like the
PFC baseline, the transport only reacts to loss — the fabric's job is to
make loss rare per flow without collateral pausing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional

from ..sim.trace import BFC_PAUSE, BFC_RESUME
from .packet import MTU, FlowKey, Packet
from .queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network
    from .node import Switch
    from .port import Port


@dataclass(frozen=True)
class BfcParams:
    """Per-flow-queue pause thresholds.

    Thresholds are *per flow*, not per port: a couple of MTUs is enough
    to cover the pause frame's propagation plus one in-flight frame on
    short data-center cables, and keeping them tiny is what holds total
    buffer occupancy at (flows x few KB) instead of PFC's per-port
    hundreds of KB.
    """

    xoff_bytes: int = 3 * MTU
    """Pause the flow upstream once its local queue exceeds this."""

    xon_bytes: int = MTU
    """Resume once the flow's local queue drains back to this."""

    def __post_init__(self) -> None:
        if self.xoff_bytes < MTU:
            raise ValueError(
                f"per-flow xoff must cover at least one MTU ({MTU} B), "
                f"got {self.xoff_bytes}"
            )
        if not 0 < self.xon_bytes <= self.xoff_bytes:
            raise ValueError(
                f"xon must be in (0, xoff], got xon={self.xon_bytes} "
                f"xoff={self.xoff_bytes}"
            )


DEFAULT_BFC_PARAMS = BfcParams()


class BfcFrame(Packet):
    """A per-flow pause/resume control frame (64-byte MAC control).

    ``bfc_op`` is ``"xoff"`` or ``"xon"``; ``bfc_key`` names the flow
    being paused.  Deliberately distinct from the PFC fields: a PFC
    wrapper agent must pass these through untouched, and ``priority = 7``
    keeps them outside PFC's lossless class 0 so they are never charged
    to (or leaked from) PFC ingress accounting.
    """

    __slots__ = ("bfc_op", "bfc_key")

    priority = 7

    def __init__(self, src: int, dst: int, op: str, flow_key: FlowKey):
        super().__init__(src=src, dst=dst, sport=0, dport=0)
        self.bfc_op = op
        self.bfc_key = flow_key


class BfcQueue(DropTailQueue):
    """Per-flow FIFOs with deterministic round-robin and pause state.

    Subclassing :class:`DropTailQueue` keeps the byte accounting, drop
    counters and loss-model hook every port expects; overriding
    ``dequeue`` automatically keeps the port on the strictly serial TX
    path (``Network.cable`` only enables the burst chain for stock
    dequeue semantics).

    Determinism is structural: the round-robin ring is a deque ordered
    by first arrival, rotation happens only in ``dequeue``, and pause
    state changes only on control-frame arrival — no iteration over
    dict/set order anywhere.
    """

    __slots__ = (
        "params",
        "_flows",
        "_flow_bytes",
        "_ring",
        "_pkts",
        "paused_flows",
        "_congested",
        "on_congested",
        "on_drained",
        "pause_skips",
    )

    def __init__(
        self, capacity_bytes: int, params: BfcParams = DEFAULT_BFC_PARAMS
    ):
        super().__init__(capacity_bytes)
        self.params = params
        self._flows: Dict[FlowKey, Deque[Packet]] = {}
        self._flow_bytes: Dict[FlowKey, int] = {}
        #: Round-robin ring of flows with queued packets, service order.
        self._ring: Deque[FlowKey] = deque()
        self._pkts = 0
        self.paused_flows: set = set()
        #: Flows above XOFF that have signalled congestion upstream.
        self._congested: set = set()
        self.on_congested: Optional[Callable[[FlowKey], None]] = None
        self.on_drained: Optional[Callable[[FlowKey], None]] = None
        #: Dequeue attempts that found only paused flows (port went idle
        #: with bytes buffered — the backpressure actually biting).
        self.pause_skips = 0

    # ------------------------------------------------------------------
    @property
    def packet_length(self) -> int:
        return self._pkts

    def __len__(self) -> int:
        return self._pkts

    def flow_bytes(self, key: FlowKey) -> int:
        """Current occupancy of one flow's queue (0 when absent)."""
        return self._flow_bytes.get(key, 0)

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        size = packet.size
        if self.loss_model is not None and self.loss_model.should_drop(packet):
            self.faulted_drops += 1
            self.drops += 1
            self.dropped_bytes += size
            return False
        new_bytes = self._bytes + size
        if new_bytes > self.capacity_bytes:
            self.drops += 1
            self.dropped_bytes += size
            return False
        self._mark(packet)
        key = packet.flow_key
        fifo = self._flows.get(key)
        if fifo is None:
            fifo = deque()
            self._flows[key] = fifo
            self._flow_bytes[key] = 0
            self._ring.append(key)
        fifo.append(packet)
        occupancy = self._flow_bytes[key] + size
        self._flow_bytes[key] = occupancy
        self._bytes = new_bytes
        self._pkts += 1
        self.enqueues += 1
        if new_bytes > self.max_bytes_seen:
            self.max_bytes_seen = new_bytes
        if occupancy > self.params.xoff_bytes and key not in self._congested:
            self._congested.add(key)
            if self.on_congested is not None:
                self.on_congested(key)
        return True

    def dequeue(self) -> Optional[Packet]:
        ring = self._ring
        paused = self.paused_flows
        for _ in range(len(ring)):
            key = ring[0]
            if key in paused:
                ring.rotate(-1)
                continue
            fifo = self._flows[key]
            packet = fifo.popleft()
            size = packet.size
            self._bytes -= size
            self._pkts -= 1
            remaining = self._flow_bytes[key] - size
            if fifo:
                self._flow_bytes[key] = remaining
                ring.rotate(-1)  # served flow goes to the back of the ring
            else:
                del self._flows[key]
                del self._flow_bytes[key]
                ring.popleft()
            if key in self._congested and remaining <= self.params.xon_bytes:
                self._congested.discard(key)
                if self.on_drained is not None:
                    self.on_drained(key)
            return packet
        if ring:
            self.pause_skips += 1
        return None

    # ------------------------------------------------------------------
    # Pause state (driven by control-frame arrival at the port agent)
    # ------------------------------------------------------------------
    def pause_flow(self, key: FlowKey) -> None:
        self.paused_flows.add(key)

    def resume_flow(self, key: FlowKey) -> None:
        self.paused_flows.discard(key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BfcQueue {self._bytes}/{self.capacity_bytes}B"
            f" flows={len(self._flows)} paused={len(self.paused_flows)}"
            f" drops={self.drops}>"
        )


class BfcPortAgent:
    """Per-switch-port BFC logic.

    Reverse-path duties (packets arriving *from* this port's cable):
    consume pause frames — the agent's port is the upstream transmitter
    the frame addresses, exactly the identity PFC exploits — and record
    the flow -> ingress-port map the fabric needs to aim pause frames of
    its own.  ``on_transit`` is a no-op: BFC never rewrites data packets.

    Not slotted, for the same reason as :class:`~repro.net.pfc.
    PfcPortAgent`: the invariant monitor shadows ``on_transit`` with an
    instance attribute on whatever sits in ``port.agent``.
    """

    def __init__(self, switch: "Switch", port: "Port", fabric: "BfcFabric"):
        self.switch = switch
        self.port = port
        self.fabric = fabric

    def on_transit(self, packet: Packet) -> None:
        pass

    def on_reverse_arrival(self, packet: Packet) -> bool:
        op = packet.bfc_op
        if op is not None:
            self.fabric.apply(self.port, op, packet.bfc_key)
            return True  # control frame consumed, never forwarded
        # Remember where this flow enters the switch: a pause for it must
        # travel back out this port.  Every direction records its own key
        # (pure ACK streams queue at egresses too and may need pausing).
        self.fabric.note_ingress(self.switch, packet.flow_key, self.port)
        return False

    def reset(self) -> None:
        """Fault hook (switch reboot): forget learned ingress + pauses."""
        self.fabric.reset_switch(self.switch)


class BfcHostAgent:
    """NIC-side pause handling: per-flow pause lands in the host's
    :class:`BfcQueue` instead of stopping the whole NIC the way a PFC
    pause frame does."""

    def __init__(self, port: "Port", fabric: "BfcFabric"):
        self.port = port
        self.fabric = fabric

    def on_reverse_arrival(self, packet: Packet) -> bool:
        op = packet.bfc_op
        if op is not None:
            self.fabric.apply(self.port, op, packet.bfc_key)
            return True
        return False

    def reset(self) -> None:
        self.port.queue.paused_flows.clear()
        self.port.kick()


class BfcFabric:
    """One network's BFC install: ingress maps, frame emission, counters."""

    def __init__(self, network: "Network", params: BfcParams):
        self.network = network
        self.tracer = network.tracer
        self.params = params
        #: switch node_id -> {flow_key -> local ingress port} (last wins;
        #: multipath reroutes simply update the entry on the next packet).
        self._ingress: Dict[int, Dict[FlowKey, "Port"]] = {}
        self.pause_frames = 0
        self.resume_frames = 0
        #: Congestion crossings whose upstream was not yet known (the
        #: flow's very first packets are still in the pipeline); the
        #: backstop is plain drop-tail admission.
        self.unknown_upstream = 0
        self._install()

    # ------------------------------------------------------------------
    def _install(self) -> None:
        network = self.network
        for switch in network.switches:
            self._ingress[switch.node_id] = {}
            for port in switch.ports:
                port.agent = BfcPortAgent(switch, port, self)
                queue = port.queue
                if isinstance(queue, BfcQueue):
                    self._wire(switch, queue)
        # Host NICs get per-flow queues too: the final pause hop lands in
        # the sender's own NIC queue, flow by flow, leaving other flows
        # from the same host untouched.  Installed before traffic, so
        # swapping the (empty) queue is safe; the overridden dequeue
        # keeps the port off the burst chain.
        for host in network.hosts:
            host.nic_agents_installed = True
            for port in host.ports:
                if isinstance(port.queue, BfcQueue):
                    continue  # idempotent re-install
                port.queue = BfcQueue(network.host_buffer_bytes, self.params)
                port.burst_enabled = False
                port.agent = BfcHostAgent(port, self)

    def _wire(self, switch: "Switch", queue: BfcQueue) -> None:
        def congested(key: FlowKey, _switch: "Switch" = switch) -> None:
            self._signal(_switch, key, pause=True)

        def drained(key: FlowKey, _switch: "Switch" = switch) -> None:
            self._signal(_switch, key, pause=False)

        queue.on_congested = congested
        queue.on_drained = drained

    # ------------------------------------------------------------------
    # Frame emission (queue threshold crossings)
    # ------------------------------------------------------------------
    def _signal(self, switch: "Switch", key: FlowKey, pause: bool) -> None:
        via_port = self._ingress[switch.node_id].get(key)
        if via_port is None:
            self.unknown_upstream += 1
            return
        frame = BfcFrame(
            src=switch.node_id,
            dst=via_port.peer_node.node_id,
            op="xoff" if pause else "xon",
            flow_key=key,
        )
        if pause:
            self.pause_frames += 1
            topic = BFC_PAUSE
        else:
            self.resume_frames += 1
            topic = BFC_RESUME
        # Control frames preempt data: carried straight on the link, one
        # propagation delay, same simplification as PFC pause frames.
        via_port.link.carry(frame)
        tracer = self.tracer
        if tracer.active(topic):
            tracer.emit(
                topic,
                node=switch.name,
                upstream=via_port.peer_node.name,
                flow_key=key,
            )
        else:
            tracer.bump(topic)

    # ------------------------------------------------------------------
    # Frame application (agent on the upstream transmitter)
    # ------------------------------------------------------------------
    def apply(self, port: "Port", op: str, key: FlowKey) -> None:
        queue = port.queue
        if not isinstance(queue, BfcQueue):
            return  # fabric partially installed (tests); nothing to pause
        if op == "xoff":
            queue.pause_flow(key)
        else:
            queue.resume_flow(key)
            port.kick()

    # ------------------------------------------------------------------
    def reset_switch(self, switch: "Switch") -> None:
        """Switch reboot: learned ingress map and pause state are gone."""
        self._ingress[switch.node_id].clear()
        for port in switch.ports:
            queue = port.queue
            if isinstance(queue, BfcQueue):
                queue.paused_flows.clear()
                queue._congested.clear()
                port.kick()

    def note_ingress(
        self, switch: "Switch", key: FlowKey, port: "Port"
    ) -> None:
        self._ingress[switch.node_id][key] = port

    # ------------------------------------------------------------------
    # Aggregates (assertion surface for the head-to-head experiments)
    # ------------------------------------------------------------------
    def paused_flow_count(self) -> int:
        """Flows currently paused anywhere in the fabric (hosts included)."""
        total = 0
        for node in self.network.nodes:
            for port in node.ports:
                queue = port.queue
                if isinstance(queue, BfcQueue):
                    total += len(queue.paused_flows)
        return total

    def register(self, registry) -> None:
        """Mirror fabric counters into a :class:`repro.obs` registry."""
        registry.counter(
            "bfc.pause_frames", help="per-flow XOFF frames sent"
        ).set_total(self.pause_frames)
        registry.counter(
            "bfc.resume_frames", help="per-flow XON frames sent"
        ).set_total(self.resume_frames)
        registry.gauge("bfc.paused_flows").set(self.paused_flow_count())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BfcFabric pauses={self.pause_frames}"
            f" resumes={self.resume_frames}"
            f" paused_flows={self.paused_flow_count()}>"
        )


def make_bfc_queue(
    params: BfcParams, buffer_bytes: int, rate_bps: int
) -> BfcQueue:
    """One switch-port per-flow queue for a BFC fabric."""
    return BfcQueue(buffer_bytes, params)


def enable_bfc(
    network: "Network", params: BfcParams = DEFAULT_BFC_PARAMS
) -> BfcFabric:
    """Install per-flow backpressure on every switch of ``network``.

    Must run after the topology is wired (ports exist).  Switch egress
    queues built by :func:`make_bfc_queue` (the protocol's queue factory)
    get their threshold callbacks wired; host NIC queues are replaced
    with per-flow queues so the last pause hop is flow-granular too.
    Installing twice returns the existing fabric.
    """
    existing = getattr(network, "bfc", None)
    if existing is not None:
        return existing
    fabric = BfcFabric(network, params)
    network.bfc = fabric
    return fabric
