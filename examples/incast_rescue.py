#!/usr/bin/env python3
"""Incast rescue: the paper's motivating scenario, reproduced end to end.

A memcached-style client requests 256 KB blocks from 60 servers at once,
barrier-synchronised round after round (TCP incast is the classic way to
destroy this workload).  The script runs the identical workload under
TCP, DCTCP and TFC and prints the goodput, the timeout count, and the
switch queue — showing TFC's near-zero-loss claim in action.

Run::

    python examples/incast_rescue.py [n_senders]
"""

import sys

from repro.experiments import run_incast_point
from repro.experiments.common import format_table


def main() -> None:
    n_senders = int(sys.argv[1]) if len(sys.argv) > 1 else 60

    rows = []
    for protocol in ("tcp", "dctcp", "tfc"):
        point = run_incast_point(
            protocol, n_senders, block_bytes=256_000, rounds=5
        )
        rows.append(
            [
                protocol.upper(),
                f"{point.goodput_bps / 1e6:.0f}",
                point.rounds_completed,
                point.total_timeouts,
                f"{point.max_timeouts_per_block:.2f}",
                f"{point.queue_max_bytes / 1000:.0f}",
                point.drops,
            ]
        )

    print(f"Incast: {n_senders} servers, 256 KB blocks, 1 Gbps, 256 KB buffer")
    print(
        format_table(
            ["protocol", "goodput Mbps", "rounds", "timeouts", "max TO/blk",
             "max queue KB", "drops"],
            rows,
        )
    )
    print()
    print("TFC sustains goodput with zero drops because new/resumed flows")
    print("acquire a window before bursting and sub-MSS grants are paced by")
    print("the switch delay function (paper sections 4.6 and 5.2).")


if __name__ == "__main__":
    main()
