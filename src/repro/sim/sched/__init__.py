"""Pluggable event-scheduler backends for :class:`repro.sim.engine.Simulator`.

Three interchangeable backends, all bit-identical in pop order (enforced
by ``tests/sim/test_golden_determinism.py`` and the cross-backend
differential fuzz in ``tests/sim/test_sched_backends.py``):

* ``heap``     — the PR-2 tuple heap; O(log n), lowest constant factors,
                 best for small event populations (the default start).
* ``calendar`` — adaptive-width calendar queue; amortised O(1), best for
                 large mixed populations.
* ``wheel``    — hierarchical timer wheel; O(1) schedule, best for heavy
                 armed-then-cancelled timer churn (RTO / delayed-ACK).

``adaptive`` (the default policy) is not a backend class: the simulator
starts on the heap and migrates the live population to the calendar queue
once it crosses a threshold — see ``Simulator`` in :mod:`repro.sim.engine`.

Selection: ``Simulator(scheduler=...)`` takes a name or an instance; the
``REPRO_SCHEDULER`` environment variable sets the default for simulators
constructed without an explicit choice (how the experiment runner and CI
shards select a backend process-wide).
"""

from __future__ import annotations

from typing import Optional

from .base import Scheduler
from .calendar import CalendarScheduler
from .heap import HeapScheduler
from .wheel import TimerWheelScheduler

#: Name -> backend class (``adaptive`` is a Simulator policy, not a class).
SCHEDULER_BACKENDS = {
    "heap": HeapScheduler,
    "calendar": CalendarScheduler,
    "wheel": TimerWheelScheduler,
}

#: Every accepted value for Simulator(scheduler=...) / REPRO_SCHEDULER.
SCHEDULER_NAMES = ("adaptive",) + tuple(sorted(SCHEDULER_BACKENDS))


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a backend by name (``adaptive`` is rejected here)."""
    try:
        backend = SCHEDULER_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler backend {name!r}; "
            f"choose from {', '.join(SCHEDULER_NAMES)}"
        ) from None
    return backend()


def scheduler_env(name: Optional[str]):
    """Deprecated shim: use :func:`repro.config.env` instead.

    Pins ``REPRO_SCHEDULER`` while the block runs (None = no-op), with
    identical validation and restore semantics — it *is* the shared
    context manager, specialised to one knob.  Kept so pre-config
    callers keep working; new code should write
    ``with repro.config.env(scheduler=name):``.
    """
    from ...config import env  # deferred: repro.config imports this module

    return env(scheduler=name)


__all__ = [
    "Scheduler",
    "HeapScheduler",
    "CalendarScheduler",
    "TimerWheelScheduler",
    "SCHEDULER_BACKENDS",
    "SCHEDULER_NAMES",
    "make_scheduler",
    "scheduler_env",
]
