"""Flight recorder: a bounded ring of recent trace records.

Chaos and soak runs fail rarely and late; by the time an invariant fires,
the events that explain it are long gone.  The :class:`FlightRecorder`
keeps the last ``capacity`` records from a set of low-frequency trace
topics (drops, ECN marks, timeouts, delimiter elections, faults) in a
ring buffer, and snapshots the ring automatically the moment the
invariant monitor emits ``fault.invariant_violation`` — so every
violation report comes with the packet-level story leading up to it.

Like the slot recorder, capture is purely reactive: no simulator events,
no RNG, no trace emissions of its own — attaching it cannot change a
run's outcome.  Per-packet topics (``net.packet_enqueue``) are *not* in
the default set: subscribing would move the hottest emission sites from
``bump`` to ``emit`` for marginal forensic value.  Pass ``topics=`` to
opt in where that trade is worth it.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

from ..sim import trace as _trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..net.network import Network

#: Topics recorded by default: everything rare enough to be free.
DEFAULT_TOPICS: Tuple[str, ...] = (
    _trace.PACKET_DROP,
    _trace.PACKET_ECN_MARK,
    _trace.RETRANSMIT_TIMEOUT,
    _trace.FAST_RETRANSMIT,
    _trace.FLOW_COMPLETE,
    _trace.TFC_DELIMITER_ELECTED,
    _trace.TFC_ACK_DELAYED,
    _trace.FAULT_INJECTED,
    _trace.FAULT_CLEARED,
    _trace.INVARIANT_VIOLATION,
    _trace.PFC_PAUSE,
    _trace.PFC_RESUME,
    _trace.PATHOLOGY_DETECTED,
)

#: Topics whose emission snapshots the ring: invariant breaches and
#: detected fabric pathologies both mark "the story so far explains it".
_AUTO_DUMP_TOPICS: Tuple[str, ...] = (
    _trace.INVARIANT_VIOLATION,
    _trace.PATHOLOGY_DETECTED,
)

_MAX_SUMMARY_CHARS = 200

FlightRecord = Dict[str, object]


def _summarise(value: object) -> object:
    """JSON-safe, bounded rendering of one trace payload value."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    text = repr(value)
    if len(text) > _MAX_SUMMARY_CHARS:
        text = text[: _MAX_SUMMARY_CHARS - 3] + "..."
    return text


class FlightRecorder:
    """Bounded ring buffer of recent trace records with violation dumps."""

    def __init__(
        self,
        network: "Network",
        capacity: int = 2048,
        topics: Sequence[str] = DEFAULT_TOPICS,
        dump_dir: Optional[str] = None,
    ):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.network = network
        self.sim = network.sim
        self.tracer = network.tracer
        self.capacity = capacity
        self.topics = tuple(topics)
        self.dump_dir = dump_dir
        self.ring: Deque[FlightRecord] = deque(maxlen=capacity)
        self.records_seen = 0
        self.dumps: List[List[FlightRecord]] = []
        self._handlers: Dict[str, object] = {}
        self._attached = False
        self.attach()

    # ------------------------------------------------------------------
    def attach(self) -> None:
        if self._attached:
            return
        self._attached = True
        for topic in self.topics:
            handler = self._make_handler(topic)
            self._handlers[topic] = handler
            self.tracer.subscribe(topic, handler)

    def detach(self) -> None:
        """Unsubscribe from every topic (ring contents are kept)."""
        if not self._attached:
            return
        self._attached = False
        for topic, handler in self._handlers.items():
            self.tracer.unsubscribe(topic, handler)
        self._handlers.clear()

    def _make_handler(self, topic: str):
        auto_dump = topic in _AUTO_DUMP_TOPICS

        def handler(*args, **kwargs) -> None:
            record: FlightRecord = {"time_ns": self.sim.now, "topic": topic}
            if args:
                record["args"] = [_summarise(a) for a in args]
            for key, value in kwargs.items():
                record[key] = _summarise(value)
            self.ring.append(record)
            self.records_seen += 1
            if auto_dump:
                self._auto_dump()

        return handler

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------
    def snapshot(self) -> List[FlightRecord]:
        """The ring's current contents, oldest first."""
        return list(self.ring)

    def _auto_dump(self) -> None:
        snapshot = self.snapshot()
        self.dumps.append(snapshot)
        if self.dump_dir:
            path = os.path.join(
                self.dump_dir, f"flight_{len(self.dumps) - 1:03d}.jsonl"
            )
            self.write(path, snapshot)

    def write(
        self, path: str, records: Optional[List[FlightRecord]] = None
    ) -> str:
        """Write records (default: the live ring) as JSONL; returns path."""
        if records is None:
            records = self.snapshot()
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True))
                fh.write("\n")
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlightRecorder ring={len(self.ring)}/{self.capacity}"
            f" seen={self.records_seen} dumps={len(self.dumps)}>"
        )
