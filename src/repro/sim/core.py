"""Typed hot-loop kernels, written to compile cleanly under mypyc.

This module is the single source of truth for the helpers the engine and
port layer route through when ``REPRO_COMPILED=on``: plain module-level
functions over concrete built-in containers, no closures, no dynamic
attribute tricks — exactly the subset mypyc compiles to C extensions with
real speedups.  The same file runs unmodified on the interpreter, which
is what keeps the pure-Python fallback from rotting: tier-1 tests
exercise these functions interpreted on every run.

Build story (opt-in, nothing here imports mypy):

* ``pip install .[compiled]`` provides mypyc;
* ``python benchmarks/perf/build_compiled.py`` copies this file to
  ``repro/sim/_core_compiled.py`` and compiles that copy in place;
* :func:`repro.sim.engine.load_core` prefers the compiled twin when the
  knob asks for it and silently falls back to this module otherwise.

``COMPILED`` reports which flavour actually loaded (mypyc rewrites
``__file__`` to the extension module's path).
"""

from __future__ import annotations

from heapq import heappop as _heappop
from typing import List, Tuple

_SECOND = 1_000_000_000

COMPILED: bool = not __file__.endswith((".py", ".pyc"))


def heap_pop_batch(
    heap: List[tuple], free: list, horizon_ns: int, out: list
) -> Tuple[int, int]:
    """Pop every due live event sharing the earliest due time into ``out``.

    Dead entries surfacing at the head are recycled into ``free``.
    Returns ``(popped, freed_dead)`` so the caller can settle the owning
    scheduler's dead-entry counter in one write.
    """
    ndead = 0
    while heap:
        entry = heap[0]
        event = entry[2]
        if event.cancelled:
            _heappop(heap)
            ndead += 1
            free.append(event)
            continue
        time_ns: int = entry[0]
        if time_ns > horizon_ns:
            return 0, ndead
        _heappop(heap)
        out.append(event)
        n = 1
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                _heappop(heap)
                ndead += 1
                free.append(event)
                continue
            if entry[0] != time_ns:
                break
            _heappop(heap)
            out.append(event)
            n += 1
        return n, ndead
    return 0, ndead


def burst_times(
    sizes: List[int], rate_bps: int, start_ns: int
) -> Tuple[List[int], List[int]]:
    """Cumulative serialisation schedule for a back-to-back frame burst.

    For each frame size (in bytes) returns its serialisation start and
    completion time, chaining per-frame ceil-rounded transmission times
    exactly as the serial per-event path does (sum of ceils, never the
    ceil of a sum — the two differ, and golden determinism pins the
    former).
    """
    starts: List[int] = []
    dones: List[int] = []
    t = start_ns
    for size in sizes:
        starts.append(t)
        bits = size * 8
        t += -(-bits * _SECOND // rate_bps)  # ceil division
        dones.append(t)
    return starts, dones
