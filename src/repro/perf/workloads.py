"""Pinned benchmark workloads.

These definitions are the contract between past and future measurements:
the committed ``BENCH_*.json`` baselines were produced by *exactly* these
configurations, so do not change a workload in place — add a new one with
a new name, keep the old, and regenerate the baseline.

Two tiers:

* **Kernel workloads** — dumbbell saturation runs dominated by the event
  loop, queue, and port machinery.  The metric is simulator events per
  wall-clock second; it moves with kernel fast-path changes and very
  little else.
* **Experiment workloads** — one Fig. 13 benchmark cell per protocol at
  reduced duration.  The metric is wall-clock per cell; it tracks what a
  user actually waits for when regenerating figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Tuple

from ..experiments.common import build_topology
from ..net.topology import dumbbell
from ..sim.units import seconds
from ..transport.registry import open_flow


@dataclass(frozen=True)
class KernelWorkload:
    """An n-sender dumbbell saturated for a fixed simulated duration."""

    name: str
    protocol: str
    n_senders: int
    seed: int
    duration_s: float


@dataclass(frozen=True)
class ExperimentWorkload:
    """One Fig. 13 testbed benchmark cell (workload generator + FCT)."""

    name: str
    protocol: str
    duration_s: float
    drain_s: float
    seed: int


KERNEL_WORKLOADS: Tuple[KernelWorkload, ...] = (
    KernelWorkload("dumbbell_tfc_4", "tfc", 4, 1, 0.4),
    KernelWorkload("dumbbell_dctcp_8", "dctcp", 8, 2, 0.2),
    KernelWorkload("dumbbell_tcp_8", "tcp", 8, 3, 0.2),
)

EXPERIMENT_WORKLOADS: Tuple[ExperimentWorkload, ...] = (
    ExperimentWorkload("fig13_testbed_tfc", "tfc", 0.3, 0.3, 0),
    ExperimentWorkload("fig13_testbed_dctcp", "dctcp", 0.3, 0.3, 0),
    ExperimentWorkload("fig13_testbed_tcp", "tcp", 0.3, 0.3, 0),
)


def run_kernel_workload(
    workload: KernelWorkload, duration_scale: float = 1.0
) -> Dict[str, float]:
    """Run one kernel workload; returns events, wall_s, events_per_sec.

    ``duration_scale`` shrinks the simulated window for smoke runs (CI);
    scaled runs are *not* comparable against the committed baselines.
    """
    topo = build_topology(
        dumbbell,
        workload.protocol,
        buffer_bytes=256_000,
        n_senders=workload.n_senders,
        seed=workload.seed,
    )
    receiver = topo.host(workload.n_senders)
    for i in range(workload.n_senders):
        open_flow(topo.host(i), receiver, workload.protocol)
    start = time.perf_counter()
    topo.network.run_for(seconds(workload.duration_s * duration_scale))
    wall = time.perf_counter() - start
    events = topo.sim.events_processed
    return {
        "name": workload.name,
        "protocol": workload.protocol,
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }


def run_experiment_workload(
    workload: ExperimentWorkload, duration_scale: float = 1.0
) -> Dict[str, float]:
    """Run one Fig. 13 cell; returns wall-clock seconds for the cell."""
    from ..experiments.fig13_benchmark import run_benchmark

    start = time.perf_counter()
    result = run_benchmark(
        workload.protocol,
        scale="testbed",
        duration_s=workload.duration_s * duration_scale,
        drain_s=workload.drain_s * duration_scale,
        seed=workload.seed,
    )
    wall = time.perf_counter() - start
    return {
        "name": workload.name,
        "protocol": workload.protocol,
        "wall_s": wall,
        "flows_launched": result.flows_launched,
        "completed": result.collector.completed(),
    }
