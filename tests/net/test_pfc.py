"""Lossless fabric (PFC) unit tests: thresholds, headroom, propagation.

The contract under test, in order of importance:

1. **Losslessness** — with tight XOFF/XON watermarks an incast that
   would overflow a drop-tail buffer instead pauses upstream and drops
   nothing, and per-ingress occupancy never exceeds XOFF + headroom.
2. **Propagation** — pause frames reach host NICs (the transmitters
   actually feeding the congestion), and every pause is eventually
   matched by a resume once the ingress drains to XON.
3. **Determinism** — two same-seed runs are bit-identical, because the
   detectors and golden shards rely on it.
4. **Composability** — ``enable_pfc`` wraps existing agents (it never
   displaces TFC), installs exactly once, and TFC under a lossless
   fabric never trips a pause at all.
"""

import pytest

from repro.experiments.common import build_topology
from repro.net.packet import MTU, Packet
from repro.net.pfc import (
    PfcParams,
    PfcPortAgent,
    default_params_for,
    enable_pfc,
    peer_tx_port,
)
from repro.net.topology import dumbbell
from repro.sim.units import milliseconds
from repro.transport.registry import open_flow

#: Watermarks low enough that a 4-way incast pauses within a millisecond.
TIGHT = PfcParams(xoff_bytes=32_000, xon_bytes=8_000, headroom_bytes=32_000)


def _incast(protocol, n_senders=4, duration_ms=20, params=TIGHT, seed=1):
    topo = build_topology(
        dumbbell,
        protocol,
        buffer_bytes=256_000,
        n_senders=n_senders,
        seed=seed,
        pfc_params=params,
    )
    senders = [
        open_flow(
            topo.host(i), topo.host(n_senders), protocol, awnd_bytes=200_000
        )
        for i in range(n_senders)
    ]
    topo.network.run_for(milliseconds(duration_ms))
    return topo, senders


# ----------------------------------------------------------------------
# Parameters
# ----------------------------------------------------------------------
def test_params_validation():
    PfcParams()  # defaults are self-consistent
    with pytest.raises(ValueError, match="xoff"):
        PfcParams(xoff_bytes=0)
    with pytest.raises(ValueError, match="xon"):
        PfcParams(xoff_bytes=10_000, xon_bytes=20_000)
    with pytest.raises(ValueError, match="xon"):
        PfcParams(xon_bytes=0)
    with pytest.raises(ValueError, match="headroom"):
        PfcParams(headroom_bytes=MTU - 1)
    with pytest.raises(ValueError, match="lossless class"):
        PfcParams(lossless_classes=())


def test_default_params_scale_with_buffer():
    params = default_params_for(256_000)
    assert params.xoff_bytes == 128_000
    assert params.headroom_bytes == 128_000
    assert 0 < params.xon_bytes <= params.xoff_bytes
    # Degenerate buffers still yield a valid (MTU-floored) config.
    tiny = default_params_for(1_000)
    assert tiny.headroom_bytes >= MTU


# ----------------------------------------------------------------------
# The lossless guarantee
# ----------------------------------------------------------------------
def test_incast_pauses_instead_of_dropping():
    """Tight watermarks under a TCP incast: pauses fire, nothing drops,
    and occupancy stays inside XOFF + headroom everywhere."""
    topo, senders = _incast("pfc")
    net = topo.network
    fab = net.lossless
    assert fab.pause_frames > 0
    assert net.total_drops() == 0
    assert fab.headroom_overflows == 0
    assert fab.max_ingress_bytes() <= TIGHT.xoff_bytes + TIGHT.headroom_bytes
    # The incast made progress while pausing (not a livelock).
    assert all(s.stats.bytes_acked > 0 for s in senders)


def test_every_pause_matched_by_resume_on_drain():
    """Once finite flows complete, ingresses drain to XON, every paused
    port resumes, and the accounting returns to zero: the fabric ends
    idle, not wedged."""
    topo = build_topology(
        dumbbell, "pfc", buffer_bytes=256_000, n_senders=4, seed=1,
        pfc_params=TIGHT,
    )
    net = topo.network
    senders = [
        open_flow(
            topo.host(i), topo.host(4), "pfc",
            size_bytes=300_000, awnd_bytes=200_000,
        )
        for i in range(4)
    ]
    net.run_for(milliseconds(100))
    fab = net.lossless
    assert all(s.stats.bytes_acked >= 300_000 for s in senders)
    assert fab.pause_frames > 0
    assert not fab.any_paused()
    assert all(i.bytes == 0 for i in fab.ingresses.values())
    assert all(not i.paused_classes for i in fab.ingresses.values())
    # Pause intervals all closed (every XOFF has its XON).
    for intervals in fab.pause_intervals.values():
        assert all(end is not None for _, end in intervals)


def test_pause_reaches_host_nics():
    """The dumbbell's congested ingresses face the sending hosts, so
    pause frames must land on (and stop) host NIC ports.  Host pauses
    surface through the trace stream (``port=`` names the throttled
    transmitter), which is also what the storm detector consumes."""
    from repro.sim.trace import PFC_PAUSE

    topo = build_topology(
        dumbbell, "pfc", buffer_bytes=256_000, n_senders=4, seed=1,
        pfc_params=TIGHT,
    )
    net = topo.network
    paused_targets = []
    net.tracer.subscribe(
        PFC_PAUSE, lambda port=None, **_kw: paused_targets.append(port)
    )
    hosts = set(topo.hosts)
    host_paused_seen = []

    def probe():  # 50 µs sampling of actual NIC transmitter state
        if any(host.ports[0].paused for host in hosts):
            host_paused_seen.append(net.sim.now)
        net.sim.schedule(50_000, probe)

    net.sim.schedule(50_000, probe)
    for i in range(4):
        open_flow(topo.host(i), topo.host(4), "pfc", awnd_bytes=200_000)
    net.run_for(milliseconds(20))
    # Pause frames targeted host NICs...
    assert any(port.node in hosts for port in paused_targets if port)
    # ...and actually stopped at least one NIC transmitter.
    assert host_paused_seen


def test_best_effort_priority_is_never_charged():
    """Packets outside the lossless class set bypass ingress accounting
    entirely (they can still drop; they can never cause a pause)."""

    class BestEffort(Packet):
        __slots__ = ()
        priority = 7  # not in TIGHT.lossless_classes

    topo, _ = _incast("pfc", duration_ms=1)
    fab = topo.network.lossless
    ingress = next(iter(fab.ingresses.values()))
    before = ingress.bytes
    packet = BestEffort(src=0, dst=1, sport=1, dport=1, payload=1000)
    ingress.charge(packet)
    assert ingress.bytes == before
    assert packet.pfc_ingress is None


# ----------------------------------------------------------------------
# Pause/resume port semantics
# ----------------------------------------------------------------------
def test_xoff_pauses_port_and_xon_resumes():
    """Direct agent-level check of the pause state machine, including
    the any-class-pauses-the-port collapse the module documents."""
    topo = build_topology(
        dumbbell, "pfc", buffer_bytes=256_000, n_senders=2, seed=1,
        pfc_params=TIGHT,
    )
    fab = topo.network.lossless
    port = topo.switches[0].ports[0]
    agent = port.agent
    assert isinstance(agent, PfcPortAgent)

    agent._apply("xoff", 0)
    assert port.paused
    assert port in fab.paused_ports
    # A second class pausing changes nothing; resuming only one of the
    # two keeps the port stopped.
    agent._apply("xoff", 1)
    agent._apply("xon", 0)
    assert port.paused
    agent._apply("xon", 1)
    assert not port.paused
    assert port not in fab.paused_ports
    assert fab.pause_events == 1
    assert fab.resume_events == 1


def test_reset_clears_pause_state():
    """The fault hook (switch reboot) forgets pause state and restarts
    the transmitter — a rebooted switch must not stay wedged."""
    topo = build_topology(
        dumbbell, "pfc", buffer_bytes=256_000, n_senders=2, seed=1,
        pfc_params=TIGHT,
    )
    fab = topo.network.lossless
    port = topo.switches[0].ports[0]
    port.agent._apply("xoff", 0)
    assert port.paused
    port.agent.reset()
    assert not port.paused
    assert port not in fab.paused_ports


def test_peer_tx_port_finds_reverse_transmitter():
    topo = build_topology(
        dumbbell, "pfc", buffer_bytes=256_000, n_senders=2, seed=1,
        pfc_params=TIGHT,
    )
    for switch in topo.switches:
        for port in switch.ports:
            peer = peer_tx_port(port)
            assert peer is not None
            assert peer.node is port.peer_node
            assert peer.link.dst_node is port.node
            assert peer.link.dst_port_index == port.index


# ----------------------------------------------------------------------
# Install semantics
# ----------------------------------------------------------------------
def test_enable_pfc_is_idempotent():
    topo = build_topology(
        dumbbell, "pfc", buffer_bytes=256_000, n_senders=2, seed=1,
        pfc_params=TIGHT,
    )
    net = topo.network
    fab = net.lossless
    assert fab is not None
    assert enable_pfc(net) is fab
    assert enable_pfc(net, PfcParams()) is fab  # params of 2nd call ignored
    assert fab.params is TIGHT
    # Exactly one PfcPortAgent layer per switch port (no stacking).
    for switch in topo.switches:
        for port in switch.ports:
            assert isinstance(port.agent, PfcPortAgent)
            assert not isinstance(port.agent.inner, PfcPortAgent)


def test_tfc_under_lossless_fabric_never_pauses():
    """TFC's token admission keeps ingress occupancy far below even the
    tight XOFF watermark: the fabric stays silent end to end."""
    topo, senders = _incast("tfc")
    fab = topo.network.lossless
    assert fab.pause_frames == 0
    assert fab.resume_frames == 0
    assert fab.max_ingress_bytes() < TIGHT.xoff_bytes
    assert topo.network.total_drops() == 0
    assert all(s.stats.bytes_acked > 0 for s in senders)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_pfc_runs_are_bit_identical():
    """Same seed, same results — down to per-ingress peak occupancy and
    the exact pause/resume frame counts."""

    def run():
        topo, senders = _incast("pfc")
        net = topo.network
        fab = net.lossless
        return (
            net.sim.events_processed,
            fab.pause_frames,
            fab.resume_frames,
            [s.stats.bytes_acked for s in senders],
            sorted(
                (ingress.name, ingress.max_bytes_seen)
                for ingress in fab.ingresses.values()
            ),
        )

    assert run() == run()


# ----------------------------------------------------------------------
# Cross-shard PFC: pause frames crossing a partition boundary
# ----------------------------------------------------------------------
def _build_cross_pod_incast(ctx, **_kwargs):
    """Cross-pod incast: every host of pods 1-3 floods H1 (pod 0).

    Congestion builds at the victim's edge and propagates pauses up
    through aggregation into the core — i.e. across the pod/core shard
    boundaries — which the ring workload never does.
    """
    from repro.net.topology import fat_tree
    from repro.sim.shard import open_shard_flow

    topo = build_topology(
        fat_tree, "pfc", buffer_bytes=16_000, k=4, seed=ctx.root_seed
    )
    victim = topo.hosts[0]
    flows = []
    for i, host in enumerate(topo.hosts[4:]):
        sender, receiver = open_shard_flow(
            ctx,
            host,
            victim,
            "pfc",
            start_ns=1_000 * i,
            awnd_bytes=200_000,
        )
        flows.append((f"{host.name}->{victim.name}", sender, receiver))
    topo.shard_flows = flows
    return topo


def _collect_cross_pod_incast(topology, ctx):
    """Flow counters, per-ingress PFC state and drops for owned nodes."""
    out = {}
    for label, sender, receiver in topology.shard_flows:
        if sender is not None:
            out[f"{label}:tx"] = (
                sender.stats.bytes_acked,
                sender.stats.packets_sent,
                sender.stats.retransmissions,
            )
        if receiver is not None:
            out[f"{label}:rx"] = (receiver.bytes_received, receiver.rcv_nxt)
    fabric = topology.network.lossless
    for ingress in fabric.ingresses.values():
        if ctx.owns(ingress.node.name):
            out[f"{ingress.name}:pfc"] = (
                ingress.pause_frames_sent,
                ingress.resume_frames_sent,
                ingress.max_bytes_seen,
            )
    for node in topology.network.nodes:
        if ctx.owns(node.name):
            out[f"{node.name}:drops"] = sum(
                port.queue.drops for port in node.ports
            )
    return out


def _cross_pod_spec(end_ns=2_000_000):
    from repro.sim.shard import ShardSpec, plan_fat_tree

    return ShardSpec(
        plan=plan_fat_tree(k=4, pod_shards=2),
        build=_build_cross_pod_incast,
        collect=_collect_cross_pod_incast,
        end_ns=end_ns,
    )


def test_pause_frames_cross_shard_boundaries():
    """Pause frames captured at a boundary are exchanged like any frame,
    bypass data queues on both sides (capture at TX completion, direct
    ``receive`` injection), and leave the run bit-identical to serial."""
    from repro.net.pfc import PauseFrame
    from repro.sim.shard import run_serial_reference
    from repro.sim.shard.runner import _InlineHandle, _coordinate

    spec = _cross_pod_spec()

    crossed = []

    class _Spy(_InlineHandle):
        def finish_epoch(self):
            out, peek = super().finish_epoch()
            crossed.extend(m for m in out if isinstance(m[4], PauseFrame))
            return out, peek

    handles = [
        _Spy(spec, sid) for sid in range(spec.plan.total_shards)
    ]
    _coordinate(handles, spec.plan, spec.end_ns)
    per_shard = [handle.collect()[0] for handle in handles]

    # The incast genuinely pushed pauses across partition boundaries.
    assert len(crossed) > 0
    for arrival_ns, dst_shard, _node_id, _port, frame in crossed:
        assert 0 <= dst_shard < spec.plan.total_shards
        assert arrival_ns <= spec.end_ns + spec.plan.lookahead_ns
        # The capture proxy strips shard-local ingress references before
        # a frame crosses the pipe.
        assert frame.pfc_ingress is None

    # Bit-identity against the serial reference — the strongest possible
    # "the pause still worked" statement: any queueing delay added to a
    # crossing pause would shift XOFF timing and change these counters.
    merged = {}
    for payload in per_shard:
        merged.update(payload)
    serial = run_serial_reference(spec)
    assert merged == serial.metrics
    # And the fabric actually paused: at least one owned ingress sent XOFF.
    assert any(
        value[0] > 0 for key, value in merged.items() if key.endswith(":pfc")
    )


def test_cross_shard_pfc_via_public_runner():
    """The same workload through run_sharded (the public entry point)."""
    from repro.sim.shard import run_serial_reference, run_sharded

    spec = _cross_pod_spec(end_ns=1_000_000)
    sharded = run_sharded(spec, mode="inline")
    assert sharded.merged() == run_serial_reference(spec).metrics
    assert sharded.messages > 0
