"""Scenario registry: names, files, globs, programmatic registration."""

import pytest

from repro.scenario import (
    ScenarioError,
    get_scenario,
    glob_scenarios,
    list_scenarios,
    load_scenario_file,
    register_scenario,
    resolve,
    scenario_from_dict,
    scenarios_dir,
    unregister_scenario,
)

COMMITTED = (
    "chaos-linkflap",
    "incast-burst",
    "ml-allreduce",
    "ml-tree-allreduce",
    "multi-tenant-mix",
    "storage-chain",
    "storage-fanout",
)


def test_committed_farm_is_present_and_loadable():
    names = list_scenarios()
    for name in COMMITTED:
        assert name in names
        scenario = get_scenario(name)
        assert scenario.name == name
        assert scenario.description


def test_unknown_name_lists_alternatives():
    with pytest.raises(ScenarioError, match="unknown scenario"):
        get_scenario("no-such-scenario")


def test_resolve_accepts_explicit_paths():
    path = scenarios_dir() / "ml-allreduce.yaml"
    assert resolve(str(path)).name == "ml-allreduce"
    assert resolve("ml-allreduce").name == "ml-allreduce"


def test_glob_matches_by_stem():
    names = [s.name for s in glob_scenarios("ml-*")]
    assert names == ["ml-allreduce", "ml-tree-allreduce"]
    with pytest.raises(ScenarioError, match="no scenarios match"):
        glob_scenarios("zz-*")


def test_name_must_match_file_stem(tmp_path):
    path = tmp_path / "alpha.yaml"
    path.write_text(
        "name: beta\nduration_ms: 1.0\n"
        "topology: {kind: dumbbell, n_senders: 2}\n"
        "tenants:\n"
        "  - {name: a, transport: tcp, workload: {kind: bulk}}\n"
    )
    with pytest.raises(ScenarioError, match="must match the file stem"):
        load_scenario_file(path)


def test_file_errors_carry_the_file_name(tmp_path):
    path = tmp_path / "bad.yaml"
    path.write_text(
        "name: bad\nduration_ms: 1.0\n"
        "topology: {kind: dumbbell, n_senders: 2}\n"
        "tenants:\n"
        "  - {name: a, transport: tcp, workload: {kind: warp}}\n"
    )
    with pytest.raises(ScenarioError, match=r"bad\.yaml\.tenants\[0\]"):
        load_scenario_file(path)


def test_env_override_redirects_directory(tmp_path, monkeypatch):
    (tmp_path / "only.yaml").write_text(
        "name: only\nduration_ms: 1.0\n"
        "topology: {kind: dumbbell, n_senders: 2}\n"
        "tenants:\n"
        "  - {name: a, transport: tcp, workload: {kind: bulk}}\n"
    )
    monkeypatch.setenv("REPRO_SCENARIOS", str(tmp_path))
    assert list_scenarios() == ["only"]
    assert get_scenario("only").tenants[0].transport == "tcp"


def test_programmatic_registration_shadows_and_guards():
    scenario = scenario_from_dict(
        {
            "name": "prog-test",
            "duration_ms": 1.0,
            "topology": {"kind": "dumbbell", "n_senders": 2},
            "tenants": [
                {"name": "a", "transport": "tcp", "workload": {"kind": "bulk"}}
            ],
        }
    )
    try:
        register_scenario(scenario)
        assert get_scenario("prog-test") is scenario
        assert "prog-test" in list_scenarios()
        with pytest.raises(ScenarioError, match="already registered"):
            register_scenario(scenario)
        register_scenario(scenario, replace=True)
    finally:
        unregister_scenario("prog-test")
    assert "prog-test" not in list_scenarios()
