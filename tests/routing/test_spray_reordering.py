"""Per-packet spraying vs TFC's round accounting.

Spray is the adversarial policy: consecutive packets of one flow take
different core paths, so segments overtake each other and the receiver
must reassemble.  TFC's RM round accounting counts tokens per *link*,
not per path, so the claim under test is that out-of-order delivery
degrades goodput but never wedges a round, leaks a hole in reassembly,
or overflows a queue.
"""

from repro.experiments.common import build_topology
from repro.net.topology import fat_tree
from repro.sim.units import seconds
from repro.transport.registry import open_flow


def test_tfc_round_accounting_survives_spray_reordering():
    topo = build_topology(
        fat_tree, "tfc", buffer_bytes=256_000, k=4, seed=2, routing="spray"
    )
    senders = [
        open_flow(topo.hosts[i], topo.hosts[8 + i], "tfc") for i in range(4)
    ]
    topo.network.run_for(seconds(0.05))

    receivers = [s.receiver for s in senders]
    # The stress is real: segments did arrive ahead of rcv_nxt.
    assert sum(r.reordered_segments for r in receivers) > 0
    for r in receivers:
        # Every flow makes solid progress (tokens keep flowing even
        # though each packet saw a different path)...
        assert r.bytes_received > 1_000_000
        # ...and reassembly is airtight: all delivered bytes are
        # contiguous and no out-of-order fragment is stranded.
        assert r.rcv_nxt == r.bytes_received
        assert r._out_of_order == []
    # Per-link token control holds: no queue ever overflowed, and the
    # RM/window machinery kept electing and updating throughout.
    net = topo.network
    assert net.total_drops() == 0
    assert net.tracer.counters["tfc.window_update"] > 100
    assert net.tracer.counters["tfc.delimiter_elected"] >= 1
