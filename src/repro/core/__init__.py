"""TFC: the paper's contribution — endpoints, switch agents, parameters."""

from .delay import DelayArbiter
from .params import DEFAULT_PARAMS, TfcParams
from .sender import TfcReceiver, TfcSender
from .switch_agent import TfcPortAgent, enable_tfc

__all__ = [
    "DelayArbiter",
    "DEFAULT_PARAMS",
    "TfcParams",
    "TfcReceiver",
    "TfcSender",
    "TfcPortAgent",
    "enable_tfc",
]
