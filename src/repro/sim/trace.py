"""Lightweight publish/subscribe tracing.

Components emit named trace records (packet drops, retransmission timeouts,
window updates, delimiter re-elections...) without knowing who is listening.
Experiments and tests subscribe to the records they care about.

Hot-path protocol: emission sites that fire per packet first ask
:meth:`Tracer.active` whether the topic has any subscriber.  When it does
not — the overwhelmingly common case — they call :meth:`Tracer.bump`, which
only increments the topic counter and never marshals keyword arguments.
The full :meth:`Tracer.emit` (counter bump + handler fan-out) is reserved
for the subscribed case and for cold paths where the marshalling cost is
irrelevant.  Both paths keep the per-topic counters identical, so tests
asserting on ``count`` see the same numbers either way.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, DefaultDict, List

TraceHandler = Callable[..., None]


class Tracer:
    """A topic -> handlers fan-out with per-topic counters."""

    def __init__(self) -> None:
        self._handlers: DefaultDict[str, List[TraceHandler]] = defaultdict(list)
        self.counters: DefaultDict[str, int] = defaultdict(int)
        # Topics with at least one handler; hot paths membership-test this
        # set instead of touching the handler table.
        self._active: set = set()

    def subscribe(self, topic: str, handler: TraceHandler) -> None:
        """Register ``handler`` to be called for every ``topic`` emission."""
        self._handlers[topic].append(handler)
        self._active.add(topic)

    def unsubscribe(self, topic: str, handler: TraceHandler) -> None:
        """Remove a previously registered handler.

        Tolerant of unknown topics and already-removed handlers: teardown
        paths (monitors detaching after a partial attach, recorders torn
        down twice) must never raise mid-cleanup.
        """
        handlers = self._handlers.get(topic)
        if handlers is None:
            return
        try:
            handlers.remove(handler)
        except ValueError:
            return
        if not handlers:
            self._active.discard(topic)

    def active(self, topic: str) -> bool:
        """Whether ``topic`` currently has any subscriber."""
        return topic in self._active

    def bump(self, topic: str) -> None:
        """Count an emission without dispatching (no-subscriber fast path)."""
        self.counters[topic] += 1

    def emit(self, topic: str, *args: Any, **kwargs: Any) -> None:
        """Publish a record: bump the topic counter and notify handlers."""
        self.counters[topic] += 1
        if topic in self._active:
            for handler in self._handlers[topic]:
                handler(*args, **kwargs)

    def count(self, topic: str) -> int:
        """Number of emissions seen on ``topic`` so far."""
        return self.counters.get(topic, 0)

    def reset(self) -> None:
        """Clear all counters (handlers stay subscribed)."""
        self.counters.clear()


# Well-known topics, collected here so subscribers don't typo them.
PACKET_DROP = "net.packet_drop"
PACKET_ENQUEUE = "net.packet_enqueue"
PACKET_ECN_MARK = "net.ecn_mark"
RETRANSMIT_TIMEOUT = "transport.rto"
FAST_RETRANSMIT = "transport.fast_retransmit"
FLOW_COMPLETE = "transport.flow_complete"
TFC_WINDOW_UPDATE = "tfc.window_update"
TFC_DELIMITER_ELECTED = "tfc.delimiter_elected"
TFC_ACK_DELAYED = "tfc.ack_delayed"
FAULT_INJECTED = "fault.injected"
FAULT_CLEARED = "fault.cleared"
INVARIANT_VIOLATION = "fault.invariant_violation"
PFC_PAUSE = "pfc.pause"
PFC_RESUME = "pfc.resume"
BFC_PAUSE = "bfc.pause"
BFC_RESUME = "bfc.resume"
PATHOLOGY_DETECTED = "fault.pathology"
