"""ECMP collisions on a fat tree — goodput fairness and queue asymmetry.

The scenario every multi-path fabric paper opens with: long cross-pod
flows on a k=4 fat tree, where hash-based ECMP inevitably lands several
flows on the same core uplink (8 flows into 4 paths) while other uplinks
idle.  The interesting question for this repository is what happens *at
the collision point*: per-link token accounting (TFC) should keep the
shared uplink's queue near zero and split it fairly among the colliding
flows, while end-to-end schemes (DCTCP, TCP) show collision-induced
queue build-up and goodput asymmetry.

Measured per run:

* per-flow goodput and the Jain fairness index across flows;
* uplink load spread — max/mean bytes carried by the fabric's upward
  ports (edge-to-agg and agg-to-core; 1.0 = perfect spread,
  ``n_uplinks`` = total collapse onto one uplink);
* the deepest queue ever seen on any switch port in the fabric, and
  total drops — the congestion signature of a collision (with two
  senders per edge switch the hot spot is usually an edge-to-agg
  uplink, not the core).

``routing`` sweeps the policies: ``single`` is the degenerate
all-on-one-path baseline, ``ecmp`` the collision case under study,
``flowlet``/``spray`` the progressively finer-grained balancers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..net.topology import Topology, fat_tree
from ..sim.units import seconds
from ..transport.registry import open_flow
from .common import ExperimentResult, build_topology


@dataclass
class CollisionResult:
    """Fairness and congestion summary of one collision run."""

    protocol: str
    routing: str
    flow_goodputs_bps: List[float]
    uplink_bytes: List[int]
    max_fabric_queue_bytes: int
    drops: int

    @property
    def jain_fairness(self) -> float:
        """Jain's index over per-flow goodputs (1.0 = perfectly fair)."""
        values = self.flow_goodputs_bps
        total = sum(values)
        squares = sum(v * v for v in values)
        if squares <= 0:
            return 0.0
        return (total * total) / (len(values) * squares)

    @property
    def uplink_spread(self) -> float:
        """Max/mean load across uplinks (1.0 = perfectly spread)."""
        loaded = self.uplink_bytes
        mean = sum(loaded) / len(loaded) if loaded else 0.0
        if mean <= 0:
            return 0.0
        return max(loaded) / mean


def _uplink_ports(topo: Topology):
    """Upward fabric ports: edge-to-agg and agg-to-core (the candidate
    collision points for cross-pod traffic)."""
    upward = {"E": "A", "A": "C"}
    ports = []
    for switch in topo.switches:
        above = upward.get(switch.name[0])
        if above is None:
            continue
        for port in switch.ports:
            if port.peer_node.name.startswith(above):
                ports.append(port)
    return ports


def run_collision(
    protocol: str = "tfc",
    routing: str = "ecmp",
    k: int = 4,
    n_flows: int = 8,
    duration_s: float = 0.1,
    buffer_bytes: int = 256_000,
    seed: int = 0,
) -> CollisionResult:
    """``n_flows`` long cross-pod flows on a k-ary fat tree.

    Senders are the first ``n_flows`` hosts (pods 0 upward), receivers
    the hosts half the fabric away, so every flow crosses the core and
    competes for the ``(k/2)^2`` equal-cost paths.  ``n_flows`` above
    the path count guarantees collisions under any per-flow policy.
    """
    topo = build_topology(
        fat_tree,
        protocol,
        buffer_bytes=buffer_bytes,
        k=k,
        seed=seed,
        routing=routing,
    )
    n_hosts = len(topo.hosts)
    if n_flows > n_hosts // 2:
        raise ValueError(
            f"at most {n_hosts // 2} cross-fabric flows on a k={k} fat tree"
        )
    senders = [
        open_flow(
            topo.hosts[i], topo.hosts[n_hosts // 2 + i], protocol
        )
        for i in range(n_flows)
    ]
    topo.network.run_for(seconds(duration_s))
    goodputs = [
        s.receiver.bytes_received * 8.0 / duration_s for s in senders
    ]
    uplinks = _uplink_ports(topo)
    return CollisionResult(
        protocol=protocol,
        routing=routing,
        flow_goodputs_bps=goodputs,
        uplink_bytes=[port.tx_bytes for port in uplinks],
        max_fabric_queue_bytes=max(
            port.queue.max_bytes_seen
            for switch in topo.switches
            for port in switch.ports
        ),
        drops=topo.network.total_drops(),
    )


def run_collision_cell(
    protocol: str = "tfc",
    routing: str = "ecmp",
    k: int = 4,
    n_flows: int = 8,
    duration_s: float = 0.1,
    seed: int = 0,
) -> ExperimentResult:
    """Picklable cell adapter for the parallel runner."""
    res = run_collision(
        protocol=protocol,
        routing=routing,
        k=k,
        n_flows=n_flows,
        duration_s=duration_s,
        seed=seed,
    )
    goodputs = res.flow_goodputs_bps
    scalars = {
        "agg_goodput_gbps": sum(goodputs) / 1e9,
        "min_flow_gbps": min(goodputs) / 1e9,
        "max_flow_gbps": max(goodputs) / 1e9,
        "jain_fairness": res.jain_fairness,
        "uplink_spread": res.uplink_spread,
        "max_fabric_queue_bytes": float(res.max_fabric_queue_bytes),
        "drops": float(res.drops),
    }
    return ExperimentResult(
        name=f"ecmp:{routing}:{protocol}:seed{seed}",
        protocol=protocol,
        scalars=scalars,
        series={
            "flow_goodputs_bps": goodputs,
            "uplink_bytes": res.uplink_bytes,
        },
    )


def run_sweep(
    protocols: Sequence[str] = ("tfc", "dctcp", "tcp"),
    routings: Sequence[str] = ("single", "ecmp", "flowlet", "spray"),
    **kwargs,
) -> Dict[str, CollisionResult]:
    """The full protocol x policy grid (keys ``<protocol>/<routing>``)."""
    return {
        f"{protocol}/{routing}": run_collision(
            protocol=protocol, routing=routing, **kwargs
        )
        for protocol in protocols
        for routing in routings
    }
