"""Network container: nodes, cables, and static shortest-path routing.

:class:`Network` is the object experiments hold: it owns the simulator,
tracer, and RNG, provides builders for hosts/switches/cables, and computes
forwarding tables once the topology is wired.  Cables are full duplex — one
call creates both unidirectional links with their own ports and queues, so
the two directions never share a queue (as on real hardware).

Routing is equal-cost multi-path aware: :meth:`Network.build_routes` fills
both the classic single next hop (``forwarding_table``) and the full
equal-cost set (``multipath_table``) at every node, then installs the
network's :class:`~repro.routing.RoutingPolicy` (``single`` / ``ecmp`` /
``flowlet`` / ``spray``) which picks among the candidates per packet.
:meth:`Network.rebuild_routes` recomputes both tables around links that
are administratively down — the fault engine's reroute hook.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

from ..routing import RoutingPolicy, resolve_routing
from ..sim.engine import Simulator
from ..sim.rng import SeedSequence
from ..sim.trace import Tracer
from .host import Host
from .node import Node, Switch
from .port import Link, Port
from .queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..config import SimConfig

QueueFactory = Callable[[int], DropTailQueue]


def _default_queue_factory(capacity_bytes: int) -> QueueFactory:
    def make(rate_bps: int) -> DropTailQueue:  # noqa: ARG001 - uniform signature
        return DropTailQueue(capacity_bytes)

    return make


class Network:
    """Topology plus the simulation services every component needs."""

    def __init__(
        self,
        seed: Optional[int] = None,
        default_buffer_bytes: int = 256_000,
        host_buffer_bytes: int = 4_000_000,
        host_processing_delay_ns: int = 2_000,
        host_processing_jitter_ns: int = 4_000,
        routing: Optional[Union[str, RoutingPolicy]] = None,
        config: Optional["SimConfig"] = None,
    ):
        # ``config`` (a repro.config.SimConfig) supplies seed, routing,
        # scheduler and telemetry defaults; explicit arguments win.
        if config is not None:
            if seed is None:
                seed = config.seed
            if routing is None:
                routing = config.routing
        self.sim = Simulator(config=config)
        # Port TX burst drain (DESIGN.md §6h): resolved once here, wired
        # onto every port cable() creates.
        batch = config.batch if config is not None else None
        if batch is None:
            from ..config.envvars import batch_mode

            batch = batch_mode()
        self.burst_enabled = batch != "off"
        self.tracer = Tracer()
        self.seeds = SeedSequence(seed if seed is not None else 0)
        # Policy name, instance, or None (= $REPRO_ROUTING, then "single").
        self.routing = resolve_routing(routing)
        self.route_rebuilds = 0
        # Telemetry session handle (repro.obs.Telemetry) or None; an
        # explicit config installs one here, env-driven installs land via
        # repro.obs.maybe_install at the topology-build chokepoints.
        self.telemetry = None
        # Lossless fabric handle (repro.net.pfc.LosslessFabric) or None;
        # repro.net.pfc.enable_pfc installs one here.
        self.lossless = None
        self.default_buffer_bytes = default_buffer_bytes
        self.host_buffer_bytes = host_buffer_bytes
        self.host_processing_delay_ns = host_processing_delay_ns
        self.host_processing_jitter_ns = host_processing_jitter_ns
        self.nodes: List[Node] = []
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        self._adjacency: Dict[int, List[Tuple[int, int]]] = {}
        if config is not None and config.telemetry and config.telemetry != "off":
            from ..obs import install as _install_telemetry

            _install_telemetry(
                self, config.telemetry, dump_dir=config.telemetry_dir
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_host(self, name: str) -> Host:
        """Create a host (its NIC port appears when it is cabled)."""
        host = Host(
            self.sim,
            len(self.nodes),
            name,
            self.tracer,
            self.seeds,
            processing_delay_ns=self.host_processing_delay_ns,
            processing_jitter_ns=self.host_processing_jitter_ns,
        )
        self.nodes.append(host)
        self.hosts.append(host)
        self._adjacency[host.node_id] = []
        return host

    def add_switch(self, name: str) -> Switch:
        """Create a switch."""
        switch = Switch(self.sim, len(self.nodes), name, self.tracer)
        self.nodes.append(switch)
        self.switches.append(switch)
        self._adjacency[switch.node_id] = []
        return switch

    def cable(
        self,
        a: Node,
        b: Node,
        rate_bps: int,
        delay_ns: int,
        queue_factory: Optional[QueueFactory] = None,
    ) -> Tuple[Port, Port]:
        """Connect ``a`` and ``b`` full duplex; returns (port on a, port on b)."""
        make_queue = queue_factory or _default_queue_factory(
            self.default_buffer_bytes
        )

        def queue_for(node: Node) -> DropTailQueue:
            # Host NICs get deep software queues (the OS, not a switch ASIC)
            # so switch-buffer experiments aren't polluted by sender drops.
            if isinstance(node, Host):
                return DropTailQueue(self.host_buffer_bytes)
            return make_queue(rate_bps)

        port_a_index = len(a.ports)
        port_b_index = len(b.ports)
        link_ab = Link(self.sim, rate_bps, delay_ns, b, port_b_index)
        link_ba = Link(self.sim, rate_bps, delay_ns, a, port_a_index)
        port_a = Port(self.sim, a, port_a_index, link_ab, queue_for(a), self.tracer)
        port_b = Port(self.sim, b, port_b_index, link_ba, queue_for(b), self.tracer)
        if self.burst_enabled:
            # The burst chain dequeues members directly (deque.popleft) so
            # it is only safe on queues with stock dequeue semantics; a
            # subclass overriding dequeue() keeps the serial path.
            for port in (port_a, port_b):
                port.burst_enabled = (
                    type(port.queue).dequeue is DropTailQueue.dequeue
                )
        a.add_port(port_a)
        b.add_port(port_b)
        self._adjacency[a.node_id].append((b.node_id, port_a_index))
        self._adjacency[b.node_id].append((a.node_id, port_b_index))
        return port_a, port_b

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def build_routes(self) -> None:
        """Populate every node's forwarding tables with BFS shortest paths.

        ``forwarding_table`` gets one elected next hop per destination
        (ties broken by neighbour insertion order, deterministic because
        topology builders wire cables in a fixed order — bit-identical to
        the pre-multipath behaviour).  ``multipath_table`` gets the full
        equal-cost set, elected port first and the rest in ascending port
        order.  Finally the routing policy is installed on the switches.
        """
        for destination in self.nodes:
            self._route_towards(destination.node_id)
        self.routing.install(self)

    def rebuild_routes(self) -> None:
        """Recompute every route honouring links that are currently down.

        The fault engine's reroute hook: after a ``link_down`` (or its
        restore), both tables are rebuilt from scratch around the dead
        links and the routing policy drops any per-flow path picks that
        may now point at them.  Destinations left unreachable simply
        lose their entries — forwarding to them raises, like a real
        blackhole, until a later rebuild restores connectivity.
        """
        for node in self.nodes:
            node.forwarding_table.clear()
            node.multipath_table.clear()
        for destination in self.nodes:
            self._route_towards(destination.node_id)
        self.route_rebuilds += 1
        self.routing.on_routes_rebuilt(self)

    def _route_towards(self, dst_id: int) -> None:
        # BFS outward from the destination; the first hop discovered at each
        # node is its elected next hop towards dst.  Edges whose forward
        # direction (node -> neighbour-closer-to-dst) is administratively
        # down are unusable; a node none of whose candidate links are up is
        # treated as unreachable along that branch.
        nodes = self.nodes
        adjacency = self._adjacency
        dist = {dst_id: 0}
        frontier = deque([dst_id])
        while frontier:
            current = frontier.popleft()
            next_dist = dist[current] + 1
            for neighbor_id, neighbor_port in adjacency[current]:
                if neighbor_id in dist:
                    continue
                # neighbor reaches dst via the port pointing back at current.
                neighbor = nodes[neighbor_id]
                for peer_id, port_index in adjacency[neighbor_id]:
                    if peer_id == current and neighbor.ports[port_index].link.up:
                        neighbor.forwarding_table[dst_id] = port_index
                        break
                else:
                    continue  # no live link back towards current
                dist[neighbor_id] = next_dist
                frontier.append(neighbor_id)
        # Second pass: the full equal-cost set per node — every live port
        # towards a neighbour one hop closer to dst.  The BFS-elected port
        # leads (so single-path behaviour is literally candidates[0]); the
        # remaining candidates follow in ascending port order.
        for node_id, node_dist in dist.items():
            if node_id == dst_id:
                continue
            node = nodes[node_id]
            target = node_dist - 1
            elected = node.forwarding_table[dst_id]
            equal_cost = sorted(
                port_index
                for neighbor_id, port_index in adjacency[node_id]
                if dist.get(neighbor_id) == target
                and node.ports[port_index].link.up
                and port_index != elected
            )
            node.multipath_table[dst_id] = (elected, *equal_cost)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def run_for(self, duration_ns: int) -> int:
        """Advance the simulation by ``duration_ns``."""
        return self.sim.run_for(duration_ns)

    def run_until(self, time_ns: int) -> int:
        """Advance the simulation to absolute time ``time_ns``."""
        return self.sim.run(until_ns=time_ns)

    def host_by_name(self, name: str) -> Host:
        """Look up a host by its builder-assigned name."""
        for host in self.hosts:
            if host.name == name:
                return host
        raise KeyError(f"no host named {name}")

    def node_by_name(self, name: str) -> Node:
        """Look up any node (host or switch) by its builder-assigned name."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name}")

    def total_drops(self) -> int:
        """Sum of drop-tail losses across every port in the network."""
        return sum(
            port.queue.drops for node in self.nodes for port in node.ports
        )
