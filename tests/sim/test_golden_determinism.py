"""Golden determinism: the kernel fast path must not change *any* result.

These values were captured at the pre-fast-path seed commit (e2ee257) and
must stay bit-identical forever: every optimisation to the event kernel,
ports, queues, or tracer has to preserve event counts, schedule ordering
and RNG draw sequences exactly.  If a change here is intentional (a new
feature that genuinely alters the simulation), recapture the constants and
say so in the commit — never loosen the assertions.

Two scenarios cover the two regimes:

* a 4-flow TFC dumbbell (steady-state congestion control machinery), and
* one Fig. 13 testbed benchmark cell (stochastic workload generation,
  handshakes, FCT accounting, timer churn).

Bulky structures (per-port state, FCT records) are pinned via sha256 of
their canonical-JSON form; scalars are pinned directly so a mismatch
shows a readable diff for the most informative fields.
"""

import hashlib
import json

import pytest

from repro.experiments.common import build_topology
from repro.metrics.fct import FctCollector
from repro.net.topology import dumbbell, fat_tree
from repro.net.topology import testbed as build_testbed
from repro.sim.units import seconds
from repro.transport.registry import open_flow
from repro.workloads.empirical import BenchmarkWorkload


def _digest(obj) -> str:
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True).encode("utf-8")
    ).hexdigest()[:16]


def _port_state(network):
    rows = []
    for node in network.nodes:
        for port in node.ports:
            queue = port.queue
            rows.append(
                [
                    node.name,
                    port.index,
                    port.tx_packets,
                    port.tx_bytes,
                    queue.byte_length,
                    queue.packet_length,
                    queue.drops,
                    queue.enqueues,
                    queue.max_bytes_seen,
                ]
            )
    return rows


def test_golden_dumbbell_tfc():
    topo = build_topology(
        dumbbell, "tfc", buffer_bytes=256_000, n_senders=4, seed=1
    )
    senders = [open_flow(topo.host(i), topo.host(4), "tfc") for i in range(4)]
    topo.network.run_for(seconds(0.1))
    net = topo.network

    assert net.sim.events_processed == 79280
    assert net.sim.now == 100_000_000
    assert dict(sorted(net.tracer.counters.items())) == {
        "tfc.delimiter_elected": 1,
        "tfc.window_update": 731,
    }
    assert [s.stats.bytes_acked for s in senders] == [
        2_889_340,
        2_887_880,
        2_892_260,
        2_887_880,
    ]
    assert [n.rx_bytes for n in net.nodes] == [
        12_537_926,
        126_784,
        126_720,
        126_912,
        126_720,
        12_023_072,
    ]
    assert _digest(_port_state(net)) == "4b5cbc0840abe309"


def test_golden_fig13_benchmark_cell():
    topo = build_topology(build_testbed, "tfc", buffer_bytes=256_000, seed=0)
    collector = FctCollector()
    workload = BenchmarkWorkload(
        topo.hosts,
        "tfc",
        duration_ns=seconds(0.25),
        query_rate_per_s=200.0,
        query_fanin=6,
        short_rate_per_s=30.0,
        background_rate_per_s=30.0,
        min_rto_ns=200_000_000,
        seed_name="benchmark:testbed:0",
        collector=collector,
    )
    topo.network.run_for(seconds(0.5))
    net = topo.network

    assert net.sim.events_processed == 57510
    assert net.sim.now == 500_000_000
    assert workload.flows_launched == 373
    assert collector.completed() == 373
    assert net.total_drops() == 0
    assert dict(sorted(net.tracer.counters.items())) == {
        "tfc.ack_delayed": 37,
        "tfc.delimiter_elected": 338,
        "tfc.window_update": 1014,
        "transport.flow_complete": 373,
    }
    records = sorted(
        (r.category, r.size_bytes, r.fct_ns, r.timeouts)
        for r in collector.records
    )
    assert _digest([list(r) for r in records]) == "143d85e14736aa91"
    assert _digest(_port_state(net)) == "3255488c8e6eca49"


@pytest.mark.parametrize("mode", ["counters", "slots", "full"])
def test_golden_dumbbell_telemetry_bit_identical(monkeypatch, mode):
    """Attaching telemetry (any mode) changes *nothing*: the recorders
    are purely trace-subscription-driven — no scheduled events, no RNG
    draws, no emissions of their own — so every golden constant holds
    with telemetry on, and the slot recorder sees exactly one row per
    ``tfc.window_update`` emission."""
    from repro.obs import drain_pending

    monkeypatch.setenv("REPRO_TELEMETRY", mode)
    topo = build_topology(
        dumbbell, "tfc", buffer_bytes=256_000, n_senders=4, seed=1
    )
    session = topo.network.telemetry
    assert session is not None and session.mode == mode
    senders = [open_flow(topo.host(i), topo.host(4), "tfc") for i in range(4)]
    topo.network.run_for(seconds(0.1))
    net = topo.network

    assert net.sim.events_processed == 79280
    assert net.sim.now == 100_000_000
    assert dict(sorted(net.tracer.counters.items())) == {
        "tfc.delimiter_elected": 1,
        "tfc.window_update": 731,
    }
    assert [s.stats.bytes_acked for s in senders] == [
        2_889_340,
        2_887_880,
        2_892_260,
        2_887_880,
    ]
    assert _digest(_port_state(net)) == "4b5cbc0840abe309"
    if mode in ("slots", "full"):
        assert session.slots.total_rows == 731
    if mode == "full":
        assert any(
            r["topic"] == "tfc.delimiter_elected"
            for r in session.flight.snapshot()
        )
    drain_pending()


def test_golden_fig13_with_full_telemetry(monkeypatch):
    """The stochastic-workload golden cell is bit-identical with the full
    telemetry stack attached."""
    from repro.obs import drain_pending

    monkeypatch.setenv("REPRO_TELEMETRY", "full")
    topo = build_topology(build_testbed, "tfc", buffer_bytes=256_000, seed=0)
    session = topo.network.telemetry
    assert session is not None
    collector = FctCollector()
    workload = BenchmarkWorkload(
        topo.hosts,
        "tfc",
        duration_ns=seconds(0.25),
        query_rate_per_s=200.0,
        query_fanin=6,
        short_rate_per_s=30.0,
        background_rate_per_s=30.0,
        min_rto_ns=200_000_000,
        seed_name="benchmark:testbed:0",
        collector=collector,
    )
    topo.network.run_for(seconds(0.5))
    net = topo.network

    assert net.sim.events_processed == 57510
    assert workload.flows_launched == 373
    assert collector.completed() == 373
    assert dict(sorted(net.tracer.counters.items())) == {
        "tfc.ack_delayed": 37,
        "tfc.delimiter_elected": 338,
        "tfc.window_update": 1014,
        "transport.flow_complete": 373,
    }
    records = sorted(
        (r.category, r.size_bytes, r.fct_ns, r.timeouts)
        for r in collector.records
    )
    assert _digest([list(r) for r in records]) == "143d85e14736aa91"
    assert _digest(_port_state(net)) == "3255488c8e6eca49"
    assert session.slots.total_rows == 1014
    drain_pending()


@pytest.mark.parametrize("mode", ["counters", "full"])
@pytest.mark.parametrize("lossless", ["off", "pfc"])
def test_golden_dumbbell_lossless_bit_identical(monkeypatch, lossless, mode):
    """``REPRO_LOSSLESS=pfc`` changes *nothing* on a TFC dumbbell: the
    fabric's buffer-scaled XOFF default sits far above what TFC's token
    admission ever queues, so no pause frame is emitted, no extra events
    are scheduled, and every golden constant holds — with or without the
    telemetry stack watching the fabric."""
    from repro.obs import drain_pending

    monkeypatch.setenv("REPRO_LOSSLESS", lossless)
    monkeypatch.setenv("REPRO_TELEMETRY", mode)
    topo = build_topology(
        dumbbell, "tfc", buffer_bytes=256_000, n_senders=4, seed=1
    )
    net = topo.network
    if lossless == "pfc":
        assert net.lossless is not None
    else:
        assert net.lossless is None
    senders = [open_flow(topo.host(i), topo.host(4), "tfc") for i in range(4)]
    net.run_for(seconds(0.1))

    assert net.sim.events_processed == 79280
    assert net.sim.now == 100_000_000
    assert dict(sorted(net.tracer.counters.items())) == {
        "tfc.delimiter_elected": 1,
        "tfc.window_update": 731,
    }
    assert [s.stats.bytes_acked for s in senders] == [
        2_889_340,
        2_887_880,
        2_892_260,
        2_887_880,
    ]
    assert _digest(_port_state(net)) == "4b5cbc0840abe309"
    if lossless == "pfc":
        assert net.lossless.pause_frames == 0
        assert net.lossless.resume_frames == 0
        assert net.lossless.headroom_overflows == 0
    drain_pending()


@pytest.mark.parametrize(
    "backend", ["heap", "calendar", "wheel", "adaptive"]
)
def test_golden_dumbbell_every_scheduler_backend(monkeypatch, backend):
    """The golden dumbbell constants hold bit-identically on every
    scheduler backend (selected exactly as CI shards do, via the
    ``REPRO_SCHEDULER`` environment variable)."""
    monkeypatch.setenv("REPRO_SCHEDULER", backend)
    topo = build_topology(
        dumbbell, "tfc", buffer_bytes=256_000, n_senders=4, seed=1
    )
    assert topo.sim.scheduler_name == backend
    senders = [open_flow(topo.host(i), topo.host(4), "tfc") for i in range(4)]
    topo.network.run_for(seconds(0.1))
    net = topo.network

    assert net.sim.events_processed == 79280
    assert net.sim.now == 100_000_000
    assert [s.stats.bytes_acked for s in senders] == [
        2_889_340,
        2_887_880,
        2_892_260,
        2_887_880,
    ]
    assert _digest(_port_state(net)) == "4b5cbc0840abe309"


@pytest.mark.parametrize("batch", ["on", "off"])
@pytest.mark.parametrize(
    "backend", ["heap", "calendar", "wheel", "adaptive"]
)
def test_golden_dumbbell_batching_bit_identical(monkeypatch, backend, batch):
    """Hot-loop batching (``REPRO_BATCH``, DESIGN.md §6h) changes *nothing*:
    the kernel micro-batch dispatches in the exact (time, seq) order the
    single-pop loop would, and the port TX burst chain consumes the same
    seq numbers at the same times as the serial path — so every golden
    constant holds with batching on or off, on every scheduler backend."""
    monkeypatch.setenv("REPRO_BATCH", batch)
    monkeypatch.setenv("REPRO_SCHEDULER", backend)
    topo = build_topology(
        dumbbell, "tfc", buffer_bytes=256_000, n_senders=4, seed=1
    )
    net = topo.network
    assert net.burst_enabled == (batch == "on")
    senders = [open_flow(topo.host(i), topo.host(4), "tfc") for i in range(4)]
    net.run_for(seconds(0.1))

    assert net.sim.events_processed == 79280
    assert net.sim.now == 100_000_000
    assert dict(sorted(net.tracer.counters.items())) == {
        "tfc.delimiter_elected": 1,
        "tfc.window_update": 731,
    }
    assert [s.stats.bytes_acked for s in senders] == [
        2_889_340,
        2_887_880,
        2_892_260,
        2_887_880,
    ]
    assert _digest(_port_state(net)) == "4b5cbc0840abe309"


@pytest.mark.parametrize("batch", ["on", "off"])
def test_golden_fig13_batching_bit_identical(monkeypatch, batch):
    """The stochastic-workload golden cell (handshakes, timer churn, RNG
    draws) is bit-identical with batching on or off."""
    monkeypatch.setenv("REPRO_BATCH", batch)
    topo = build_topology(build_testbed, "tfc", buffer_bytes=256_000, seed=0)
    collector = FctCollector()
    workload = BenchmarkWorkload(
        topo.hosts,
        "tfc",
        duration_ns=seconds(0.25),
        query_rate_per_s=200.0,
        query_fanin=6,
        short_rate_per_s=30.0,
        background_rate_per_s=30.0,
        min_rto_ns=200_000_000,
        seed_name="benchmark:testbed:0",
        collector=collector,
    )
    topo.network.run_for(seconds(0.5))
    net = topo.network

    assert net.sim.events_processed == 57510
    assert workload.flows_launched == 373
    assert collector.completed() == 373
    assert dict(sorted(net.tracer.counters.items())) == {
        "tfc.ack_delayed": 37,
        "tfc.delimiter_elected": 338,
        "tfc.window_update": 1014,
        "transport.flow_complete": 373,
    }
    records = sorted(
        (r.category, r.size_bytes, r.fct_ns, r.timeouts)
        for r in collector.records
    )
    assert _digest([list(r) for r in records]) == "143d85e14736aa91"
    assert _digest(_port_state(net)) == "3255488c8e6eca49"


def test_golden_dumbbell_compiled_core_bit_identical(monkeypatch):
    """``REPRO_COMPILED=on`` routes the hot loop through ``repro.sim.core``
    (the compiled twin when built, the pure-Python module otherwise);
    either way the golden constants must hold bit-identically."""
    monkeypatch.setenv("REPRO_COMPILED", "on")
    topo = build_topology(
        dumbbell, "tfc", buffer_bytes=256_000, n_senders=4, seed=1
    )
    assert topo.sim._core is not None
    senders = [open_flow(topo.host(i), topo.host(4), "tfc") for i in range(4)]
    topo.network.run_for(seconds(0.1))
    net = topo.network

    assert net.sim.events_processed == 79280
    assert net.sim.now == 100_000_000
    assert [s.stats.bytes_acked for s in senders] == [
        2_889_340,
        2_887_880,
        2_892_260,
        2_887_880,
    ]
    assert _digest(_port_state(net)) == "4b5cbc0840abe309"


@pytest.mark.parametrize("policy", ["single", "ecmp", "flowlet", "spray"])
def test_golden_dumbbell_every_routing_policy(monkeypatch, policy):
    """The golden dumbbell constants hold bit-identically under every
    routing policy (selected via ``REPRO_ROUTING``, as the CI shard
    does): with a single equal-cost candidate everywhere, each policy
    must degenerate to the elected next hop."""
    monkeypatch.setenv("REPRO_ROUTING", policy)
    topo = build_topology(
        dumbbell, "tfc", buffer_bytes=256_000, n_senders=4, seed=1
    )
    net = topo.network
    assert net.routing.name == policy
    # The default policy stays detached from the datapath entirely.
    if policy == "single":
        assert all(switch.routing is None for switch in topo.switches)
    senders = [open_flow(topo.host(i), topo.host(4), "tfc") for i in range(4)]
    net.run_for(seconds(0.1))

    assert net.sim.events_processed == 79280
    assert net.sim.now == 100_000_000
    assert [s.stats.bytes_acked for s in senders] == [
        2_889_340,
        2_887_880,
        2_892_260,
        2_887_880,
    ]
    assert _digest(_port_state(net)) == "4b5cbc0840abe309"


@pytest.mark.parametrize("policy", ["ecmp", "flowlet", "spray"])
def test_fat_tree_policies_self_identical(policy):
    """Two same-seed runs of a genuinely multi-path fabric make the same
    path choices: every policy draws only on the network seed (the
    determinism contract ``--jobs`` relies on)."""

    def run():
        topo = build_topology(
            fat_tree,
            "tfc",
            buffer_bytes=256_000,
            k=4,
            seed=3,
            routing=policy,
        )
        senders = [
            open_flow(topo.hosts[i], topo.hosts[8 + i], "tfc")
            for i in range(4)
        ]
        topo.network.run_for(seconds(0.03))
        return (
            topo.network.sim.events_processed,
            [s.stats.bytes_acked for s in senders],
            _digest(_port_state(topo.network)),
        )

    assert run() == run()
