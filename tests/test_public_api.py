"""The documented public API stays importable and coherent."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_quickstart_from_package_docstring():
    """The exact snippet in repro.__doc__ must run."""
    from repro.net import dumbbell
    from repro.transport import configure_network, open_flow
    from repro.sim.units import seconds

    topo = dumbbell(n_senders=4)
    configure_network(topo.network, "tfc")
    flows = [open_flow(h, topo.hosts[-1], "tfc") for h in topo.hosts[:4]]
    topo.network.run_for(seconds(0.05))
    assert sum(f.stats.bytes_acked for f in flows) > 0


def test_top_level_namespaces():
    from repro import (
        core,
        experiments,
        faults,
        metrics,
        net,
        sim,
        transport,
        workloads,
    )

    assert core.TfcParams
    assert net.Packet and net.dumbbell
    assert net.FaultyQueue and net.GilbertElliottLoss
    assert sim.Simulator
    assert transport.open_flow and transport.PROTOCOLS is not None
    assert workloads.IncastCoordinator
    assert metrics.FctCollector
    assert experiments.run_fig12
    assert experiments.run_chaos
    assert faults.FaultInjector and faults.InvariantMonitor


def test_protocol_registry_contents():
    from repro.transport import get_protocol

    for name in ("tcp", "dctcp", "tfc"):
        spec = get_protocol(name)
        assert spec.name == name
    import pytest

    with pytest.raises(ValueError):
        get_protocol("quic")
