"""Recovery metrics and the chaos acceptance criterion.

The acceptance bar for the fault work: under every fault primitive, TFC
reconverges to at least 90% of its pre-fault aggregate goodput with zero
invariant-monitor violations.  The full catalogue runs in the slow suite;
a two-fault subset stays in tier-1 as a regression canary.
"""

import pytest

from repro.experiments.chaos import FAULT_KINDS, run_chaos
from repro.faults import measure_recovery
from repro.sim.units import milliseconds

MS = milliseconds(1)


# ----------------------------------------------------------------------
# measure_recovery on synthetic series
# ----------------------------------------------------------------------
def series(values, step_ns=MS):
    return [(i * step_ns, v) for i, v in enumerate(values)]


def test_measure_recovery_happy_path():
    # 5 baseline samples at 10, dip to 2, back above 9 from sample 8 on.
    data = series([10, 10, 10, 10, 10, 2, 4, 7, 9.5, 9.6, 10, 10, 10, 10])
    report = measure_recovery(
        data, fault_start_ns=5 * MS, threshold=0.9, hold_samples=3
    )
    assert report.baseline == pytest.approx(10.0)
    assert report.dip_depth == pytest.approx(0.8)
    assert report.reconverge_ns == 8 * MS
    assert report.time_to_reconverge_ns == 3 * MS
    assert report.recovered
    assert "reconverged in 3.00 ms" in report.summary()


def test_measure_recovery_never_reconverges():
    data = series([10, 10, 10, 10, 2, 3, 2, 3, 2, 3])
    report = measure_recovery(data, fault_start_ns=4 * MS, hold_samples=2)
    assert report.reconverge_ns is None
    assert report.time_to_reconverge_ns is None
    assert not report.recovered
    assert "never reconverged" in report.summary()


def test_measure_recovery_hold_must_be_consecutive():
    # Reaches the target once, dips again, then holds.
    data = series([10, 10, 10, 1, 9.5, 1, 9.5, 9.5, 9.5, 9.5])
    report = measure_recovery(data, fault_start_ns=3 * MS, hold_samples=3)
    assert report.reconverge_ns == 6 * MS  # the start of the real hold


def test_measure_recovery_settle_skips_fault_window():
    # Goodput never actually dips, but recovery may only be declared
    # after the fault window (the cure) has passed.
    data = series([10] * 12)
    report = measure_recovery(
        data, fault_start_ns=4 * MS, settle_ns=3 * MS, hold_samples=2
    )
    assert report.reconverge_ns == 7 * MS
    assert report.dip_depth == 0.0


def test_measure_recovery_validates():
    data = series([10, 10, 10, 10])
    with pytest.raises(ValueError):
        measure_recovery(data, fault_start_ns=2 * MS, threshold=0.0)
    with pytest.raises(ValueError):
        measure_recovery(data, fault_start_ns=0)  # no pre-fault samples
    with pytest.raises(ValueError):
        measure_recovery(series([0, 0, 0]), fault_start_ns=2 * MS)


# ----------------------------------------------------------------------
# Chaos acceptance
# ----------------------------------------------------------------------
def assert_clean_recovery(result):
    report = result.report
    assert not result.violations, result.violations[0].report()
    assert report.recovered, (
        f"{result.fault}: never reconverged to "
        f"{report.threshold:.0%} of baseline ({report.summary()})"
    )
    assert result.invariant_checks > 0


@pytest.mark.parametrize("fault", ["switch_reset", "delimiter_kill"])
def test_chaos_fast_subset_recovers_cleanly(fault):
    """Tier-1 canary: the two state-wiping faults recover >= 90%."""
    assert_clean_recovery(run_chaos(fault))


@pytest.mark.slow
@pytest.mark.parametrize("fault", FAULT_KINDS)
def test_chaos_full_catalogue_recovers_cleanly(fault):
    """Acceptance: every fault primitive reconverges to >= 90% of the
    pre-fault goodput with zero invariant violations."""
    assert_clean_recovery(run_chaos(fault))
