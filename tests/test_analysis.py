"""Tests for the analysis/reporting helpers and failure injection."""

import random

import pytest

from repro.analysis import (
    Comparison,
    ComparisonReport,
    ascii_table,
    at_least_factor,
    flat_within,
    format_bytes,
    format_duration_us,
    format_rate,
    markdown_table,
    ordering_holds,
    within_factor,
)
from repro.net.packet import MSS, Packet
from repro.net.queues import RandomDropQueue


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def test_ascii_table_alignment():
    out = ascii_table(["a", "long"], [[1, 2], [333, 4]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines)
    assert "333" in lines[2] or "333" in lines[3]


def test_ascii_table_empty_rows():
    out = ascii_table(["x", "y"], [])
    assert "x" in out and "y" in out


def test_markdown_table():
    out = markdown_table(["p", "v"], [["tfc", 1]])
    assert out.splitlines()[0] == "| p | v |"
    assert out.splitlines()[1] == "|---|---|"
    assert out.splitlines()[2] == "| tfc | 1 |"


def test_formatters():
    assert format_rate(2.5e9) == "2.50 Gbps"
    assert format_rate(930e6) == "930 Mbps"
    assert format_rate(10e3) == "10 kbps"
    assert format_bytes(1_500_000) == "1.5 MB"
    assert format_bytes(2_000) == "2.0 KB"
    assert format_bytes(64) == "64 B"
    assert format_duration_us(1_500_000) == "1.50 s"
    assert format_duration_us(2_500) == "2.50 ms"
    assert format_duration_us(45) == "45 us"


# ----------------------------------------------------------------------
# Comparisons
# ----------------------------------------------------------------------
def test_comparison_report():
    report = ComparisonReport()
    report.add("Fig. 8", "queue", "9 KB", "6 KB", True)
    report.add("Fig. 9", "fairness", "fair", "unfair", False, note="check")
    assert not report.all_hold
    assert len(report.failures()) == 1
    rows = report.rows()
    assert rows[0][-2] == "yes"
    assert rows[1][-2] == "NO"


def test_ordering_holds():
    values = {"tfc": 1.0, "dctcp": 5.0, "tcp": 9.0}
    assert ordering_holds(values, ["tfc", "dctcp", "tcp"])
    assert not ordering_holds(values, ["tcp", "tfc", "dctcp"])


def test_within_factor():
    assert within_factor(90, 100, 1.5)
    assert not within_factor(10, 100, 2.0)
    assert within_factor(0, 0, 2.0)


def test_at_least_factor():
    assert at_least_factor(100, 10, 5)
    assert not at_least_factor(100, 90, 5)
    assert at_least_factor(1, 0, 100)


def test_flat_within():
    assert flat_within([900, 920, 940], 0.1)
    assert not flat_within([100, 900], 0.1)
    assert flat_within([], 0.0)


# ----------------------------------------------------------------------
# Failure injection
# ----------------------------------------------------------------------
def test_random_drop_queue_drops_fraction():
    queue = RandomDropQueue(10**9, drop_probability=0.3, seed=1)
    accepted = sum(
        1 for _ in range(2000)
        if queue.enqueue(Packet(1, 2, 3, 4, payload=MSS))
    )
    assert 1250 < accepted < 1550  # ~70% of 2000
    assert queue.random_drops == 2000 - accepted


def test_random_drop_queue_deterministic_from_seed():
    def accepted(queue):
        return [
            queue.enqueue(Packet(1, 2, 3, 4, payload=MSS)) for _ in range(500)
        ]

    first = accepted(RandomDropQueue(10**9, drop_probability=0.3, seed=42))
    second = accepted(RandomDropQueue(10**9, drop_probability=0.3, seed=42))
    other = accepted(RandomDropQueue(10**9, drop_probability=0.3, seed=43))
    assert first == second
    assert first != other


def test_random_drop_queue_validates():
    with pytest.raises(ValueError):
        RandomDropQueue(1000, drop_probability=1.0, seed=0)
    with pytest.raises(ValueError):  # exactly one of rng/seed
        RandomDropQueue(1000, drop_probability=0.5)
    with pytest.raises(ValueError):
        RandomDropQueue(1000, 0.5, rng=random.Random(0), seed=1)


def test_protocols_survive_random_loss():
    """End-to-end robustness: 1% random loss, all protocols complete."""
    from repro.net.topology import dumbbell
    from repro.sim.units import MILLISECOND, seconds
    from repro.transport.base import FlowState
    from repro.transport.registry import configure_network, open_flow

    for proto in ("tcp", "dctcp", "tfc"):
        rng = random.Random(7)
        topo = dumbbell(
            n_senders=2,
            queue_factory=lambda rate: RandomDropQueue(256_000, 0.01, rng=rng),
        )
        configure_network(topo.network, proto)
        receiver = topo.hosts[-1]
        flows = [
            open_flow(h, receiver, proto, size_bytes=300_000, min_rto_ns=MILLISECOND)
            for h in topo.hosts[:2]
        ]
        topo.network.run_for(seconds(5))
        for flow in flows:
            assert flow.state is FlowState.DONE, proto
            assert flow.receiver.bytes_received == 300_000
