"""Unit tests for the batching primitives: ``Scheduler.pop_batch``, the
``repro.sim.core`` typed kernels, and the compiled-core loader.

The golden and differential suites prove batching end-to-end; these pin
the primitives in isolation so a regression names the broken layer
directly.
"""

import random

import pytest

from repro.sim import core
from repro.sim.engine import Event, load_core
from repro.sim.sched import make_scheduler

BACKENDS = ("heap", "calendar", "wheel")


def _event(time_ns: int, seq: int) -> Event:
    return Event(time_ns, seq, lambda: None, ())


def _push(sched, time_ns, seq):
    event = _event(time_ns, seq)
    sched.push(time_ns, seq, event)
    return event


# ----------------------------------------------------------------------
# Scheduler.pop_batch — base default and per-backend overrides
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_pop_batch_pops_the_whole_same_time_group(backend):
    sched = make_scheduler(backend)
    for seq in (3, 1, 2):
        _push(sched, 100, seq)
    _push(sched, 200, 4)
    out = []
    assert sched.pop_batch(1_000, out) == 3
    assert [(e.time, e.seq) for e in out] == [(100, 1), (100, 2), (100, 3)]
    out2 = []
    assert sched.pop_batch(1_000, out2) == 1
    assert (out2[0].time, out2[0].seq) == (200, 4)
    assert sched.pop_batch(1_000, out2) == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_pop_batch_respects_horizon(backend):
    sched = make_scheduler(backend)
    _push(sched, 500, 1)
    out = []
    assert sched.pop_batch(499, out) == 0
    assert out == []
    assert sched.pop_batch(500, out) == 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_pop_batch_skips_dead_entries(backend):
    sched = make_scheduler(backend)
    doomed_head = _push(sched, 100, 1)
    _push(sched, 100, 2)
    doomed_mid = _push(sched, 100, 3)
    _push(sched, 100, 4)
    for doomed in (doomed_head, doomed_mid):
        doomed.cancelled = True
        sched.note_cancel()
    out = []
    assert sched.pop_batch(1_000, out) == 2
    assert [e.seq for e in out] == [2, 4]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [0, 1])
def test_pop_batch_matches_pop_due_sequence(backend, seed):
    """Differential: draining via pop_batch yields the exact pop_due order."""
    rng = random.Random(seed)
    plan = [(rng.randrange(1, 20) * 10, seq) for seq in range(200)]
    doomed = set(rng.sample(range(200), 40))

    def build():
        sched = make_scheduler(backend)
        for time_ns, seq in plan:
            event = _push(sched, time_ns, seq)
            if seq in doomed:
                event.cancelled = True
                sched.note_cancel()
        return sched

    serial, sched = [], build()
    while True:
        event = sched.pop_due(10_000)
        if event is None:
            break
        serial.append((event.time, event.seq))

    batched, sched = [], build()
    out = []
    while sched.pop_batch(10_000, out):
        batched.extend((e.time, e.seq) for e in out)
        del out[:]
    assert batched == serial


# ----------------------------------------------------------------------
# repro.sim.core kernels
# ----------------------------------------------------------------------
def test_heap_pop_batch_mirrors_heap_backend():
    import heapq

    heap, free = [], []
    events = {}
    for seq, time_ns in enumerate([100, 100, 100, 200]):
        events[seq] = _event(time_ns, seq)
        heapq.heappush(heap, (time_ns, seq, events[seq]))
    events[1].cancelled = True
    out = []
    assert core.heap_pop_batch(heap, free, 1_000, out) == (2, 1)
    assert [e.seq for e in out] == [0, 2]
    assert free == [events[1]]
    assert core.heap_pop_batch(heap, [], 150, []) == (0, 0)  # horizon holds
    out2 = []
    assert core.heap_pop_batch(heap, [], 1_000, out2) == (1, 0)
    assert out2[0].seq == 3
    assert core.heap_pop_batch(heap, [], 1_000, []) == (0, 0)


def test_burst_times_is_the_sum_of_per_frame_ceils():
    from repro.sim.units import transmission_time_ns

    rate = 1_000_000_000  # 1 Gbps
    sizes = [1500, 40, 1500, 9000]
    starts, dones = core.burst_times(sizes, rate, 7)
    t = 7
    for size, start, done in zip(sizes, starts, dones):
        assert start == t
        t += transmission_time_ns(size, rate)
        assert done == t


def test_burst_times_ceil_rounding_accumulates_per_frame():
    # 3 bytes at 7 bps: 24 bits -> ceil(24e9/7) = 3428571429 ns each.
    # Summing ceils differs from ceiling the sum — the golden contract.
    starts, dones = core.burst_times([3, 3], 7, 0)
    per_frame = -(-24 * 1_000_000_000 // 7)
    assert dones == [per_frame, 2 * per_frame]
    assert starts == [0, per_frame]


# ----------------------------------------------------------------------
# Compiled-core loader
# ----------------------------------------------------------------------
def test_load_core_falls_back_to_pure_python():
    loaded = load_core(True)
    assert hasattr(loaded, "heap_pop_batch")
    assert hasattr(loaded, "burst_times")
    try:
        import repro.sim._core_compiled  # noqa: F401
    except ImportError:
        assert loaded is core  # no compiled twin: pure module, quietly
        assert core.COMPILED is False


def test_load_core_plain_returns_pure_module():
    assert load_core(False) is core
