"""Figure 13 — flow completion times under the benchmark workload (testbed).

Paper: query-flow mean and tail FCT are far lower under TFC than DCTCP
and TCP (whose 99.99th percentile includes retransmission timeouts);
background mice finish faster under TFC, while the largest flows pay a
small price because query flows keep their bandwidth.
"""

from conftest import run_once

from repro.experiments import run_fig13
from repro.metrics.fct import SIZE_BUCKETS


def test_fig13_benchmark_fct(benchmark, report):
    results = run_once(
        benchmark,
        run_fig13,
        duration_s=1.5,
        drain_s=1.5,
        query_rate_per_s=400,
        query_fanin=8,
        short_rate_per_s=30,
        background_rate_per_s=30,
    )

    rows = []
    for proto, result in results.items():
        q = result.query_summary_us()
        rows.append(
            [
                proto.upper(),
                f"{q['mean']:.0f}",
                f"{q['p95']:.0f}",
                f"{q['p99']:.0f}",
                f"{q['p99.9']:.0f}",
                f"{q['p99.99']:.0f}",
            ]
        )
    report(
        "Fig. 13a: query flow FCT (us)",
        ["protocol", "mean", "95th", "99th", "99.9th", "99.99th"],
        rows,
    )

    bucket_rows = []
    names = [name for name, _, _ in SIZE_BUCKETS]
    for proto, result in results.items():
        buckets = result.background_p999_us()
        bucket_rows.append(
            [proto.upper()] + [f"{buckets.get(name, float('nan')):.0f}" for name in names]
        )
    report(
        "Fig. 13b: background flow 99.9th FCT (us) by size",
        ["protocol"] + names,
        bucket_rows,
    )

    tfc_q = results["tfc"].query_summary_us()
    tcp_q = results["tcp"].query_summary_us()
    dctcp_q = results["dctcp"].query_summary_us()
    # The paper's ordering: TFC's query tail is far below the baselines'.
    assert tfc_q["p99.9"] < dctcp_q["p99.9"]
    assert tfc_q["p99.9"] < tcp_q["p99.9"]
    assert tfc_q["p99.99"] < tcp_q["p99.99"] / 2
    assert results["tfc"].drops == 0
    assert results["tfc"].completion_fraction() == 1.0
