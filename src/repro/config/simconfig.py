"""``SimConfig`` — one dataclass configuring a whole simulation run.

Before this existed, a fully specified run meant four hand-rolled
surfaces: ``Simulator(scheduler=...)``, ``Network(routing=..., seed=...)``,
a protocol name threaded through the transport helpers, and whatever
``REPRO_*`` variables happened to be exported.  ``SimConfig`` carries all
of it in one validated, frozen value that every layer accepts:

* ``Simulator(config=cfg)`` — scheduler backend;
* ``Network(config=cfg)`` — seed, routing, scheduler (via its simulator)
  and telemetry (a session is installed when ``telemetry != off``);
* ``run_cells(..., config=cfg)`` / ``runner --telemetry DIR`` — the
  runner pins the whole config process-wide (via :func:`repro.config.
  env`) so worker processes and internally built networks inherit it.

``None`` fields mean "defer": the constructor-argument / environment /
built-in default chain behaves exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Optional

from .envvars import KNOBS, current, env as _env, shard_count


@dataclass(frozen=True)
class SimConfig:
    """Every run-level selection knob, in one place.

    ``transport`` names the protocol experiments should configure
    (``tcp`` / ``dctcp`` / ``tfc``); it is carried and validated here but
    applied by the transport helpers, which keep their explicit protocol
    arguments.
    """

    seed: int = 0
    scheduler: Optional[str] = None
    routing: Optional[str] = None
    transport: Optional[str] = None
    telemetry: Optional[str] = None
    telemetry_dir: Optional[str] = None
    lossless: Optional[str] = None
    batch: Optional[str] = None
    compiled: Optional[str] = None
    #: Shard count for single-simulation parallelism (repro.sim.shard);
    #: None = serial.  Carried as an int; exported as ``REPRO_SHARDS``.
    shards: Optional[int] = None

    def __post_init__(self) -> None:
        for knob in (
            "scheduler", "routing", "telemetry", "lossless", "batch", "compiled"
        ):
            value = getattr(self, knob)
            if value is not None:
                KNOBS[knob].validate(value)
        if self.shards is not None:
            KNOBS["shards"].validate(str(self.shards))
        if self.transport is not None:
            from ..transport.registry import get_protocol

            get_protocol(self.transport)  # raises ValueError on typos

    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, seed: int = 0, transport: Optional[str] = None) -> "SimConfig":
        """A config pinning the *current* effective environment defaults."""
        return cls(
            seed=seed,
            scheduler=current("scheduler"),
            routing=current("routing"),
            transport=transport,
            telemetry=current("telemetry"),
            telemetry_dir=current("telemetry_dir") or None,
            lossless=current("lossless"),
            batch=current("batch"),
            compiled=current("compiled"),
            shards=shard_count(),
        )

    def with_overrides(self, **changes) -> "SimConfig":
        """A copy with the given fields replaced (validated again)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Round-trip serialisation (the scenario loader's door into configs)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Every field as a plain dict (JSON/YAML-serialisable as-is)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimConfig":
        """The inverse of :meth:`to_dict`, rejecting unknown fields.

        Values are validated exactly like constructor arguments, so a
        typo'd knob value fails here too — not deep inside a run.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown SimConfig field(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        return cls(**data)

    def env(self):
        """A context manager exporting this config's non-None knobs.

        The runner wraps every batch of cells in this, so internally
        built networks and pool workers see the config without any
        argument threading.
        """
        return _env(
            scheduler=self.scheduler,
            routing=self.routing,
            telemetry=self.telemetry,
            telemetry_dir=self.telemetry_dir,
            lossless=self.lossless,
            batch=self.batch,
            compiled=self.compiled,
            shards=None if self.shards is None else str(self.shards),
        )

    @property
    def telemetry_enabled(self) -> bool:
        return self.telemetry is not None and self.telemetry != "off"
