"""Related-work baseline head-to-head (DESIGN.md §6k).

One contended dumbbell cell per registered transport: every sender host
opens one fixed-size flow towards the single receiver at t=0, so all
flows fight for the same bottleneck from the first RTT.  The reported
row is the fairness/FCT/queue-occupancy triple the baseline table in
EXPERIMENTS.md is built from:

* **Jain index** over per-flow average rates — per-flow mechanisms
  (TFC's token allocation, BFC's per-flow pause, FairQ's computed fair
  share) should sit near 1.0; per-port and endpoint-only mechanisms
  spread out;
* **FCT spread** (min/mean/max/p99) — collapse and HoL victims show up
  as a long max;
* **bottleneck queue** (mean/max) plus drops — the buffer-pressure
  axis: TB-TCP caps it by construction, lossless fabrics by pause.

The cell never branches on the protocol name: everything flows through
the registry's :class:`~repro.transport.registry.Protocol` hooks, so a
transport registered at runtime via ``register_protocol`` sweeps the
same way the built-ins do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..metrics.samplers import QueueSampler
from ..metrics.stats import jain_fairness, mean, percentile
from ..net.topology import dumbbell
from ..sim.units import GBPS, MILLISECOND, microseconds, seconds
from ..transport.registry import open_flow
from .common import BASELINE_PROTOCOLS, ExperimentResult, build_topology


@dataclass
class BaselinePoint:
    """One (protocol, fan-in) contention measurement."""

    protocol: str
    n_senders: int
    flow_bytes: int
    completed: int
    jain_index: float
    fct_min_us: float
    fct_mean_us: float
    fct_p99_us: float
    fct_max_us: float
    goodput_bps: float
    queue_mean_bytes: float
    queue_max_bytes: float
    drops: int
    pause_frames: int
    resume_frames: int


def run_baseline_point(
    protocol: str,
    n_senders: int = 8,
    flow_bytes: int = 2_000_000,
    rate_bps: int = GBPS,
    buffer_bytes: int = 256_000,
    min_rto_ns: int = 10 * MILLISECOND,
    max_duration_s: float = 20.0,
    seed: int = 0,
) -> BaselinePoint:
    """One protocol's row: n concurrent equal flows through one bottleneck."""
    topo = build_topology(
        dumbbell,
        protocol,
        buffer_bytes=buffer_bytes,
        n_senders=n_senders,
        rate_bps=rate_bps,
        seed=seed,
    )
    net = topo.network
    receiver = topo.hosts[-1]

    fcts_ns: Dict[int, int] = {}

    def _on_complete(sender, index: int) -> None:
        fcts_ns[index] = net.sim.now

    senders = []
    for i, source in enumerate(topo.hosts[:n_senders]):
        senders.append(
            open_flow(
                source,
                receiver,
                protocol,
                size_bytes=flow_bytes,
                min_rto_ns=min_rto_ns,
                on_complete=(lambda s, i=i: _on_complete(s, i)),
            )
        )
    queue_sampler = QueueSampler(
        net.sim, topo.bottleneck("main"), microseconds(100)
    )

    horizon = seconds(max_duration_s)
    chunk = seconds(0.05)
    while len(fcts_ns) < n_senders and net.sim.now < horizon:
        net.run_for(chunk)

    fct_list_ns = [fcts_ns[i] for i in sorted(fcts_ns)]
    fct_us = [ns / 1_000.0 for ns in fct_list_ns]
    # Average per-flow rate over that flow's own lifetime (all start at 0).
    rates = [flow_bytes * 8.0 / (ns / 1e9) for ns in fct_list_ns if ns > 0]
    total_ns = max(fct_list_ns) if fct_list_ns else net.sim.now
    goodput = (
        len(fct_list_ns) * flow_bytes * 8.0 / (total_ns / 1e9)
        if total_ns > 0
        else 0.0
    )

    # Whichever backpressure fabric is installed (BFC per-flow, PFC
    # per-port) exposes the same pause/resume counters.
    fabric = getattr(net, "bfc", None) or getattr(net, "lossless", None)
    return BaselinePoint(
        protocol=protocol,
        n_senders=n_senders,
        flow_bytes=flow_bytes,
        completed=len(fct_list_ns),
        jain_index=jain_fairness(rates) if rates else 0.0,
        fct_min_us=min(fct_us) if fct_us else 0.0,
        fct_mean_us=mean(fct_us) if fct_us else 0.0,
        fct_p99_us=percentile(fct_us, 99) if fct_us else 0.0,
        fct_max_us=max(fct_us) if fct_us else 0.0,
        goodput_bps=goodput,
        queue_mean_bytes=queue_sampler.mean(),
        queue_max_bytes=queue_sampler.max(),
        drops=net.total_drops(),
        pause_frames=getattr(fabric, "pause_frames", 0),
        resume_frames=getattr(fabric, "resume_frames", 0),
    )


def run_baseline_sweep(
    protocols: Sequence[str] = BASELINE_PROTOCOLS,
    n_senders: int = 8,
    flow_bytes: int = 2_000_000,
    seed: int = 0,
    **kwargs,
) -> List[BaselinePoint]:
    """The full grid: every baseline under the same contention pattern."""
    return [
        run_baseline_point(
            protocol,
            n_senders=n_senders,
            flow_bytes=flow_bytes,
            seed=seed,
            **kwargs,
        )
        for protocol in protocols
    ]


def run_baselines_cell(
    protocol: str,
    n_senders: int = 8,
    flow_bytes: int = 2_000_000,
    rate_bps: int = GBPS,
    buffer_bytes: int = 256_000,
    seed: int = 0,
) -> "ExperimentResult":
    """Picklable cell adapter for the parallel runner."""
    point = run_baseline_point(
        protocol,
        n_senders=n_senders,
        flow_bytes=flow_bytes,
        rate_bps=rate_bps,
        buffer_bytes=buffer_bytes,
        seed=seed,
    )
    scalars = {
        "n_senders": float(point.n_senders),
        "flow_bytes": float(point.flow_bytes),
        "completed": float(point.completed),
        "jain_index": point.jain_index,
        "fct_min_us": point.fct_min_us,
        "fct_mean_us": point.fct_mean_us,
        "fct_p99_us": point.fct_p99_us,
        "fct_max_us": point.fct_max_us,
        "goodput_bps": point.goodput_bps,
        "queue_mean_bytes": point.queue_mean_bytes,
        "queue_max_bytes": point.queue_max_bytes,
        "drops": float(point.drops),
    }
    if point.pause_frames or point.resume_frames:
        scalars["pause_frames"] = float(point.pause_frames)
        scalars["resume_frames"] = float(point.resume_frames)
    return ExperimentResult(
        name=f"baselines:{protocol}:n{n_senders}:seed{seed}",
        protocol=protocol,
        scalars=scalars,
    )
