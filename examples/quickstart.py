#!/usr/bin/env python3
"""Quickstart: four TFC flows share a 1 Gbps bottleneck.

Builds a dumbbell topology, turns the switch into a TFC switch, starts
four long-lived flows at staggered times, and reports per-flow goodput,
fairness, and the bottleneck queue — the library's whole API surface in
~40 lines.

Run::

    python examples/quickstart.py
"""

from repro.core import TfcParams
from repro.metrics import QueueSampler, RateSampler, jain_fairness
from repro.net import dumbbell
from repro.sim.units import microseconds, milliseconds, seconds
from repro.transport import get_protocol, open_flow


def main() -> None:
    # 1. The protocol spec owns everything TFC-specific: its queue
    #    discipline, its typed parameters, its switch-side installer.
    spec = get_protocol("tfc")
    params = spec.resolve_params(TfcParams())

    # 2. Topology: 4 senders -> 1 switch -> 1 receiver, all 1 Gbps —
    #    then make every switch port a TFC port (token allocator, N/rho
    #    counters, RTT timer, delay arbiter).
    topo = dumbbell(
        n_senders=4,
        queue_factory=spec.port_queue_factory(256_000, params),
    )
    net = topo.network
    spec.install(net, params)

    # 3. Four long-lived flows, one new flow every 100 ms.
    receiver = topo.hosts[-1]
    flows = [
        open_flow(host, receiver, "tfc", start_ns=seconds(0.1 * i))
        for i, host in enumerate(topo.hosts[:4])
    ]

    # 4. Instrumentation: queue occupancy + per-flow goodput.
    queue = QueueSampler(net.sim, topo.bottleneck("main"), microseconds(100))
    rates = [
        RateSampler(net.sim, (lambda f=f: f.receiver.bytes_received), milliseconds(20))
        for f in flows
    ]

    # 5. Run one simulated second.
    net.run_for(seconds(1.0))

    # 6. Report.
    print("Per-flow goodput (last 100 ms):")
    final_rates = []
    for i, sampler in enumerate(rates):
        rate = sum(sampler.values[-5:]) / 5
        final_rates.append(rate)
        print(f"  flow {i}: {rate / 1e6:7.1f} Mbps")
    print(f"Aggregate: {sum(final_rates) / 1e6:.0f} Mbps")
    print(f"Jain fairness index: {jain_fairness(final_rates):.4f}")
    print(f"Bottleneck queue: mean {queue.mean():.0f} B, max {queue.max():.0f} B")
    print(f"Packet drops anywhere: {net.total_drops()}")
    agent = topo.bottleneck("main").agent
    print(
        f"TFC port state: W={agent.window:.0f} B, T={agent.tokens:.0f} B, "
        f"rtt_b={agent.rttb_ns / 1000:.1f} us, slots={agent.slot_index}"
    )


if __name__ == "__main__":
    main()
