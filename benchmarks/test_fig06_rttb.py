"""Figure 6 — accuracy of the measured queue-free RTT (rtt_b).

Paper: measured rtt_b ~59 us vs referenced RTT ~65 us, a small constant
gap caused by host processing jitter (which the token adjustment then
compensates).  This benchmark regenerates both CDFs.
"""

from conftest import run_once

from repro.experiments import run_fig06
from repro.metrics.stats import percentile


def test_fig06_rttb_accuracy(benchmark, report):
    result = run_once(benchmark, run_fig06, duration_s=3.0, sample_interval_s=0.25)

    rows = []
    for label, samples in (
        ("measured rtt_b", result.rttb_samples_us),
        ("referenced RTT", result.reference_samples_us),
    ):
        rows.append(
            [
                label,
                f"{min(samples):.1f}",
                f"{percentile(samples, 50):.1f}",
                f"{percentile(samples, 90):.1f}",
                f"{max(samples):.1f}",
            ]
        )
    report(
        "Fig. 6: RTT estimate CDF summary (us)",
        ["series", "min", "p50", "p90", "max"],
        rows,
    )
    print(f"gap (reference mean - rtt_b mean): {result.gap_us:.1f} us")

    # Paper shape: rtt_b sits a small, roughly constant gap below the
    # reference because it excludes host processing jitter.
    assert 0 < result.gap_us < 60
    assert result.rttb_mean_us < result.reference_mean_us
