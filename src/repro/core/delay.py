"""The sub-MSS ACK delay function (paper section 4.6, "Delay Arbiter").

When thousands of flows share a port, ``W = T/E`` drops below one MSS and a
sender that received such a window could still only inject whole packets —
the classic incast overload.  TFC fixes this *at the switch*: a per-port
token-bucket counter accrues credit at the line rate; an RMA ACK carrying a
window smaller than one MSS is only released (with its window rounded up to
exactly one MSS) when a full MSS of credit is available, otherwise it waits
in a FIFO delay queue.  ACKs carrying a window of at least one MSS pass
through immediately but still debit the counter, so the *total* window
granted per slot never exceeds the token value.

The paper does not bound the counter's debt; we floor it at ``-cap`` so a
transient of large windows cannot lock the port out forever (DESIGN.md
section 5).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..net.packet import ETHERNET_OVERHEAD, HEADER_BYTES, MSS, Packet
from ..sim.engine import Event, Simulator
from ..sim.trace import TFC_ACK_DELAYED, Tracer
from ..sim.units import SECOND

PER_PACKET_OVERHEAD = HEADER_BYTES + ETHERNET_OVERHEAD


class DelayArbiter:
    """Per-port credit counter plus the FIFO queue of parked RMA ACKs."""

    def __init__(
        self,
        sim: Simulator,
        rate_bps: int,
        release: Callable[[Packet], None],
        tracer: Optional[Tracer] = None,
        queue_limit: int = 65536,
        mss: int = MSS,
        fill_fraction: float = 1.0,
        per_packet_overhead: int = PER_PACKET_OVERHEAD,
    ):
        self._sim = sim
        # Credit accrues at fill_fraction x line rate (TFC's utilisation
        # target rho0): in the sub-MSS regime the rho feedback loop cannot
        # act (grants are pinned to one MSS), so the bucket itself must
        # leave the head-room that keeps queues near zero.
        self.rate_bps = max(round(rate_bps * fill_fraction), 1)
        self._release = release
        self._tracer = tracer
        self.queue_limit = queue_limit
        self.mss = mss
        self.per_packet_overhead = per_packet_overhead
        self.credit: float = float(mss)  # one packet of head-room at boot
        self.cap: float = float(2 * mss)
        self._last_update_ns = sim.now
        self._queue: Deque[Packet] = deque()
        self._pending: Optional[Event] = None
        self.delayed_acks = 0
        self.dropped_acks = 0

    # ------------------------------------------------------------------
    def reset(self, cap_bytes: Optional[float] = None) -> None:
        """Forget all state, as after a switch reboot (fault injection).

        Parked ACKs are lost with the rest of the port state — their
        senders recover through probe retries or RTO, which is exactly the
        recovery path a chaos run wants to exercise.  Credit restarts at
        the boot value of one MSS.
        """
        self.dropped_acks += len(self._queue)
        self._queue.clear()
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self.credit = float(self.mss)
        self._last_update_ns = self._sim.now
        if cap_bytes is not None:
            self.set_cap(cap_bytes)

    def set_cap(self, cap_bytes: float) -> None:
        """Track the port's current token value (cap >= 2 MSS always)."""
        self.cap = max(cap_bytes, 2.0 * self.mss)

    def _refresh_credit(self) -> None:
        now = self._sim.now
        elapsed = now - self._last_update_ns
        if elapsed > 0:
            self.credit = min(
                self.credit + self.rate_bps * elapsed / (8 * SECOND), self.cap
            )
            self._last_update_ns = now

    def _debit(self, amount: float) -> None:
        self.credit = max(self.credit - amount, -self.cap)

    # ------------------------------------------------------------------
    def offer(self, ack: Packet) -> bool:
        """Process an arriving RMA ACK.

        Returns True when the arbiter kept the packet (it will be released
        later through the ``release`` callback); False when the caller
        should forward it normally (its window may have been rewritten).

        Every grant is gated on the credit counter, not only sub-MSS ones:
        the paper's stated invariant is that the windows granted per slot
        never exceed the token value, and letting large-window ACKs bypass
        the bucket would break it exactly when it matters (a flash crowd of
        acquisition probes returning stale windows).  Sub-MSS windows are
        rounded up to one MSS at release, as in the paper.
        """
        self._refresh_credit()
        cost = self._cost_of(ack)
        if ack.window >= self.mss:
            # Paper rule: an ACK already carrying at least one MSS passes
            # immediately and debits the counter (possibly into debt, down
            # to -cap).  The debt then delays the sub-MSS grants behind it,
            # which is exactly the compensation the token-bucket analogy
            # intends; adding latency to large grants themselves would
            # throttle the link below the token allocation (rho0 would be
            # applied twice).
            self._debit(cost)
            return False
        if not self._queue and self.credit >= cost - self._EPSILON:
            ack.window = float(self.mss)
            self._debit(cost)
            return False
        if len(self._queue) >= self.queue_limit:
            self.dropped_acks += 1
            if self._tracer is not None:
                self._tracer.emit(TFC_ACK_DELAYED, packet=ack, dropped=True)
            return True  # consumed (dropped); sender's RTO will recover
        self._queue.append(ack)
        self.delayed_acks += 1
        if self._tracer is not None:
            self._tracer.emit(TFC_ACK_DELAYED, packet=ack, dropped=False)
        self._schedule_release()
        return True

    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Number of ACKs currently parked."""
        return len(self._queue)

    def _cost_of(self, ack: Packet) -> float:
        # Charge wire bytes, not payload bytes: a grant of w payload bytes
        # puts ceil(w / MSS) frames of header+framing overhead on the link
        # as well, and ignoring that makes the paced inflow exceed the line
        # rate by the overhead ratio (the queue then integrates up).
        # Clamp to the bucket capacity so a grant larger than the cap can
        # always eventually be paid for (it would deadlock otherwise).
        payload = max(ack.window, float(self.mss))
        frames = -(-int(payload) // self.mss)
        return min(payload + frames * self.per_packet_overhead, self.cap)

    def _head_cost(self) -> float:
        return self._cost_of(self._queue[0])

    # Float headroom for credit comparisons: without it a deficit of a few
    # ULPs truncates to a zero-delay reschedule and the release loop spins
    # at one simulated instant forever.
    _EPSILON = 1e-6

    def _schedule_release(self) -> None:
        if self._pending is not None or not self._queue:
            return
        deficit = self._head_cost() - self.credit
        if deficit <= self._EPSILON:
            delay_ns = 0
        else:
            delay_ns = max(
                -(-int(deficit * 8 * SECOND) // self.rate_bps), 1
            )
        self._pending = self._sim.schedule(delay_ns, self._release_head)

    def _release_head(self) -> None:
        self._pending = None
        self._refresh_credit()
        if not self._queue:
            return
        cost = self._head_cost()
        if self.credit < cost - self._EPSILON:
            self._schedule_release()
            return
        ack = self._queue.popleft()
        ack.window = float(self.mss)
        self._debit(cost)
        self._release(ack)
        if self._queue:
            self._schedule_release()
