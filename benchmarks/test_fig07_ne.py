"""Figure 7 — accuracy of the effective-flow count with inactive flows.

Paper: with n2 = 5 steady flows and n1 cross-rack flows ramping 1 -> 10
then going silent, the measured E tracks ``n1 / rtt_ratio + n2`` and
silent flows leave the count immediately.
"""

from conftest import run_once

from repro.experiments import run_fig07


def test_fig07_effective_flows(benchmark, report):
    result = run_once(benchmark, run_fig07)

    rows = [
        [f"{t:.3f}", f"{measured:.1f}", f"{expected:.1f}"]
        for t, measured, expected in result.samples[:: max(len(result.samples) // 20, 1)]
    ]
    report(
        "Fig. 7: measured vs expected effective flows",
        ["time (s)", "measured E", "expected E"],
        rows,
    )
    print(f"rtt ratio (cross/intra): {result.rtt_ratio:.2f}")
    print(f"mean |error|: {result.mean_error():.2f} flows")

    # Shape: the baseline matches n2 exactly; the count rises with the
    # ramp and returns when the flows go silent (they are excluded even
    # though their connections stay open).
    baseline = result.samples[0][1]
    assert abs(baseline - 5) <= 1
    peak = max(m for _, m, _ in result.samples)
    final = result.samples[-1][1]
    assert peak > baseline + 2
    assert final <= baseline + 2
