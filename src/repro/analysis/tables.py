"""Table rendering for experiment reports.

Benchmarks print fixed-width ASCII tables; EXPERIMENTS.md wants the same
rows as Markdown.  Both renderers take the same (headers, rows) input so
a result can be shown either way.
"""

from __future__ import annotations

from typing import Sequence


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width right-aligned table (the benchmark report format)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells))
        if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def render(row):
        return "  ".join(str(c).rjust(w) for c, w in zip(row, widths))

    lines = [render(headers), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in cells)
    return "\n".join(lines)


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """GitHub-flavoured Markdown table (the EXPERIMENTS.md format)."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def format_rate(bps: float) -> str:
    """Human-readable rate."""
    if bps >= 1e9:
        return f"{bps / 1e9:.2f} Gbps"
    if bps >= 1e6:
        return f"{bps / 1e6:.0f} Mbps"
    return f"{bps / 1e3:.0f} kbps"


def format_bytes(count: float) -> str:
    """Human-readable byte count."""
    if count >= 1e6:
        return f"{count / 1e6:.1f} MB"
    if count >= 1e3:
        return f"{count / 1e3:.1f} KB"
    return f"{count:.0f} B"


def format_duration_us(us: float) -> str:
    """Human-readable duration given microseconds."""
    if us >= 1e6:
        return f"{us / 1e6:.2f} s"
    if us >= 1e3:
        return f"{us / 1e3:.2f} ms"
    return f"{us:.0f} us"
