"""Tiny Buffer TCP — NewReno tuned for switches with tens-of-KB buffers.

The tiny-buffer line of work (Enachescu et al., "Routers with very small
buffers"; the Tiny Buffer TCP baseline in the TFC related work) shows
that core buffers can shrink from a full bandwidth-delay product to a few
dozen packets *if* senders stop dumping whole windows back to back:
paced, sub-exponential window growth keeps the instantaneous queue near
the mean instead of the burst peak.

Two halves, matching that argument:

* **Fabric half** (:func:`make_tbtcp_queue`, wired through the protocol's
  ``queue_factory`` hook): switch ports get drop-tail queues capped at
  ``TbtcpParams.buffer_cap_bytes`` (default 48 KB ≈ 32 MSS segments)
  regardless of the physical buffer the topology was built with — the
  premise of the experiment is that the buffer *is* tiny.
* **Endpoint half** (:class:`TbtcpSender`): NewReno with paced growth —
  slow start gains ``pace_gain`` (< 1) of the bytes acked per RTT instead
  of doubling, and the congestion window is capped at ``cwnd_cap_bytes``
  so a single flow can never queue more than a few dozen segments at the
  bottleneck.

Both knobs live in :class:`TbtcpParams`; the registry's typed params slot
carries one instance to the queue factory, and the sender reads the same
defaults (per-flow overrides are constructor keywords, used by tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.packet import MSS, MTU
from ..net.queues import DropTailQueue
from .base import Packet
from .newreno import NewRenoReceiver, NewRenoSender


@dataclass(frozen=True)
class TbtcpParams:
    """Tiny-buffer fabric and pacing constants."""

    buffer_cap_bytes: int = 48_000
    """Switch-port buffer cap (the 'tiny' in Tiny Buffer TCP); the
    physical ``buffer_bytes`` still applies when it is smaller."""

    cwnd_cap_bytes: int = 64 * MSS
    """Upper bound on any flow's congestion window."""

    pace_gain: float = 0.5
    """Fraction of newly acked bytes added to cwnd in slow start (1.0
    would be standard doubling; 0.5 grows 1.5x per RTT)."""

    def __post_init__(self) -> None:
        if self.buffer_cap_bytes < 2 * MTU:
            raise ValueError(
                f"buffer cap must hold at least two MTUs ({2 * MTU} B), "
                f"got {self.buffer_cap_bytes}"
            )
        if self.cwnd_cap_bytes < 2 * MSS:
            raise ValueError(
                f"cwnd cap must be at least two segments, got {self.cwnd_cap_bytes}"
            )
        if not 0.0 < self.pace_gain <= 1.0:
            raise ValueError(
                f"pace gain must be in (0, 1], got {self.pace_gain}"
            )


DEFAULT_TBTCP_PARAMS = TbtcpParams()


def make_tbtcp_queue(
    params: TbtcpParams, buffer_bytes: int, rate_bps: int
) -> DropTailQueue:
    """Switch queue for a tiny-buffer fabric: drop-tail, capped capacity."""
    return DropTailQueue(min(buffer_bytes, params.buffer_cap_bytes))


class TbtcpSender(NewRenoSender):
    """NewReno with paced slow start and a hard congestion-window cap."""

    protocol_name = "tbtcp"

    def __init__(self, *args, params: TbtcpParams = DEFAULT_TBTCP_PARAMS, **kwargs):
        super().__init__(*args, **kwargs)
        self.params = params
        # The cap substitutes for the usual "infinite" initial ssthresh:
        # growth above it is pointless when the window can never get there.
        self.ssthresh = min(self.ssthresh, float(params.cwnd_cap_bytes))

    def on_ack_accepted(self, packet: Packet, newly_acked: int) -> None:
        if not self.in_recovery and self.cwnd < self.ssthresh:
            # Paced slow start: gain a fraction of the acked bytes per
            # RTT, bounding the burst a new flow injects into the tiny
            # buffer (the base class would add the full acked amount).
            self.cwnd += self.params.pace_gain * min(newly_acked, MSS)
            self.cwnd = min(self.cwnd, float(self.params.cwnd_cap_bytes))
            return
        super().on_ack_accepted(packet, newly_acked)
        self.cwnd = min(self.cwnd, float(self.params.cwnd_cap_bytes))

    def on_duplicate_ack(self, packet: Packet) -> None:
        super().on_duplicate_ack(packet)
        self.cwnd = min(self.cwnd, float(self.params.cwnd_cap_bytes))


class TbtcpReceiver(NewRenoReceiver):
    """Plain cumulative-ACK receiver (pacing is sender-side only)."""
