"""Figure 14 — sensitivity to the expected utilisation rho0.

Paper: goodput tracks rho0 (880 -> 940 Mbps across 0.90 -> 1.00) and the
queue stays small until rho0 approaches 1.0, where RTT variance lets a
standing queue build (~6 KB at rho0 = 1.0).
"""

from conftest import run_once

from repro.experiments import run_fig14

RHOS = (0.90, 0.92, 0.94, 0.96, 0.98, 1.00)


def test_fig14_rho_sweep(benchmark, report):
    points = run_once(benchmark, run_fig14, rho_values=RHOS, duration_s=1.0)

    report(
        "Fig. 14: goodput and queue vs rho0 (5 flows -> H6)",
        ["rho0", "goodput (Mbps)", "queue mean (B)", "queue max (B)"],
        [
            [
                f"{p.rho0:.2f}",
                f"{p.goodput_bps / 1e6:.0f}",
                f"{p.queue_mean_bytes:.0f}",
                f"{p.queue_max_bytes:.0f}",
            ]
            for p in points
        ],
    )

    # Goodput non-decreasing in rho0 (allow small sampling noise).
    goodputs = [p.goodput_bps for p in points]
    assert goodputs[-1] >= goodputs[0]
    assert all(b >= a - 0.03e9 for a, b in zip(goodputs, goodputs[1:]))
    # The queue grows as rho0 -> 1.0 and is largest at 1.0.
    assert points[-1].queue_mean_bytes >= points[0].queue_mean_bytes
    # No losses anywhere in the sweep.
    assert all(p.drops == 0 for p in points)
