"""Parallel experiment runner: determinism across worker counts, crash
surfacing, seed derivation, and the serial fallback path."""

import pickle

import pytest

from repro.experiments.common import derive_cell_seed
from repro.experiments.runner import (
    FIGURE_CELLS,
    CellSpec,
    RunnerError,
    default_plan,
    run_cells,
)

# Two small, distinct fig14 cells: cheap enough for a pool round-trip on a
# single-CPU machine, rich enough that a determinism break would show.
QUICK_SPECS = [
    CellSpec("fig14", {"rho0": 0.94, "n_flows": 2, "duration_s": 0.05}),
    CellSpec("fig14", {"rho0": 1.00, "n_flows": 2, "duration_s": 0.05}),
]


def test_serial_matches_parallel():
    """jobs=1 and jobs=4 must return bit-identical ExperimentResults."""
    serial = run_cells(QUICK_SPECS, jobs=1, root_seed=7)
    parallel = run_cells(QUICK_SPECS, jobs=4, root_seed=7)
    assert serial == parallel
    # Results survive pickling unchanged (the pool relies on this).
    assert pickle.loads(pickle.dumps(serial)) == serial


def test_scheduler_backends_give_identical_results():
    """Every scheduler backend reproduces the default's cell results
    bit-for-bit (the runner's --scheduler flag must never change data)."""
    reference = run_cells(QUICK_SPECS, jobs=1, root_seed=7)
    for backend in ("heap", "calendar", "wheel"):
        pinned = run_cells(QUICK_SPECS, jobs=1, root_seed=7, scheduler=backend)
        assert pinned == reference, backend


def test_scheduler_env_restored_after_run(monkeypatch):
    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    run_cells(QUICK_SPECS[:1], jobs=1, root_seed=7, scheduler="calendar")
    import os

    assert "REPRO_SCHEDULER" not in os.environ


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError, match="unknown scheduler"):
        run_cells(QUICK_SPECS[:1], jobs=1, root_seed=7, scheduler="bogus")


# Small multi-path cells: one collision run and one fat-tree benchmark
# run, each under a policy that actually exercises the equal-cost picks.
MULTIPATH_SPECS = [
    CellSpec(
        "ecmp",
        {"protocol": "tfc", "routing": "ecmp", "n_flows": 4, "duration_s": 0.02},
    ),
    CellSpec(
        "mpath",
        {"protocol": "tfc", "routing": "spray", "duration_s": 0.05, "drain_s": 0.05},
    ),
]


def test_multipath_cells_serial_matches_parallel():
    """Routing policies keep --jobs N bit-identical to a serial run."""
    serial = run_cells(MULTIPATH_SPECS, jobs=1, root_seed=7)
    parallel = run_cells(MULTIPATH_SPECS, jobs=2, root_seed=7)
    assert serial == parallel
    assert pickle.loads(pickle.dumps(serial)) == serial


def test_routing_env_pins_policy_and_is_restored(monkeypatch):
    """run_cells(routing=...) exports REPRO_ROUTING for the cells' own
    topology builds and restores the environment afterwards."""
    import os

    monkeypatch.delenv("REPRO_ROUTING", raising=False)
    # fig14 cells build their networks internally; pinning the policy
    # through the env must not change single-bottleneck results.
    reference = run_cells(QUICK_SPECS, jobs=1, root_seed=7)
    pinned = run_cells(QUICK_SPECS, jobs=1, root_seed=7, routing="ecmp")
    assert pinned == reference
    assert "REPRO_ROUTING" not in os.environ


def test_unknown_routing_rejected():
    with pytest.raises(ValueError, match="unknown routing"):
        run_cells(QUICK_SPECS[:1], jobs=1, root_seed=7, routing="bogus")


def test_profile_dir_writes_one_stats_file_per_cell(tmp_path):
    """--profile produces loadable pstats files and identical results."""
    import pstats

    profiled = run_cells(
        QUICK_SPECS, jobs=1, root_seed=7, profile_dir=str(tmp_path)
    )
    reference = run_cells(QUICK_SPECS, jobs=1, root_seed=7)
    assert profiled == reference
    files = sorted(tmp_path.glob("cell_*.prof"))
    assert len(files) == len(QUICK_SPECS)
    stats = pstats.Stats(str(files[0]))
    assert stats.total_calls > 0


def test_profile_dir_composes_with_process_pool(tmp_path):
    """--profile with --jobs > 1: each worker dumps its own cell's stats
    (simulation frames, not pool plumbing) and results stay identical."""
    import pstats

    profiled = run_cells(
        QUICK_SPECS, jobs=2, root_seed=7, profile_dir=str(tmp_path)
    )
    reference = run_cells(QUICK_SPECS, jobs=1, root_seed=7)
    assert profiled == reference
    files = sorted(tmp_path.glob("cell_*.prof"))
    assert len(files) == len(QUICK_SPECS)
    for path in files:
        stats = pstats.Stats(str(path))
        assert stats.total_calls > 0
        # The profile saw the simulation itself, not just pool plumbing.
        assert any(
            "engine" in str(func) for func in stats.stats  # type: ignore[attr-defined]
        )


def test_results_in_submission_order():
    results = run_cells(QUICK_SPECS, jobs=1, root_seed=7)
    assert [r.scalars["rho0"] for r in results] == [0.94, 1.00]


def test_cell_seed_depends_on_identity_not_order():
    """Cell seeds derive from (root_seed, labels), not execution order."""
    a = CellSpec("fig14", {"rho0": 0.94}).resolved(root_seed=1)
    b = CellSpec("fig14", {"rho0": 1.00}).resolved(root_seed=1)
    assert a.kwargs["seed"] != b.kwargs["seed"]
    # Stable across calls and independent of sibling cells.
    assert a.kwargs["seed"] == CellSpec("fig14", {"rho0": 0.94}).resolved(1).kwargs["seed"]
    # Different root seeds give different cell seeds.
    assert a.kwargs["seed"] != CellSpec("fig14", {"rho0": 0.94}).resolved(2).kwargs["seed"]
    # An explicitly pinned seed is left alone.
    pinned = CellSpec("fig14", {"rho0": 0.94, "seed": 5}).resolved(1)
    assert pinned.kwargs["seed"] == 5


def test_derive_cell_seed_is_stable():
    """The derivation is a pure hash — pin one value so it never drifts."""
    assert derive_cell_seed(0, "fig14", "rho0=0.94") == derive_cell_seed(
        0, "fig14", "rho0=0.94"
    )
    assert derive_cell_seed(0, "a") != derive_cell_seed(0, "b")


def test_unknown_figure_raises_runner_error_serial():
    with pytest.raises(RunnerError, match="unknown figure"):
        run_cells([CellSpec("fig99", {})], jobs=1)


def test_worker_crash_surfaces_with_cell_label():
    """A cell failing inside a pool worker names the cell in the error."""
    specs = [
        CellSpec("fig14", {"rho0": 0.94, "n_flows": 2, "duration_s": 0.05}),
        CellSpec("fig14", {"rho0": 1.00, "no_such_kwarg": True}),
    ]
    with pytest.raises(RunnerError, match="no_such_kwarg"):
        run_cells(specs, jobs=2)


def test_telemetry_dir_exports_per_cell_files(tmp_path, monkeypatch):
    """--telemetry DIR writes one metrics/slots/flight trio per cell and
    leaves the results bit-identical to a telemetry-off run."""
    import os

    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    monkeypatch.delenv("REPRO_TELEMETRY_DIR", raising=False)
    reference = run_cells(QUICK_SPECS, jobs=1, root_seed=7)
    with_telemetry = run_cells(
        QUICK_SPECS, jobs=1, root_seed=7, telemetry_dir=str(tmp_path)
    )
    assert with_telemetry == reference
    metrics = sorted(tmp_path.glob("*.metrics.jsonl"))
    assert len(metrics) == len(QUICK_SPECS)
    assert len(list(tmp_path.glob("*.slots.csv"))) == len(QUICK_SPECS)
    assert len(list(tmp_path.glob("*.flight.jsonl"))) == len(QUICK_SPECS)
    # the env pins are restored afterwards
    assert "REPRO_TELEMETRY" not in os.environ
    assert "REPRO_TELEMETRY_DIR" not in os.environ


def test_telemetry_mode_without_dir_records_quietly(tmp_path):
    """telemetry="counters" without a directory attaches sessions but
    writes nothing (and must not change results)."""
    reference = run_cells(QUICK_SPECS[:1], jobs=1, root_seed=7)
    recorded = run_cells(
        QUICK_SPECS[:1], jobs=1, root_seed=7, telemetry="counters"
    )
    assert recorded == reference
    assert list(tmp_path.iterdir()) == []


def test_telemetry_parallel_workers_export_too(tmp_path):
    """Pool workers inherit REPRO_TELEMETRY* and export from inside the
    worker process."""
    results = run_cells(
        QUICK_SPECS, jobs=2, root_seed=7, telemetry_dir=str(tmp_path)
    )
    assert results == run_cells(QUICK_SPECS, jobs=1, root_seed=7)
    assert len(list(tmp_path.glob("*.metrics.jsonl"))) == len(QUICK_SPECS)


def test_unknown_telemetry_rejected():
    with pytest.raises(ValueError, match="unknown telemetry"):
        run_cells(QUICK_SPECS[:1], jobs=1, root_seed=7, telemetry="bogus")


def test_run_cells_accepts_simconfig(tmp_path):
    """A prebuilt SimConfig is honoured verbatim (seed included)."""
    from repro.config import SimConfig

    cfg = SimConfig(seed=7, scheduler="heap", telemetry="full",
                    telemetry_dir=str(tmp_path))
    results = run_cells(QUICK_SPECS, jobs=1, config=cfg)
    assert results == run_cells(QUICK_SPECS, jobs=1, root_seed=7)
    assert len(list(tmp_path.glob("*.metrics.jsonl"))) == len(QUICK_SPECS)


# ----------------------------------------------------------------------
# --cell-timeout: killable per-cell processes (satellite of the lossless
# robustness PR — a hung cell must not hang the batch)
# ----------------------------------------------------------------------
def test_cell_timeout_under_budget_matches_untimed_run():
    """Cells that finish inside the budget are bit-identical to a plain
    run — the process round-trip must not perturb results."""
    reference = run_cells(QUICK_SPECS, jobs=1, root_seed=7)
    guarded = run_cells(QUICK_SPECS, jobs=1, root_seed=7, cell_timeout=120.0)
    assert guarded == reference
    guarded_parallel = run_cells(
        QUICK_SPECS, jobs=2, root_seed=7, cell_timeout=120.0
    )
    assert guarded_parallel == reference


def test_cell_timeout_kills_hung_cell_deterministically():
    """A cell exceeding the budget is terminated and reported as the
    deterministic ``timed_out`` placeholder; its neighbours complete."""
    specs = [
        QUICK_SPECS[0],
        # A 30-simulated-second fig06 run takes minutes of wall-clock —
        # it will never finish inside the budget; the quick fig14 cell
        # finishes in well under a second even on a loaded machine.
        CellSpec("fig06", {"duration_s": 30.0}),
    ]
    results = run_cells(specs, jobs=2, root_seed=7, cell_timeout=4.0)
    reference = run_cells(QUICK_SPECS[:1], jobs=1, root_seed=7)
    assert results[0] == reference[0]
    assert results[1].name == "fig06"
    assert results[1].scalars == {"timed_out": 1.0, "cell_timeout_s": 4.0}
    assert results[1].series == {}


def test_cell_timeout_result_is_pure_function_of_spec():
    """The placeholder depends only on (spec, budget) — two kills of the
    same cell compare equal, which is what keeps timed-out batches
    reproducible."""
    from repro.experiments.runner import timed_out_result

    spec = CellSpec("fig06", {"duration_s": 30.0}).resolved(7)
    assert timed_out_result(spec, 1.5) == timed_out_result(spec, 1.5)
    assert timed_out_result(spec, 1.5) != timed_out_result(spec, 2.0)


def test_cell_timeout_surfaces_worker_errors():
    """A cell that *fails* (rather than hangs) under the timeout path
    still raises RunnerError naming the cell."""
    specs = [CellSpec("fig14", {"rho0": 1.00, "no_such_kwarg": True})]
    with pytest.raises(RunnerError, match="no_such_kwarg"):
        run_cells(specs, jobs=1, cell_timeout=60.0)


def test_cell_timeout_cli_rejects_non_positive():
    from repro.experiments.runner import main

    with pytest.raises(SystemExit):
        main(["--figures", "fig14", "--cell-timeout", "0"])


def test_default_plan_covers_every_figure():
    figures = sorted(FIGURE_CELLS)
    specs = default_plan(figures, quick=True)
    assert {s.figure for s in specs} == set(figures)
    # Every planned cell names a registered entry point.
    for spec in specs:
        assert spec.figure in FIGURE_CELLS


def test_default_plan_rejects_unknown_figure():
    with pytest.raises(RunnerError, match="no default plan"):
        default_plan(["fig99"])
