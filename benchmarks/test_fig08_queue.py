"""Figure 8 — queue length over time under TFC / DCTCP / TCP.

Paper: with four staggered long flows into one 1 Gbps port (256 KB
buffer), TFC holds near-zero queue (max ~9 KB), DCTCP oscillates around
its ~30 KB marking threshold, and TCP pins the queue at the full buffer.
"""

from conftest import run_once

from repro.experiments import run_staggered_flows


def run_all():
    return {
        proto: run_staggered_flows(proto, interval_s=0.2, tail_s=0.4)
        for proto in ("tfc", "dctcp", "tcp")
    }


def test_fig08_queue_length(benchmark, report):
    results = run_once(benchmark, run_all)

    steady_after = int(0.2e9)
    rows = [
        [
            proto.upper(),
            f"{r.queue_mean_bytes(steady_after) / 1000:.1f}",
            f"{r.queue_max_bytes() / 1000:.1f}",
            r.drops,
        ]
        for proto, r in results.items()
    ]
    report(
        "Fig. 8: bottleneck queue (4 staggered flows, 1 Gbps, 256 KB buffer)",
        ["protocol", "mean queue (KB)", "max queue (KB)", "drops"],
        rows,
    )

    tfc, dctcp, tcp = results["tfc"], results["dctcp"], results["tcp"]
    assert tfc.queue_mean_bytes(steady_after) < dctcp.queue_mean_bytes(steady_after)
    assert dctcp.queue_mean_bytes(steady_after) < tcp.queue_mean_bytes(steady_after)
    assert tfc.queue_max_bytes() < 40_000       # near zero-queueing
    assert tcp.queue_max_bytes() > 200_000      # buffer-filling
    assert tfc.drops == 0 and tcp.drops > 0
