"""ML-collective traffic: ring and tree all-reduce with phase barriers.

Distributed training dominates modern data-center east-west traffic, and
its shape is nothing like the query/short/background mix of the paper's
benchmark: every iteration, *all* workers exchange gradient shards in
synchronized bursts, and nobody proceeds until the slowest transfer of
the phase finishes.  That barrier structure is exactly what stresses a
flow-control scheme — one congested hop stalls the whole job, and
fan-in at phase boundaries looks like a coordinated incast.

:class:`AllReduceWorkload` reproduces the two canonical topologies:

* **ring** — each step, worker ``i`` bursts a gradient shard to worker
  ``(i + 1) % N``; a full all-reduce is ``2 * (N - 1)`` steps
  (reduce-scatter then all-gather), each step barrier-synchronised.
* **tree** — a binary reduction tree over the workers: leaves send up
  level by level (reduce), then the root's result fans back down level
  by level (broadcast).  Each tree level is one barrier step.

Steps are event-driven (a step ends when the last flow of the step
completes — no polling), iterations are separated by an optional
``compute_gap_ns`` modelling backward-pass compute, and every flow is
recorded in an :class:`~repro.metrics.fct.FctCollector` under the
``"collective"`` category, tagged with the workload's tenant.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..metrics.fct import FctCollector
from ..net.host import Host
from ..sim.units import MILLISECOND
from ..transport.registry import open_flow

ALLREDUCE_MODES = ("ring", "tree")


def ring_steps(n: int) -> List[List[Tuple[int, int]]]:
    """The ``2 * (n - 1)`` ring steps as (src, dst) index pairs per step.

    Every step is the same full ring permutation — worker ``i`` sends to
    ``i + 1 mod n`` — repeated for the reduce-scatter and all-gather
    halves of the collective.  Returned explicitly so tests (and the
    tree variant) share one step-schedule representation.
    """
    if n < 2:
        raise ValueError("ring all-reduce needs at least two workers")
    ring = [[(i, (i + 1) % n) for i in range(n)]]
    return ring * (2 * (n - 1))


def tree_steps(n: int) -> List[List[Tuple[int, int]]]:
    """Binary-tree steps: reduce up level by level, then broadcast down.

    Worker ``i``'s parent is ``(i - 1) // 2``.  The reduce phase walks
    depths deepest-first (children at one depth send to their parents in
    one barrier step); the broadcast phase replays the same levels in
    reverse with the direction flipped.
    """
    if n < 2:
        raise ValueError("tree all-reduce needs at least two workers")
    depth_of = [0] * n
    for i in range(1, n):
        depth_of[i] = depth_of[(i - 1) // 2] + 1
    max_depth = max(depth_of)
    reduce_phase = []
    for depth in range(max_depth, 0, -1):
        reduce_phase.append(
            [(i, (i - 1) // 2) for i in range(1, n) if depth_of[i] == depth]
        )
    broadcast_phase = [
        [(dst, src) for (src, dst) in step] for step in reversed(reduce_phase)
    ]
    return reduce_phase + broadcast_phase


class AllReduceWorkload:
    """Barrier-synchronised all-reduce iterations over a worker group.

    ``chunk_bytes`` is the gradient shard each worker moves per step (for
    a model of ``S`` bytes ring-sharded over ``N`` workers that is
    ``S / N``).  Each step opens fresh flows — one connection per
    (src, dst) transfer, the way collective libraries run one transfer
    per algorithm step — and the next step starts only when *every* flow
    of the current step has fully completed.  ``iterations`` all-reduce
    rounds are separated by ``compute_gap_ns`` of silence.
    """

    category = "collective"

    def __init__(
        self,
        hosts: Sequence[Host],
        protocol: str,
        chunk_bytes: int = 64_000,
        iterations: int = 2,
        mode: str = "ring",
        compute_gap_ns: int = 0,
        start_ns: int = 0,
        min_rto_ns: int = 10 * MILLISECOND,
        tenant: Optional[str] = None,
        collector: Optional[FctCollector] = None,
    ):
        if mode not in ALLREDUCE_MODES:
            raise ValueError(
                f"unknown all-reduce mode {mode!r}; "
                f"choose from {', '.join(ALLREDUCE_MODES)}"
            )
        if chunk_bytes <= 0 or iterations <= 0:
            raise ValueError("chunk_bytes and iterations must be positive")
        if compute_gap_ns < 0:
            raise ValueError("compute_gap_ns must be non-negative")
        self.hosts = list(hosts)
        self.protocol = protocol
        self.chunk_bytes = chunk_bytes
        self.total_iterations = iterations
        self.mode = mode
        self.compute_gap_ns = compute_gap_ns
        self.min_rto_ns = min_rto_ns
        self.tenant = tenant
        self.collector = collector if collector is not None else FctCollector()
        self.sim = self.hosts[0].sim

        self.steps = (
            ring_steps(len(self.hosts))
            if mode == "ring"
            else tree_steps(len(self.hosts))
        )
        self.iterations_completed = 0
        self.steps_completed = 0
        self.flows_launched = 0
        self.finished = False
        #: Sim time the final iteration completed (None until finished).
        self.finished_ns: Optional[int] = None
        #: Wall-clock (sim) duration of each completed iteration.
        self.iteration_times_ns: List[int] = []
        self._step_index = 0
        self._outstanding = 0
        self._iteration_start_ns: Optional[int] = None
        self.sim.schedule_at(max(start_ns, self.sim.now), self._begin_step)

    # ------------------------------------------------------------------
    @property
    def steps_per_iteration(self) -> int:
        return len(self.steps)

    def _begin_step(self) -> None:
        if self.finished:
            return
        if self._iteration_start_ns is None:
            self._iteration_start_ns = self.sim.now
        pairs = self.steps[self._step_index]
        self._outstanding = len(pairs)
        for src_index, dst_index in pairs:
            self.flows_launched += 1
            self.collector.expect()
            open_flow(
                self.hosts[src_index],
                self.hosts[dst_index],
                self.protocol,
                size_bytes=self.chunk_bytes,
                on_complete=self._flow_done,
                min_rto_ns=self.min_rto_ns,
                tenant=self.tenant,
            )

    def _flow_done(self, sender) -> None:
        self.collector.completion_handler(self.category)(sender)
        self._outstanding -= 1
        if self._outstanding > 0:
            return
        # Barrier: the slowest flow of the step just finished.
        self.steps_completed += 1
        self._step_index += 1
        if self._step_index < len(self.steps):
            self._begin_step()
            return
        # Iteration boundary.
        assert self._iteration_start_ns is not None
        self.iteration_times_ns.append(self.sim.now - self._iteration_start_ns)
        self.iterations_completed += 1
        self._step_index = 0
        self._iteration_start_ns = None
        if self.iterations_completed >= self.total_iterations:
            self.finished = True
            self.finished_ns = self.sim.now
            return
        if self.compute_gap_ns > 0:
            self.sim.schedule(self.compute_gap_ns, self._begin_step)
        else:
            self._begin_step()
