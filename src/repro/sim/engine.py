"""Discrete-event simulation kernel.

A :class:`Simulator` owns a monotonic integer-nanosecond clock and a binary
heap of pending events.  Events scheduled for the same instant fire in the
order they were scheduled (FIFO tie-breaking via a monotonically increasing
sequence number), which makes every run fully deterministic.

The kernel is deliberately tiny: components interact only through
``schedule`` / ``cancel`` and the read-only ``now`` property.  Everything
network-specific lives in :mod:`repro.net` and above.

Fast-path design (measured on the pinned dumbbell workloads, see
``repro.perf``):

* The heap stores ``(time, seq, event)`` tuples, not :class:`Event`
  objects, so heap sift compares happen in C tuple comparison instead of
  ``Event.__lt__`` — the single largest cost in the seed kernel.
  ``(time, seq)`` is unique per event, so the comparison never reaches the
  event object itself.
* Executed and cancelled-and-popped events are recycled through a free
  list instead of being garbage; :meth:`schedule` reuses them.  A retired
  event keeps ``cancelled = True`` until reuse, so a stale ``cancel()``
  on an already-fired handle is a no-op.  The one contract this imposes on
  callers: do not retain an :class:`Event` handle across its own firing
  and cancel it later — use :class:`repro.sim.timers.Timer`, which clears
  its handle before the callback runs, for restartable semantics.
* Live (non-cancelled) events are counted incrementally, so
  :attr:`pending_events` is O(1) instead of an O(n) heap scan.
* When more than half the heap is dead (cancelled timers that were never
  popped — long-RTO transports generate these in bulk) the heap is
  compacted in place, bounding both memory and sift depth.
"""

from __future__ import annotations

import heapq
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, List, Optional, Tuple

from .units import SECOND, to_seconds

Callback = Callable[..., None]

# Sentinels letting the run loop test bounds with plain comparisons
# instead of per-event ``is not None`` checks.
_NO_HORIZON = 1 << 62
_NO_LIMIT = 1 << 62

# Compaction fires when the heap holds more dead entries than live ones and
# is big enough for the O(n) rebuild to pay for itself.
_COMPACT_MIN_HEAP = 256

HeapEntry = Tuple[int, int, "Event"]


class Event:
    """A scheduled callback (the cancellation handle returned by ``schedule``).

    Events are created through :meth:`Simulator.schedule` and ordered by
    ``(time, seq)`` so the heap pops them in deterministic order.  Cancelling
    marks the event dead and drops its callback/argument references
    immediately (so cancelled retransmission timers stop pinning packets);
    the heap lazily discards the dead entry, or a compaction sweep removes
    it earlier.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "sim")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Optional[Callback],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Mark this event dead so the engine skips it when popped.

        Idempotent; also a no-op on an event that has already fired.  The
        callback and argument references are nulled out right away so the
        objects they pin (packets, senders) are reclaimable without waiting
        for the dead heap entry to surface.
        """
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = None
        self.args = ()
        sim = self.sim
        if sim is not None:
            sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time}ns #{self.seq} {name}{state}>"


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, negative delays)."""


class Simulator:
    """The event loop: a clock plus a priority queue of events."""

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._heap: List[HeapEntry] = []
        self._free: List[Event] = []
        self._live: int = 0
        self._dead: int = 0
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in integer nanoseconds."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current simulation time in float seconds (reporting only)."""
        return to_seconds(self._now)

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_ns: int, callback: Callback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns}ns in the past")
        time_ns = self._now + delay_ns
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time_ns
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
        else:
            event = Event(time_ns, seq, callback, args, self)
        _heappush(self._heap, (time_ns, seq, event))
        return event

    def schedule_at(self, time_ns: int, callback: Callback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, now is {self._now}ns"
            )
        return self.schedule(time_ns - self._now, callback, *args)

    # ------------------------------------------------------------------
    # Free-list / dead-entry bookkeeping (called from Event.cancel)
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._live -= 1
        self._dead += 1
        if (
            self._dead >= _COMPACT_MIN_HEAP
            and self._dead * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop dead entries and re-heapify, reusing the same list object.

        In-place (slice assignment) so the ``run`` loop's local alias of the
        heap stays valid even when a callback's cancel triggers compaction
        mid-run.
        """
        heap = self._heap
        free = self._free
        live_entries = []
        for entry in heap:
            event = entry[2]
            if event.cancelled:
                free.append(event)
            else:
                live_entries.append(entry)
        heap[:] = live_entries
        heapq.heapify(heap)
        self._dead = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until_ns: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events in order until the queue drains or a bound is hit.

        ``until_ns`` is inclusive: events scheduled exactly at ``until_ns``
        still execute, and the clock is left at ``until_ns`` if the horizon
        was reached (so samplers see the full window).  Returns the number of
        events processed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        processed = 0
        heap = self._heap
        free = self._free
        horizon = _NO_HORIZON if until_ns is None else until_ns
        limit = _NO_LIMIT if max_events is None else max_events
        try:
            while heap:
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    _heappop(heap)
                    self._dead -= 1
                    free.append(event)
                    continue
                if entry[0] > horizon or processed >= limit:
                    break
                _heappop(heap)
                self._now = entry[0]
                callback = event.callback
                args = event.args
                # Retire the handle before the callback runs: a stale
                # cancel() inside the callback must not double-count.
                event.cancelled = True
                event.callback = None
                event.args = ()
                callback(*args)
                free.append(event)
                processed += 1
        finally:
            self._running = False
            # Batched counter updates: nothing reads these mid-run, and
            # per-event attribute writes are measurable at this call rate.
            self._events_processed += processed
            self._live -= processed
        if until_ns is not None and self._now < until_ns:
            # Park the clock at the horizon unless a live event remains
            # inside it (only possible when max_events stopped us early).
            next_live = self._next_live_time()
            if next_live is None or next_live > until_ns:
                self._now = until_ns
        return processed

    def _next_live_time(self) -> Optional[int]:
        """Time of the earliest live event, discarding dead heap heads."""
        heap = self._heap
        free = self._free
        while heap:
            event = heap[0][2]
            if event.cancelled:
                heapq.heappop(heap)
                self._dead -= 1
                free.append(event)
                continue
            return heap[0][0]
        return None

    def run_for(self, duration_ns: int) -> int:
        """Run for ``duration_ns`` of simulated time from the current clock."""
        return self.run(until_ns=self._now + duration_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now / SECOND:.6f}s"
            f" pending={self._live} done={self._events_processed}>"
        )
