"""T-RACKs — receiver-driven tail-loss recovery bolted onto NewReno.

T-RACKs (Abdelmoniem & Bensaou, "Reducing latency in multi-tenant data
centers via cautious congestion watch") observes that short data-center
flows mostly die on *tail* losses: the last segments of a burst are
dropped, no further data arrives to generate duplicate ACKs, and the
sender sits out a full RTO (10 ms here — an eternity against ~100 us
RTTs).  The fix needs no sender changes: the *receiver* arms a short
timer whenever data arrives and, if the flow goes quiet with no FIN, it
retransmits a small train of duplicate ACKs for the byte it is missing.
The sender's ordinary fast-retransmit machinery (three dupacks → resend
``snd_una``) then recovers the tail in about one RTT.

The timer fires harmlessly on genuinely idle flows: the base sender only
counts duplicate ACKs while it has unacknowledged bytes in flight, so an
injected dupack train at ``flight == 0`` is a no-op.  Injected ACKs
carry ``sent_at=None``/``retransmitted=True`` so they never feed the
sender's RTT estimator (Karn's rule path).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.packet import Packet
from ..sim.timers import Timer
from ..sim.units import MILLISECOND
from .base import Host
from .newreno import DUPACK_THRESHOLD, NewRenoReceiver, NewRenoSender


@dataclass(frozen=True)
class TracksParams:
    """Receiver-side tail-loss probe constants."""

    tail_timer_ns: int = MILLISECOND
    """Quiet time after the last data arrival before the receiver probes;
    must sit well under the sender's min RTO (10 ms) to matter."""

    dupacks: int = DUPACK_THRESHOLD
    """Duplicate ACKs per probe — the sender's fast-retransmit threshold."""

    def __post_init__(self) -> None:
        if self.tail_timer_ns <= 0:
            raise ValueError(
                f"tail timer must be positive, got {self.tail_timer_ns}"
            )
        if self.dupacks < 1:
            raise ValueError(f"need at least one dupack, got {self.dupacks}")


DEFAULT_TRACKS_PARAMS = TracksParams()


class TracksSender(NewRenoSender):
    """Unmodified NewReno — T-RACKs is deliberately sender-transparent."""

    protocol_name = "tracks"


class TracksReceiver(NewRenoReceiver):
    """NewReno receiver with the T-RACKs tail-loss ACK timer."""

    def __init__(
        self,
        host: Host,
        flow_key,
        params: TracksParams = DEFAULT_TRACKS_PARAMS,
        **kwargs,
    ):
        super().__init__(host, flow_key, **kwargs)
        self.params = params
        self.tail_probes = 0
        self._tail_timer = Timer(
            self.sim, self._on_tail_timer, name=f"tracks:{flow_key}"
        )

    def on_packet(self, packet: Packet) -> None:
        super().on_packet(packet)
        if self.fin_seen:
            self._tail_timer.stop()
        elif packet.payload > 0 or (packet.syn and not packet.is_ack):
            # Any forward-direction activity re-arms the quiet timer.
            self._tail_timer.start(self.params.tail_timer_ns)

    def _on_tail_timer(self) -> None:
        if self.fin_seen:
            return
        # The flow went quiet mid-transfer: either the tail of a burst was
        # dropped (sender has bytes in flight and will fast-retransmit on
        # our dupack train) or the application paused (sender's dupack
        # counter ignores ACKs at flight == 0, so the probe is inert).
        self.tail_probes += 1
        for _ in range(self.params.dupacks):
            self._send_dupack()
        self._tail_timer.start(self.params.tail_timer_ns)

    def _send_dupack(self) -> None:
        src, dst, sport, dport = self.flow_key
        ack = Packet(dst, src, dport, sport, ack=self.rcv_nxt, is_ack=True)
        # Never an RTT sample: there is no fresh data packet to echo.
        ack.sent_at = None
        ack.retransmitted = True
        self.host.send(ack)

    def close(self) -> None:
        self._tail_timer.stop()
        super().close()
