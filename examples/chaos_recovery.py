#!/usr/bin/env python3
"""Chaos recovery: TFC under the full fault catalogue.

Four long-lived TFC flows share a 1 Gbps dumbbell bottleneck.  After a
warm-up, one fault primitive fires — a link flap, failing optics, a loss
burst, one-way ACK loss, a switch-state wipe, the silent death of the
delimiter flow, or a host pause — while the runtime invariant monitor
checks the control-loop envelope (token clamps, E >= 0, queue <= buffer,
window min-reduction) on every slot.  The script prints, per fault, the
pre-fault baseline, the goodput dip, the time to reconverge to 90% of
baseline, and the invariant violation count (expected: zero).

Every run is deterministic: topology, workload and fault schedule all
derive from one seed, so a chaos failure is replayable bit for bit.

Run::

    python examples/chaos_recovery.py [fault]

With no argument the whole catalogue runs (a few seconds per fault).
"""

import sys

from repro.experiments.chaos import FAULT_KINDS, main, run_chaos


def run_one(fault: str) -> None:
    result = run_chaos(fault)
    print(f"{fault}: {result.report.summary()}")
    print(f"  invariant checks: {result.invariant_checks}, "
          f"violations: {len(result.violations)}")
    for record in result.records:
        window = (
            "one-shot" if record.duration_ns is None
            else f"{record.duration_ns / 1e6:.1f} ms"
        )
        print(f"  fault: {record.kind} on {record.target} ({window})")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        if sys.argv[1] not in FAULT_KINDS:
            sys.exit(f"unknown fault {sys.argv[1]!r}; pick from {FAULT_KINDS}")
        run_one(sys.argv[1])
    else:
        main()
