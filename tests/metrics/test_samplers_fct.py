"""Tests for samplers and FCT collection."""

import pytest

from repro.metrics.fct import FctCollector, bucket_for_size
from repro.metrics.samplers import (
    QueueSampler,
    RateSampler,
    convergence_time_ns,
)
from repro.net.topology import dumbbell
from repro.sim.engine import Simulator
from repro.sim.units import microseconds, seconds
from repro.transport.registry import open_flow


# ----------------------------------------------------------------------
# Samplers
# ----------------------------------------------------------------------
def test_rate_sampler_differentiates_counter():
    sim = Simulator()
    counter = {"bytes": 0}

    def feed():
        counter["bytes"] += 12_500  # 12.5 kB per 100 us = 1 Gbps
        sim.schedule(microseconds(100), feed)

    sampler = RateSampler(sim, lambda: counter["bytes"], microseconds(100))
    sim.schedule(0, feed)
    sim.run(until_ns=microseconds(1000))
    # First sample has no baseline; the rest read 1 Gbps.
    for _, rate in sampler.series[1:]:
        assert rate == pytest.approx(1e9)


def test_sampler_stop():
    sim = Simulator()
    sampler = RateSampler(sim, lambda: 0, microseconds(10))
    sim.run(until_ns=microseconds(55))
    sampler.stop()
    count = len(sampler.series)
    sim.run(until_ns=microseconds(200))
    assert len(sampler.series) == count


def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError):
        RateSampler(Simulator(), lambda: 0, 0)


def test_queue_sampler_tracks_port():
    topo = dumbbell(n_senders=2)
    receiver = topo.hosts[-1]
    sampler = QueueSampler(topo.sim, topo.bottleneck("main"), microseconds(50))
    for host in topo.hosts[:2]:
        open_flow(host, receiver, "tcp")
    topo.network.run_for(seconds(0.05))
    assert sampler.max() > 0
    assert sampler.mean() >= 0
    assert len(sampler.series) > 500


def test_convergence_time_detection():
    series = [(i * 1000, 100.0 if i < 5 else 1000.0) for i in range(20)]
    assert convergence_time_ns(series, target=1000.0, tolerance=0.1) == 5000


def test_convergence_requires_hold():
    # A single spike must not count as convergence.
    series = [(0, 0.0), (1000, 1000.0), (2000, 0.0), (3000, 0.0)]
    assert convergence_time_ns(series, target=1000.0) is None


def test_convergence_rejects_bad_target():
    with pytest.raises(ValueError):
        convergence_time_ns([], target=0)


# ----------------------------------------------------------------------
# FCT collection
# ----------------------------------------------------------------------
def test_bucket_boundaries():
    assert bucket_for_size(500) == "<1KB"
    assert bucket_for_size(1_000) == "1-10KB"
    assert bucket_for_size(50_000) == "10KB-100KB"
    assert bucket_for_size(500_000) == "100KB-1MB"
    assert bucket_for_size(5_000_000) == "1-10MB"
    assert bucket_for_size(50_000_000) == ">10MB"


def test_collector_end_to_end():
    topo = dumbbell(n_senders=3)
    receiver = topo.hosts[-1]
    collector = FctCollector()
    sizes = [2_000, 40_000, 2_000_000]
    for host, size in zip(topo.hosts[:3], sizes):
        collector.expect()
        open_flow(
            host, receiver, "tcp", size_bytes=size,
            on_complete=collector.completion_handler("background"),
        )
    topo.network.run_for(seconds(2))
    assert collector.completed("background") == 3
    assert collector.pending == 0
    buckets = collector.bucketed_p999_us("background")
    assert set(buckets) == {"1-10KB", "10KB-100KB", "1-10MB"}
    # Bigger flows take longer at their tail.
    assert buckets["1-10KB"] < buckets["1-10MB"]
    summary = collector.tail_summary_us("background")
    assert summary["mean"] > 0


def test_collector_categories_are_separate():
    collector = FctCollector()
    from repro.metrics.fct import FctRecord

    collector.records.append(FctRecord("query", 2000, 100_000, 0))
    collector.records.append(FctRecord("background", 2000, 900_000, 2))
    assert collector.fcts_us("query") == [100.0]
    assert collector.fcts_us("background") == [900.0]
    assert len(collector.fcts_us()) == 2
    assert collector.total_timeouts("background") == 2
    assert collector.total_timeouts() == 2
    with pytest.raises(ValueError):
        collector.tail_summary_us("missing")
