"""Reporting: tables and paper-vs-measured comparison records."""

from .compare import (
    Comparison,
    ComparisonReport,
    at_least_factor,
    flat_within,
    ordering_holds,
    within_factor,
)
from .tables import (
    ascii_table,
    format_bytes,
    format_duration_us,
    format_rate,
    markdown_table,
)

__all__ = [
    "Comparison",
    "ComparisonReport",
    "at_least_factor",
    "flat_within",
    "ordering_holds",
    "within_factor",
    "ascii_table",
    "format_bytes",
    "format_duration_us",
    "format_rate",
    "markdown_table",
]
