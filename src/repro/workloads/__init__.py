"""Workload generators: bulk, on-off, incast, empirical benchmark."""

from .bulk import concurrent_flows, staggered_flows
from .distributions import (
    QUERY_RESPONSE_BYTES,
    SHORT_MESSAGE_SIZES,
    WEB_SEARCH_FLOW_SIZES,
    PiecewiseCdf,
    exponential_interarrival_ns,
    poisson_arrival_times_ns,
)
from .empirical import BenchmarkWorkload
from .incast import IncastCoordinator
from .onoff import OnOffSource, PacedSource

__all__ = [
    "concurrent_flows",
    "staggered_flows",
    "QUERY_RESPONSE_BYTES",
    "SHORT_MESSAGE_SIZES",
    "WEB_SEARCH_FLOW_SIZES",
    "PiecewiseCdf",
    "exponential_interarrival_ns",
    "poisson_arrival_times_ns",
    "BenchmarkWorkload",
    "IncastCoordinator",
    "OnOffSource",
    "PacedSource",
]
