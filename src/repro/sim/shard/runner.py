"""Barrier-epoch coordinator for sharded runs.

Protocol (one synchronization round per epoch):

1. Every shard reports the time of its earliest pending event
   (``Simulator.peek_time``).
2. The coordinator computes ``min_next`` over all peeks *and* all
   routed-but-undelivered cross-shard messages, then sets the epoch
   horizon ``H = min(min_next + lookahead - 1, end_ns)``.
3. Each shard injects its inbound messages (``schedule_at(arrival,
   node.receive, packet, port)``), runs ``sim.run(until_ns=H)``, and
   returns its outbox of captured boundary frames plus a fresh peek.
4. The coordinator routes the outboxes, sorted by ``(arrival_ns,
   src_shard, capture_seq)`` so inline and multiprocessing runs are
   bit-identical, and loops.

Safety sketch: every frame captured during an epoch was sent at some
``t_send >= min_next``, and its arrival is ``t_send + link_delay >=
min_next + lookahead > H``, i.e. strictly beyond the horizon just
simulated — exchanging messages only at barriers can never deliver into
a shard's past.  DESIGN.md §6i has the long-form proof and the
tie-order caveat.

``run_sharded`` uses one ``multiprocessing`` process per shard
(pipes for the message exchange) and falls back to in-process execution
where subprocesses are unavailable — same fallback contract as the
experiment runner's process pool.  ``mode="inline"`` forces the
in-process path (also the debugging story: one pdb, all shards).
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from .boundary import attach_shard
from .partition import ShardContext, ShardError, ShardPlan

#: How long the coordinator waits on a worker before declaring it hung.
EPOCH_TIMEOUT_S = 300.0


@dataclass(frozen=True)
class ShardSpec:
    """A complete sharded-run description (picklable; crosses pipes).

    ``build(ctx, **build_kwargs)`` must construct the **full** topology
    identically in every shard (same seed, same call order) and install
    flows through :func:`repro.sim.shard.flows.open_shard_flow`;
    ``collect(topology, ctx)`` returns a dict of scalars covering only
    what ``ctx`` owns, so the per-shard dicts merge disjointly into
    exactly the serial reference's dict.  Both must be module-level
    callables (they are pickled by reference into worker processes).
    """

    plan: ShardPlan
    build: Callable
    collect: Callable
    end_ns: int
    root_seed: int = 0
    build_kwargs: Mapping = field(default_factory=dict)


@dataclass
class SerialResult:
    """The serial reference run: same spec, one Simulator."""

    metrics: Dict[str, float]
    events: int
    wall_s: float


@dataclass
class ShardedResult:
    """Outcome of a sharded run plus coordination statistics."""

    mode: str  # "process" or "inline"
    shards: int
    epochs: int
    messages: int  # cross-shard frames exchanged
    events: int  # sum of per-shard events processed
    wall_s: float
    per_shard: List[Dict[str, float]]
    per_shard_events: List[int]

    def merged(self) -> Dict[str, float]:
        """Union of the per-shard collect dicts (keys must be disjoint)."""
        merged: Dict[str, float] = {}
        for payload in self.per_shard:
            for key, value in payload.items():
                if key in merged:
                    raise ShardError(
                        f"collect key {key!r} reported by two shards — "
                        "collect() must cover only owned nodes"
                    )
                merged[key] = value
        return merged


class ShardWorker:
    """One shard's simulator, topology and boundary outbox."""

    def __init__(self, spec: ShardSpec, shard_id: int) -> None:
        self.spec = spec
        self.ctx = ShardContext(spec.plan, shard_id, spec.root_seed)
        self.outbox: list = []
        self.topology = spec.build(self.ctx, **dict(spec.build_kwargs))
        attach_shard(self.topology, spec.plan, shard_id, self.outbox)
        self._nodes = self.topology.network.nodes

    def peek(self) -> Optional[int]:
        return self.topology.sim.peek_time()

    def epoch(
        self, horizon_ns: int, messages: List[Tuple[int, int, int, object]]
    ) -> Tuple[list, Optional[int]]:
        """Inject inbound frames, run to the horizon, flush the outbox."""
        sim = self.topology.sim
        nodes = self._nodes
        for arrival_ns, node_id, port_index, packet in messages:
            sim.schedule_at(arrival_ns, nodes[node_id].receive, packet, port_index)
        sim.run(until_ns=horizon_ns)
        out = list(self.outbox)
        # Clear in place: the BoundaryCapture proxies hold this list.
        del self.outbox[:]
        return out, sim.peek_time()

    def collect(self) -> Tuple[Dict[str, float], int]:
        payload = self.spec.collect(self.topology, self.ctx)
        return payload, self.topology.sim.events_processed


def run_serial_reference(spec: ShardSpec) -> SerialResult:
    """Run the identical workload in one Simulator (the ground truth)."""
    t0 = time.perf_counter()
    ctx = ShardContext(spec.plan, None, spec.root_seed)
    topology = spec.build(ctx, **dict(spec.build_kwargs))
    topology.sim.run(until_ns=spec.end_ns)
    metrics = spec.collect(topology, ctx)
    return SerialResult(
        metrics=metrics,
        events=topology.sim.events_processed,
        wall_s=time.perf_counter() - t0,
    )


# ----------------------------------------------------------------------
# Shard handles: the same request/response surface over two transports
# ----------------------------------------------------------------------
class _InlineHandle:
    """In-process shard — serial fallback and the debugging mode."""

    def __init__(self, spec: ShardSpec, shard_id: int) -> None:
        self._worker = ShardWorker(spec, shard_id)
        self._pending: Optional[tuple] = None

    def start(self) -> Optional[int]:
        return self._worker.peek()

    def submit_epoch(self, horizon_ns: int, messages: list) -> None:
        self._pending = (horizon_ns, messages)

    def finish_epoch(self) -> Tuple[list, Optional[int]]:
        horizon_ns, messages = self._pending
        self._pending = None
        return self._worker.epoch(horizon_ns, messages)

    def collect(self) -> Tuple[Dict[str, float], int]:
        return self._worker.collect()

    def stop(self) -> None:
        pass


def _shard_main(conn, spec: ShardSpec, shard_id: int) -> None:
    """Worker-process loop: build once, then serve epoch requests."""
    try:
        worker = ShardWorker(spec, shard_id)
        conn.send(("ready", worker.peek()))
        while True:
            request = conn.recv()
            op = request[0]
            if op == "epoch":
                out, peek = worker.epoch(request[1], request[2])
                conn.send(("epoch", out, peek))
            elif op == "collect":
                conn.send(("collect", worker.collect()))
            elif op == "stop":
                return
            else:  # pragma: no cover - protocol bug guard
                raise ShardError(f"unknown request {op!r}")
    except EOFError:  # coordinator died; exit quietly
        pass
    except BaseException as exc:
        try:
            conn.send(("error", repr(exc), traceback.format_exc()))
        except (OSError, ValueError):  # pragma: no cover - pipe gone
            pass
    finally:
        conn.close()


class _ProcessHandle:
    """One worker process + duplex pipe."""

    def __init__(self, spec: ShardSpec, shard_id: int) -> None:
        import multiprocessing as mp

        self.shard_id = shard_id
        self._conn, child = mp.Pipe(duplex=True)
        self._proc = mp.Process(
            target=_shard_main, args=(child, spec, shard_id), daemon=True
        )
        self._proc.start()
        child.close()

    def _recv(self, expect: str):
        if not self._conn.poll(EPOCH_TIMEOUT_S):
            raise ShardError(
                f"shard {self.shard_id} did not answer within "
                f"{EPOCH_TIMEOUT_S:.0f}s"
            )
        try:
            reply = self._conn.recv()
        except EOFError:
            raise ShardError(
                f"shard {self.shard_id} process died (exitcode "
                f"{self._proc.exitcode})"
            ) from None
        if reply[0] == "error":
            raise ShardError(
                f"shard {self.shard_id} crashed: {reply[1]}\n{reply[2]}"
            )
        if reply[0] != expect:  # pragma: no cover - protocol bug guard
            raise ShardError(f"expected {expect!r}, got {reply[0]!r}")
        return reply

    def start(self) -> Optional[int]:
        return self._recv("ready")[1]

    def submit_epoch(self, horizon_ns: int, messages: list) -> None:
        self._conn.send(("epoch", horizon_ns, messages))

    def finish_epoch(self) -> Tuple[list, Optional[int]]:
        reply = self._recv("epoch")
        return reply[1], reply[2]

    def collect(self) -> Tuple[Dict[str, float], int]:
        self._conn.send(("collect",))
        return self._recv("collect")[1]

    def stop(self) -> None:
        try:
            self._conn.send(("stop",))
        except (OSError, ValueError):
            pass
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover - hung worker
            self._proc.terminate()
            self._proc.join(timeout=10)
        self._conn.close()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def _coordinate(
    handles: list, plan: ShardPlan, end_ns: int
) -> Tuple[int, int]:
    """Drive the barrier-epoch loop; returns (epochs, messages)."""
    lookahead = plan.lookahead_ns
    n_shards = len(handles)
    peeks = [handle.start() for handle in handles]
    pending: list = []  # routed messages not yet handed to their shard
    epochs = 0
    exchanged = 0
    while True:
        candidates = [p for p in peeks if p is not None]
        candidates.extend(record[0] for record in pending)
        if not candidates:
            break  # globally drained
        min_next = min(candidates)
        if min_next > end_ns:
            break  # nothing left inside the simulated window
        horizon = min(min_next + lookahead - 1, end_ns)
        inboxes: List[list] = [[] for _ in range(n_shards)]
        for arrival_ns, dst_shard, node_id, port_index, packet in pending:
            inboxes[dst_shard].append(
                (arrival_ns, node_id, port_index, packet)
            )
        exchanged += len(pending)
        pending = []
        for handle, inbox in zip(handles, inboxes):
            handle.submit_epoch(horizon, inbox)
        routed: list = []
        peeks = []
        for src_shard, handle in enumerate(handles):
            outbox, peek = handle.finish_epoch()
            peeks.append(peek)
            for capture_seq, message in enumerate(outbox):
                routed.append((message[0], src_shard, capture_seq, message))
        # Deterministic global delivery order — identical for inline and
        # process modes regardless of handle completion timing.
        routed.sort(key=lambda record: record[:3])
        pending = [record[3] for record in routed]
        epochs += 1
        if horizon >= end_ns:
            break  # final epoch: every event <= end_ns has run
    # Park every shard's clock at end_ns so collect() sees a uniform
    # duration (messages still pending here arrive beyond end_ns, which
    # the serial run would likewise never execute).
    for handle in handles:
        handle.submit_epoch(end_ns, [])
    for handle in handles:
        handle.finish_epoch()
    return epochs, exchanged


def run_sharded(spec: ShardSpec, mode: str = "auto") -> ShardedResult:
    """Run ``spec`` across ``spec.plan.total_shards`` shards.

    ``mode`` is ``"process"`` (require worker processes), ``"inline"``
    (in-process shards — deterministic fallback/debug path), or
    ``"auto"`` (processes, falling back to inline where the platform
    forbids them — same exceptions the experiment runner tolerates).
    """
    if mode not in ("auto", "process", "inline"):
        raise ValueError(f"unknown shard mode {mode!r}")
    t0 = time.perf_counter()
    total = spec.plan.total_shards
    handles: list = []
    actual_mode = "inline"
    if mode in ("auto", "process"):
        try:
            handles = [_ProcessHandle(spec, sid) for sid in range(total)]
            actual_mode = "process"
        except (OSError, ImportError, PermissionError):
            for handle in handles:
                handle.stop()
            handles = []
            if mode == "process":
                raise
    if not handles:
        handles = [_InlineHandle(spec, sid) for sid in range(total)]
    try:
        epochs, messages = _coordinate(handles, spec.plan, spec.end_ns)
        per_shard: List[Dict[str, float]] = []
        per_events: List[int] = []
        for handle in handles:
            payload, events = handle.collect()
            per_shard.append(payload)
            per_events.append(events)
    finally:
        for handle in handles:
            handle.stop()
    return ShardedResult(
        mode=actual_mode,
        shards=total,
        epochs=epochs,
        messages=messages,
        events=sum(per_events),
        wall_s=time.perf_counter() - t0,
        per_shard=per_shard,
        per_shard_events=per_events,
    )
