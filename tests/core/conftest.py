"""Shared fixtures for transport tests: a tiny deterministic network."""

import pytest

from repro.net.network import Network
from repro.sim.units import GBPS, microseconds


@pytest.fixture
def tiny_net():
    """Two hosts joined by one switch; no host jitter for exact timing."""
    net = Network(seed=0, host_processing_delay_ns=1_000, host_processing_jitter_ns=0)
    a = net.add_host("A")
    b = net.add_host("B")
    sw = net.add_switch("SW")
    net.cable(a, sw, GBPS, microseconds(5))
    net.cable(b, sw, GBPS, microseconds(5))
    net.build_routes()
    return net, a, b, sw
