"""Binary-heap backend: the PR-2 tuple-heap, unchanged semantics.

The baseline every other backend is differentially fuzzed against.  The
heap stores ``(time, seq, event)`` tuples so sift comparisons are C tuple
comparisons; ``(time, seq)`` is unique, so the event object is never
compared.  Dead entries are discarded lazily at the heap head, or swept
by an in-place compaction when they outnumber live entries.

This backend keeps no entry counter: ``len(self._heap)`` is already O(1)
and always exact, so only ``_dead`` needs maintaining (on the cancel and
dead-pop paths).  The engine drains the heap through an inlined loop —
see the consolidated note in :mod:`repro.sim.sched.base` — which is why
``compact``/``drain_live`` must mutate ``self._heap`` in place (slice
assignment), keeping the engine's alias of the list valid.
"""

from __future__ import annotations

import heapq
from heapq import heappop as _heappop, heappush as _heappush
from typing import Iterator, List, Optional

from .base import Entry, Scheduler


class HeapScheduler(Scheduler):
    """O(log n) push/pop binary heap — strongest for small populations."""

    name = "heap"

    def __init__(self) -> None:
        super().__init__()
        self._heap: List[Entry] = []

    def stored(self) -> int:
        return len(self._heap)

    def push(self, time_ns: int, seq: int, event) -> None:
        _heappush(self._heap, (time_ns, seq, event))

    def pop_due(self, horizon_ns: int):
        heap = self._heap
        free = self._free
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                _heappop(heap)
                self._dead -= 1
                free.append(event)
                continue
            if entry[0] > horizon_ns:
                return None
            _heappop(heap)
            return event
        return None

    def pop_batch(self, horizon_ns: int, out: list) -> int:
        # Direct head-run pop: one horizon check for the whole group,
        # then same-time entries pop in seq order by heap invariant.
        heap = self._heap
        free = self._free
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                _heappop(heap)
                self._dead -= 1
                free.append(event)
                continue
            time_ns = entry[0]
            if time_ns > horizon_ns:
                return 0
            _heappop(heap)
            out.append(event)
            n = 1
            while heap:
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    _heappop(heap)
                    self._dead -= 1
                    free.append(event)
                    continue
                if entry[0] != time_ns:
                    break
                _heappop(heap)
                out.append(event)
                n += 1
            return n
        return 0

    def next_live_time(self) -> Optional[int]:
        heap = self._heap
        free = self._free
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                _heappop(heap)
                self._dead -= 1
                free.append(entry[2])
                continue
            return entry[0]
        return None

    def compact(self) -> None:
        # In place — see the module docstring.
        heap = self._heap
        free = self._free
        live_entries = []
        for entry in heap:
            if entry[2].cancelled:
                free.append(entry[2])
            else:
                live_entries.append(entry)
        heap[:] = live_entries
        heapq.heapify(heap)
        self._dead = 0

    def drain_live(self) -> Iterator[Entry]:
        # Empty *in place* (module docstring): a mid-run migration must
        # leave the engine's alias dry, never replaying migrated entries.
        entries = self._heap[:]
        del self._heap[:]
        self._dead = 0
        free = self._free
        for entry in entries:
            if entry[2].cancelled:
                free.append(entry[2])
            else:
                yield entry
