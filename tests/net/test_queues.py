"""Unit and property tests for drop-tail and ECN-marking queues."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, EcnQueue


def data_packet(payload=1460, ecn=False):
    return Packet(1, 2, 10, 20, payload=payload, ecn_capable=ecn)


def test_fifo_order():
    queue = DropTailQueue(100_000)
    packets = [data_packet() for _ in range(5)]
    for pkt in packets:
        assert queue.enqueue(pkt)
    out = [queue.dequeue() for _ in range(5)]
    assert out == packets


def test_dequeue_empty_returns_none():
    assert DropTailQueue(1000).dequeue() is None


def test_capacity_enforced():
    queue = DropTailQueue(3000)  # fits two 1500-byte packets
    assert queue.enqueue(data_packet())
    assert queue.enqueue(data_packet())
    assert not queue.enqueue(data_packet())
    assert queue.drops == 1
    assert queue.dropped_bytes == 1500


def test_byte_length_tracks_contents():
    queue = DropTailQueue(100_000)
    queue.enqueue(data_packet())
    queue.enqueue(data_packet(payload=100))
    assert queue.byte_length == 1500 + 140
    queue.dequeue()
    assert queue.byte_length == 140


def test_max_bytes_seen_watermark():
    queue = DropTailQueue(100_000)
    queue.enqueue(data_packet())
    queue.enqueue(data_packet())
    queue.dequeue()
    queue.dequeue()
    assert queue.max_bytes_seen == 3000


def test_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        DropTailQueue(0)


def test_ecn_marks_above_threshold():
    queue = EcnQueue(100_000, mark_threshold_bytes=3000)
    first = data_packet(ecn=True)
    second = data_packet(ecn=True)
    third = data_packet(ecn=True)
    queue.enqueue(first)
    queue.enqueue(second)
    queue.enqueue(third)
    assert not first.ecn_ce
    assert not second.ecn_ce  # exactly at threshold, not above
    assert third.ecn_ce
    assert queue.marks == 1


def test_ecn_ignores_non_capable_packets():
    queue = EcnQueue(100_000, mark_threshold_bytes=100)
    pkt = data_packet(ecn=False)
    queue.enqueue(pkt)
    assert not pkt.ecn_ce


def test_ecn_rejects_bad_threshold():
    with pytest.raises(ValueError):
        EcnQueue(1000, 0)


@given(st.lists(st.integers(min_value=0, max_value=1460), max_size=60))
def test_property_occupancy_never_exceeds_capacity(payloads):
    queue = DropTailQueue(10_000)
    accepted = 0
    for payload in payloads:
        if queue.enqueue(data_packet(payload=payload)):
            accepted += 1
    assert queue.byte_length <= queue.capacity_bytes
    assert queue.enqueues == accepted
    assert queue.drops == len(payloads) - accepted
    # Conservation: everything accepted can be dequeued, in order.
    drained = 0
    while queue.dequeue() is not None:
        drained += 1
    assert drained == accepted
    assert queue.byte_length == 0
