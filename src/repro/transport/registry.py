"""Protocol registry and the flow-opening helper used everywhere.

Experiments want one call that wires up a flow of a given protocol between
two hosts: allocate ports, create the receiver endpoint, create the sender,
schedule its start.  :func:`open_flow` is that call; :data:`PROTOCOLS` maps
the names used throughout the benchmarks ("tcp", "dctcp", "tfc") to their
sender/receiver classes and the queue discipline their switches need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Type

from ..net.host import Host
from ..net.network import Network
from ..net.queues import DropTailQueue, EcnQueue
from ..sim.units import MILLISECOND
from .base import Receiver, Sender
from .dctcp import DctcpReceiver, DctcpSender
from .newreno import NewRenoReceiver, NewRenoSender

DEFAULT_DCTCP_K_BYTES = 32_000  # paper: K = 32 KB on the 1 Gbps testbed


@dataclass(frozen=True)
class Protocol:
    """Everything needed to run one transport protocol in a scenario."""

    name: str
    sender_cls: Type[Sender]
    receiver_cls: Type[Receiver]
    needs_ecn: bool = False
    needs_tfc_switches: bool = False
    needs_lossless: bool = False


# Populated lazily: repro.core imports this module (its endpoints subclass
# Sender/Receiver), so importing repro.core.sender at module scope here
# would be circular.
PROTOCOLS: Dict[str, Protocol] = {}


def _ensure_registry() -> Dict[str, Protocol]:
    if not PROTOCOLS:
        from ..core.sender import TfcReceiver, TfcSender

        PROTOCOLS["tcp"] = Protocol("tcp", NewRenoSender, NewRenoReceiver)
        PROTOCOLS["dctcp"] = Protocol(
            "dctcp", DctcpSender, DctcpReceiver, needs_ecn=True
        )
        PROTOCOLS["tfc"] = Protocol(
            "tfc", TfcSender, TfcReceiver, needs_tfc_switches=True
        )
        # The PFC baseline TFC argues against: a loss-based transport on
        # a fabric made lossless by hop-by-hop pausing (RoCE-style
        # deployments).  The endpoints are plain NewReno — with no drops
        # they simply never cut cwnd — and the switches do the pausing.
        PROTOCOLS["pfc"] = Protocol(
            "pfc", NewRenoSender, NewRenoReceiver, needs_lossless=True
        )
    return PROTOCOLS


def get_protocol(name: str) -> Protocol:
    """Look up a protocol by name with a helpful error."""
    registry = _ensure_registry()
    try:
        return registry[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; choose from {sorted(registry)}"
        ) from None


def queue_factory_for(
    protocol: str,
    buffer_bytes: int,
    ecn_threshold_bytes: int = DEFAULT_DCTCP_K_BYTES,
) -> Callable[[int], DropTailQueue]:
    """Queue discipline the given protocol expects on switch ports."""
    spec = get_protocol(protocol)
    if spec.needs_ecn:
        return lambda rate_bps: EcnQueue(buffer_bytes, ecn_threshold_bytes)
    return lambda rate_bps: DropTailQueue(buffer_bytes)


def configure_network(
    network: Network,
    protocol: str,
    tfc_params=None,
    pfc_params=None,
) -> None:
    """Install protocol-specific switch behaviour.

    TFC agents when the protocol needs them; then the PFC lossless
    fabric when either the protocol demands it (``"pfc"``) or the
    ``$REPRO_LOSSLESS`` knob asks for lossless classes fabric-wide.
    Order matters: the PFC agent wraps whatever protocol agent is
    already on the port, so TFC must install first.
    """
    spec = get_protocol(protocol)
    if spec.needs_tfc_switches:
        from ..core.params import DEFAULT_PARAMS
        from ..core.switch_agent import enable_tfc

        enable_tfc(network, tfc_params if tfc_params is not None else DEFAULT_PARAMS)
    if spec.needs_lossless or pfc_params is not None:
        from ..net.pfc import enable_pfc

        enable_pfc(network, pfc_params)
    else:
        from ..config import lossless_mode

        if lossless_mode() == "pfc":
            from ..net.pfc import enable_pfc

            enable_pfc(network)


def open_flow(
    src: Host,
    dst: Host,
    protocol: str,
    size_bytes: Optional[int] = None,
    start_ns: Optional[int] = None,
    on_complete: Optional[Callable[[Sender], None]] = None,
    min_rto_ns: int = 10 * MILLISECOND,
    awnd_bytes: Optional[int] = None,
    weight: Optional[int] = None,
    tenant: Optional[str] = None,
) -> Sender:
    """Create a ``src -> dst`` flow and schedule its start.

    ``size_bytes=None`` makes the flow long-lived; ``start_ns=None`` starts
    it immediately.  ``weight`` selects the weighted TFC allocation policy
    (TFC flows only).  ``tenant`` tags both endpoints for multi-tenant
    accounting (per-tenant goodput/FCT in ``repro.obs`` and
    ``repro.metrics.fct``).  Returns the sender (its ``stats`` carry
    everything the experiments measure; the receiver is reachable for
    tests via ``sender.receiver``).
    """
    spec = get_protocol(protocol)
    sport = src.allocate_port()
    dport = dst.allocate_port()
    common = {} if awnd_bytes is None else {"awnd_bytes": awnd_bytes}
    sender_kwargs = dict(common)
    if weight is not None:
        if not spec.needs_tfc_switches:
            raise ValueError("weighted allocation is a TFC feature")
        sender_kwargs["weight"] = weight
    sender = spec.sender_cls(
        src,
        dst.node_id,
        dport,
        size_bytes=size_bytes,
        sport=sport,
        min_rto_ns=min_rto_ns,
        on_complete=on_complete,
        **sender_kwargs,
    )
    receiver = spec.receiver_cls(dst, sender.flow_key, **common)
    sender.receiver = receiver  # convenience back-reference for tests
    if tenant is not None:
        sender.tenant = tenant
        receiver.tenant = tenant
    if start_ns is None or start_ns <= src.sim.now:
        sender.start()
    else:
        src.sim.schedule_at(start_ns, sender.start)
    return sender
