"""Binary-heap backend: the PR-2 tuple-heap, unchanged semantics.

The baseline every other backend is differentially fuzzed against.  The
heap stores ``(time, seq, event)`` tuples so sift comparisons are C tuple
comparisons; ``(time, seq)`` is unique, so the event object is never
compared.  Dead entries are discarded lazily at the heap head, or swept
by an in-place compaction when they outnumber live entries.

This backend keeps no entry counter: ``len(self._heap)`` is already O(1)
and always exact, which lets the engine's inlined heap loop pop without
any per-event bookkeeping (only ``_dead`` is maintained, on the cancel
and dead-pop paths).
"""

from __future__ import annotations

import heapq
from heapq import heappop as _heappop, heappush as _heappush
from typing import Iterator, List, Optional

from .base import Entry, Scheduler


class HeapScheduler(Scheduler):
    """O(log n) push/pop binary heap — strongest for small populations."""

    name = "heap"

    def __init__(self) -> None:
        super().__init__()
        self._heap: List[Entry] = []

    def stored(self) -> int:
        return len(self._heap)

    def push(self, time_ns: int, seq: int, event) -> None:
        _heappush(self._heap, (time_ns, seq, event))

    def pop_due(self, horizon_ns: int):
        heap = self._heap
        free = self._free
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                _heappop(heap)
                self._dead -= 1
                free.append(event)
                continue
            if entry[0] > horizon_ns:
                return None
            _heappop(heap)
            return event
        return None

    def next_live_time(self) -> Optional[int]:
        heap = self._heap
        free = self._free
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                _heappop(heap)
                self._dead -= 1
                free.append(entry[2])
                continue
            return entry[0]
        return None

    def compact(self) -> None:
        # In place (slice assignment) so the engine's inlined run loop,
        # which holds an alias of the heap list, stays valid when a
        # callback's cancel triggers compaction mid-run.
        heap = self._heap
        free = self._free
        live_entries = []
        for entry in heap:
            if entry[2].cancelled:
                free.append(entry[2])
            else:
                live_entries.append(entry)
        heap[:] = live_entries
        heapq.heapify(heap)
        self._dead = 0

    def drain_live(self) -> Iterator[Entry]:
        # Empty *in place*: the engine's inlined loop may hold an alias
        # of this list while a callback migrates the population — the
        # alias must run dry, never replay migrated entries.
        entries = self._heap[:]
        del self._heap[:]
        self._dead = 0
        free = self._free
        for entry in entries:
            if entry[2].cancelled:
                free.append(entry[2])
            else:
                yield entry
