"""Deterministic fault injection and recovery measurement.

The paper's recovery machinery — delimiter re-election after silent death,
window re-acquisition after idle, token re-learning after state loss — is
the code a reproduction exercises least.  This package makes it a
first-class evaluated surface:

* :class:`FaultInjector` (:mod:`repro.faults.engine`) schedules fault
  primitives (link down/flap, rate degradation, burst / one-way loss,
  switch-agent state reset, silent flow kill, host pause) on the simulator
  clock, so every chaos run is an ordinary deterministic simulation.
* :class:`InvariantMonitor` (:mod:`repro.faults.invariants`) asserts the
  TFC control-loop invariants on every slot while the chaos unfolds.
* :mod:`repro.faults.pathology` detects the lossless-fabric failure
  modes (pause storms, head-of-line blocking, cyclic-buffer-dependency
  deadlock) the TFC-vs-PFC head-to-head experiments pin.
* :mod:`repro.faults.recovery` turns a goodput series plus a fault
  timeline into recovery metrics (time-to-reconverge, dip depth).

The chaos scenario driver lives in :mod:`repro.experiments.chaos`.
"""

from .engine import FaultInjector, FaultRecord
from .invariants import InvariantMonitor, InvariantViolation, Violation
from .pathology import (
    CbdDeadlockDetector,
    HolBlockingDetector,
    Pathology,
    PathologySuite,
    PauseStormDetector,
)
from .recovery import RecoveryReport, measure_recovery

__all__ = [
    "FaultInjector",
    "FaultRecord",
    "InvariantMonitor",
    "InvariantViolation",
    "Violation",
    "Pathology",
    "PauseStormDetector",
    "HolBlockingDetector",
    "CbdDeadlockDetector",
    "PathologySuite",
    "RecoveryReport",
    "measure_recovery",
]
