"""BFC endpoints — plain NewReno over a per-flow backpressured fabric.

The entire BFC mechanism lives in the fabric (:mod:`repro.net.bfc`):
per-flow queues, per-hop pause, NIC-level flow pausing.  The endpoints
are deliberately the unmodified loss-based transport, exactly like the
PFC baseline — the comparison the pathology experiments draw is *fabric
vs fabric* (per-port pause head-of-line blocks victims; per-flow pause
does not), and endpoint differences would contaminate it.  With pause
thresholds doing their job the flow rarely sees a drop, so cwnd grows
until the NIC's per-flow queue absorbs the excess.
"""

from __future__ import annotations

from .newreno import NewRenoReceiver, NewRenoSender


class BfcSender(NewRenoSender):
    """NewReno sender; backpressure is applied by the fabric per flow."""

    protocol_name = "bfc"


class BfcReceiver(NewRenoReceiver):
    """Plain cumulative-ACK receiver."""
