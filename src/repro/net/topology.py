"""Topology builders for every scenario in the paper's evaluation.

* :func:`dumbbell` — N senders, one receiver behind a single bottleneck;
  the workhorse for micro-benchmarks and incast.
* :func:`testbed` — the paper's Fig. 4 testbed: root NF0 with three leaf
  switches NF1..NF3, each serving three hosts H1..H9, all 1 Gbps.
* :func:`multi_bottleneck` — the paper's Fig. 5 work-conserving scenario:
  hosts 1,2 and 3,4 on switches S1, S2 joined by one inter-switch link.
* :func:`leaf_spine` — the Fig. 16 simulation topology: one spine, 18
  leaves x 20 servers, 1 Gbps downlinks, 10 Gbps uplinks, 20 us links.
  ``spines=N`` adds more spines, giving every leaf N equal-cost uplinks
  (the smallest honest multi-path fabric).
* :func:`fat_tree` — a k-ary fat tree (Al-Fares wiring): k pods of k/2
  edge and k/2 aggregation switches, (k/2)^2 cores, k^3/4 hosts, full
  bisection bandwidth and (k/2)^2 equal-cost paths between pods — the
  setting for the ECMP-collision and path-asymmetry experiments.

Builders return a :class:`Topology` handle exposing the hosts, switches and
the designated bottleneck port(s) so experiments can attach samplers.
Every builder accepts ``routing=`` (a policy name or instance, forwarded
to :class:`~repro.net.network.Network`); the default follows
``$REPRO_ROUTING`` and falls back to single-path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.units import GBPS, microseconds
from .host import Host
from .network import Network, QueueFactory
from .node import Switch
from .port import Port


@dataclass
class Topology:
    """A built network plus named landmarks experiments care about."""

    network: Network
    hosts: List[Host]
    switches: List[Switch]
    bottleneck_ports: Dict[str, Port] = field(default_factory=dict)
    #: Partition metadata for sharded runs (``repro.sim.shard``): node
    #: names grouped by pod (aggregation + edge switches + hosts of that
    #: pod) and the core-layer names.  Only fabric builders with a
    #: natural partition (today: :func:`fat_tree`) populate these.
    pod_members: List[List[str]] = field(default_factory=list)
    core_members: List[str] = field(default_factory=list)

    @property
    def sim(self):
        """The underlying simulator (shortcut)."""
        return self.network.sim

    def host(self, index: int) -> Host:
        """Host by zero-based index."""
        return self.hosts[index]

    def bottleneck(self, name: str = "main") -> Port:
        """A named bottleneck port (for queue sampling / TFC agents)."""
        return self.bottleneck_ports[name]


def dumbbell(
    n_senders: int,
    rate_bps: int = GBPS,
    link_delay_ns: int = microseconds(20),
    buffer_bytes: int = 256_000,
    seed: int = 0,
    queue_factory: Optional[QueueFactory] = None,
    n_receivers: int = 1,
    routing=None,
) -> Topology:
    """``n_senders`` hosts -> switch -> ``n_receivers`` hosts.

    The bottleneck is the switch port feeding the first receiver.  All links
    share one rate, so with a single receiver the fan-in is ``n_senders:1``.
    """
    if n_senders < 1:
        raise ValueError("need at least one sender")
    net = Network(seed=seed, default_buffer_bytes=buffer_bytes, routing=routing)
    switch = net.add_switch("SW")
    senders = [net.add_host(f"S{i}") for i in range(n_senders)]
    receivers = [net.add_host(f"R{i}") for i in range(n_receivers)]
    for sender in senders:
        net.cable(sender, switch, rate_bps, link_delay_ns, queue_factory)
    bottlenecks: Dict[str, Port] = {}
    for i, receiver in enumerate(receivers):
        sw_port, _ = net.cable(receiver, switch, rate_bps, link_delay_ns, queue_factory)
        # cable() returns (port on first node, port on second node); we want
        # the switch-side port towards the receiver.
        del sw_port
        bottlenecks["main" if i == 0 else f"rx{i}"] = switch.ports[-1]
    net.build_routes()
    return Topology(
        network=net,
        hosts=senders + receivers,
        switches=[switch],
        bottleneck_ports=bottlenecks,
    )


def testbed(
    rate_bps: int = GBPS,
    link_delay_ns: int = microseconds(5),
    buffer_bytes: int = 256_000,
    seed: int = 0,
    queue_factory: Optional[QueueFactory] = None,
    hosts_per_leaf: int = 3,
    n_leaves: int = 3,
    routing=None,
) -> Topology:
    """The paper's Fig. 4 testbed: NF0 root, NF1-NF3 leaves, H1-H9 hosts.

    Hosts are indexed H1..H9 in paper order: H1-H3 under NF1, H4-H6 under
    NF2, H7-H9 under NF3.  Bottleneck ports are registered per host as
    ``to_H<k>`` (the leaf port feeding that host) — the paper samples the
    "port connecting to host H3 / H6" in several experiments.
    """
    net = Network(seed=seed, default_buffer_bytes=buffer_bytes, routing=routing)
    root = net.add_switch("NF0")
    leaves = [net.add_switch(f"NF{i + 1}") for i in range(n_leaves)]
    hosts: List[Host] = []
    bottlenecks: Dict[str, Port] = {}
    for leaf in leaves:
        net.cable(leaf, root, rate_bps, link_delay_ns, queue_factory)
    host_number = 1
    for leaf in leaves:
        for _ in range(hosts_per_leaf):
            host = net.add_host(f"H{host_number}")
            hosts.append(host)
            leaf_port, _ = net.cable(leaf, host, rate_bps, link_delay_ns, queue_factory)
            bottlenecks[f"to_H{host_number}"] = leaf_port
            host_number += 1
    net.build_routes()
    return Topology(
        network=net,
        hosts=hosts,
        switches=[root] + leaves,
        bottleneck_ports=bottlenecks,
    )


def multi_bottleneck(
    rate_bps: int = GBPS,
    link_delay_ns: int = microseconds(5),
    buffer_bytes: int = 256_000,
    seed: int = 0,
    queue_factory: Optional[QueueFactory] = None,
    routing=None,
) -> Topology:
    """The paper's Fig. 5 scenario: two switches, two bottlenecks.

    Host 1 hangs off S1; hosts 2, 3 and 4 hang off S2.  Host 1 sends n1
    flows to host 4 and n2 flows to host 3 (all crossing the S1 uplink);
    host 2 sends n3 flows to host 3 (only crossing S2's downlink).  S2
    hands the n2 flows a bigger window than S1 lets them use, so without
    token adjustment the S2 -> host 3 link would stay underutilised.
    Bottlenecks registered: ``s1_up`` (S1 -> S2 inter-switch port) and
    ``s2_to_h3`` (S2 -> host 3 port).
    """
    net = Network(seed=seed, default_buffer_bytes=buffer_bytes, routing=routing)
    s1 = net.add_switch("S1")
    s2 = net.add_switch("S2")
    h1 = net.add_host("1")
    h2 = net.add_host("2")
    h3 = net.add_host("3")
    h4 = net.add_host("4")
    s1_up, _ = net.cable(s1, s2, rate_bps, link_delay_ns, queue_factory)
    net.cable(h1, s1, rate_bps, link_delay_ns, queue_factory)
    net.cable(h2, s2, rate_bps, link_delay_ns, queue_factory)
    s2_to_h3, _ = net.cable(s2, h3, rate_bps, link_delay_ns, queue_factory)
    net.cable(s2, h4, rate_bps, link_delay_ns, queue_factory)
    net.build_routes()
    return Topology(
        network=net,
        hosts=[h1, h2, h3, h4],
        switches=[s1, s2],
        bottleneck_ports={"s1_up": s1_up, "s2_to_h3": s2_to_h3},
    )


def leaf_spine(
    n_leaves: int = 18,
    hosts_per_leaf: int = 20,
    down_rate_bps: int = GBPS,
    up_rate_bps: int = 10 * GBPS,
    link_delay_ns: int = microseconds(20),
    buffer_bytes: int = 512_000,
    seed: int = 0,
    queue_factory: Optional[QueueFactory] = None,
    spines: int = 1,
    routing=None,
) -> Topology:
    """The Fig. 16 simulation topology (one spine, 18x20 servers).

    With 20 us links and store-and-forward, the 4-hop inter-rack RTT is
    ~160 us and the 2-hop intra-rack RTT ~80 us, matching the paper.
    Bottleneck ports registered as ``to_H<k>`` for each leaf downlink.

    ``spines=N`` builds the multi-spine variant: every leaf gets one
    uplink per spine, so inter-rack traffic sees N equal-cost two-hop
    paths — the smallest topology where the routing policies diverge.
    The single-spine default wires exactly the original topology.
    """
    if spines < 1:
        raise ValueError("need at least one spine")
    net = Network(seed=seed, default_buffer_bytes=buffer_bytes, routing=routing)
    spine_switches = [
        net.add_switch("SPINE" if spines == 1 else f"SPINE{i}")
        for i in range(spines)
    ]
    leaves = [net.add_switch(f"L{i}") for i in range(n_leaves)]
    for leaf in leaves:
        for spine in spine_switches:
            net.cable(leaf, spine, up_rate_bps, link_delay_ns, queue_factory)
    hosts: List[Host] = []
    bottlenecks: Dict[str, Port] = {}
    host_number = 1
    for leaf in leaves:
        for _ in range(hosts_per_leaf):
            host = net.add_host(f"H{host_number}")
            hosts.append(host)
            leaf_port, _ = net.cable(
                leaf, host, down_rate_bps, link_delay_ns, queue_factory
            )
            bottlenecks[f"to_H{host_number}"] = leaf_port
            host_number += 1
    net.build_routes()
    return Topology(
        network=net,
        hosts=hosts,
        switches=spine_switches + leaves,
        bottleneck_ports=bottlenecks,
    )


def fat_tree(
    k: int = 4,
    rate_bps: int = GBPS,
    link_delay_ns: int = microseconds(5),
    buffer_bytes: int = 256_000,
    seed: int = 0,
    queue_factory: Optional[QueueFactory] = None,
    routing=None,
) -> Topology:
    """A k-ary fat tree (Al-Fares et al.), the multi-path workhorse.

    Structure for even ``k``:

    * ``(k/2)^2`` core switches in ``k/2`` groups of ``k/2`` (named
      ``C<group>_<i>``);
    * ``k`` pods, each with ``k/2`` aggregation switches ``A<pod>_<j>``
      and ``k/2`` edge switches ``E<pod>_<j>``; aggregation switch ``j``
      uplinks to every core in group ``j``, and every edge switch
      connects to every aggregation switch in its pod;
    * ``k/2`` hosts per edge switch — ``k^3/4`` hosts total, named
      ``H1..`` in pod order.

    Every link runs at one rate, so the fabric has full bisection
    bandwidth and ``(k/2)^2`` equal-cost paths between hosts in
    different pods (``k/2`` between different edges of one pod).  Edge
    ports feeding hosts are registered as ``to_H<n>`` bottlenecks.

    ``topology.switches`` lists cores, then aggregations, then edges,
    each in construction order; the structured names (``C*``, ``A*``,
    ``E*``) let experiments slice them back apart by prefix.
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat tree arity must be even and >= 2, got {k}")
    half = k // 2
    net = Network(seed=seed, default_buffer_bytes=buffer_bytes, routing=routing)
    core_groups = [
        [net.add_switch(f"C{group}_{i}") for i in range(half)]
        for group in range(half)
    ]
    agg_pods: List[List[Switch]] = []
    edge_pods: List[List[Switch]] = []
    for pod in range(k):
        agg_pods.append(
            [net.add_switch(f"A{pod}_{j}") for j in range(half)]
        )
        edge_pods.append(
            [net.add_switch(f"E{pod}_{j}") for j in range(half)]
        )
    for pod in range(k):
        for group, agg in enumerate(agg_pods[pod]):
            for core in core_groups[group]:
                net.cable(agg, core, rate_bps, link_delay_ns, queue_factory)
    for pod in range(k):
        for edge in edge_pods[pod]:
            for agg in agg_pods[pod]:
                net.cable(edge, agg, rate_bps, link_delay_ns, queue_factory)
    hosts: List[Host] = []
    bottlenecks: Dict[str, Port] = {}
    host_number = 1
    for pod in range(k):
        for edge in edge_pods[pod]:
            for _ in range(half):
                host = net.add_host(f"H{host_number}")
                hosts.append(host)
                edge_port, _ = net.cable(
                    edge, host, rate_bps, link_delay_ns, queue_factory
                )
                bottlenecks[f"to_H{host_number}"] = edge_port
                host_number += 1
    net.build_routes()
    switches = (
        [core for group in core_groups for core in group]
        + [agg for pod_aggs in agg_pods for agg in pod_aggs]
        + [edge for pod_edges in edge_pods for edge in pod_edges]
    )
    hosts_per_pod = half * half
    pod_members = [
        [sw.name for sw in agg_pods[pod]]
        + [sw.name for sw in edge_pods[pod]]
        + [h.name for h in hosts[pod * hosts_per_pod:(pod + 1) * hosts_per_pod]]
        for pod in range(k)
    ]
    return Topology(
        network=net,
        hosts=hosts,
        switches=switches,
        bottleneck_ports=bottlenecks,
        pod_members=pod_members,
        core_members=[core.name for group in core_groups for core in group],
    )
