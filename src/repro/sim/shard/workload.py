"""The canonical sharded workload: pod-to-pod traffic on a fat tree.

One build/collect pair used by the equivalence tests, the pinned perf
workloads and the experiment runner's ``shard`` figure, so they all
agree on what "the same workload" means.  ``build_pod_traffic`` builds
the full fat tree identically in every shard (same seed, same call
order) and opens ``flows_per_pod`` flows from every pod to its
neighbour pod — a ring pattern where flows cross shard boundaries
whenever the two pods live on different shards.  Flow start times are
jittered from ``ctx.seed_for(...)`` streams keyed by pod/flow identity,
so they are identical at every shard count and in the serial reference.

``collect_pod_traffic`` fingerprints everything the shard owns: the
transport-level counters of each owned flow endpoint and the rx/drop
counters of each owned node.  The per-shard dicts union disjointly into
the serial run's dict, which is exactly what the bit-identity test
compares.
"""

from __future__ import annotations

import random
from typing import Dict

from ..units import GBPS, microseconds
from .flows import open_shard_flow
from .partition import ShardContext


def build_pod_traffic(
    ctx: ShardContext,
    k: int = 4,
    protocol: str = "tfc",
    flows_per_pod: int = 2,
    rate_bps: int = GBPS,
    link_delay_ns: int = microseconds(5),
    buffer_bytes: int = 256_000,
    start_spread_ns: int = 200_000,
    size_bytes=None,
):
    """Build the fat tree and install this shard's share of the flows."""
    # Lazy import: repro.sim must not pull the experiment layer (and its
    # transport imports) in at module-import time.
    from ...experiments.common import build_topology
    from ...net.topology import fat_tree

    topology = build_topology(
        fat_tree,
        protocol,
        buffer_bytes=buffer_bytes,
        k=k,
        rate_bps=rate_bps,
        link_delay_ns=link_delay_ns,
        seed=ctx.root_seed,
    )
    half = k // 2
    hosts_per_pod = half * half
    flows = []
    for pod in range(k):
        for i in range(flows_per_pod):
            src = topology.hosts[pod * hosts_per_pod + (i % hosts_per_pod)]
            dst_pod = (pod + 1) % k
            dst = topology.hosts[
                dst_pod * hosts_per_pod + (i % hosts_per_pod)
            ]
            # Identity-keyed jitter: same start time in every shard, at
            # any shard count, and in the serial reference.
            rng = random.Random(ctx.seed_for("pod", pod, "flow", i))
            start_ns = rng.randrange(start_spread_ns) if start_spread_ns else 0
            sender, receiver = open_shard_flow(
                ctx,
                src,
                dst,
                protocol,
                size_bytes=size_bytes,
                start_ns=start_ns,
            )
            flows.append((f"{src.name}->{dst.name}", sender, receiver))
    topology.shard_flows = flows
    return topology


def collect_pod_traffic(topology, ctx: ShardContext) -> Dict[str, tuple]:
    """Fingerprint owned flow endpoints and owned node counters."""
    out: Dict[str, tuple] = {}
    for label, sender, receiver in topology.shard_flows:
        if sender is not None:
            stats = sender.stats
            out[f"{label}:tx"] = (
                stats.bytes_acked,
                stats.packets_sent,
                stats.retransmissions,
                stats.timeouts,
            )
        if receiver is not None:
            out[f"{label}:rx"] = (
                receiver.bytes_received,
                receiver.rcv_nxt,
                receiver.reordered_segments,
            )
    for node in topology.network.nodes:
        if ctx.owns(node.name):
            out[f"{node.name}:node"] = (
                node.rx_packets,
                node.rx_bytes,
                sum(port.queue.drops for port in node.ports),
            )
    return out
