"""FaultInjector primitives: links, hosts, flows, switch state."""

import pytest

from repro.experiments.common import build_topology
from repro.faults import FaultInjector
from repro.faults.engine import reverse_port
from repro.net.topology import dumbbell
from repro.sim.trace import FAULT_CLEARED, FAULT_INJECTED
from repro.sim.units import bandwidth_delay_product, milliseconds
from repro.transport.base import FlowState
from repro.transport.registry import open_flow


def tcp_dumbbell(n_senders=2, seed=0):
    topo = dumbbell(n_senders=n_senders, seed=seed)
    return topo, topo.hosts[-1]


# ----------------------------------------------------------------------
# Wiring helpers
# ----------------------------------------------------------------------
def test_reverse_port_finds_the_opposite_direction():
    topo, _ = tcp_dumbbell()
    host_port = topo.host(0).ports[0]
    reverse = reverse_port(host_port)
    assert reverse is not None
    assert reverse.node is topo.switches[0]
    assert reverse.link.dst_node is topo.host(0)
    # And back again.
    assert reverse_port(reverse) is host_port


# ----------------------------------------------------------------------
# Link faults
# ----------------------------------------------------------------------
def test_link_down_blackholes_both_directions():
    topo, receiver = tcp_dumbbell()
    injector = FaultInjector(topo.network)
    injector.link_down(topo.host(0).ports[0], at_ns=0)
    flow = open_flow(topo.host(0), receiver, "tcp", size_bytes=20_000)
    topo.network.run_for(milliseconds(50))
    assert flow.state is not FlowState.DONE
    assert flow.receiver.bytes_received == 0
    assert topo.host(0).ports[0].link.faulted_frames > 0
    assert topo.network.tracer.counters[FAULT_INJECTED] == 1


def test_link_flap_recovers_via_retransmission():
    topo, receiver = tcp_dumbbell()
    injector = FaultInjector(topo.network)
    record = injector.link_flap(
        topo.host(0).ports[0], at_ns=milliseconds(1), down_ns=milliseconds(5)
    )
    flow = open_flow(
        topo.host(0), receiver, "tcp", size_bytes=100_000,
        min_rto_ns=milliseconds(2),
    )
    topo.network.run_for(milliseconds(200))
    assert flow.state is FlowState.DONE
    assert flow.receiver.bytes_received == 100_000
    assert record.duration_ns == milliseconds(5)
    assert topo.network.tracer.counters[FAULT_CLEARED] == 1
    assert topo.host(0).ports[0].link.up


def test_degrade_link_halves_effective_rate():
    topo, _ = tcp_dumbbell()
    port = topo.bottleneck()
    nominal = port.link.rate_bps
    injector = FaultInjector(topo.network)
    injector.degrade_link(port, 0.5, at_ns=0, duration_ns=milliseconds(1))
    topo.network.run_for(1)
    assert port.link.effective_rate_bps == nominal // 2
    assert port.link.rate_bps == nominal  # nominal rate untouched
    topo.network.run_for(milliseconds(2))
    assert port.link.effective_rate_bps == nominal


def test_degrade_validates_factor():
    topo, _ = tcp_dumbbell()
    with pytest.raises(ValueError):
        topo.bottleneck().link.degrade(0.0)
    with pytest.raises(ValueError):
        topo.bottleneck().link.degrade(1.5)


# ----------------------------------------------------------------------
# Host faults
# ----------------------------------------------------------------------
def test_pause_host_freezes_and_resume_restores():
    topo, receiver = tcp_dumbbell()
    injector = FaultInjector(topo.network)
    flow = open_flow(topo.host(0), receiver, "tcp", size_bytes=200_000)
    injector.pause_host(
        receiver, at_ns=milliseconds(2), duration_ns=milliseconds(5)
    )
    topo.network.run_for(milliseconds(100))
    assert receiver.pauses == 1
    assert not receiver.paused
    assert flow.state is FlowState.DONE
    assert flow.receiver.bytes_received == 200_000


# ----------------------------------------------------------------------
# Flow faults
# ----------------------------------------------------------------------
def test_kill_flow_is_silent():
    topo, receiver = tcp_dumbbell()
    injector = FaultInjector(topo.network)
    flow = open_flow(topo.host(0), receiver, "tcp")  # long-lived
    injector.kill_flow(flow, at_ns=milliseconds(5))
    topo.network.run_for(milliseconds(20))
    assert flow.state is FlowState.DONE
    assert flow.stats.complete_ns is None  # crashed, not completed


# ----------------------------------------------------------------------
# Switch-state faults
# ----------------------------------------------------------------------
def test_reset_switch_wipes_learned_state_then_relearns():
    topo = build_topology(dumbbell, "tfc", buffer_bytes=256_000, n_senders=2)
    receiver = topo.hosts[-1]
    senders = [
        open_flow(topo.host(i), receiver, "tfc") for i in range(2)
    ]
    warmup = milliseconds(20)
    topo.network.run_for(warmup)
    agent = topo.bottleneck().agent
    learned_rttb = agent.rttb_ns
    assert learned_rttb < agent.params.init_rttb_ns  # it learned something

    injector = FaultInjector(topo.network)
    injector.reset_switch(topo.switches[0], at_ns=warmup)
    topo.network.run_for(1)
    assert agent.delimiter_key is None
    assert agent.rttb_ns == agent.params.init_rttb_ns
    assert agent.tokens == bandwidth_delay_product(
        agent.rate_bps, agent.params.init_rttb_ns
    )

    topo.network.run_for(milliseconds(20))
    assert agent.delimiter_key is not None  # re-elected from live traffic
    assert agent.rttb_ns < agent.params.init_rttb_ns  # re-learned
    for sender in senders:
        assert sender.state is FlowState.ESTABLISHED


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_chaos_runs_are_deterministic():
    """Same seed, same fault schedule: bit-identical goodput series."""
    from repro.experiments.chaos import run_chaos

    kwargs = dict(
        warmup_ns=milliseconds(10),
        fault_ns=milliseconds(5),
        tail_ns=milliseconds(15),
    )
    first = run_chaos("burst_loss", seed=9, **kwargs)
    second = run_chaos("burst_loss", seed=9, **kwargs)
    other = run_chaos("burst_loss", seed=10, **kwargs)
    assert first.goodput_series == second.goodput_series
    assert [r.kind for r in first.records] == [r.kind for r in second.records]
    assert first.goodput_series != other.goodput_series
