"""Output ports and unidirectional links.

A :class:`Port` is the transmitting side of one link direction: it owns the
packet queue, serialises one packet at a time at the link rate, and hands
finished frames to the :class:`Link`, which delivers them to the peer node
after the propagation delay.  Store-and-forward behaviour (the paper's
NetFPGA switches, and the reason RTT depends on frame size) falls out
naturally: a node only sees a packet once the whole frame has been received.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..sim.engine import Simulator
from ..sim.trace import PACKET_DROP, Tracer
from ..sim.units import transmission_time_ns
from .packet import Packet
from .queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import Node


class Link:
    """One direction of a cable: nominal rate and propagation delay.

    Fault hooks (driven by :mod:`repro.faults`): ``up = False`` models a
    cut cable — frames finishing serialisation vanish instead of arriving
    (counted in ``faulted_frames``); ``rate_factor`` degrades the
    serialisation rate (failing optics, autoneg fallback) without changing
    the nominal rate protocols were configured against.
    """

    __slots__ = (
        "_sim",
        "rate_bps",
        "delay_ns",
        "dst_node",
        "dst_port_index",
        "up",
        "_rate_factor",
        "effective_rate_bps",
        "faulted_frames",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: int,
        delay_ns: int,
        dst_node: "Node",
        dst_port_index: int,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if delay_ns < 0:
            raise ValueError(f"link delay must be >= 0, got {delay_ns}")
        self._sim = sim
        self.rate_bps = rate_bps
        self.delay_ns = delay_ns
        self.dst_node = dst_node
        self.dst_port_index = dst_port_index
        self.up = True
        self._rate_factor = 1.0
        # Serialisation rate after degradation, cached as a plain attribute
        # (read once per transmitted frame) and refreshed only when the
        # factor changes.
        self.effective_rate_bps = rate_bps
        self.faulted_frames = 0

    @property
    def rate_factor(self) -> float:
        """Injected serialisation-rate degradation factor (1.0 = healthy)."""
        return self._rate_factor

    @rate_factor.setter
    def rate_factor(self, factor: float) -> None:
        self._rate_factor = factor
        if factor >= 1.0:
            self.effective_rate_bps = self.rate_bps
        else:
            self.effective_rate_bps = max(int(self.rate_bps * factor), 1)

    def degrade(self, factor: float) -> None:
        """Scale the serialisation rate by ``factor`` (0 < factor <= 1)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"rate factor must be in (0, 1], got {factor}")
        self.rate_factor = factor

    def restore_rate(self) -> None:
        """Clear any injected rate degradation."""
        self.rate_factor = 1.0

    def carry(self, packet: Packet) -> None:
        """Deliver a fully serialised frame to the far end after the delay.

        Kept for external callers and tests; the :class:`Port` transmit
        path inlines this (one scheduled delivery straight to the
        destination node) because the propagation delay is static.
        """
        if not self.up:
            self.faulted_frames += 1
            return  # the cable is cut; the frame vanishes
        packet.hops += 1
        self._sim.schedule(
            self.delay_ns, self.dst_node.receive, packet, self.dst_port_index
        )


class Port:
    """Transmit side of a link direction, owned by a node.

    ``agent`` is an optional protocol hook (the TFC switch agent attaches
    here); the port itself never inspects it — nodes do.
    """

    __slots__ = (
        "_sim",
        "node",
        "index",
        "link",
        "queue",
        "tracer",
        "agent",
        "on_dequeue",
        "_busy",
        "paused",
        "tx_packets",
        "tx_bytes",
    )

    def __init__(
        self,
        sim: Simulator,
        node: "Node",
        index: int,
        link: Link,
        queue: DropTailQueue,
        tracer: Optional[Tracer] = None,
    ):
        self._sim = sim
        self.node = node
        self.index = index
        self.link = link
        self.queue = queue
        self.tracer = tracer
        self.agent = None  # set by protocols that need per-port state
        # Optional callable(packet) fired when a packet leaves the queue
        # to start serialising — the lossless fabric releases its ingress
        # accounting here (the buffer slot is free once TX begins).
        self.on_dequeue = None
        self._busy = False
        self.paused = False
        self.tx_packets = 0
        self.tx_bytes = 0

    @property
    def rate_bps(self) -> int:
        """Line rate of the attached link."""
        return self.link.rate_bps

    @property
    def peer_node(self) -> "Node":
        """Node on the far end of the attached link."""
        return self.link.dst_node

    def send(self, packet: Packet) -> bool:
        """Queue ``packet`` for transmission; False if drop-tail rejected it."""
        if not self.queue.enqueue(packet):
            tracer = self.tracer
            if tracer is not None:
                if tracer.active(PACKET_DROP):
                    tracer.emit(PACKET_DROP, packet=packet, port=self)
                else:
                    tracer.bump(PACKET_DROP)
            return False
        if not self._busy and not self.paused:
            self._start_next()
        return True

    def pause(self) -> None:
        """Stop starting new transmissions (host stall fault).

        A frame already on the wire finishes serialising; everything else
        accumulates in the queue until :meth:`resume`.
        """
        self.paused = True

    def resume(self) -> None:
        """Resume transmission after :meth:`pause`."""
        if not self.paused:
            return
        self.paused = False
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if self.paused:
            self._busy = False
            return
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        if self.on_dequeue is not None:
            self.on_dequeue(packet)
        tx_ns = transmission_time_ns(packet.frame_size, self.link.effective_rate_bps)
        self._sim.schedule(tx_ns, self._finish_tx, packet)

    def _finish_tx(self, packet: Packet) -> None:
        # One scheduled delivery straight to the peer node: the propagation
        # delay is static, so the Link.carry -> schedule(_arrive) hop adds
        # nothing but call overhead on this per-frame path.
        self.tx_packets += 1
        self.tx_bytes += packet.frame_size
        link = self.link
        if link.up:
            packet.hops += 1
            self._sim.schedule(
                link.delay_ns, link.dst_node.receive, packet, link.dst_port_index
            )
        else:
            link.faulted_frames += 1
        self._start_next()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.node.name}[{self.index}] q={self.queue.byte_length}B>"
