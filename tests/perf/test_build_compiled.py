"""The build_compiled.py exit-code contract.

CI branches on these codes (exit 3 = "mypyc unavailable, skip the
compiled shard, stay green"; any other non-zero = genuine build break),
and the README documents them — this test pins script, workflow and
docs to one another so they cannot drift apart again.
"""

import os
import subprocess
import sys

REPO = os.path.join(os.path.dirname(__file__), "..", "..")
SCRIPT = os.path.join(REPO, "benchmarks", "perf", "build_compiled.py")


def test_unavailable_constant_is_pinned():
    """Exit code 3 is baked into ci.yml and README; never renumber it."""
    namespace = {}
    with open(SCRIPT) as fh:
        for line in fh:
            if line.startswith("MYPYC_UNAVAILABLE"):
                exec(line, namespace)  # noqa: S102 - a literal assignment
                break
    assert namespace["MYPYC_UNAVAILABLE"] == 3


def test_check_mode_exits_zero_or_three():
    """--check reports availability without building: 0 or 3, only."""
    result = subprocess.run(
        [sys.executable, SCRIPT, "--check"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode in (0, 3), result.stderr
    expected = "available" if result.returncode == 0 else "unavailable"
    assert expected in result.stdout


def test_exit_codes_documented_in_readme_and_ci():
    with open(os.path.join(REPO, "README.md")) as fh:
        readme = fh.read()
    assert "MYPYC_UNAVAILABLE" in readme
    with open(os.path.join(REPO, ".github", "workflows", "ci.yml")) as fh:
        ci = fh.read()
    # Both compiled CI jobs branch on exit 3, and the bench-smoke wiring
    # check asserts the --check contract directly.
    assert ci.count('"$code" -eq 3') >= 2
    assert "--check" in ci
