"""Unit and property tests for the statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.stats import (
    cdf_points,
    jain_fairness,
    mean,
    percentile,
    summarize_tail,
    time_average,
)


def test_percentile_nearest_rank():
    data = list(range(1, 101))  # 1..100
    assert percentile(data, 50) == 50
    assert percentile(data, 95) == 95
    assert percentile(data, 99) == 99
    assert percentile(data, 100) == 100
    assert percentile(data, 1) == 1


def test_percentile_small_sample_clamps_to_max():
    assert percentile([5.0, 7.0], 99.99) == 7.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 0)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_percentile_unsorted_input():
    assert percentile([9, 1, 5], 50) == 5


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ValueError):
        mean([])


def test_summarize_tail_keys():
    summary = summarize_tail([float(i) for i in range(1000)])
    assert set(summary) == {"mean", "p95", "p99", "p99.9", "p99.99"}
    assert summary["p95"] <= summary["p99"] <= summary["p99.9"] <= summary["p99.99"]


def test_cdf_points():
    points = cdf_points([3.0, 1.0, 2.0])
    assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]
    assert cdf_points([]) == []


def test_jain_fairness_bounds():
    assert jain_fairness([1, 1, 1, 1]) == pytest.approx(1.0)
    assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)
    assert jain_fairness([0, 0]) == 1.0  # degenerate all-zero case
    with pytest.raises(ValueError):
        jain_fairness([])


def test_time_average_piecewise_constant():
    series = [(0, 10.0), (50, 20.0)]
    assert time_average(series, horizon_ns=100) == pytest.approx(15.0)
    assert time_average([], horizon_ns=100) == 0.0


@given(st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False), min_size=1, max_size=200))
def test_property_percentile_is_element_and_monotone(values):
    previous = None
    for p in (10, 50, 90, 99, 100):
        result = percentile(values, p)
        assert result in values
        if previous is not None:
            assert result >= previous
        previous = result


@given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=50))
def test_property_jain_in_unit_interval(rates):
    index = jain_fairness(rates)
    assert 1.0 / len(rates) - 1e-9 <= index <= 1.0 + 1e-9


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
def test_property_cdf_is_monotone_and_complete(values):
    points = cdf_points(values)
    assert len(points) == len(values)
    fractions = [f for _, f in points]
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)
    sorted_values = [v for v, _ in points]
    assert sorted_values == sorted(values)
