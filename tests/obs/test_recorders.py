"""Slot-timeline and flight recorders against a real simulation."""

import json

import pytest

from repro.experiments.common import build_topology
from repro.net.topology import dumbbell
from repro.obs import (
    SLOT_FIELDS,
    FlightRecorder,
    SlotTimelineRecorder,
    agent_label,
)
from repro.sim.trace import INVARIANT_VIOLATION, TFC_WINDOW_UPDATE
from repro.sim.units import seconds
from repro.transport.registry import open_flow


@pytest.fixture(autouse=True)
def _no_env_telemetry(monkeypatch):
    # These tests attach recorders by hand; an env-installed session
    # (e.g. the REPRO_TELEMETRY=full CI shard) would double-subscribe.
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    monkeypatch.delenv("REPRO_TELEMETRY_DIR", raising=False)


def _dumbbell(n=2, seed=1):
    return build_topology(
        dumbbell, "tfc", buffer_bytes=256_000, n_senders=n, seed=seed
    )


def _run_flows(topo, n):
    receiver = topo.host(n)
    for i in range(n):
        open_flow(topo.host(i), receiver, "tfc")
    topo.network.run_for(seconds(0.05))


# ----------------------------------------------------------------------
# SlotTimelineRecorder
# ----------------------------------------------------------------------
def test_slot_recorder_one_row_per_window_update():
    topo = _dumbbell()
    recorder = SlotTimelineRecorder(topo.network)
    _run_flows(topo, 2)
    assert recorder.total_rows == topo.network.tracer.count(TFC_WINDOW_UPDATE)
    assert recorder.total_rows > 0
    # The congested bottleneck agent is present under its stable label.
    bottleneck_agent = topo.bottleneck().agent
    assert agent_label(bottleneck_agent) in recorder.labels()


def test_slot_recorder_row_shape_and_series():
    topo = _dumbbell()
    recorder = SlotTimelineRecorder(topo.network)
    _run_flows(topo, 2)
    label = agent_label(topo.bottleneck().agent)
    rows = recorder.timelines[label]
    assert all(len(row) == len(SLOT_FIELDS) for row in rows)
    # slot indexes advance monotonically, timestamps never go backwards
    slots = [row[SLOT_FIELDS.index("slot")] for row in rows]
    assert slots == sorted(slots)
    tokens = recorder.series(label, "tokens")
    assert len(tokens) == len(rows)
    assert all(t >= 0 for t, _ in tokens)
    with pytest.raises(ValueError):
        recorder.series(label, "no_such_field")


def test_slot_recorder_detach_stops_recording():
    topo = _dumbbell()
    recorder = SlotTimelineRecorder(topo.network)
    recorder.detach()
    recorder.detach()  # idempotent
    _run_flows(topo, 2)
    assert recorder.total_rows == 0
    assert not topo.network.tracer.active(TFC_WINDOW_UPDATE)


# ----------------------------------------------------------------------
# FlightRecorder
# ----------------------------------------------------------------------
def test_flight_recorder_captures_low_frequency_topics():
    topo = _dumbbell()
    recorder = FlightRecorder(topo.network)
    _run_flows(topo, 2)
    topics = {record["topic"] for record in recorder.snapshot()}
    assert "tfc.delimiter_elected" in topics
    assert recorder.records_seen == len(recorder.ring)


def test_flight_recorder_ring_is_bounded():
    topo = _dumbbell()
    recorder = FlightRecorder(topo.network, capacity=5)
    tracer = topo.network.tracer
    for i in range(20):
        tracer.emit("transport.flow_complete", flow_id=i)
    assert len(recorder.ring) == 5
    assert recorder.records_seen == 20
    assert [r["flow_id"] for r in recorder.snapshot()] == [15, 16, 17, 18, 19]
    with pytest.raises(ValueError):
        FlightRecorder(topo.network, capacity=0)


def test_flight_recorder_auto_dumps_on_invariant_violation(tmp_path):
    topo = _dumbbell()
    recorder = FlightRecorder(topo.network, dump_dir=str(tmp_path))
    tracer = topo.network.tracer
    tracer.emit("net.packet_drop", reason="overflow")
    tracer.emit(INVARIANT_VIOLATION, violation="token clamp escaped")
    assert len(recorder.dumps) == 1
    dump = recorder.dumps[0]
    assert dump[-1]["topic"] == INVARIANT_VIOLATION
    assert any(r["topic"] == "net.packet_drop" for r in dump)
    path = tmp_path / "flight_000.jsonl"
    assert path.exists()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert records[-1]["violation"] == "token clamp escaped"


def test_flight_recorder_summarises_complex_payloads():
    topo = _dumbbell()
    recorder = FlightRecorder(topo.network, topics=("t",))
    topo.network.tracer.emit("t", obj=object(), big=list(range(500)), n=3)
    record = recorder.snapshot()[0]
    assert record["n"] == 3  # scalars pass through
    assert isinstance(record["obj"], str)
    assert isinstance(record["big"], str) and len(record["big"]) <= 200
    # JSON-serialisable end to end
    json.dumps(record)


def test_flight_recorder_detach_unsubscribes_everything():
    topo = _dumbbell()
    recorder = FlightRecorder(topo.network)
    tracer = topo.network.tracer
    recorder.detach()
    recorder.detach()  # idempotent
    for topic in recorder.topics:
        assert not tracer.active(topic)
    tracer.emit("net.packet_drop")
    assert len(recorder.ring) == 0
