"""The routing-policy interface.

A :class:`RoutingPolicy` decides, per packet, which of a switch's
equal-cost next-hop ports carries the packet towards its destination.
The candidate sets live on the nodes themselves
(``node.multipath_table``, built by
:meth:`repro.net.network.Network.build_routes`); the policy only picks
an index out of them, so one policy instance serves a whole network.

Determinism contract (enforced by the golden-determinism suite): a
policy may consult only

* the packet's header fields,
* the switch's identity and its multipath table,
* the simulation clock, and
* state derived from the network's root seed (the ``salt`` handed to
  :meth:`install`),

so two runs with the same seed — in the same process or across
``--jobs`` worker processes — make bit-identical path choices.  Wall
clock, object ids, ``PYTHONHASHSEED``-dependent hashes and global
mutable state are all off limits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..net.network import Network
    from ..net.node import Switch
    from ..net.packet import Packet

#: FNV-1a 64-bit offset basis / prime (the per-flow path hash).
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def flow_hash(salt: int, *fields: int) -> int:
    """FNV-1a over integer header fields, salted by the network seed.

    Explicit (not Python's ``hash``) so the path choice is stable across
    interpreter versions and documented enough to reproduce collisions
    on purpose — the ECMP-collision experiment does exactly that.
    """
    h = _FNV_OFFSET ^ (salt & _MASK64)
    for field in fields:
        h ^= field & _MASK64
        h = (h * _FNV_PRIME) & _MASK64
    return h


class RoutingPolicy:
    """Picks one equal-cost next hop per packet at every switch."""

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(self) -> None:
        self.salt = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self, network: "Network") -> None:
        """Bind to ``network`` after its routes are built.

        Derives the hash salt from the network's root seed and attaches
        the policy to every switch.  The single-path policy overrides
        this to attach *nothing*, keeping the pre-multipath datapath
        byte-for-byte identical.
        """
        self.salt = network.seeds.spawn("routing").root_seed
        for switch in network.switches:
            switch.routing = self

    def on_routes_rebuilt(self, network: "Network") -> None:
        """Routes were recomputed (fault reroute); drop stale path picks."""

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def select(self, switch: "Switch", packet: "Packet") -> int:
        """Return the outgoing port index for ``packet`` at ``switch``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} salt={self.salt:#x}>"
