"""Tests for on/off, paced, bulk, and incast workload drivers."""

import pytest

from repro.net.topology import dumbbell
from repro.sim.units import milliseconds, seconds
from repro.transport.base import FlowState
from repro.transport.registry import configure_network, open_flow, queue_factory_for
from repro.workloads.bulk import concurrent_flows, staggered_flows
from repro.workloads.incast import IncastCoordinator
from repro.workloads.onoff import OnOffSource, PacedSource


def make_topo(proto="tcp", n=2):
    topo = dumbbell(n_senders=n, queue_factory=queue_factory_for(proto, 256_000))
    configure_network(topo.network, proto)
    return topo


# ----------------------------------------------------------------------
# On/off and paced sources
# ----------------------------------------------------------------------
def test_onoff_cycles_and_finishes():
    topo = make_topo()
    sender = open_flow(topo.hosts[0], topo.hosts[-1], "tcp", size_bytes=0)
    source = OnOffSource(
        topo.sim, sender,
        on_ns=milliseconds(5), off_ns=milliseconds(5),
        burst_bytes=10_000, cycles=3,
    )
    topo.network.run_for(seconds(1))
    assert source.bursts_sent == 3
    assert sender.state is FlowState.DONE
    assert sender.stats.bytes_acked == 30_000


def test_onoff_stop():
    topo = make_topo()
    sender = open_flow(topo.hosts[0], topo.hosts[-1], "tcp", size_bytes=0)
    sender.fin_on_empty = False
    source = OnOffSource(
        topo.sim, sender, on_ns=milliseconds(1), off_ns=milliseconds(1),
        burst_bytes=1000,
    )
    topo.network.run_for(milliseconds(5))
    source.stop()
    bursts = source.bursts_sent
    topo.network.run_for(milliseconds(20))
    assert source.bursts_sent == bursts


def test_onoff_validates_arguments():
    topo = make_topo()
    sender = open_flow(topo.hosts[0], topo.hosts[-1], "tcp", size_bytes=0)
    with pytest.raises(ValueError):
        OnOffSource(topo.sim, sender, on_ns=0, off_ns=1, burst_bytes=1)
    with pytest.raises(ValueError):
        OnOffSource(topo.sim, sender, on_ns=1, off_ns=1, burst_bytes=0)


def test_paced_source_rate():
    topo = make_topo()
    sender = open_flow(topo.hosts[0], topo.hosts[-1], "tcp", size_bytes=0)
    sender.fin_on_empty = False
    PacedSource(topo.sim, sender, rate_bps=100_000_000, interval_ns=milliseconds(1))
    topo.network.run_for(seconds(0.5))
    rate = sender.stats.bytes_acked * 8 / 0.5
    assert rate == pytest.approx(100_000_000, rel=0.1)


# ----------------------------------------------------------------------
# Bulk helpers
# ----------------------------------------------------------------------
def test_staggered_flows_start_times():
    topo = make_topo(n=3)
    receiver = topo.hosts[-1]
    senders = staggered_flows(
        topo.hosts[:3], receiver, "tcp", interval_ns=milliseconds(10),
        size_bytes=1000,
    )
    topo.network.run_for(seconds(1))
    starts = [s.stats.start_ns for s in senders]
    assert starts == [0, milliseconds(10), milliseconds(20)]
    assert all(s.state is FlowState.DONE for s in senders)


def test_concurrent_flows_start_together():
    topo = make_topo(n=3)
    senders = concurrent_flows(
        topo.hosts[:3], topo.hosts[-1], "tcp", size_bytes=1000,
        start_ns=milliseconds(5),
    )
    topo.network.run_for(seconds(1))
    assert all(s.stats.start_ns == milliseconds(5) for s in senders)


# ----------------------------------------------------------------------
# Incast
# ----------------------------------------------------------------------
def test_incast_completes_requested_rounds():
    topo = make_topo(proto="tfc", n=5)
    coordinator = IncastCoordinator(
        topo.hosts[-1], topo.hosts[:5], "tfc",
        block_bytes=64_000, rounds=3,
    )
    topo.network.run_for(seconds(5))
    assert coordinator.finished
    assert coordinator.rounds_completed == 3
    assert len(coordinator.round_durations_ns) == 3
    assert coordinator.goodput_bps > 0
    for sender in coordinator.senders:
        assert sender.stats.bytes_acked == 3 * 64_000


def test_incast_barrier_synchronisation():
    """Round k+1's data is only queued after round k fully acked."""
    topo = make_topo(proto="tfc", n=3)
    coordinator = IncastCoordinator(
        topo.hosts[-1], topo.hosts[:3], "tfc", block_bytes=32_000, rounds=2,
    )
    seen_violation = []

    def watch():
        # While any sender still owes round-1 bytes, none may have been
        # given round-2 bytes.
        if any(s.snd_una < 32_000 for s in coordinator.senders):
            if any(s.flow_bytes > 32_000 for s in coordinator.senders):
                seen_violation.append(topo.sim.now)
        topo.sim.schedule(10_000, watch)

    topo.sim.schedule(0, watch)
    topo.network.run_for(seconds(2))
    assert not seen_violation
    assert coordinator.finished


def test_incast_metrics_exposed():
    topo = make_topo(proto="tcp", n=4)
    coordinator = IncastCoordinator(
        topo.hosts[-1], topo.hosts[:4], "tcp", block_bytes=16_000, rounds=2,
    )
    topo.network.run_for(seconds(5))
    assert coordinator.max_timeouts_per_block >= 0
    assert coordinator.total_timeouts >= 0


def test_incast_validates_arguments():
    topo = make_topo()
    with pytest.raises(ValueError):
        IncastCoordinator(topo.hosts[-1], [], "tcp")
    with pytest.raises(ValueError):
        IncastCoordinator(topo.hosts[-1], topo.hosts[:1], "tcp", block_bytes=0)
