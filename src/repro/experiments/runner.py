"""Parallel experiment runner.

Every paper figure decomposes into independent *cells* — one
``(figure, protocol, seed, load-point)`` simulation that shares nothing
with its neighbours.  This module fans those cells out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (simulations are pure
CPU, so threads would serialise on the GIL) and reassembles the results
in submission order.

Determinism is preserved across worker counts: each cell's child seed is
:func:`~repro.experiments.common.derive_cell_seed` of the root seed and
the cell's identity labels, so ``--jobs 8`` returns bit-identical
:class:`~repro.experiments.common.ExperimentResult` objects to a serial
run — only wall-clock changes.  ``jobs <= 1`` never touches
multiprocessing at all (the serial fallback tests rely on), and a pool
that cannot start (sandboxes without /dev/shm, missing semaphores) falls
back to the same serial path with a warning instead of dying.

CLI::

    python -m repro.experiments.runner --figures fig13 fig14 --jobs 4
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..config import ROUTING_NAMES, SCHEDULER_NAMES, SimConfig
from ..config import telemetry_dir as _configured_telemetry_dir
from ..obs import drain_pending as _drain_telemetry
from .baselines import run_baselines_cell
from .common import (
    ALL_PROTOCOLS,
    BASELINE_PROTOCOLS,
    ExperimentResult,
    derive_cell_seed,
    format_table,
)
from .ecmp_collision import run_collision_cell
from .fig06_rttb import run_fig06_cell
from .fig07_ne import run_fig07_cell
from .fig08_queue import run_staggered_cell
from .fig11_work_conserving import run_fig11_cell
from .fig12_incast import run_incast_cell
from .fig13_benchmark import run_benchmark_cell
from .fig14_rho import run_rho_cell
from .multipath_benchmark import run_multipath_cell
from .pfc_pathology import FABRICS as PFC_FABRICS
from .pfc_pathology import SCENARIOS as PFC_SCENARIOS
from .pfc_pathology import run_pathology_cell
from .scenario_cells import run_scenario_cell
from .shard_scale import run_shard_cell

CellFn = Callable[..., ExperimentResult]

#: Figure name -> picklable cell entry point.  Every entry point returns an
#: :class:`ExperimentResult` (plain scalars + series), so results pickle
#: cleanly across the process boundary.
FIGURE_CELLS: Dict[str, CellFn] = {
    "fig06": run_fig06_cell,
    "fig07": run_fig07_cell,
    "fig08": run_staggered_cell,
    "fig11": run_fig11_cell,
    "fig12": run_incast_cell,
    "fig13": run_benchmark_cell,
    "fig14": run_rho_cell,
    "baselines": run_baselines_cell,
    "ecmp": run_collision_cell,
    "mpath": run_multipath_cell,
    "pfc": run_pathology_cell,
    "shard": run_shard_cell,
    "scenario": run_scenario_cell,
}

#: Routing policies swept by the multi-path default plans.
MULTIPATH_ROUTINGS = ("single", "ecmp", "flowlet", "spray")


class RunnerError(RuntimeError):
    """A cell failed in a worker; carries the cell label and remote traceback."""


@dataclass(frozen=True)
class CellSpec:
    """One independent unit of work: a figure entry point plus kwargs.

    ``kwargs`` must be picklable (they cross the process boundary).  The
    ``seed`` kwarg, when absent, is derived from ``root_seed`` and the
    cell's identity so results do not depend on scheduling order.
    """

    figure: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        parts = [f"{k}={v}" for k, v in sorted(self.kwargs.items())]
        return f"{self.figure}({', '.join(parts)})"

    def resolved(self, root_seed: int) -> "CellSpec":
        """Fill in the cell seed if the caller did not pin one."""
        if "seed" in self.kwargs:
            return self
        labels = [self.figure] + [
            f"{k}={self.kwargs[k]}" for k in sorted(self.kwargs)
        ]
        seed = derive_cell_seed(root_seed, *labels)
        return CellSpec(self.figure, {**self.kwargs, "seed": seed})


def _execute_cell(spec: CellSpec) -> ExperimentResult:
    """Worker entry point: run one cell to completion.

    Exceptions are re-raised as :class:`RunnerError` *here*, inside the
    worker, so the parent receives a picklable error that names the cell —
    arbitrary exception types (with simulation objects attached) may not
    survive the return trip.
    """
    fn = FIGURE_CELLS.get(spec.figure)
    if fn is None:
        raise RunnerError(
            f"unknown figure {spec.figure!r}; "
            f"known: {', '.join(sorted(FIGURE_CELLS))}"
        )
    try:
        result = fn(**spec.kwargs)
    except RunnerError:
        raise
    except BaseException as exc:
        raise RunnerError(
            f"cell {spec.label} failed: {exc!r}\n{traceback.format_exc()}"
        ) from None
    _export_cell_telemetry(spec)
    return result


def _export_cell_telemetry(spec: CellSpec) -> None:
    """Export any telemetry sessions the cell installed.

    Runs *after* the cell completes (in the worker, for pool runs), so
    exporting can never perturb the simulation.  Sessions are drained
    unconditionally — even with no export directory configured — so
    finished networks are not kept pinned between cells.
    """
    sessions = _drain_telemetry()
    directory = _configured_telemetry_dir()
    if not directory or not sessions:
        return
    base = _safe_label(spec)
    for index, session in enumerate(sessions):
        label = base if len(sessions) == 1 else f"{base}_{index}"
        for path in session.export(directory, label):
            print(f"telemetry written to {path}", file=sys.stderr)


def run_cells(
    specs: Sequence[CellSpec],
    jobs: int = 1,
    root_seed: int = 0,
    scheduler: Optional[str] = None,
    routing: Optional[str] = None,
    profile_dir: Optional[str] = None,
    telemetry: Optional[str] = None,
    telemetry_dir: Optional[str] = None,
    config: Optional[SimConfig] = None,
    cell_timeout: Optional[float] = None,
    shards: Optional[int] = None,
) -> List[ExperimentResult]:
    """Run every cell and return results in the order specs were given.

    ``jobs <= 1`` runs everything in-process (no multiprocessing import
    side effects — the path tests use).  ``jobs > 1`` fans out over a
    process pool; a pool that cannot even start degrades to the serial
    path, but a cell that *fails* always surfaces as :class:`RunnerError`.

    Selection: pass one :class:`~repro.config.SimConfig` as ``config``,
    or the individual knobs (``scheduler``, ``routing``, ``telemetry``,
    ``telemetry_dir``), which are folded into one.  The config is pinned
    process-wide for the batch (exported as the ``REPRO_*`` variables,
    which pool workers inherit; a cell that takes an explicit ``routing``
    kwarg — the multi-path figures — wins over the env default).
    ``telemetry_dir`` makes every cell export its telemetry files there
    (mode defaults to ``full``); ``profile_dir`` writes one cProfile
    stats file per cell.  Profiling composes with ``jobs > 1``: each
    pool worker profiles *its own cell* (profiler enabled around the
    cell entry point only, inside the worker) and dumps the stats file
    itself, so the parent's pool plumbing never pollutes the numbers.

    ``cell_timeout`` (seconds of wall-clock, per cell) runs each cell in
    its own killable process; a cell that exceeds the budget is
    terminated and reported as a deterministic ``timed_out`` result
    instead of hanging the whole batch.  Like the pool, it degrades to
    plain serial execution (without timeouts) where multiprocessing is
    unavailable.
    """
    if config is None:
        config = SimConfig(
            seed=root_seed,
            scheduler=scheduler,
            routing=routing,
            telemetry=telemetry
            or ("full" if telemetry_dir is not None else None),
            telemetry_dir=telemetry_dir,
            shards=shards,
        )
    resolved = [spec.resolved(config.seed) for spec in specs]
    with config.env():
        if profile_dir is not None:
            os.makedirs(profile_dir, exist_ok=True)
            if jobs > 1 and len(resolved) > 1:
                try:
                    return _run_pool(resolved, jobs, profile_dir)
                except RunnerError:
                    raise
                except (OSError, ImportError, PermissionError) as exc:
                    print(
                        f"runner: process pool unavailable ({exc!r}); "
                        "profiling on the serial path instead",
                        file=sys.stderr,
                    )
            return _run_profiled(resolved, profile_dir)
        if cell_timeout is not None:
            try:
                return _run_with_timeout(resolved, jobs, cell_timeout)
            except RunnerError:
                raise
            except (OSError, ImportError, PermissionError) as exc:
                print(
                    f"runner: cell-timeout processes unavailable ({exc!r}); "
                    "falling back to serial execution without timeouts",
                    file=sys.stderr,
                )
            return [_execute_cell(spec) for spec in resolved]
        if jobs > 1 and len(resolved) > 1:
            try:
                return _run_pool(resolved, jobs)
            except RunnerError:
                raise
            except (OSError, ImportError, PermissionError) as exc:
                print(
                    f"runner: process pool unavailable ({exc!r}); "
                    "falling back to serial execution",
                    file=sys.stderr,
                )
        return [_execute_cell(spec) for spec in resolved]


def _execute_cell_profiled(
    spec: CellSpec, index: int, profile_dir: str
) -> ExperimentResult:
    """Run one cell under cProfile and dump its stats file.

    Top-level (hence picklable) so the pool path can submit it directly:
    the profiler starts and stops *inside the worker*, around the cell
    entry point only, and the worker dumps its own stats — the parent
    never touches profile state.
    """
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = _execute_cell(spec)
    finally:
        profiler.disable()
    path = os.path.join(
        profile_dir, f"cell_{index:03d}_{_safe_label(spec)}.prof"
    )
    profiler.dump_stats(path)
    print(f"profile written to {path}", file=sys.stderr)
    return result


def _run_profiled(
    specs: List[CellSpec], profile_dir: str
) -> List[ExperimentResult]:
    """Serial execution with one cProfile stats dump per cell."""
    return [
        _execute_cell_profiled(spec, index, profile_dir)
        for index, spec in enumerate(specs)
    ]


def _safe_label(spec: CellSpec) -> str:
    """Filesystem-safe compact cell label for profile filenames."""
    raw = spec.figure + "_" + "_".join(
        f"{k}-{spec.kwargs[k]}" for k in sorted(spec.kwargs)
    )
    return "".join(c if c.isalnum() or c in "._-" else "-" for c in raw)[:80]


def timed_out_result(spec: CellSpec, timeout_s: float) -> ExperimentResult:
    """The deterministic placeholder a killed cell reports.

    Depends only on the spec and the budget — never on how far the cell
    got before the kill — so a timed-out batch is still reproducible.
    """
    protocol = (
        spec.kwargs.get("protocol")
        or spec.kwargs.get("fabric")
        or spec.kwargs.get("transport")
        or ""
    )
    return ExperimentResult(
        name=spec.figure,
        protocol=str(protocol),
        scalars={"timed_out": 1.0, "cell_timeout_s": float(timeout_s)},
    )


def _timeout_worker(conn, spec: CellSpec) -> None:
    """Child process entry point for timeout-guarded cells."""
    try:
        result = _execute_cell(spec)
        conn.send(("ok", result))
    except RunnerError as exc:
        conn.send(("err", str(exc)))
    except BaseException as exc:  # pragma: no cover - defensive
        conn.send(("err", f"cell {spec.label} failed: {exc!r}"))
    finally:
        conn.close()


def _run_with_timeout(
    specs: List[CellSpec], jobs: int, timeout_s: float
) -> List[ExperimentResult]:
    """One killable process per cell, at most ``jobs`` in flight.

    A pool cannot do this: :class:`~concurrent.futures.ProcessPoolExecutor`
    has no per-task kill (cancelling a running future is a no-op), and
    terminating a worker poisons the whole pool.  Plain processes keep a
    hung cell's blast radius to itself.
    """
    import multiprocessing as mp
    from multiprocessing.connection import wait as connection_wait

    results: List[Optional[ExperimentResult]] = [None] * len(specs)
    pending = list(enumerate(specs))
    #: parent pipe end -> (spec index, process, wall-clock deadline)
    running: Dict[Any, Any] = {}

    def reap(conn) -> None:
        index, proc, _ = running.pop(conn)
        try:
            status, payload = conn.recv()
        except EOFError:
            status, payload = (
                "err",
                f"worker process died while running {specs[index].label}",
            )
        conn.close()
        proc.join()
        if status != "ok":
            raise RunnerError(payload)
        results[index] = payload

    try:
        while pending or running:
            while pending and len(running) < max(1, jobs):
                index, spec = pending.pop(0)
                parent_conn, child_conn = mp.Pipe(duplex=False)
                proc = mp.Process(
                    target=_timeout_worker, args=(child_conn, spec)
                )
                proc.start()
                child_conn.close()
                running[parent_conn] = (
                    index,
                    proc,
                    time.monotonic() + timeout_s,
                )
            next_deadline = min(d for (_, _, d) in running.values())
            ready = connection_wait(
                list(running),
                timeout=max(0.0, next_deadline - time.monotonic()),
            )
            for conn in ready:
                reap(conn)
            now = time.monotonic()
            expired = [
                conn
                for conn, (_, _, deadline) in running.items()
                if deadline <= now
            ]
            for conn in expired:
                index, proc, _ = running.pop(conn)
                proc.terminate()
                proc.join()
                conn.close()
                print(
                    f"runner: cell {specs[index].label} exceeded "
                    f"{timeout_s:g}s wall-clock; killed",
                    file=sys.stderr,
                )
                results[index] = timed_out_result(specs[index], timeout_s)
    finally:
        for conn, (_, proc, _) in running.items():
            proc.terminate()
            proc.join()
            conn.close()
    return results  # type: ignore[return-value]


def _run_pool(
    specs: List[CellSpec], jobs: int, profile_dir: Optional[str] = None
) -> List[ExperimentResult]:
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    workers = min(jobs, len(specs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        if profile_dir is not None:
            futures = [
                pool.submit(_execute_cell_profiled, spec, index, profile_dir)
                for index, spec in enumerate(specs)
            ]
        else:
            futures = [pool.submit(_execute_cell, spec) for spec in specs]
        results: List[ExperimentResult] = []
        for spec, future in zip(specs, futures):
            try:
                results.append(future.result())
            except RunnerError:
                raise
            except BrokenProcessPool as exc:
                raise RunnerError(
                    f"worker process died while running {spec.label} "
                    f"(or an earlier cell): {exc!r}"
                ) from None
        return results


# ----------------------------------------------------------------------
# Default sweep plans (what the CLI runs per figure)
# ----------------------------------------------------------------------
def scenario_specs(
    names: Sequence[str],
    quick: bool = False,
    seeds: Optional[Sequence[int]] = None,
    transports: Optional[Sequence[str]] = None,
) -> List[CellSpec]:
    """Cells for a scenario sweep: names x seeds x transport overrides.

    Without ``seeds`` each cell's seed derives from the root seed and
    the cell's identity (names/paths travel to the workers verbatim);
    with ``seeds`` the given values are pinned.  ``transports`` swaps
    every tenant's transport per cell — the fairness head-to-head axis.
    """
    specs: List[CellSpec] = []
    for name in names:
        for transport in transports or (None,):
            base: Dict[str, Any] = {"scenario": str(name)}
            if quick:
                base["quick"] = True
            if transport is not None:
                base["transport"] = transport
            if seeds:
                specs.extend(
                    CellSpec("scenario", {**base, "seed": seed})
                    for seed in seeds
                )
            else:
                specs.append(CellSpec("scenario", base))
    return specs


def default_plan(
    figures: Sequence[str],
    quick: bool = False,
) -> List[CellSpec]:
    """The standard cell decomposition for each requested figure.

    ``quick`` shrinks durations/sweeps for smoke runs (CI, tests); the
    full plan matches the figure drivers' paper-scale defaults.
    """
    specs: List[CellSpec] = []
    for figure in figures:
        if figure == "fig06":
            specs.append(
                CellSpec("fig06", {"duration_s": 0.5 if quick else 4.0})
            )
        elif figure == "fig07":
            specs.append(
                CellSpec("fig07", {"n1_max": 4 if quick else 10})
            )
        elif figure == "fig08":
            for protocol in ALL_PROTOCOLS:
                specs.append(
                    CellSpec(
                        "fig08",
                        {
                            "protocol": protocol,
                            "interval_s": 0.05 if quick else 0.25,
                            "tail_s": 0.1 if quick else 0.5,
                        },
                    )
                )
        elif figure == "fig11":
            for protocol in ALL_PROTOCOLS:
                specs.append(
                    CellSpec(
                        "fig11",
                        {
                            "protocol": protocol,
                            "duration_s": 0.2 if quick else 1.0,
                        },
                    )
                )
        elif figure == "fig12":
            counts = (5, 10) if quick else (5, 10, 20, 40, 60, 80, 100)
            for protocol in ALL_PROTOCOLS:
                for n in counts:
                    specs.append(
                        CellSpec(
                            "fig12",
                            {
                                "protocol": protocol,
                                "n_senders": n,
                                "rounds": 2 if quick else 10,
                            },
                        )
                    )
        elif figure == "fig13":
            for protocol in ALL_PROTOCOLS:
                specs.append(
                    CellSpec(
                        "fig13",
                        {
                            "protocol": protocol,
                            "duration_s": 0.3 if quick else 2.0,
                            "drain_s": 0.3 if quick else 1.0,
                        },
                    )
                )
        elif figure == "fig14":
            rhos = (0.94, 1.00) if quick else (0.90, 0.92, 0.94, 0.96, 0.98, 1.00)
            for rho0 in rhos:
                specs.append(
                    CellSpec(
                        "fig14",
                        {"rho0": rho0, "duration_s": 0.2 if quick else 1.0},
                    )
                )
        elif figure == "baselines":
            # Related-work head-to-head: every registered baseline under
            # the same contended dumbbell (fairness/FCT/queue table).
            for protocol in BASELINE_PROTOCOLS:
                specs.append(
                    CellSpec(
                        "baselines",
                        {
                            "protocol": protocol,
                            "n_senders": 4 if quick else 8,
                            "flow_bytes": 250_000 if quick else 2_000_000,
                        },
                    )
                )
        elif figure == "ecmp":
            # Collision study: every protocol under every policy, so both
            # the collision case (ecmp) and its cures (flowlet, spray)
            # carry a single-path baseline next to them.
            for protocol in ALL_PROTOCOLS:
                for routing in MULTIPATH_ROUTINGS:
                    specs.append(
                        CellSpec(
                            "ecmp",
                            {
                                "protocol": protocol,
                                "routing": routing,
                                "duration_s": 0.03 if quick else 0.2,
                            },
                        )
                    )
        elif figure == "mpath":
            # TFC vs DCTCP under the Fig. 13 workload across policies.
            for protocol in ("tfc", "dctcp"):
                for routing in MULTIPATH_ROUTINGS:
                    specs.append(
                        CellSpec(
                            "mpath",
                            {
                                "protocol": protocol,
                                "routing": routing,
                                "duration_s": 0.2 if quick else 1.0,
                                "drain_s": 0.2 if quick else 0.5,
                            },
                        )
                    )
        elif figure == "pfc":
            # TFC-vs-PFC pathology head-to-head: every scenario under
            # both fabrics, so each pathology row carries its clean
            # counterpart next to it.
            for scenario in PFC_SCENARIOS:
                for fabric in PFC_FABRICS:
                    specs.append(
                        CellSpec(
                            "pfc",
                            {
                                "scenario": scenario,
                                "fabric": fabric,
                                "duration_ms": 30 if quick else 60,
                            },
                        )
                    )
        elif figure == "scenario":
            # The committed smoke trio (an ML collective, a storage
            # fan-out and the multi-tenant mix); scenario_specs() builds
            # arbitrary sweeps for the CLI's --scenario flags.
            from ..scenario import default_scenario_names

            names = default_scenario_names()
            if not names:
                raise RunnerError(
                    "no committed scenarios found; point $REPRO_SCENARIOS "
                    "at a scenario directory or use --scenario PATH"
                )
            specs.extend(scenario_specs(names, quick=quick))
        elif figure == "shard":
            # Sharded-vs-serial head-to-head: one cell runs both on the
            # same seed and workload, reporting speedup and a live
            # bit-identity check.  Shard count follows --shards /
            # $REPRO_SHARDS (default: 2 pod shards + the core shard).
            specs.append(
                CellSpec(
                    "shard",
                    {
                        "mode": "both",
                        "k": 4 if quick else 8,
                        "duration_ms": 1.0 if quick else 4.0,
                    },
                )
            )
        else:
            raise RunnerError(
                f"no default plan for {figure!r}; "
                f"known: {', '.join(sorted(FIGURE_CELLS))}"
            )
    return specs


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Run paper-figure experiment cells, optionally in parallel.",
    )
    parser.add_argument(
        "--figures",
        nargs="+",
        default=None,
        choices=sorted(FIGURE_CELLS),
        help="figures to run (default: fig13, unless --scenario/"
        "--scenario-glob select a scenario sweep instead)",
    )
    parser.add_argument(
        "--scenario",
        nargs="+",
        metavar="NAME|PATH",
        default=None,
        help="run these declarative scenarios (registered names or "
        "explicit YAML paths); combines with --figures",
    )
    parser.add_argument(
        "--scenario-glob",
        metavar="PATTERN",
        default=None,
        help="run every scenarios/*.yaml whose stem matches PATTERN "
        "(e.g. 'ml-*')",
    )
    parser.add_argument(
        "--scenario-seeds",
        nargs="+",
        type=int,
        metavar="SEED",
        default=None,
        help="pin explicit seeds for the scenario cells (one cell per "
        "scenario x seed; default: derived from --seed)",
    )
    parser.add_argument(
        "--scenario-transports",
        nargs="+",
        metavar="PROTOCOL",
        default=None,
        help="override every tenant's transport, one cell per scenario "
        "x transport (the fairness head-to-head axis); any registered "
        "protocol name is accepted — see repro.transport.registry",
    )
    parser.add_argument(
        "--list-figures",
        action="store_true",
        help="print the known figure names and exit",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print every resolvable scenario (with description) and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; 1 = serial in-process (default: 1). "
        "0 means one per CPU.",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrunken durations/sweeps for smoke runs",
    )
    parser.add_argument(
        "--pickle",
        metavar="PATH",
        default=None,
        help="dump the ExperimentResult list to PATH (pickle format)",
    )
    parser.add_argument(
        "--scheduler",
        default=None,
        choices=SCHEDULER_NAMES,
        help="pin the event-scheduler backend for every cell "
        "(default: adaptive, or $REPRO_SCHEDULER if set)",
    )
    parser.add_argument(
        "--routing",
        default=None,
        choices=ROUTING_NAMES,
        help="pin the routing policy for every cell "
        "(default: single, or $REPRO_ROUTING if set; cells that sweep "
        "routing explicitly override this)",
    )
    parser.add_argument(
        "--profile",
        metavar="DIR",
        default=None,
        help="write per-cell cProfile stats into DIR (pstats-compatible "
        "files, one per cell; with --jobs > 1 each worker profiles and "
        "dumps its own cell)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="record full telemetry for every cell and export the "
        "metrics/slot-timeline/flight files into DIR",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="pin the shard count for shard-aware cells (exported as "
        "$REPRO_SHARDS for the batch; default: serial, or $REPRO_SHARDS "
        "if set)",
    )
    parser.add_argument(
        "--cell-timeout",
        metavar="SECONDS",
        type=float,
        default=None,
        help="kill any cell exceeding this wall-clock budget and report "
        "it as a deterministic timed_out result instead of hanging the "
        "batch (runs each cell in its own process)",
    )
    args = parser.parse_args(argv)
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        parser.error("--cell-timeout must be positive")
    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be a positive integer")

    if args.list_figures:
        for figure in sorted(FIGURE_CELLS):
            print(figure)
        return 0
    if args.list_scenarios:
        from ..scenario import get_scenario, list_scenarios

        names = list_scenarios()
        if not names:
            print("no scenarios found", file=sys.stderr)
            return 1
        for name in names:
            try:
                print(f"{name}: {get_scenario(name).description}")
            except Exception as exc:
                print(f"{name}: INVALID ({exc})")
        return 0

    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    scenario_names: List[str] = list(args.scenario or [])
    if args.scenario_glob:
        from ..scenario import glob_scenarios

        scenario_names.extend(
            sc.name for sc in glob_scenarios(args.scenario_glob)
        )
    if (args.scenario_seeds or args.scenario_transports) and not scenario_names:
        parser.error(
            "--scenario-seeds/--scenario-transports need --scenario or "
            "--scenario-glob"
        )
    if args.scenario_transports:
        # Validate against the live registry (not a frozen choices= list)
        # so protocols registered via register_protocol sweep too.
        from ..transport.registry import get_protocol

        for name in args.scenario_transports:
            try:
                get_protocol(name)
            except ValueError as exc:
                parser.error(str(exc))
    figures = args.figures or ([] if scenario_names else ["fig13"])
    specs = default_plan(figures, quick=args.quick)
    specs.extend(
        scenario_specs(
            scenario_names,
            quick=args.quick,
            seeds=args.scenario_seeds,
            transports=args.scenario_transports,
        )
    )
    batch = ", ".join(figures + scenario_names)
    print(
        f"running {len(specs)} cells across {batch} with jobs={jobs}"
        + (f" scheduler={args.scheduler}" if args.scheduler else "")
        + (f" routing={args.routing}" if args.routing else "")
        + (f" telemetry={args.telemetry}" if args.telemetry else "")
        + (f" shards={args.shards}" if args.shards else "")
        + (
            f" cell-timeout={args.cell_timeout:g}s"
            if args.cell_timeout
            else ""
        )
    )
    start = time.perf_counter()
    results = run_cells(
        specs,
        jobs=jobs,
        root_seed=args.seed,
        scheduler=args.scheduler,
        routing=args.routing,
        profile_dir=args.profile,
        telemetry_dir=args.telemetry,
        cell_timeout=args.cell_timeout,
        shards=args.shards,
    )
    elapsed = time.perf_counter() - start

    rows = []
    for result in results:
        headline = ", ".join(
            f"{k}={v:.4g}" for k, v in list(result.scalars.items())[:4]
        )
        rows.append([result.name, result.protocol, headline])
    print(format_table(["cell", "protocol", "headline scalars"], rows))
    timed_out = [
        (spec, result)
        for spec, result in zip(specs, results)
        if result.scalars.get("timed_out")
    ]
    print(
        f"{len(results)} cells in {elapsed:.2f}s wall-clock (jobs={jobs})"
        + (f", {len(timed_out)} TIMED OUT" if timed_out else "")
    )
    for spec, result in timed_out:
        print(
            f"  timed out after {result.scalars['cell_timeout_s']:g}s: "
            f"{spec.label}",
            file=sys.stderr,
        )

    if args.pickle:
        with open(args.pickle, "wb") as fh:
            pickle.dump(results, fh)
        print(f"results pickled to {args.pickle}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
