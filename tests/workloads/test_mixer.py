"""Multi-tenant mixer: tenant tagging, per-tenant accounting, fairness."""

import pytest

from repro.experiments.common import build_topology
from repro.net.topology import testbed as build_testbed
from repro.sim.units import MILLISECOND
from repro.transport.registry import open_flow
from repro.workloads.bulk import concurrent_flows
from repro.workloads.empirical import BenchmarkWorkload
from repro.workloads.mixer import (
    MultiTenantMixer,
    per_tenant_stats,
    tenant_goodputs_bps,
    tenant_jain_index,
    tenant_senders,
)

DURATION = 2 * MILLISECOND


def make_topo():
    return build_topology(build_testbed, "tfc", 256_000, seed=4)


def test_open_flow_stamps_tenant_on_both_endpoints():
    topo = make_topo()
    sender = open_flow(
        topo.hosts[0], topo.hosts[1], "tfc", size_bytes=10_000, tenant="red"
    )
    assert sender.tenant == "red"
    receivers = [
        ep for ep in topo.hosts[1]._connections.values()
        if getattr(ep, "tenant", None) == "red" and ep is not sender
    ]
    assert receivers
    untagged = open_flow(topo.hosts[2], topo.hosts[1], "tfc", size_bytes=10_000)
    assert untagged.tenant is None


def test_tenant_senders_groups_by_tag():
    topo = make_topo()
    concurrent_flows(topo.hosts[:2], topo.hosts[8], "tfc",
                     size_bytes=20_000, tenant="red")
    concurrent_flows(topo.hosts[2:5], topo.hosts[8], "tfc",
                     size_bytes=20_000, tenant="blue")
    topo.network.run_for(DURATION)
    groups = tenant_senders(topo.network)
    assert sorted(groups) == ["blue", "red"]
    assert len(groups["red"]) == 2
    assert len(groups["blue"]) == 3
    stats = per_tenant_stats(topo.network)
    assert stats["red"].flows == 2
    assert stats["red"].completed_flows == 2
    assert stats["red"].bytes_acked == 40_000
    goodputs = tenant_goodputs_bps(topo.network, DURATION)
    assert goodputs["blue"] > goodputs["red"]
    assert 0.0 < tenant_jain_index(topo.network, DURATION) <= 1.0


def test_single_tenant_jain_is_one():
    topo = make_topo()
    concurrent_flows(topo.hosts[:2], topo.hosts[8], "tfc",
                     size_bytes=20_000, tenant="only")
    topo.network.run_for(DURATION)
    assert tenant_jain_index(topo.network, DURATION) == 1.0


def test_mixer_builds_in_order_and_reports_all_tenants():
    topo = make_topo()
    built = []

    def make_builder(hosts):
        def build(name, collector):
            built.append(name)
            return BenchmarkWorkload(
                hosts, "tfc", DURATION, query_rate_per_s=2000.0,
                query_fanin=3, seed_name=f"mix:{name}",
                collector=collector, tenant=name,
            )
        return build

    mixer = MultiTenantMixer(
        topo.network,
        [("search", make_builder(topo.hosts[:5])),
         ("batch", make_builder(topo.hosts[4:9]))],
    )
    assert built == ["search", "batch"]
    topo.network.run_for(4 * MILLISECOND)
    reports = mixer.reports(DURATION)
    assert [r.tenant for r in reports] == ["search", "batch"]
    assert all(r.flows > 0 for r in reports)
    assert all(r.goodput_bps > 0 for r in reports)
    assert all(r.fct_p99_us is not None for r in reports)
    assert 0.0 < mixer.jain_index(DURATION) <= 1.0
    # The shared collector slices by tenant tag.
    assert mixer.collector.completed(tenant="search") > 0
    assert mixer.collector.completed() == sum(
        mixer.collector.completed(tenant=name) for name in ("search", "batch")
    )


def test_mixer_rejects_duplicate_tenants():
    topo = make_topo()
    with pytest.raises(ValueError, match="duplicate tenant names"):
        MultiTenantMixer(
            topo.network,
            [("a", lambda n, c: None), ("a", lambda n, c: None)],
        )


def test_zero_flow_tenant_still_reported():
    topo = make_topo()
    mixer = MultiTenantMixer(topo.network, [("idle", lambda n, c: None)])
    topo.network.run_for(MILLISECOND)
    reports = mixer.reports(MILLISECOND)
    assert reports[0].tenant == "idle"
    assert reports[0].flows == 0
    assert reports[0].goodput_bps == 0.0
