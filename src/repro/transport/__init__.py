"""Transport protocols: shared reliability framework, NewReno, DCTCP."""

from .base import FlowState, FlowStats, Receiver, RtoEstimator, Sender
from .dctcp import DctcpReceiver, DctcpSender
from .newreno import NewRenoReceiver, NewRenoSender
from .registry import (
    DEFAULT_DCTCP_K_BYTES,
    PROTOCOLS,
    Protocol,
    configure_network,
    get_protocol,
    open_flow,
    queue_factory_for,
)

__all__ = [
    "FlowState",
    "FlowStats",
    "Receiver",
    "RtoEstimator",
    "Sender",
    "DctcpReceiver",
    "DctcpSender",
    "NewRenoReceiver",
    "NewRenoSender",
    "DEFAULT_DCTCP_K_BYTES",
    "PROTOCOLS",
    "Protocol",
    "configure_network",
    "get_protocol",
    "open_flow",
    "queue_factory_for",
]
