"""The per-port TFC switch agent.

One agent manages one *link direction* out of a switch.  It mirrors the
module structure of the paper's NetFPGA implementation (Fig. 3):

* **Rho counter** — accumulates the bytes transiting the port each slot.
* **N counter** — counts RM-marked packets to measure the number of
  effective flows ``E`` (the delimiter itself accounts for the initial 1).
* **RTT timer** — measures the delimiter flow's instantaneous RTT
  ``rtt_m`` as the gap between its consecutive RM packets and keeps the
  running minimum ``rtt_b``; only RM frames of at least 1500 bytes update
  ``rtt_b`` (store-and-forward size bias, section 4.4).
* **Token allocator / window calculator** — at every slot boundary applies
  the token adjustment ``T = c x rtt_b x rho0 / rho`` (Eq. 7), EWMA
  smoothing (Eq. 8) and the allocation ``W = T / E`` (Eq. 5).
* **Header modifier** — stamps ``min(field, W)`` into the window field of
  every data-direction packet, so the minimum along the path reaches the
  receiver and comes back on the RMA ACK.
* **Delay arbiter** — parks sub-MSS RMA ACKs arriving from the link
  (section 4.6); see :mod:`repro.core.delay`.

Delimiter lifecycle: the first RM packet seen is elected; a FIN from the
delimiter flow or ``2^k x rtt_last`` of delimiter silence (k <= 7) triggers
re-election of the next RM packet (section 5.2, "When the current delimiter
flow ends").  The silence check runs lazily on every transit — if the port
is completely idle no window update is needed anyway.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..net.packet import MSS, FlowKey, Packet
from ..sim.trace import TFC_DELIMITER_ELECTED, TFC_WINDOW_UPDATE
from ..sim.units import bandwidth_delay_product
from .delay import DelayArbiter
from .params import DEFAULT_PARAMS, TfcParams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..net.node import Switch
    from ..net.port import Port


def _quantize_window(window: float) -> float:
    """Grant whole packets above one MSS; keep sub-MSS grants fractional.

    Senders transmit whole segments, so the fractional part of a window
    above one MSS can never be used — but it *is* debited from the delay
    arbiter's credit, and with e.g. W = 1.9 MSS nearly half of every grant
    would be paid for and wasted, capping utilisation well below rho0 with
    no way for the token feedback to recover (it is a multiplicative loss).
    Sub-MSS windows stay fractional: they are the delay function's input.
    """
    if window >= MSS:
        return float(int(window // MSS) * MSS)
    return window


class TfcPortAgent:
    """Token flow control state for one switch output port."""

    def __init__(
        self,
        switch: "Switch",
        port: "Port",
        params: TfcParams = DEFAULT_PARAMS,
    ):
        self.switch = switch
        self.port = port
        self.params = params
        self.sim = switch.sim
        self.tracer = switch.tracer
        self.rate_bps = port.rate_bps

        # RTT timer state.
        self.rttb_ns: int = params.init_rttb_ns
        self.rttm_ns: int = params.init_rttb_ns
        self.rtt_last_ns: int = params.init_rttb_ns
        self._slots_until_rttb_refresh = params.rttb_refresh_slots

        # Delimiter state.
        self.delimiter_key: Optional[FlowKey] = None
        self._delimiter_weight = 1
        self.slot_start_ns: int = 0
        self.miss_count = 0
        self._slots_since_election = 0

        # Counters for the current slot.
        self.effective_flows = 1
        self.arrived_bytes = 0
        # Decaying upper estimate of the flow count (halves per slot).
        self.e_smooth: float = 1.0
        # Window bytes granted (stamped on RM packets) this slot.
        self.granted_bytes = 0.0

        # Token / window state.
        self.tokens: float = bandwidth_delay_product(self.rate_bps, self.rttb_ns)
        self.window: float = self.tokens
        self.slot_index = 0
        self.last_rho: float = params.rho0
        self.published_e: int = 1  # E used for the currently published W

        self.delay_arbiter = DelayArbiter(
            self.sim,
            self.rate_bps,
            release=self.switch.inject,
            tracer=self.tracer,
            queue_limit=params.delay_queue_limit,
            fill_fraction=params.rho0,
        )
        self.delay_arbiter.set_cap(self.tokens)

    # ------------------------------------------------------------------
    # Fault hook: state reset (switch reboot)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Wipe every learned quantity, as if the port's agent rebooted.

        RTT estimates restart from the configured initial value, the
        delimiter is forgotten (the next RM packet is elected), the token
        value restarts from the initial BDP, and the delay arbiter drops
        its parked ACKs with the rest of the state.  Everything must be
        re-learned from live traffic — the recovery path chaos runs
        measure.
        """
        params = self.params
        self.rttb_ns = params.init_rttb_ns
        self.rttm_ns = params.init_rttb_ns
        self.rtt_last_ns = params.init_rttb_ns
        self._slots_until_rttb_refresh = params.rttb_refresh_slots
        self.delimiter_key = None
        self._delimiter_weight = 1
        self.slot_start_ns = self.sim.now
        self.miss_count = 0
        self._slots_since_election = 0
        self.effective_flows = 1
        self.arrived_bytes = 0
        self.e_smooth = 1.0
        self.granted_bytes = 0.0
        self.tokens = bandwidth_delay_product(self.rate_bps, self.rttb_ns)
        self.window = self.tokens
        self.slot_index = 0
        self.last_rho = params.rho0
        self.published_e = 1
        self.delay_arbiter.reset(self.tokens)

    # ------------------------------------------------------------------
    # Forward (data) direction
    # ------------------------------------------------------------------
    def on_transit(self, packet: Packet) -> None:
        """Process a packet about to be queued on this port."""
        now = self.sim.now
        self.arrived_bytes += packet.frame_size
        if packet.is_ack and packet.payload == 0 and not packet.syn:
            return  # pure reverse-direction ACK: counts bytes, nothing else

        if packet.fin and packet.flow_key == self.delimiter_key:
            # Delimiter flow ended: drop it so the next RM packet is elected.
            self.delimiter_key = None
            self.miss_count = 0

        self._check_delimiter_silence(now, packet)

        # Header modifier: the minimum window along the path wins.  The
        # stamp is additionally bounded by a live estimate T / E_so_far:
        # within a normal slot E_so_far is below the final count and the
        # bound is loose (the published W wins), but during a flash crowd
        # of marked SYNs it tightens with every arrival, so acquisition
        # probes racing the first slot boundary cannot take away the huge
        # pre-crowd window and overrun the buffers.
        # E collapsing (a synchronised round draining) is bounded the
        # same way: e_smooth halves per slot, so a straggler's window at
        # most doubles per slot instead of jumping to the whole token
        # value the instant the count reads 1.
        denominator = max(self.effective_flows, self.e_smooth / 2.0, 1.0)
        live_bound = _quantize_window(
            max(self.tokens / denominator, float(MSS) / 8.0)
        )
        # A weight-w flow receives w shares of the per-slot allocation.
        weight = max(packet.weight, 1)
        stamp = min(self.window, live_bound)
        if weight > 1:
            stamp = _quantize_window(stamp * weight)
        if packet.rm:
            # Token-budget accounting: only RM packets carry a window back
            # to their sender (the receiver copies it onto the RMA ACK),
            # so each RM stamp is a real grant.  The slot's grants may not
            # exceed the token value in total — once the budget runs out
            # the leftover (sub-MSS) grant is paced by the delay arbiter.
            # Without this, a flash crowd of probes inside one slot is
            # granted the harmonic ladder T/1 + T/2 + T/3 + ...
            remaining = self.tokens - self.granted_bytes
            stamp = min(stamp, max(remaining, 64.0))
            self.granted_bytes += stamp
        if packet.window > stamp:
            packet.window = stamp

        if packet.rm:
            self._on_round_mark(packet, now)

    def _on_round_mark(self, packet: Packet, now: int) -> None:
        if self.delimiter_key is None:
            self._elect(packet, now)
        elif packet.flow_key == self.delimiter_key:
            self._close_slot(packet, now)
        else:
            # Weighted allocation policy (paper section 4.1: "we could
            # allocate the total tokens to flows according to any
            # allocation policies"): a flow of weight w counts as w
            # effective flows and is granted w shares.
            self.effective_flows += max(packet.weight, 1)

    def _elect(self, packet: Packet, now: int) -> None:
        self.delimiter_key = packet.flow_key
        self._delimiter_weight = max(packet.weight, 1)
        self.slot_start_ns = now
        self.effective_flows = self._delimiter_weight
        self.arrived_bytes = 0
        self.granted_bytes = 0.0
        self.miss_count = 0
        self._slots_since_election = 0
        self.tracer.emit(
            TFC_DELIMITER_ELECTED, agent=self, flow_key=packet.flow_key
        )

    def _check_delimiter_silence(self, now: int, packet: Packet) -> None:
        if self.delimiter_key is None:
            return
        while (
            self.miss_count < self.params.max_delimiter_miss
            and now - self.slot_start_ns
            > (1 << (self.miss_count + 1)) * self.rtt_last_ns
        ):
            self.miss_count += 1
        if (
            self.miss_count >= 2
            and packet.rm
            and packet.flow_key != self.delimiter_key
        ):
            # The old delimiter has been silent for over 4 x rtt_last
            # (miss >= 2): adopt this flow instead.  A single missed slot
            # (miss == 1) is tolerated — ACK jitter alone can stretch a
            # round past 2 x rtt_last, and churning the delimiter flips
            # the slot length and with it every RTT-weighted count.
            self._elect(packet, now)

    # ------------------------------------------------------------------
    # Slot boundary: token adjustment and window computation
    # ------------------------------------------------------------------
    def _close_slot(self, packet: Packet, now: int) -> None:
        rttm = now - self.slot_start_ns
        if rttm <= 0:
            return  # same-instant duplicate; ignore
        self.rttm_ns = rttm
        self.rtt_last_ns = rttm
        if packet.frame_size >= self.params.min_rtt_frame_bytes:
            if self._slots_until_rttb_refresh <= 0:
                # Age out the running minimum so one anomalously fast
                # sample (or a long-gone short-RTT delimiter) cannot
                # depress the token base forever.
                self.rttb_ns = rttm
                self._slots_until_rttb_refresh = self.params.rttb_refresh_slots
            else:
                self.rttb_ns = min(self.rttb_ns, rttm)
                self._slots_until_rttb_refresh -= 1

        if self._slots_since_election == 0:
            # The slot straddling a delimiter election has ill-defined
            # boundaries (it often spans a handshake on a near-idle link);
            # its rho would only poison the token adjustment.  Still
            # publish W from the counted E — a flash crowd of marked SYNs
            # must shrink the window before the acquisition probes return —
            # but leave the token value untouched.
            self._slots_since_election = 1
            self.e_smooth = max(float(self.effective_flows), self.e_smooth / 2.0)
            self.published_e = max(self.effective_flows, 1)
            self.window = _quantize_window(
                self.tokens / max(self.effective_flows, 1)
            )
            self.effective_flows = self._delimiter_weight
            self.arrived_bytes = 0
            self.granted_bytes = 0.0
            self.slot_start_ns = now
            self.miss_count = 0
            tracer = self.tracer
            if tracer.active(TFC_WINDOW_UPDATE):
                tracer.emit(TFC_WINDOW_UPDATE, agent=self)
            else:
                tracer.bump(TFC_WINDOW_UPDATE)
            return

        capacity_bytes = bandwidth_delay_product(self.rate_bps, rttm)
        rho = self.arrived_bytes / capacity_bytes if capacity_bytes > 0 else 1.0
        rho = max(rho, self.params.rho_floor)
        self.last_rho = rho

        bdp = bandwidth_delay_product(self.rate_bps, self.rttb_ns)
        if self.params.token_adjustment == "iterative":
            # Compound the correction on the previous token value: the
            # fixed point is rho == rho0 regardless of quantisation losses.
            raw_tokens = self.tokens * self.params.rho0 / rho
        else:
            # Paper Eq. 7, literal form.
            raw_tokens = bdp * self.params.rho0 / rho
        raw_tokens = min(raw_tokens, self.tokens * self.params.token_boost_limit)
        if self.params.queue_drain:
            # Tokens already sitting in the buffer are not available
            # pipeline capacity; reclaim them before allocating.  The
            # benign couple-of-packets dither queue is exempt so the
            # drain term does not depress steady-state utilisation.
            backlog = self.port.queue.byte_length - 2 * MSS
            if backlog > 0:
                raw_tokens -= backlog
        raw_tokens = min(
            max(raw_tokens, bdp * self.params.min_token_bdp_factor),
            bdp * self.params.max_token_bdp_factor,
        )
        self.tokens = (
            self.params.alpha * self.tokens
            + (1.0 - self.params.alpha) * raw_tokens
        )
        self.e_smooth = max(float(self.effective_flows), self.e_smooth / 2.0)
        self.published_e = max(self.effective_flows, 1)
        self.window = _quantize_window(
            self.tokens / max(self.effective_flows, 1)
        )
        self.delay_arbiter.set_cap(self.tokens)
        self.slot_index += 1
        tracer = self.tracer
        if tracer.active(TFC_WINDOW_UPDATE):
            tracer.emit(TFC_WINDOW_UPDATE, agent=self)
        else:
            tracer.bump(TFC_WINDOW_UPDATE)

        # Start the next slot; the delimiter's own RM counts as its weight.
        self.effective_flows = self._delimiter_weight
        self.arrived_bytes = 0
        self.granted_bytes = 0.0
        self.slot_start_ns = now
        self.miss_count = 0

    # ------------------------------------------------------------------
    # Reverse direction: the delay function for RMA ACKs
    # ------------------------------------------------------------------
    def on_reverse_arrival(self, packet: Packet) -> bool:
        """Handle a packet arriving *from* this port's link.

        Returns True when the delay arbiter kept the packet (it will be
        re-injected into the switch pipeline later).
        """
        if packet.is_ack and packet.rma:
            return self.delay_arbiter.offer(packet)
        return False

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TfcPortAgent {self.port!r} W={self.window:.0f}B"
            f" T={self.tokens:.0f}B E={self.effective_flows}"
            f" rttb={self.rttb_ns}ns>"
        )


def enable_tfc(network, params: TfcParams = DEFAULT_PARAMS) -> int:
    """Attach a TFC agent to every switch port of ``network``.

    Returns the number of agents installed.  Hosts keep plain NIC ports
    (TFC is a switch function; end hosts only mark and obey windows).
    """
    installed = 0
    for switch in network.switches:
        for port in switch.ports:
            port.agent = TfcPortAgent(switch, port, params)
            installed += 1
    return installed
