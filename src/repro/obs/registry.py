"""Typed metric registry: the one place instrumented values live.

Four instrument kinds cover everything the repo measures:

* :class:`Counter` — monotonically increasing integer (drops, timeouts,
  trace-topic emissions).
* :class:`Gauge` — a point-in-time value that can move both ways (queue
  depth, token value, events/sec).
* :class:`Histogram` — fixed-boundary bucket counts plus sum/count (FCT
  distributions, slot lengths).
* :class:`Timeline` — an append-only ``(time_ns, value)`` series, the
  shape every paper figure consumes.  A timeline can *adopt* an existing
  list (e.g. a :class:`~repro.metrics.samplers.PeriodicSampler` series)
  so migrating legacy instrumentation onto the registry shares storage
  instead of copying it.

A :class:`MetricRegistry` is a flat namespace of dotted metric names.
Re-requesting a name returns the same instrument; re-requesting it as a
different kind raises, so one subsystem cannot silently clobber
another's semantics.  ``rows()`` serialises every instrument to plain
dicts in sorted-name order — deterministic output for the JSONL/CSV
exporters and the golden bit-identity tests.

Nothing here touches the simulator: instruments are passive containers,
so recording into them can never perturb event order or RNG draws.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Default histogram boundaries (ns-scale friendly powers of four).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(4.0**i for i in range(2, 16))


class Metric:
    """Base: a named, typed instrument."""

    kind = "metric"
    __slots__ = ("name", "help")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help

    def as_row(self) -> Dict[str, object]:
        """Serialise to a plain dict (stable keys, JSON-friendly values)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class Counter(Metric):
    """Monotonically increasing integer count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def set_total(self, total: int) -> None:
        """Overwrite with an externally tracked running total (snapshot use)."""
        self.value = total

    def as_row(self) -> Dict[str, object]:
        return {"name": self.name, "kind": self.kind, "value": self.value}


class Gauge(Metric):
    """A point-in-time value."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_row(self) -> Dict[str, object]:
        return {"name": self.name, "kind": self.kind, "value": self.value}


class Histogram(Metric):
    """Fixed-boundary bucket counts plus sum and count."""

    kind = "histogram"
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs >= 1 bucket bound")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last bucket: +inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Upper bucket bound covering quantile ``q`` (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, bound in enumerate(self.buckets):
            cumulative += self.counts[i]
            if cumulative >= target:
                return bound
        return self.buckets[-1]

    def as_row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "sum": self.sum,
            "count": self.count,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
        }


class Timeline(Metric):
    """Append-only ``(time_ns, value)`` series."""

    kind = "timeline"
    __slots__ = ("series",)

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self.series: List[Tuple[int, float]] = []

    def append(self, time_ns: int, value: float) -> None:
        self.series.append((time_ns, value))

    def adopt(self, series: List[Tuple[int, float]]) -> None:
        """Share an existing series list (zero-copy legacy migration).

        Points already in ``series`` and every later append through either
        holder are visible to both — the registry exports whatever the
        original instrumentation recorded.
        """
        self.series = series

    def as_row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "points": len(self.series),
            "series": [[t, v] for t, v in self.series],
        }


class MetricRegistry:
    """A flat, typed namespace of instruments.

    Get-or-create semantics: requesting an existing name returns the
    existing instrument; requesting it as a different kind raises
    ``TypeError`` so two subsystems cannot fight over one name.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, requested as {cls.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def timeline(self, name: str, help: str = "") -> Timeline:
        return self._get_or_create(Timeline, name, help)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def rows(self) -> List[Dict[str, object]]:
        """Every instrument serialised, in sorted-name order."""
        return [self._metrics[name].as_row() for name in self.names()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricRegistry metrics={len(self._metrics)}>"
