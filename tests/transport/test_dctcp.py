"""Tests for DCTCP: ECN echo, alpha estimation, proportional backoff."""

from repro.net.packet import MSS, Packet
from repro.net.queues import EcnQueue
from repro.sim.units import seconds
from repro.transport.dctcp import DctcpReceiver
from repro.transport.registry import open_flow, queue_factory_for


def established_sender(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "dctcp")
    net.run_for(100_000)
    return net, sender


def ack_for(sender, ack, echo=False):
    pkt = Packet(
        sender.dst_id, sender.src_id, sender.dport, sender.sport,
        ack=ack, is_ack=True,
    )
    pkt.ecn_echo = echo
    pkt.retransmitted = True
    pkt.sent_at = None
    return pkt


def test_data_packets_are_ecn_capable(tiny_net):
    net, sender = established_sender(tiny_net)
    pkt = Packet(sender.src_id, sender.dst_id, sender.sport, sender.dport, payload=MSS)
    sender.next_packet_hook(pkt)
    assert pkt.ecn_capable


def test_receiver_echoes_ce_mark(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "dctcp")
    data = Packet(sender.src_id, sender.dst_id, sender.sport, sender.dport, payload=MSS)
    data.ecn_ce = True
    ack = Packet(sender.dst_id, sender.src_id, sender.dport, sender.sport, is_ack=True)
    DctcpReceiver.ack_decoration_hook(sender.receiver, ack, data)
    assert ack.ecn_echo
    clean = Packet(sender.src_id, sender.dst_id, sender.sport, sender.dport, payload=MSS)
    ack2 = Packet(sender.dst_id, sender.src_id, sender.dport, sender.sport, is_ack=True)
    DctcpReceiver.ack_decoration_hook(sender.receiver, ack2, clean)
    assert not ack2.ecn_echo


def test_single_cut_per_window(tiny_net):
    net, sender = established_sender(tiny_net)
    sender.cwnd = 20 * MSS
    sender.alpha = 1.0
    net.run_for(20_000)
    una = sender.snd_una
    cwnd_before = sender.cwnd
    sender.on_packet(ack_for(sender, una + MSS, echo=True))
    after_first = sender.cwnd
    assert after_first < cwnd_before  # cut by alpha/2
    sender.on_packet(ack_for(sender, una + 2 * MSS, echo=True))
    # Second mark within the same observation window: no further cut
    # (slow-start/CA growth may nudge it slightly upward).
    assert sender.cwnd >= after_first


def test_cut_is_proportional_to_alpha(tiny_net):
    net, sender = established_sender(tiny_net)
    sender.cwnd = 20 * MSS
    sender.ssthresh = 1.0  # keep CA growth negligible
    sender.alpha = 0.5
    net.run_for(20_000)
    una = sender.snd_una
    before = sender.cwnd
    sender.on_packet(ack_for(sender, una + MSS, echo=True))
    # cwnd * (1 - alpha/2) = 0.75 * before, plus tiny CA growth.
    assert abs(sender.cwnd - 0.75 * before) < MSS


def test_alpha_converges_to_mark_fraction(tiny_net):
    net, sender = established_sender(tiny_net)
    sender.alpha = 0.0
    # Simulate many observation windows with 50% marked bytes.
    for _ in range(200):
        sender._acked_bytes = 1000
        sender._marked_bytes = 500
        sender._roll_observation_window()
    assert abs(sender.alpha - 0.5) < 0.01


def test_alpha_decays_without_marks(tiny_net):
    net, sender = established_sender(tiny_net)
    sender.alpha = 1.0
    for _ in range(100):
        sender._acked_bytes = 1000
        sender._marked_bytes = 0
        sender._roll_observation_window()
    assert sender.alpha < 0.01


def test_dctcp_limits_queue_near_threshold():
    """Fig. 8's DCTCP behaviour: queue oscillates around K, no tail drops."""
    from repro.net.topology import dumbbell

    k = 32_000
    topo = dumbbell(
        n_senders=2,
        queue_factory=queue_factory_for("dctcp", 256_000, ecn_threshold_bytes=k),
    )
    receiver = topo.hosts[-1]
    flows = [open_flow(host, receiver, "dctcp") for host in topo.hosts[:2]]
    topo.network.run_for(seconds(0.5))
    queue = topo.bottleneck("main").queue
    assert isinstance(queue, EcnQueue)
    assert queue.marks > 0
    assert queue.drops == 0
    # Queue stays well below the 256 KB buffer but does reach K territory.
    assert k / 2 <= queue.max_bytes_seen <= 4 * k
    for flow in flows:
        assert flow.stats.bytes_acked > 10_000_000


def test_dctcp_outperforms_tcp_on_queue_length():
    from repro.net.topology import dumbbell

    results = {}
    for proto in ("dctcp", "tcp"):
        topo = dumbbell(
            n_senders=2, queue_factory=queue_factory_for(proto, 256_000)
        )
        receiver = topo.hosts[-1]
        for host in topo.hosts[:2]:
            open_flow(host, receiver, proto)
        topo.network.run_for(seconds(0.3))
        results[proto] = topo.bottleneck("main").queue.max_bytes_seen
    assert results["dctcp"] < results["tcp"]
