"""The paper's benchmark workload (sections 6.1.2 "Benchmark" and 6.2.2).

Three traffic classes drive a topology for a configured duration:

* **Query traffic** — partition/aggregate requests: an aggregator host is
  picked per query and ``fanin`` other hosts each send it a 2 KB response
  simultaneously (the paper's large-scale run uses *all* other servers,
  359 of them).  Queries arrive as a Poisson process.
* **Short messages** — 50 KB - 1 MB coordination flows between random
  host pairs (Poisson).
* **Background flows** — sizes drawn from the DCTCP web-search CDF
  (heavy-tailed, up to tens of MB) between random host pairs (Poisson).

Completed flows are recorded in an :class:`~repro.metrics.fct.FctCollector`
under the categories ``"query"``, ``"short"`` and ``"background"`` — the
exact split the paper's Figs. 13 and 16 report.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..metrics.fct import FctCollector
from ..net.host import Host
from ..sim.units import MILLISECOND
from ..transport.registry import open_flow
from .distributions import (
    QUERY_RESPONSE_BYTES,
    SHORT_MESSAGE_SIZES,
    WEB_SEARCH_FLOW_SIZES,
    PiecewiseCdf,
    poisson_arrival_times_ns,
)


class BenchmarkWorkload:
    """Generates and launches the three-class benchmark traffic."""

    def __init__(
        self,
        hosts: Sequence[Host],
        protocol: str,
        duration_ns: int,
        query_rate_per_s: float = 100.0,
        query_fanin: int = 8,
        query_response_bytes: int = QUERY_RESPONSE_BYTES,
        short_rate_per_s: float = 20.0,
        background_rate_per_s: float = 20.0,
        size_cdf: PiecewiseCdf = WEB_SEARCH_FLOW_SIZES,
        short_cdf: PiecewiseCdf = SHORT_MESSAGE_SIZES,
        min_rto_ns: int = 10 * MILLISECOND,
        seed_name: str = "benchmark",
        collector: Optional[FctCollector] = None,
        tenant: Optional[str] = None,
    ):
        if len(hosts) < 3:
            raise ValueError("benchmark needs at least three hosts")
        if query_fanin >= len(hosts):
            raise ValueError("query_fanin must leave room for the aggregator")
        self.hosts = list(hosts)
        self.protocol = protocol
        self.duration_ns = duration_ns
        self.query_fanin = query_fanin
        self.query_response_bytes = query_response_bytes
        self.min_rto_ns = min_rto_ns
        self.tenant = tenant
        self.collector = collector if collector is not None else FctCollector()
        self.sim = hosts[0].sim
        self._rng = random.Random(_stable_seed(seed_name))
        self.queries_launched = 0
        self.flows_launched = 0

        self._schedule_queries(query_rate_per_s)
        self._schedule_pair_flows(
            short_rate_per_s, short_cdf, "short", f"{seed_name}:short"
        )
        self._schedule_pair_flows(
            background_rate_per_s, size_cdf, "background", f"{seed_name}:bg"
        )

    # ------------------------------------------------------------------
    def _schedule_queries(self, rate_per_s: float) -> None:
        if rate_per_s <= 0:
            return
        for t in poisson_arrival_times_ns(
            self._rng, rate_per_s, self.duration_ns, start_ns=self.sim.now
        ):
            self.sim.schedule_at(t, self._launch_query)

    def _launch_query(self) -> None:
        aggregator = self._rng.choice(self.hosts)
        responders = self._rng.sample(
            [h for h in self.hosts if h is not aggregator], self.query_fanin
        )
        self.queries_launched += 1
        for responder in responders:
            self._launch_flow(
                responder, aggregator, self.query_response_bytes, "query"
            )

    def _schedule_pair_flows(
        self, rate_per_s: float, cdf: PiecewiseCdf, category: str, stream: str
    ) -> None:
        if rate_per_s <= 0:
            return
        rng = random.Random(_stable_seed(stream))
        for t in poisson_arrival_times_ns(
            rng, rate_per_s, self.duration_ns, start_ns=self.sim.now
        ):
            size = max(int(cdf.sample(rng)), 1)
            self.sim.schedule_at(t, self._launch_pair_flow, size, category)

    def _launch_pair_flow(self, size: int, category: str) -> None:
        src, dst = self._rng.sample(self.hosts, 2)
        self._launch_flow(src, dst, size, category)

    def _launch_flow(
        self, src: Host, dst: Host, size: int, category: str
    ) -> None:
        self.collector.expect()
        self.flows_launched += 1
        open_flow(
            src,
            dst,
            self.protocol,
            size_bytes=size,
            on_complete=self.collector.completion_handler(category),
            min_rto_ns=self.min_rto_ns,
            tenant=self.tenant,
        )


def _stable_seed(name: str) -> int:
    """Deterministic seed from a stream name (independent of PYTHONHASHSEED)."""
    import hashlib

    return int.from_bytes(
        hashlib.sha256(name.encode("utf-8")).digest()[:8], "big"
    )
