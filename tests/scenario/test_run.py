"""Running scenarios: determinism, per-tenant accounting, faults, runner."""

import json

import pytest

from repro.config import env
from repro.experiments.runner import CellSpec, run_cells, scenario_specs
from repro.obs import drain_pending
from repro.scenario import get_scenario, list_scenarios, run_scenario
from repro.scenario.registry import default_scenario_names

COMMITTED = sorted(list_scenarios())


@pytest.fixture(autouse=True)
def _clean_pending():
    drain_pending()
    yield
    drain_pending()


@pytest.mark.parametrize("name", COMMITTED)
def test_every_committed_scenario_runs_quick(name):
    scenario = get_scenario(name)
    result = run_scenario(scenario, quick=True)
    assert result.name == name
    assert result["n_tenants"] == len(scenario.tenants)
    # Per-tenant accounting rows exist for every tenant.
    for tenant in scenario.tenants:
        assert f"goodput_mbps:{tenant.name}" in result.scalars
        assert f"flows:{tenant.name}" in result.scalars
    # TFC fabrics run the invariant monitor and must come back clean.
    if scenario.fabric_protocol() == "tfc":
        assert result["invariant_violations"] == 0.0


@pytest.mark.parametrize("name", COMMITTED)
def test_scenario_repeat_is_bit_identical(name):
    scenario = get_scenario(name)
    assert run_scenario(scenario, quick=True) == run_scenario(
        scenario, quick=True
    )


def test_telemetry_on_off_bit_identical():
    # ml-allreduce commits no telemetry: compare its result with the
    # env-selected 'full' session attached vs detached.
    scenario = get_scenario("ml-allreduce")
    plain = run_scenario(scenario, quick=True)
    with env(telemetry="full"):
        observed = run_scenario(scenario, quick=True)
    assert plain == observed


def test_jobs_1_vs_4_bit_identical():
    specs = scenario_specs(
        ["multi-tenant-mix", "incast-burst", "storage-chain"], quick=True
    )
    serial = run_cells(specs, jobs=1, root_seed=5)
    parallel = run_cells(specs, jobs=4, root_seed=5)
    assert serial == parallel


def test_transport_override_sweeps_fabric():
    scenario = get_scenario("multi-tenant-mix")
    results = {
        transport: run_scenario(scenario, quick=True, transport=transport)
        for transport in ("tfc", "tcp")
    }
    assert results["tfc"].protocol == "tfc"
    assert results["tcp"].protocol == "tcp"
    # TCP runs carry no TFC invariant monitor.
    assert "invariant_violations" not in results["tcp"].scalars
    assert results["tfc"] != results["tcp"]


def test_seed_changes_the_outcome_deterministically():
    scenario = get_scenario("multi-tenant-mix")
    a1 = run_scenario(scenario, seed=1, quick=True)
    a2 = run_scenario(scenario, seed=1, quick=True)
    b = run_scenario(scenario, seed=2, quick=True)
    assert a1 == a2
    assert a1 != b


def test_fault_schedule_lands_on_the_network():
    result = run_scenario(get_scenario("chaos-linkflap"), quick=True)
    assert result["faults_injected"] == 2.0


def test_per_tenant_metrics_in_registry_and_jsonl(tmp_path):
    # The flagship scenario declares telemetry: counters; run it through
    # the runner with an export directory and check the JSONL rows.
    specs = scenario_specs(["multi-tenant-mix"], quick=True)
    results = run_cells(
        specs, jobs=1, root_seed=0, telemetry_dir=str(tmp_path)
    )
    assert results[0]["jain_tenants"] > 0.0
    files = list(tmp_path.glob("*.metrics.jsonl"))
    assert len(files) == 1
    names = {json.loads(line)["name"] for line in files[0].read_text().splitlines()}
    for tenant in ("search", "training", "storage"):
        assert f"tenant.{tenant}.goodput_bps" in names
        assert f"tenant.{tenant}.flows" in names
        assert f"tenant.{tenant}.bytes_acked" in names
    assert "scenario.jain_tenants" in names


def test_default_plan_trio_present():
    assert default_scenario_names() == [
        "ml-allreduce", "storage-fanout", "multi-tenant-mix"
    ]


def test_runner_rejects_unknown_scenario():
    from repro.experiments.runner import RunnerError

    with pytest.raises(RunnerError, match="unknown scenario"):
        run_cells([CellSpec("scenario", {"scenario": "nope"})], jobs=1)
