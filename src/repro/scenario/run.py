"""Turn a validated :class:`~repro.scenario.schema.Scenario` into a run.

:func:`run_scenario` is the one bridge from declarative scenario to
simulator objects: it builds the topology wired for the scenario's
fabric protocol, instantiates every tenant's workload through a
:class:`~repro.workloads.mixer.MultiTenantMixer` (construction order =
tenant list order, part of the deterministic schedule), schedules the
declarative fault list onto a :class:`~repro.faults.engine.
FaultInjector`, attaches an :class:`~repro.faults.invariants.
InvariantMonitor` on TFC fabrics, runs for the scenario's duration plus
drain, and folds per-tenant goodput/FCT/Jain into an ordinary
:class:`~repro.experiments.common.ExperimentResult`.

Determinism contract: everything derives from ``(scenario, seed)`` —
workload RNG streams are seeded from stable string labels that include
the scenario name, tenant name and seed, and fault randomness comes from
the network's root-seed children — so the same call is bit-identical
across processes, ``--jobs`` fan-out and telemetry on/off.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Callable, Dict, Optional

from ..experiments.common import ExperimentResult, build_topology
from ..faults.engine import FaultInjector
from ..faults.invariants import InvariantMonitor
from ..metrics.fct import FctCollector
from ..net import topology as topo_builders
from ..net.network import Network
from ..net.port import Port
from ..net.topology import Topology
from ..obs.session import install as install_telemetry
from ..sim.units import MILLISECOND
from ..transport.registry import get_protocol
from ..workloads.collective import AllReduceWorkload
from ..workloads.empirical import BenchmarkWorkload
from ..workloads.incast import IncastCoordinator
from ..workloads.mixer import MultiTenantMixer
from ..workloads.onoff import OnOffSource
from ..workloads.bulk import staggered_flows
from ..workloads.storage import ReplicationWorkload
from .schema import Scenario, ScenarioError, TenantSpec

_BUILDERS: Dict[str, Callable[..., Topology]] = {
    "dumbbell": topo_builders.dumbbell,
    "testbed": topo_builders.testbed,
    "multi_bottleneck": topo_builders.multi_bottleneck,
    "leaf_spine": topo_builders.leaf_spine,
    "fat_tree": topo_builders.fat_tree,
}


def _us_to_ns(us: float) -> int:
    return int(us * 1_000)


def _port_between(network: Network, a: str, b: str, path: str) -> Port:
    """The port on node ``a`` transmitting towards node ``b``."""
    node = next((n for n in network.nodes if n.name == a), None)
    if node is None:
        names = ", ".join(sorted(n.name for n in network.nodes))
        raise ScenarioError(path, f"no node named {a!r} in topology; have: {names}")
    for port in node.ports:
        if port.peer_node.name == b:
            return port
    peers = ", ".join(sorted(p.peer_node.name for p in node.ports))
    raise ScenarioError(
        path, f"node {a!r} has no link to {b!r}; its peers: {peers}"
    )


def _build_tenant_workload(
    tenant: TenantSpec,
    topo: Topology,
    duration_ns: int,
    seed: int,
    scenario_name: str,
    transport: Optional[str],
) -> Callable[[str, FctCollector], object]:
    """A mixer build-callback for one tenant spec (closure over the topo)."""
    hosts = [topo.hosts[i] for i in tenant.hosts.resolve(len(topo.hosts))]
    protocol = transport or tenant.transport
    kind = tenant.workload.kind
    params = tenant.workload.params
    stream = f"{scenario_name}:{tenant.name}:{seed}"

    def build(name: str, collector: FctCollector) -> object:
        if kind == "empirical":
            return BenchmarkWorkload(
                hosts,
                protocol,
                duration_ns,
                query_rate_per_s=params["query_rate_per_s"],
                query_fanin=params["query_fanin"],
                short_rate_per_s=params["short_rate_per_s"],
                background_rate_per_s=params["background_rate_per_s"],
                seed_name=stream,
                collector=collector,
                tenant=name,
            )
        if kind == "incast":
            # First selected host is the client; the rest are servers.
            return IncastCoordinator(
                hosts[0],
                hosts[1:],
                protocol,
                block_bytes=params["block_bytes"],
                rounds=params["rounds"],
                request_delay_ns=_us_to_ns(params["request_delay_us"]),
                tenant=name,
            )
        if kind == "onoff":
            # Every host but the last bursts towards the last one.
            sim = hosts[0].sim
            senders = staggered_flows(
                hosts[:-1],
                hosts[-1],
                protocol,
                interval_ns=0,
                size_bytes=0,
                tenant=name,
            )
            sources = []
            for sender in senders:
                sender.fin_on_empty = False
                sources.append(
                    OnOffSource(
                        sim,
                        sender,
                        on_ns=_us_to_ns(params["on_us"]),
                        off_ns=_us_to_ns(params["off_us"]),
                        burst_bytes=params["burst_bytes"],
                        cycles=params["cycles"],
                    )
                )
            return sources
        if kind == "bulk":
            return staggered_flows(
                hosts[:-1],
                hosts[-1],
                protocol,
                interval_ns=_us_to_ns(params["stagger_us"]),
                size_bytes=params["size_bytes"],
                tenant=name,
            )
        if kind == "ml_allreduce":
            return AllReduceWorkload(
                hosts,
                protocol,
                chunk_bytes=params["chunk_bytes"],
                iterations=params["iterations"],
                mode=params["mode"],
                compute_gap_ns=_us_to_ns(params["compute_gap_us"]),
                tenant=name,
                collector=collector,
            )
        if kind == "storage":
            return ReplicationWorkload(
                hosts,
                protocol,
                duration_ns,
                replicas=params["replicas"],
                mode=params["mode"],
                write_rate_per_s=params["write_rate_per_s"],
                value_bytes=params["value_bytes"],
                tenant=name,
                collector=collector,
                seed_name=stream,
            )
        raise ScenarioError(
            f"tenants[{tenant.name}].workload.kind", f"unhandled kind {kind!r}"
        )

    return build


def _schedule_faults(scenario: Scenario, topo: Topology) -> Optional[FaultInjector]:
    if not scenario.faults:
        return None
    injector = FaultInjector(topo.network)
    for i, fault in enumerate(scenario.faults):
        path = f".faults[{i}]"
        at_ns = int(fault.at_ms * MILLISECOND)
        duration_ns = (
            None if fault.duration_ms is None
            else int(fault.duration_ms * MILLISECOND)
        )
        if fault.kind == "pause_host":
            host = topo.network.host_by_name(fault.host)
            injector.pause_host(host, at_ns, duration_ns)
            continue
        assert fault.link is not None  # enforced by the schema
        port = _port_between(topo.network, fault.link[0], fault.link[1], path)
        if fault.kind == "link_down":
            injector.link_down(
                port, at_ns, duration_ns=duration_ns, reroute=fault.reroute
            )
        elif fault.kind == "link_flap":
            injector.link_flap(
                port, at_ns, down_ns=duration_ns, reroute=fault.reroute
            )
        elif fault.kind == "degrade_link":
            injector.degrade_link(
                port, fault.factor, at_ns, duration_ns=duration_ns
            )
        elif fault.kind == "burst_loss":
            injector.burst_loss(port, at_ns, duration_ns=duration_ns)
        else:  # ack_loss
            injector.ack_loss(
                port, at_ns, duration_ns=duration_ns,
                probability=fault.probability,
            )
    return injector


def run_scenario(
    scenario: Scenario,
    seed: Optional[int] = None,
    quick: bool = False,
    duration_ms: Optional[float] = None,
    transport: Optional[str] = None,
) -> ExperimentResult:
    """Run one scenario and report per-tenant goodput/FCT/fairness.

    ``seed``/``duration_ms`` override the scenario's own values (sweep
    hooks); ``transport`` swaps *every* tenant's transport and the fabric
    — the knob the fairness head-to-heads turn.  ``quick`` selects the
    scenario's smoke-test duration.
    """
    effective_seed = scenario.seed if seed is None else seed
    if duration_ms is not None:
        duration_ns = int(duration_ms * MILLISECOND)
    else:
        duration_ns = scenario.effective_duration_ns(quick)
    fabric = transport or scenario.fabric_protocol()

    context = scenario.config.env() if scenario.config is not None else nullcontext()
    with context:
        builder_params = dict(scenario.topology.params)
        buffer_bytes = builder_params.pop("buffer_bytes")
        topo = build_topology(
            _BUILDERS[scenario.topology.kind],
            fabric,
            buffer_bytes,
            seed=effective_seed,
            routing=scenario.routing,
            **builder_params,
        )
        network = topo.network

        # An explicit telemetry: mode wins over (but never duplicates) the
        # env-selected session build_topology may already have attached.
        if scenario.telemetry and scenario.telemetry != "off":
            if getattr(network, "telemetry", None) is None:
                install_telemetry(network, scenario.telemetry)
        session = getattr(network, "telemetry", None)

        monitor = None
        if get_protocol(fabric).monitor_invariants:
            monitor = InvariantMonitor(
                network,
                raise_on_violation=False,
                registry=None if session is None else session.registry,
            )

        mixer = MultiTenantMixer(
            network,
            [
                (
                    tenant.name,
                    _build_tenant_workload(
                        tenant, topo, duration_ns, effective_seed,
                        scenario.name, transport,
                    ),
                )
                for tenant in scenario.tenants
            ],
        )
        injector = _schedule_faults(scenario, topo)

        network.run_for(duration_ns + int(scenario.drain_ms * MILLISECOND))

    # ------------------------------------------------------------------
    # Accounting: per-tenant goodput/FCT plus fabric-level counters.
    # ------------------------------------------------------------------
    result = ExperimentResult(name=scenario.name, protocol=fabric)
    scalars = result.scalars
    scalars["seed"] = float(effective_seed)
    scalars["duration_ms"] = duration_ns / MILLISECOND
    scalars["n_tenants"] = float(len(scenario.tenants))
    scalars["jain_tenants"] = mixer.jain_index(duration_ns)
    scalars["flows_completed"] = float(mixer.collector.completed())
    total_drops = 0
    for node in network.nodes:
        for port in node.ports:
            total_drops += port.queue.drops
    scalars["total_drops"] = float(total_drops)
    if monitor is not None:
        scalars["invariant_violations"] = float(len(monitor.violations))
    if injector is not None:
        scalars["faults_injected"] = float(len(injector.records))

    for report in mixer.reports(duration_ns):
        prefix = report.tenant
        scalars[f"goodput_mbps:{prefix}"] = report.goodput_bps / 1e6
        scalars[f"flows:{prefix}"] = float(report.flows)
        scalars[f"flows_completed:{prefix}"] = float(report.completed_flows)
        if report.fct_p99_us is not None:
            scalars[f"fct_p99_us:{prefix}"] = report.fct_p99_us

    # Telemetry rides along without perturbing the result: gauges are
    # derived from the same accounting the scalars report.
    if session is not None:
        registry = session.registry
        registry.gauge("scenario.jain_tenants").set(scalars["jain_tenants"])
        for report in mixer.reports(duration_ns):
            prefix = f"tenant.{report.tenant}"
            registry.gauge(f"{prefix}.goodput_bps").set(report.goodput_bps)
            if report.fct_p99_us is not None:
                registry.gauge(f"{prefix}.fct_p99_us").set(report.fct_p99_us)
        session.snapshot()

    return result
