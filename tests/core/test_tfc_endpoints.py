"""Tests for TFC sender/receiver endpoints."""

from repro.net.packet import MSS, Packet, WINDOW_SENTINEL
from repro.sim.units import MILLISECOND, seconds
from repro.transport.base import FlowState
from repro.transport.registry import configure_network, open_flow


def test_syn_is_rm_marked(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tfc", size_bytes=1000)
    syns = []
    # The SYN is already in flight; inspect via hook on a fresh sender.
    probe = Packet(a.node_id, b.node_id, 1, 2, syn=True)
    sender.syn_hook(probe)
    assert probe.rm


def test_sender_waits_for_window_acquisition(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tfc", size_bytes=100_000)
    assert sender.cwnd == 0.0
    net.run_for(seconds(0.5))
    assert sender.window_acquired
    assert sender.state is FlowState.DONE


def test_synack_window_is_ignored(tiny_net):
    """The SYN-ACK must not grant a window — only the probe's RMA may."""
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tfc", size_bytes=100_000)
    synack = Packet(
        b.node_id, a.node_id, sender.dport, sender.sport,
        syn=True, is_ack=True,
    )
    synack.window = 99_999.0
    sender.on_packet(synack)
    assert sender.state is FlowState.ESTABLISHED
    assert sender.cwnd == 0.0  # still unallocated


def test_receiver_copies_window_onto_rma_ack(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tfc", size_bytes=0)
    receiver = sender.receiver
    data = Packet(a.node_id, b.node_id, sender.sport, sender.dport, payload=MSS, rm=True)
    data.window = 5_000.0
    ack = Packet(b.node_id, a.node_id, sender.dport, sender.sport, is_ack=True)
    receiver.ack_decoration_hook(ack, data)
    assert ack.rma
    assert ack.window == 5_000.0


def test_receiver_does_not_rma_mark_syn(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tfc", size_bytes=0)
    receiver = sender.receiver
    syn = Packet(a.node_id, b.node_id, sender.sport, sender.dport, syn=True, rm=True)
    syn.window = 5_000.0
    ack = Packet(b.node_id, a.node_id, sender.dport, sender.sport, is_ack=True, syn=True)
    receiver.ack_decoration_hook(ack, syn)
    assert not ack.rma


def test_receiver_caps_window_at_awnd(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tfc", size_bytes=0, awnd_bytes=4 * MSS)
    receiver = sender.receiver
    data = Packet(a.node_id, b.node_id, sender.sport, sender.dport, payload=MSS, rm=True)
    data.window = 100 * MSS
    ack = Packet(b.node_id, a.node_id, sender.dport, sender.sport, is_ack=True)
    receiver.ack_decoration_hook(ack, data)
    assert ack.window == 4 * MSS


def test_cwnd_follows_rma_window(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tfc", size_bytes=0)
    sender.state = FlowState.ESTABLISHED
    rma = Packet(b.node_id, a.node_id, sender.dport, sender.sport, is_ack=True, rma=True)
    rma.window = 7 * MSS
    rma.retransmitted = True
    rma.sent_at = None
    sender.on_packet(rma)
    assert sender.cwnd == 7 * MSS
    assert sender.window_acquired


def test_exactly_one_rm_per_round(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tfc", size_bytes=0)
    sender.state = FlowState.ESTABLISHED
    sender._mark_next = True
    first = Packet(a.node_id, b.node_id, sender.sport, sender.dport, payload=MSS)
    second = Packet(a.node_id, b.node_id, sender.sport, sender.dport, payload=MSS)
    sender.next_packet_hook(first)
    sender.next_packet_hook(second)
    assert first.rm and not second.rm
    # The next RMA re-arms the mark.
    rma = Packet(b.node_id, a.node_id, sender.dport, sender.sport, is_ack=True, rma=True)
    rma.window = float(MSS)
    rma.retransmitted = True
    rma.sent_at = None
    sender.on_packet(rma)
    third = Packet(a.node_id, b.node_id, sender.sport, sender.dport, payload=MSS)
    sender.next_packet_hook(third)
    assert third.rm


def test_outgoing_window_field_reset_to_sentinel(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tfc", size_bytes=0)
    pkt = Packet(a.node_id, b.node_id, sender.sport, sender.dport, payload=MSS)
    pkt.window = 123.0
    sender.next_packet_hook(pkt)
    assert pkt.window == WINDOW_SENTINEL


def test_probe_retransmitted_if_lost(tiny_net):
    net, a, b, _ = tiny_net
    configure_network(net, "tfc")
    sender = open_flow(a, b, "tfc", size_bytes=10_000, min_rto_ns=MILLISECOND)
    receiver = sender.receiver
    # Black-hole everything after the handshake so the probe is lost.
    net.run_for(40_000)
    b.unregister_connection(sender.flow_key)
    net.run_for(5 * MILLISECOND)
    b.register_connection(sender.flow_key, receiver)
    net.run_for(seconds(1))
    assert sender.state is FlowState.DONE


def test_idle_flow_reacquires_window(tiny_net):
    net, a, b, _ = tiny_net
    configure_network(net, "tfc")
    sender = open_flow(a, b, "tfc", size_bytes=0)
    sender.fin_on_empty = False
    sender.queue_bytes(20_000)
    net.run_for(seconds(0.01))
    assert sender.stats.bytes_acked == 20_000
    acquired_before = sender.reacquisitions
    net.run_for(seconds(0.05))  # idle well past idle_reacquire_ns
    sender.queue_bytes(20_000)
    assert sender.reacquisitions == acquired_before + 1
    assert not sender.window_acquired  # waiting for the fresh grant
    net.run_for(seconds(0.5))
    assert sender.stats.bytes_acked == 40_000


def test_oversized_held_window_forces_reacquisition(tiny_net):
    net, a, b, _ = tiny_net
    configure_network(net, "tfc")
    sender = open_flow(a, b, "tfc", size_bytes=0)
    sender.fin_on_empty = False
    sender.queue_bytes(10_000)
    net.run_for(seconds(0.01))
    sender.cwnd = 100 * MSS  # pretend a tail slot granted the whole pipe
    sender.queue_bytes(10_000)  # gap well under idle_reacquire_ns
    assert sender.reacquisitions == 1
    net.run_for(seconds(0.5))
    assert sender.stats.bytes_acked == 20_000


def test_small_held_window_resumes_without_probe(tiny_net):
    net, a, b, _ = tiny_net
    configure_network(net, "tfc")
    # awnd caps the held window below resume_burst_limit.
    sender = open_flow(a, b, "tfc", size_bytes=0, awnd_bytes=2 * MSS)
    sender.fin_on_empty = False
    sender.queue_bytes(10_000)
    while sender.stats.bytes_acked < 10_000:
        net.run_for(100_000)
    # Re-queue right after the final ACK: the gap since the last send is
    # about one RTT, far below the idle limit.
    sender.queue_bytes(10_000)
    assert sender.reacquisitions == 0
    net.run_for(seconds(0.5))
    assert sender.stats.bytes_acked == 20_000


def test_no_window_change_on_loss(tiny_net):
    """TFC never touches the window on loss — the switch owns it."""
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tfc", size_bytes=0)
    sender.state = FlowState.ESTABLISHED
    sender.cwnd = 5 * MSS
    sender.window_acquired = True
    sender.on_timeout()
    assert sender.cwnd == 5 * MSS


def test_tfc_transfer_end_to_end(tiny_net):
    net, a, b, _ = tiny_net
    configure_network(net, "tfc")
    done = []
    sender = open_flow(a, b, "tfc", size_bytes=500_000, on_complete=done.append)
    net.run_for(seconds(1))
    assert done and sender.stats.bytes_acked == 500_000
    assert sender.stats.timeouts == 0
