"""Storage-replication traffic: primary -> k-replica writes with commits.

Replicated block/object stores are the second big east-west traffic
class: every client write lands on a primary which must place ``k``
copies before acknowledging the commit.  The network-visible shape is a
Poisson stream of correlated multi-destination transfers — either a
*fan-out* (primary streams to all replicas concurrently, quorum-style)
or a *chain* (primary -> r1 -> r2 -> ..., chain-replication style, each
hop forwarding only after it holds the full value).

:class:`ReplicationWorkload` generates that stream over a host group.
A write *commits* when its last replica flow completes (transport-level
completion stands in for the replica's durable-write ack); commit
latency — arrival to commit — is the workload's headline metric, and
every replica flow is recorded in the shared
:class:`~repro.metrics.fct.FctCollector` under ``"storage"`` with the
workload's tenant tag.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..metrics.fct import FctCollector
from ..net.host import Host
from ..sim.units import MILLISECOND
from ..transport.registry import open_flow
from .distributions import poisson_arrival_times_ns
from .empirical import _stable_seed

REPLICATION_MODES = ("fanout", "chain")


class ReplicationWorkload:
    """Poisson writes, each replicated primary -> k replicas.

    Per write, the primary and its ``replicas`` distinct targets are
    drawn from the host group (each write may land on a different
    primary, as with hash-placed shards).  ``mode="fanout"`` opens all
    replica flows at the write's arrival; ``mode="chain"`` opens hop
    ``i + 1`` only when hop ``i`` completes.
    """

    category = "storage"

    def __init__(
        self,
        hosts: Sequence[Host],
        protocol: str,
        duration_ns: int,
        replicas: int = 2,
        mode: str = "fanout",
        write_rate_per_s: float = 200.0,
        value_bytes: int = 64_000,
        start_ns: int = 0,
        min_rto_ns: int = 10 * MILLISECOND,
        tenant: Optional[str] = None,
        collector: Optional[FctCollector] = None,
        seed_name: str = "storage",
    ):
        if mode not in REPLICATION_MODES:
            raise ValueError(
                f"unknown replication mode {mode!r}; "
                f"choose from {', '.join(REPLICATION_MODES)}"
            )
        if replicas < 1:
            raise ValueError("need at least one replica")
        if len(hosts) < replicas + 1:
            raise ValueError(
                f"replication factor {replicas} needs at least "
                f"{replicas + 1} hosts, got {len(hosts)}"
            )
        if value_bytes <= 0 or duration_ns <= 0:
            raise ValueError("value_bytes and duration_ns must be positive")
        if write_rate_per_s <= 0:
            raise ValueError("write_rate_per_s must be positive")
        self.hosts = list(hosts)
        self.protocol = protocol
        self.replicas = replicas
        self.mode = mode
        self.value_bytes = value_bytes
        self.min_rto_ns = min_rto_ns
        self.tenant = tenant
        self.collector = collector if collector is not None else FctCollector()
        self.sim = self.hosts[0].sim
        self._rng = random.Random(_stable_seed(seed_name))

        self.writes_launched = 0
        self.commits_completed = 0
        self.flows_launched = 0
        #: Arrival-to-commit latency of every committed write.
        self.commit_latencies_ns: List[int] = []

        for t in poisson_arrival_times_ns(
            self._rng, write_rate_per_s, duration_ns,
            start_ns=max(start_ns, self.sim.now),
        ):
            self.sim.schedule_at(t, self._launch_write)

    # ------------------------------------------------------------------
    @property
    def mean_commit_latency_us(self) -> float:
        """Mean commit latency in microseconds (0.0 before any commit)."""
        if not self.commit_latencies_ns:
            return 0.0
        return sum(self.commit_latencies_ns) / len(self.commit_latencies_ns) / 1e3

    def _launch_write(self) -> None:
        primary = self._rng.choice(self.hosts)
        targets = self._rng.sample(
            [h for h in self.hosts if h is not primary], self.replicas
        )
        self.writes_launched += 1
        arrival_ns = self.sim.now
        if self.mode == "fanout":
            state = {"remaining": len(targets)}

            def done(sender) -> None:
                self._record_flow(sender)
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    self._commit(arrival_ns)

            for target in targets:
                self._open(primary, target, done)
        else:
            hops = [primary] + targets

            def forward(hop_index: int):
                def done(sender) -> None:
                    self._record_flow(sender)
                    if hop_index + 1 < len(targets):
                        self._open(
                            hops[hop_index + 1],
                            hops[hop_index + 2],
                            forward(hop_index + 1),
                        )
                    else:
                        self._commit(arrival_ns)

                return done

            self._open(hops[0], hops[1], forward(0))

    def _open(self, src: Host, dst: Host, on_complete) -> None:
        self.flows_launched += 1
        self.collector.expect()
        open_flow(
            src,
            dst,
            self.protocol,
            size_bytes=self.value_bytes,
            on_complete=on_complete,
            min_rto_ns=self.min_rto_ns,
            tenant=self.tenant,
        )

    def _record_flow(self, sender) -> None:
        self.collector.completion_handler(self.category)(sender)

    def _commit(self, arrival_ns: int) -> None:
        self.commits_completed += 1
        self.commit_latencies_ns.append(self.sim.now - arrival_ns)
