"""Partition plans: who owns which nodes, and the lookahead window.

A :class:`ShardPlan` is a pure, picklable description of the partition —
node *names* grouped into pod shards plus one core shard — so the
coordinator never has to build a topology and every worker can derive
the identical plan independently.  :func:`plan_fat_tree` mirrors the
naming convention of :func:`repro.net.topology.fat_tree` (``A<pod>_<j>``
/ ``E<pod>_<j>`` / ``H<n>`` / ``C<group>_<i>``); a test pins the two
against each other so they cannot drift.

Seeding: per-shard child seeds reuse the runner's ``derive_cell_seed``
identity hash, keyed by *pod identity* (e.g. ``("pod", 3)``) rather than
by shard id — regrouping pods across different shard counts therefore
never changes a seed, which is what makes any ``--shards`` value
bit-deterministic (same property the parallel runner pins for
``--jobs``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Optional, Tuple


class ShardError(Exception):
    """A partition plan and a topology (or runtime) disagree."""


def shard_seed(root_seed: int, *labels) -> int:
    """Child seed for a shard-local random stream, by stable identity.

    Reuses the experiment runner's ``derive_cell_seed`` hash with a
    ``shard`` namespace prefix so shard streams can never collide with
    runner cell streams drawn from the same root.
    """
    # Imported lazily: sim.* is the bottom layer and must not pull the
    # experiment drivers in at import time.
    from ...experiments.common import derive_cell_seed

    return derive_cell_seed(root_seed, "shard", *labels)


@dataclass(frozen=True)
class ShardPlan:
    """Node-name partition of a fabric into pod shards + one core shard.

    ``pods[p]`` lists every node name of pod ``p`` (aggregation and edge
    switches plus hosts); ``core`` lists the core-layer switches.  Pod
    ``p`` is owned by shard ``pod_to_shard[p]``; the core shard is the
    last shard id (:attr:`core_shard`).  ``lookahead_ns`` must be a
    lower bound on every boundary link's propagation delay — the
    conservative-sync window (validated against the real links by
    :func:`repro.sim.shard.boundary.attach_shard`).
    """

    pods: Tuple[Tuple[str, ...], ...]
    core: Tuple[str, ...]
    pod_to_shard: Tuple[int, ...]
    lookahead_ns: int

    def __post_init__(self) -> None:
        if self.lookahead_ns < 1:
            raise ShardError(
                f"lookahead must be >= 1 ns, got {self.lookahead_ns}"
            )
        if len(self.pod_to_shard) != len(self.pods):
            raise ShardError("pod_to_shard must map every pod")
        if self.pods and sorted(set(self.pod_to_shard)) != list(
            range(max(self.pod_to_shard) + 1)
        ):
            raise ShardError("pod shard ids must be contiguous from 0")

    # ------------------------------------------------------------------
    @property
    def pod_shards(self) -> int:
        """Number of shards holding pods (the core shard is extra)."""
        return max(self.pod_to_shard) + 1 if self.pod_to_shard else 0

    @property
    def core_shard(self) -> int:
        """Shard id of the core layer (always the last shard)."""
        return self.pod_shards

    @property
    def total_shards(self) -> int:
        return self.pod_shards + 1

    def owner_of(self, name: str) -> int:
        """Owning shard id for a node name (raises on unknown names)."""
        try:
            return self._owner_map[name]
        except KeyError:
            raise ShardError(f"node {name!r} is not covered by the plan")

    @cached_property
    def _owner_map(self) -> Dict[str, int]:
        owner: Dict[str, int] = {}
        for pod, members in enumerate(self.pods):
            for name in members:
                owner[name] = self.pod_to_shard[pod]
        for name in self.core:
            owner[name] = self.core_shard
        return owner

    def members_of(self, shard_id: int) -> Tuple[str, ...]:
        """Every node name owned by ``shard_id`` (plan order)."""
        if shard_id == self.core_shard:
            return self.core
        return tuple(
            name
            for pod, members in enumerate(self.pods)
            if self.pod_to_shard[pod] == shard_id
            for name in members
        )

    def pods_of(self, shard_id: int) -> Tuple[int, ...]:
        """Pod indices owned by ``shard_id`` (empty for the core shard)."""
        return tuple(
            pod
            for pod, shard in enumerate(self.pod_to_shard)
            if shard == shard_id
        )


def plan_fat_tree(
    k: int = 4,
    pod_shards: int = 2,
    lookahead_ns: Optional[int] = None,
) -> ShardPlan:
    """Partition a k-ary fat tree into ``pod_shards`` pod shards + core.

    Pods are grouped into contiguous blocks (pod ``p`` goes to shard
    ``p * pod_shards // k``), so ``pod_shards=k`` is one pod per shard
    and ``pod_shards=1`` is the minimal two-shard split.  The default
    lookahead matches the fat-tree builder's default 5 us link delay;
    pass the builder's ``link_delay_ns`` when overriding it.
    """
    if k < 2 or k % 2:
        raise ShardError(f"fat tree arity must be even and >= 2, got {k}")
    if not 1 <= pod_shards <= k:
        raise ShardError(
            f"pod_shards must be in [1, {k}] for fat_tree({k}), "
            f"got {pod_shards}"
        )
    if lookahead_ns is None:
        from ..units import microseconds

        lookahead_ns = microseconds(5)
    half = k // 2
    hosts_per_pod = half * half
    pods = []
    for pod in range(k):
        members = [f"A{pod}_{j}" for j in range(half)]
        members += [f"E{pod}_{j}" for j in range(half)]
        members += [
            f"H{n}"
            for n in range(
                pod * hosts_per_pod + 1, (pod + 1) * hosts_per_pod + 1
            )
        ]
        pods.append(tuple(members))
    core = tuple(
        f"C{group}_{i}" for group in range(half) for i in range(half)
    )
    return ShardPlan(
        pods=tuple(pods),
        core=core,
        pod_to_shard=tuple(pod * pod_shards // k for pod in range(k)),
        lookahead_ns=lookahead_ns,
    )


class ShardContext:
    """One shard's view of the partition, handed to build/collect hooks.

    ``shard_id=None`` is the *serial reference*: a context that owns
    everything, so the same build function produces the exact serial
    workload the sharded run is compared against.
    """

    __slots__ = ("plan", "shard_id", "root_seed")

    def __init__(
        self,
        plan: ShardPlan,
        shard_id: Optional[int],
        root_seed: int = 0,
    ) -> None:
        if shard_id is not None and not 0 <= shard_id < plan.total_shards:
            raise ShardError(
                f"shard_id {shard_id} out of range for {plan.total_shards}"
                " shards"
            )
        self.plan = plan
        self.shard_id = shard_id
        self.root_seed = root_seed

    @property
    def serial(self) -> bool:
        return self.shard_id is None

    def owns(self, name: str) -> bool:
        """Does this shard own the named node?  (Serial owns all.)"""
        if self.shard_id is None:
            return True
        return self.plan.owner_of(name) == self.shard_id

    def owns_node(self, node) -> bool:
        return self.owns(node.name)

    def seed_for(self, *labels) -> int:
        """Deterministic child seed keyed by stable identity labels.

        Key by *what* the stream drives (``("pod", 3)``, ``("flow",
        "H1->H9")``), never by shard id — identical at every shard count
        and in the serial reference.
        """
        return shard_seed(self.root_seed, *labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        which = "serial" if self.shard_id is None else f"shard {self.shard_id}"
        return f"<ShardContext {which}/{self.plan.total_shards}>"
