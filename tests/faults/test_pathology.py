"""Pathology detectors: unit behaviour plus the TFC-vs-PFC acceptance.

The unit tests drive each detector with synthetic signals (trace
emissions, scripted victim counters, hand-paused ports) on an otherwise
idle network, pinning the exact arm/fire/once-only semantics.  The
slow-marked acceptance tests then run the real chaos scenarios from
:mod:`repro.experiments.pfc_pathology` and pin the head-to-head claim:
PFC exhibits every pathology, TFC exhibits none.
"""

import pytest

from repro.experiments.common import build_topology
from repro.faults.pathology import (
    CbdDeadlockDetector,
    HolBlockingDetector,
    PathologySuite,
    PauseStormDetector,
)
from repro.net.pfc import PfcParams, enable_pfc
from repro.net.topology import dumbbell
from repro.sim.trace import PATHOLOGY_DETECTED, PFC_PAUSE, PFC_RESUME
from repro.sim.units import microseconds, milliseconds


def _idle_fabric(n_senders=3):
    """A quiet lossless dumbbell whose ports the tests pause by hand."""
    topo = build_topology(
        dumbbell,
        "pfc",
        buffer_bytes=256_000,
        n_senders=n_senders,
        seed=1,
        pfc_params=PfcParams(
            xoff_bytes=32_000, xon_bytes=8_000, headroom_bytes=32_000
        ),
    )
    return topo, topo.network, topo.network.lossless


# ----------------------------------------------------------------------
# Pause-storm detector
# ----------------------------------------------------------------------
def test_storm_duty_threshold_validated():
    _, net, fab = _idle_fabric()
    with pytest.raises(ValueError, match="duty threshold"):
        PauseStormDetector(net, fab, duty_threshold=0.0)
    with pytest.raises(ValueError, match="duty threshold"):
        PauseStormDetector(net, fab, duty_threshold=1.5)


def test_storm_fires_on_sustained_pause_and_reports_once():
    """A port paused for a whole window trips the detector exactly once;
    an open-ended (never resumed) interval counts as paused to now."""
    topo, net, fab = _idle_fabric()
    detector = PauseStormDetector(
        net, fab, window_ns=milliseconds(5), duty_threshold=0.5
    )
    port = topo.switches[0].ports[0]
    net.tracer.emit(PFC_PAUSE, port=port)  # XOFF, never XON'd
    net.run_for(milliseconds(20))
    assert detector.detected
    assert len(detector.detections) == 1  # once per port, not per sweep
    assert detector.detections[0].kind == "pause_storm"
    assert port.node.name in detector.detections[0].location
    assert detector.duty_cycle(port) == pytest.approx(1.0)


def test_storm_ignores_low_duty_cycle():
    """Brief pause blips below the duty threshold never fire."""
    topo, net, fab = _idle_fabric()
    detector = PauseStormDetector(
        net, fab, window_ns=milliseconds(5), duty_threshold=0.5
    )
    port = topo.switches[0].ports[0]

    def blip():  # 100 µs paused out of every 1 ms => 10% duty
        net.tracer.emit(PFC_PAUSE, port=port)
        net.sim.schedule(microseconds(100), unblip)

    def unblip():
        net.tracer.emit(PFC_RESUME, port=port)
        net.sim.schedule(microseconds(900), blip)

    net.sim.schedule(0, blip)
    net.run_for(milliseconds(20))
    assert not detector.detected
    assert detector.duty_cycle(port) < 0.2


def test_storm_stop_detaches_subscriptions():
    topo, net, fab = _idle_fabric()
    detector = PauseStormDetector(net, fab)
    detector.stop()
    net.tracer.emit(PFC_PAUSE, port=topo.switches[0].ports[0])
    net.run_for(milliseconds(10))
    assert not detector.detected
    assert detector.checks_run == 0


# ----------------------------------------------------------------------
# HoL-blocking detector
# ----------------------------------------------------------------------
def test_hol_requires_a_victim():
    _, net, fab = _idle_fabric()
    with pytest.raises(ValueError, match="victim"):
        HolBlockingDetector(net, fab, {})


def test_hol_fires_only_when_collapse_coincides_with_pause():
    """A scripted victim: healthy deltas, then a collapse.  Without any
    paused port the collapse is ordinary congestion (no detection);
    with a pause active it is HoL blocking (one detection)."""
    topo, net, fab = _idle_fabric()
    delivered = {"total": 0}
    phase = {"healthy": True}

    def feed():  # 30 KB/ms while healthy, nothing while collapsed
        if phase["healthy"]:
            delivered["total"] += 30_000
        net.sim.schedule(milliseconds(1), feed)

    net.sim.schedule(0, feed)
    detector = HolBlockingDetector(
        net, fab, {"victim": lambda: delivered["total"]}
    )
    net.run_for(milliseconds(10))
    phase["healthy"] = False
    net.run_for(milliseconds(10))  # collapse, but nothing paused
    assert not detector.detected

    port = topo.switches[0].ports[0]
    port.agent._apply("xoff", 0)  # now the fabric is paused somewhere
    net.run_for(milliseconds(10))
    assert detector.detected
    assert len(detector.detections) == 1
    assert detector.detections[0].location == "victim"


def test_hol_slow_start_victim_cannot_false_positive():
    """A victim that never reached min_peak_bytes per interval cannot
    trip the detector, paused fabric or not."""
    topo, net, fab = _idle_fabric()
    detector = HolBlockingDetector(
        net, fab, {"trickle": lambda: 0}, min_peak_bytes=20_000
    )
    topo.switches[0].ports[0].agent._apply("xoff", 0)
    net.run_for(milliseconds(10))
    assert not detector.detected


# ----------------------------------------------------------------------
# CBD deadlock detector
# ----------------------------------------------------------------------
def _two_switch_fabric():
    """Two switches cabled together: the minimal CBD-capable geometry."""
    from repro.net.network import Network
    from repro.sim.units import GBPS

    net = Network(default_buffer_bytes=256_000)
    a = net.add_switch("A")
    b = net.add_switch("B")
    net.cable(a, b, rate_bps=GBPS, delay_ns=1000)
    net.build_routes()
    fab = enable_pfc(net)
    return net, fab, a, b


def test_cbd_no_cycle_on_single_switch():
    """Same-node paused ports cannot form a wait-for cycle (the edge
    needs the link's *destination* to own the next paused port); the
    detector stays quiet however many ports are paused."""
    topo, net, fab = _idle_fabric()
    detector = CbdDeadlockDetector(
        net, fab, check_interval_ns=microseconds(150), persistence=2
    )
    for port in topo.switches[0].ports[:2]:
        port.agent._apply("xoff", 0)
    net.run_for(milliseconds(5))
    assert not detector.detected


def test_cbd_two_switch_cycle_detects_once_and_requires_persistence():
    """Both inter-switch transmitters paused with no transmit progress
    is the canonical 2-port CBD signature: it must persist
    ``persistence`` sweeps before reporting, then report once."""
    net, fab, a, b = _two_switch_fabric()
    detector = CbdDeadlockDetector(
        net, fab, check_interval_ns=microseconds(150), persistence=2
    )
    a.ports[0].agent._apply("xoff", 0)
    b.ports[0].agent._apply("xoff", 0)
    net.run_for(milliseconds(2))
    assert detector.detected
    assert len(detector.detections) == 1  # reported once despite sweeps
    first = detector.detections[0]
    assert first.kind == "cbd_deadlock"
    assert first.context["cycle_ports"] == 2
    # Timing: not before the persistence'th sweep.
    assert first.time_ns >= 2 * microseconds(150)


def test_cbd_transient_cycle_resolves_without_detection():
    """A cycle that breaks before ``persistence`` sweeps never fires."""
    net, fab, a, b = _two_switch_fabric()
    detector = CbdDeadlockDetector(
        net, fab, check_interval_ns=microseconds(150), persistence=2
    )
    a.ports[0].agent._apply("xoff", 0)
    b.ports[0].agent._apply("xoff", 0)
    # Break the cycle before the second sweep can confirm it.
    net.sim.schedule(
        microseconds(200), lambda: a.ports[0].agent._apply("xon", 0)
    )
    net.run_for(milliseconds(2))
    assert not detector.detected


# ----------------------------------------------------------------------
# Suite plumbing
# ----------------------------------------------------------------------
def test_suite_counts_and_emits_trace_topic():
    """PathologySuite arms all detectors, aggregates counts by kind, and
    every detection emits ``fault.pathology`` (the FlightRecorder dump
    trigger)."""
    topo, net, fab = _idle_fabric()
    emitted = []
    net.tracer.subscribe(
        PATHOLOGY_DETECTED, lambda **kw: emitted.append(kw.get("kind"))
    )
    suite = PathologySuite(
        net,
        fab,
        victims={"v": lambda: 0},
        cbd_check_interval_ns=microseconds(150),
    )
    assert len(suite.detectors) == 3
    assert suite.cbd_deadlock.check_interval_ns == microseconds(150)
    net.tracer.emit(PFC_PAUSE, port=topo.switches[0].ports[0])
    net.run_for(milliseconds(20))
    counts = suite.detections()
    assert counts["pause_storm"] == 1
    assert counts["hol_blocking"] == 0
    assert counts["cbd_deadlock"] == 0
    assert emitted == ["pause_storm"]
    suite.stop()


def test_suite_without_victims_omits_hol():
    _, net, fab = _idle_fabric()
    suite = PathologySuite(net, fab)
    assert suite.hol_blocking is None
    assert len(suite.detectors) == 2
    assert suite.detections() == {
        "pause_storm": 0,
        "hol_blocking": 0,
        "cbd_deadlock": 0,
    }


# ----------------------------------------------------------------------
# Acceptance: the TFC-vs-PFC head-to-head (slow, matches EXPERIMENTS.md)
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("scenario", ["pause_storm", "hol", "cbd"])
def test_head_to_head_pfc_pathological_tfc_clean(scenario):
    """On the pinned chaos scenarios PFC exhibits the pathology; TFC
    runs the identical workload with zero pause frames, zero detections,
    zero invariant violations, and reconverges to >= 90% of its own peak
    goodput."""
    from repro.experiments.pfc_pathology import run_head_to_head

    results = run_head_to_head(scenario, duration_ns=milliseconds(60))
    pfc, tfc = results["pfc"], results["tfc"]

    # PFC side: lossless (no drops) but pathological.
    assert pfc["drops"] == 0
    assert pfc["pause_frames"] > 0
    detector_key = {
        "pause_storm": "det_pause_storm",
        "hol": "det_hol_blocking",
        "cbd": "det_cbd_deadlock",
    }[scenario]
    assert pfc[detector_key] > 0

    # TFC side: same workload, provably clean.
    assert tfc.clean
    assert tfc["pause_frames"] == 0
    assert tfc["detections"] == 0
    assert tfc["violations"] == 0
    assert tfc["goodput_ratio"] >= 0.9
    assert tfc["drops"] == 0


@pytest.mark.slow
def test_head_to_head_is_deterministic():
    """Two same-seed storm head-to-heads agree scalar for scalar."""
    from repro.experiments.pfc_pathology import run_pathology

    a = run_pathology("pause_storm", "pfc", duration_ns=milliseconds(30))
    b = run_pathology("pause_storm", "pfc", duration_ns=milliseconds(30))
    assert a.scalars == b.scalars
    assert a.goodput_series == b.goodput_series
    assert [p.time_ns for p in a.pathologies] == [
        p.time_ns for p in b.pathologies
    ]
