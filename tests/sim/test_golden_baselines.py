"""Golden determinism for the related-work baseline transports.

Same contract as :mod:`tests.sim.test_golden_determinism`, extended to
the four baselines DESIGN.md §6k adds (bfc, tbtcp, tracks, fairq): the
constants below were captured once and must stay bit-identical across
every scheduler backend and with hot-loop batching on or off.  If a
change here is intentional, recapture the constants and say so in the
commit — never loosen the assertions.

The scenario is a contended 4-sender dumbbell with four equal 400 KB
flows started together, long enough for every flow to finish.  Each
transport leaves its own signature in the constants:

* **bfc** — zero drops, matched pause/resume counts (per-flow
  backpressure absorbs the burst without loss);
* **tbtcp** — a handful of drops against its tiny shared buffer,
  recovered by fast retransmit;
* **tracks** — the most drops (plain NewReno against a deep buffer)
  with the receiver's tail timer keeping RTOs to a minimum;
* **fairq** — zero drops, selective marks keep the queue short of the
  ECN threshold.
"""

import hashlib
import json

import pytest

from repro.experiments.common import build_topology
from repro.net.topology import dumbbell
from repro.sim.units import seconds
from repro.transport.registry import open_flow

#: protocol -> (events_processed, complete_ns per flow, total drops,
#:              tracer counters, port-state digest)
GOLDEN = {
    "bfc": (
        11312,
        [13_463_339, 13_508_093, 13_486_423, 13_499_030],
        0,
        {
            "bfc.pause": 136,
            "bfc.resume": 136,
            "transport.flow_complete": 4,
        },
        "442b6065a3f5ca5a",
    ),
    "tbtcp": (
        11105,
        [13_500_980, 13_041_066, 20_868_165, 11_852_358],
        32,
        {
            "net.packet_drop": 32,
            "transport.fast_retransmit": 10,
            "transport.flow_complete": 4,
            "transport.rto": 1,
        },
        "71bc3433b519678b",
    ),
    "tracks": (
        12047,
        [17_637_947, 10_842_582, 13_429_407, 14_669_633],
        187,
        {
            "net.packet_drop": 187,
            "transport.fast_retransmit": 7,
            "transport.flow_complete": 4,
            "transport.rto": 1,
        },
        "76946fc7956ae7b6",
    ),
    "fairq": (
        11040,
        [13_012_681, 12_806_412, 13_254_480, 13_601_566],
        0,
        {"transport.flow_complete": 4},
        "a3030085d89716da",
    ),
}


def _digest(obj) -> str:
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True).encode("utf-8")
    ).hexdigest()[:16]


def _port_state(network):
    rows = []
    for node in network.nodes:
        for port in node.ports:
            queue = port.queue
            rows.append(
                [
                    node.name,
                    port.index,
                    port.tx_packets,
                    port.tx_bytes,
                    queue.byte_length,
                    queue.packet_length,
                    queue.drops,
                    queue.enqueues,
                    queue.max_bytes_seen,
                ]
            )
    return rows


def _run_and_check(protocol):
    events, complete_ns, drops, counters, digest = GOLDEN[protocol]
    topo = build_topology(
        dumbbell, protocol, buffer_bytes=256_000, n_senders=4, seed=1
    )
    senders = [
        open_flow(topo.host(i), topo.host(4), protocol, size_bytes=400_000)
        for i in range(4)
    ]
    topo.network.run_for(seconds(0.05))
    net = topo.network

    assert net.sim.events_processed == events
    assert net.sim.now == 50_000_000
    assert [s.stats.bytes_acked for s in senders] == [400_000] * 4
    assert [s.stats.complete_ns for s in senders] == complete_ns
    assert net.total_drops() == drops
    assert dict(sorted(net.tracer.counters.items())) == counters
    assert _digest(_port_state(net)) == digest
    return net


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_golden_baseline_dumbbell(protocol):
    _run_and_check(protocol)


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
@pytest.mark.parametrize(
    "backend", ["heap", "calendar", "wheel", "adaptive"]
)
def test_golden_baseline_every_scheduler_backend(
    monkeypatch, backend, protocol
):
    monkeypatch.setenv("REPRO_SCHEDULER", backend)
    _run_and_check(protocol)


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
@pytest.mark.parametrize("batch", ["on", "off"])
def test_golden_baseline_batching_bit_identical(monkeypatch, batch, protocol):
    """Hot-loop batching changes nothing — note BFC disables the TX burst
    chain structurally (its per-flow queue overrides ``dequeue``), so
    batch on/off only toggles kernel micro-batching there."""
    monkeypatch.setenv("REPRO_BATCH", batch)
    _run_and_check(protocol)


def test_golden_bfc_composes_with_pfc_fabric(monkeypatch):
    """``REPRO_LOSSLESS=pfc`` layers a PFC fabric over the BFC one: BFC's
    per-flow pauses keep every queue far below the PFC XOFF default, so
    no PFC pause frame is ever emitted and the golden constants hold
    bit-identically through the wrapped port agents."""
    monkeypatch.setenv("REPRO_LOSSLESS", "pfc")
    net = _run_and_check("bfc")
    assert net.lossless is not None
    assert net.lossless.pause_frames == 0
    assert net.bfc.pause_frames == 136
