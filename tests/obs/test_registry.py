"""Unit tests for the typed metric registry."""

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Timeline,
)


def test_counter_increments_and_rejects_decrease():
    c = Counter("drops")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError, match="cannot decrease"):
        c.inc(-1)
    c.set_total(42)
    assert c.value == 42
    assert c.as_row() == {"name": "drops", "kind": "counter", "value": 42}


def test_gauge_moves_both_ways():
    g = Gauge("queue_bytes")
    g.set(10)
    g.set(3.5)
    assert g.value == 3.5
    assert g.as_row()["kind"] == "gauge"


def test_histogram_buckets_and_quantile():
    h = Histogram("fct", buckets=(10, 100, 1000))
    for v in (5, 50, 50, 500, 5000):
        h.observe(v)
    assert h.count == 5
    assert h.sum == 5605.0
    assert h.counts == [1, 2, 1, 1]  # last slot: +inf overflow
    assert h.quantile(0.0) == 10  # first non-empty bucket bound
    assert h.quantile(0.5) == 100
    assert h.quantile(1.0) == 1000  # overflow clamps to last bound
    with pytest.raises(ValueError):
        h.quantile(1.5)
    with pytest.raises(ValueError):
        Histogram("empty", buckets=())


def test_histogram_empty_quantile_is_zero():
    assert Histogram("fct").quantile(0.99) == 0.0


def test_timeline_append_and_adopt_share_storage():
    t = Timeline("goodput")
    t.append(0, 1.0)
    legacy = [(0, 5.0)]
    t.adopt(legacy)
    legacy.append((10, 6.0))
    t.append(20, 7.0)
    assert t.series == [(0, 5.0), (10, 6.0), (20, 7.0)]
    assert legacy is t.series
    row = t.as_row()
    assert row["points"] == 3
    assert row["series"][0] == [0, 5.0]


def test_registry_get_or_create_and_kind_conflict():
    reg = MetricRegistry()
    c1 = reg.counter("x", help="first")
    c2 = reg.counter("x", help="ignored on re-request")
    assert c1 is c2
    with pytest.raises(TypeError, match="already registered as counter"):
        reg.gauge("x")
    reg.gauge("a")
    reg.timeline("z")
    reg.histogram("m")
    assert reg.names() == ["a", "m", "x", "z"]
    assert len(reg) == 4
    assert [row["name"] for row in reg.rows()] == ["a", "m", "x", "z"]
    assert reg.get("x") is c1
    assert reg.get("missing") is None


def test_registry_iterates_instruments():
    reg = MetricRegistry()
    reg.counter("a")
    reg.gauge("b")
    kinds = sorted(m.kind for m in reg)
    assert kinds == ["counter", "gauge"]
