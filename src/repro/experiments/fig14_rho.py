"""Fig. 14 — sensitivity to the expected-utilisation parameter rho0.

Paper setup: hosts H1-H5 each send one long-lived flow to H6 while rho0
sweeps 0.90 -> 1.00.  Receiver goodput tracks rho0 (880 -> 940 Mbps on the
testbed) and the queue stays under ~1 KB until rho0 approaches 0.98, after
which variance in the instantaneous RTT lets packets accumulate (about
6 KB at rho0 = 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.params import TfcParams
from ..metrics.samplers import QueueSampler, RateSampler
from ..net.topology import testbed
from ..sim.units import microseconds, milliseconds, seconds
from ..transport.registry import open_flow
from .common import ExperimentResult, build_topology


@dataclass
class RhoPoint:
    """One rho0 setting's steady-state goodput and queue."""

    rho0: float
    goodput_bps: float
    queue_mean_bytes: float
    queue_max_bytes: float
    drops: int


def run_rho_point(
    rho0: float,
    n_flows: int = 5,
    duration_s: float = 1.0,
    seed: int = 0,
) -> RhoPoint:
    """Measure goodput and queue for a single rho0 value."""
    params = TfcParams(rho0=rho0)
    topo = build_topology(
        testbed, "tfc", buffer_bytes=256_000, tfc_params=params, seed=seed
    )
    net = topo.network
    h6 = topo.host(5)
    senders = [open_flow(topo.host(i), h6, "tfc") for i in range(n_flows)]

    queue_sampler = QueueSampler(
        net.sim, topo.bottleneck("to_H6"), microseconds(100)
    )
    rate_sampler = RateSampler(
        net.sim,
        (lambda: sum(s.receiver.bytes_received for s in senders)),
        milliseconds(20),
    )
    net.run_for(seconds(duration_s))

    # Steady state: skip the first 30% (handshakes + token convergence).
    skip = int(len(rate_sampler.series) * 0.3)
    rates = [v for _, v in rate_sampler.series[skip:]]
    queue_skip = int(len(queue_sampler.series) * 0.3)
    queues = [v for _, v in queue_sampler.series[queue_skip:]]
    return RhoPoint(
        rho0=rho0,
        goodput_bps=sum(rates) / len(rates) if rates else 0.0,
        queue_mean_bytes=sum(queues) / len(queues) if queues else 0.0,
        queue_max_bytes=max(queues, default=0.0),
        drops=net.total_drops(),
    )


def run_fig14(
    rho_values: Sequence[float] = (0.90, 0.92, 0.94, 0.96, 0.98, 1.00),
    n_flows: int = 5,
    duration_s: float = 1.0,
    seed: int = 0,
) -> List[RhoPoint]:
    """The Fig. 14 sweep over rho0."""
    return [
        run_rho_point(rho0, n_flows=n_flows, duration_s=duration_s, seed=seed)
        for rho0 in rho_values
    ]


def run_rho_cell(
    rho0: float,
    n_flows: int = 5,
    duration_s: float = 1.0,
    seed: int = 0,
) -> "ExperimentResult":
    """Picklable cell adapter for the parallel runner."""
    point = run_rho_point(rho0, n_flows=n_flows, duration_s=duration_s, seed=seed)
    return ExperimentResult(
        name=f"fig14:rho{rho0:.2f}:seed{seed}",
        protocol="tfc",
        scalars={
            "rho0": point.rho0,
            "goodput_bps": point.goodput_bps,
            "queue_mean_bytes": point.queue_mean_bytes,
            "queue_max_bytes": point.queue_max_bytes,
            "drops": float(point.drops),
        },
    )
