#!/usr/bin/env python
"""Perf gate: fail (exit 1) if current HEAD regresses >15% vs the committed
snapshots.  Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/check_regression.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.perf.compare import main  # noqa: E402

if __name__ == "__main__":
    status = 0
    for snapshot in ("BENCH_kernel.json", "BENCH_experiments.json"):
        if not os.path.exists(snapshot):
            print(f"{snapshot}: not found, skipping")
            continue
        status |= main([snapshot] + sys.argv[1:])
    sys.exit(status)
