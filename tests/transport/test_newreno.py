"""Tests for NewReno congestion control, driven by crafted ACKs."""

from repro.net.packet import MSS, Packet
from repro.sim.units import seconds
from repro.transport.base import FlowState
from repro.transport.newreno import DUPACK_THRESHOLD
from repro.transport.registry import open_flow


def established_sender(tiny_net, size=None):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tcp", size_bytes=size)
    net.run_for(100_000)  # handshake done, data flowing
    assert sender.state is FlowState.ESTABLISHED or sender.state is FlowState.DONE
    return net, sender


def ack_for(sender, ack, echo=False):
    pkt = Packet(
        sender.dst_id, sender.src_id, sender.dport, sender.sport,
        ack=ack, is_ack=True,
    )
    pkt.ecn_echo = echo
    pkt.retransmitted = True  # suppress RTT sampling for determinism
    pkt.sent_at = None
    return pkt


def test_initial_window_is_two_segments(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tcp")
    assert sender.cwnd == 2 * MSS


def test_slow_start_doubles_per_rtt(tiny_net):
    net, sender = established_sender(tiny_net)
    # In slow start cwnd grows by one MSS per acked MSS.
    before = sender.cwnd
    sender.on_packet(ack_for(sender, sender.snd_una + MSS))
    assert sender.cwnd == before + MSS


def test_congestion_avoidance_linear(tiny_net):
    net, sender = established_sender(tiny_net)
    sender.ssthresh = sender.cwnd  # force CA
    before = sender.cwnd
    sender.on_packet(ack_for(sender, sender.snd_una + MSS))
    growth = sender.cwnd - before
    assert 0 < growth <= MSS * MSS / before + 1


def test_triple_dupack_triggers_fast_retransmit(tiny_net):
    net, sender = established_sender(tiny_net)
    sender.cwnd = 20 * MSS
    net.run_for(20_000)  # fill the window
    assert sender.flight_size > 3 * MSS
    before_rtx = sender.stats.retransmissions
    for _ in range(DUPACK_THRESHOLD):
        sender.on_packet(ack_for(sender, sender.snd_una))
    assert sender.in_recovery
    assert sender.stats.fast_retransmits == 1
    assert sender.stats.retransmissions == before_rtx + 1
    # ssthresh halved relative to flight, cwnd inflated by 3 MSS.
    assert sender.ssthresh >= 2 * MSS


def test_dupacks_inflate_window_during_recovery(tiny_net):
    net, sender = established_sender(tiny_net)
    sender.cwnd = 20 * MSS
    net.run_for(20_000)
    for _ in range(DUPACK_THRESHOLD):
        sender.on_packet(ack_for(sender, sender.snd_una))
    inflated = sender.cwnd
    sender.on_packet(ack_for(sender, sender.snd_una))
    assert sender.cwnd == inflated + MSS


def test_full_ack_exits_recovery_at_ssthresh(tiny_net):
    net, sender = established_sender(tiny_net)
    sender.cwnd = 20 * MSS
    net.run_for(20_000)
    for _ in range(DUPACK_THRESHOLD):
        sender.on_packet(ack_for(sender, sender.snd_una))
    recovery_point = sender._recovery_high
    sender.on_packet(ack_for(sender, recovery_point))
    assert not sender.in_recovery
    assert sender.cwnd == sender.ssthresh


def test_partial_ack_stays_in_recovery(tiny_net):
    net, sender = established_sender(tiny_net)
    sender.cwnd = 20 * MSS
    net.run_for(20_000)
    for _ in range(DUPACK_THRESHOLD):
        sender.on_packet(ack_for(sender, sender.snd_una))
    rtx_before = sender.stats.retransmissions
    sender.on_packet(ack_for(sender, sender.snd_una + MSS))  # partial
    assert sender.in_recovery
    assert sender.stats.retransmissions == rtx_before + 1  # next hole resent


def test_timeout_resets_to_one_segment(tiny_net):
    net, sender = established_sender(tiny_net)
    sender.cwnd = 20 * MSS
    sender.on_timeout()
    assert sender.cwnd == MSS
    assert not sender.in_recovery


def test_two_tcp_flows_share_a_bottleneck_and_finish():
    from repro.net.topology import dumbbell
    from repro.transport.registry import open_flow as open_

    topo = dumbbell(n_senders=2)
    receiver = topo.hosts[-1]
    flows = [
        open_(host, receiver, "tcp", size_bytes=2_000_000)
        for host in topo.hosts[:2]
    ]
    topo.network.run_for(seconds(3))
    for flow in flows:
        assert flow.state is FlowState.DONE
        assert flow.stats.bytes_acked == 2_000_000


def test_tcp_fills_buffer_and_drops():
    """The Fig. 8 TCP behaviour: loss-driven, queue pinned at capacity."""
    from repro.net.topology import dumbbell

    topo = dumbbell(n_senders=2, buffer_bytes=64_000)
    receiver = topo.hosts[-1]
    for host in topo.hosts[:2]:
        open_flow(host, receiver, "tcp")
    topo.network.run_for(seconds(0.5))
    bottleneck = topo.bottleneck("main").queue
    assert bottleneck.drops > 0
    assert bottleneck.max_bytes_seen > 0.9 * 64_000
