"""Pluggable scheduler backends: selection, semantics, differential fuzz.

The contract is single-sentence: **every backend pops the identical
(time, seq, callback) sequence**.  The differential fuzz drives a seeded
random schedule/cancel/run trace through heap, calendar, and wheel (and
the adaptive policy) and asserts the pop logs match event-for-event —
covering same-timestamp FIFO ties, zero delays, far-future events that
exercise the wheel's upper levels and the calendar's year wrap,
cancellations (before and after firing), and horizon-bounded runs.
"""

import random

import pytest

from repro.sim.engine import (
    ADAPTIVE_SWITCH_THRESHOLD,
    Simulator,
)
from repro.sim.sched import SCHEDULER_NAMES, make_scheduler

BACKENDS = ("heap", "calendar", "wheel")


# ----------------------------------------------------------------------
# Selection plumbing
# ----------------------------------------------------------------------
def test_scheduler_names_registry():
    assert set(BACKENDS) <= set(SCHEDULER_NAMES)
    assert "adaptive" in SCHEDULER_NAMES


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError, match="unknown scheduler"):
        Simulator(scheduler="bogus")
    with pytest.raises(ValueError, match="unknown scheduler"):
        make_scheduler("adaptive")  # a policy, not a backend class


@pytest.mark.parametrize("backend", BACKENDS)
def test_explicit_backend_selected(backend):
    sim = Simulator(scheduler=backend)
    assert sim.scheduler_name == backend
    assert sim.active_backend == backend


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "wheel")
    assert Simulator().active_backend == "wheel"
    monkeypatch.setenv("REPRO_SCHEDULER", "")
    sim = Simulator()
    assert sim.scheduler_name == "adaptive"
    assert sim.active_backend == "heap"
    monkeypatch.delenv("REPRO_SCHEDULER")
    assert Simulator().scheduler_name == "adaptive"


def test_explicit_argument_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
    assert Simulator(scheduler="heap").active_backend == "heap"


# ----------------------------------------------------------------------
# Per-backend semantics (the engine unit-test core, on every backend)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_order_fifo_and_cancel(backend):
    sim = Simulator(scheduler=backend)
    log = []
    sim.schedule(30, log.append, "c")
    sim.schedule(10, log.append, "a")
    doomed = sim.schedule(20, log.append, "x")
    sim.schedule(20, log.append, "b1")
    sim.schedule(20, log.append, "b2")
    doomed.cancel()
    sim.run()
    assert log == ["a", "b1", "b2", "c"]
    assert sim.pending_events == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_horizon_probe_then_earlier_insert(backend):
    """Probing run(until) must not let a backend skip later inserts that
    land before an already-stored far event."""
    sim = Simulator(scheduler=backend)
    log = []
    sim.schedule(1_000_000, log.append, "far")
    sim.run(until_ns=500)  # probe: nothing due, clock parks at 500
    assert log == []
    assert sim.now == 500
    sim.schedule(100, log.append, "near")  # t=600, before the far event
    sim.run()
    assert log == ["near", "far"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_far_future_levels_and_years(backend):
    """Delays spanning the wheel's level widths / many calendar years."""
    sim = Simulator(scheduler=backend)
    fired = []
    delays = [
        0, 1, 1023, 1024, 262_143, 262_144, 1 << 20, (1 << 26) + 7,
        (1 << 34) + 1, (1 << 42) + 5, (1 << 51) + 3,
    ]
    for delay in delays:
        sim.schedule(delay, fired.append, delay)
    sim.run()
    assert fired == sorted(delays)
    assert sim.now == max(delays)


@pytest.mark.parametrize("backend", BACKENDS)
def test_mass_cancel_compaction(backend):
    sim = Simulator(scheduler=backend)
    fired = []
    doomed = [sim.schedule(10_000 + i, lambda: None) for i in range(2000)]
    for event in doomed:
        event.cancel()
    for i in range(5):
        sim.schedule(100 + i, fired.append, i)
    assert sim.pending_events == 5
    sim.run()
    assert fired == [0, 1, 2, 3, 4]
    assert sim.pending_events == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_cancel_after_fire_is_noop(backend):
    sim = Simulator(scheduler=backend)
    fired = []
    handle = sim.schedule(5, fired.append, "a")
    sim.run()
    handle.cancel()  # stale: already fired; must not kill a later event
    sim.schedule(5, fired.append, "b")
    sim.run()
    assert fired == ["a", "b"]
    assert sim.pending_events == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_free_list_recycles_across_backends(backend):
    sim = Simulator(scheduler=backend)
    first = sim.schedule(1, lambda: None)
    sim.run()
    second = sim.schedule(1, lambda: None)
    assert second is first
    sim.run()


# ----------------------------------------------------------------------
# Adaptive policy
# ----------------------------------------------------------------------
def test_adaptive_switches_to_calendar_and_preserves_order():
    sim = Simulator(scheduler="adaptive")
    assert sim.active_backend == "heap"
    fired = []
    n = ADAPTIVE_SWITCH_THRESHOLD + 500
    for i in range(n):
        # Reversed times with FIFO ties sprinkled in.
        sim.schedule((n - i) * 10 + (i % 3 == 0), fired.append, i)
    assert sim.active_backend == "calendar"
    assert sim.pending_events == n
    sim.run()
    assert len(fired) == n
    times = [(n - i) * 10 + (i % 3 == 0) for i in fired]
    assert times == sorted(times)
    assert sim.pending_events == 0


def test_adaptive_switch_mid_run_keeps_draining():
    sim = Simulator(scheduler="adaptive")
    fired = []

    def burst():
        for i in range(ADAPTIVE_SWITCH_THRESHOLD + 10):
            sim.schedule(100 + i, lambda i=i: None)
        fired.append("burst")

    sim.schedule(10, burst)
    sim.schedule(20, fired.append, "after")
    sim.run()
    assert fired == ["burst", "after"]
    assert sim.active_backend == "calendar"
    assert sim.pending_events == 0


# ----------------------------------------------------------------------
# Cross-backend differential fuzz (the determinism contract)
# ----------------------------------------------------------------------
def _random_trace(seed, ops=3000):
    """A seeded schedule/cancel/run script, backend-agnostic."""
    rng = random.Random(seed)
    script = []
    for _ in range(ops):
        roll = rng.random()
        if roll < 0.55:
            kind = rng.random()
            if kind < 0.35:
                delay = rng.randrange(0, 4)  # same-slot / same-time ties
            elif kind < 0.80:
                delay = rng.randrange(0, 50_000)
            elif kind < 0.95:
                delay = rng.randrange(0, 300_000_000)  # RTO-scale
            else:
                delay = rng.randrange(0, 1 << 45)  # upper wheel levels
            script.append(("schedule", delay))
        elif roll < 0.80:
            script.append(("cancel", rng.randrange(1 << 30)))
        elif roll < 0.95:
            script.append(("run_for", rng.randrange(1, 200_000)))
        else:
            script.append(("run_max", rng.randrange(1, 40)))
    script.append(("drain",))
    return script


def _execute(script, scheduler, peek_every_op=False):
    sim = Simulator(scheduler=scheduler)
    log = []
    # Cancels must only target *live* handles: a fired handle may have
    # been recycled into a brand-new event, and free-list state depends
    # on when each backend lazily reaps dead entries — cancelling raw
    # retained handles would couple the trace to backend internals (the
    # kernel contract forbids it; Timer exists for restartable handles).
    live = {}

    def fire(tag):
        log.append((sim.now, tag))
        live.pop(tag, None)

    tag = 0
    for op in script:
        if peek_every_op:
            sim.peek_time()
        if op[0] == "schedule":
            live[tag] = sim.schedule(op[1], fire, tag)
            tag += 1
        elif op[0] == "cancel":
            if live:
                # Deterministic pick among currently-live tags: identical
                # across backends iff the pop sequences are identical,
                # which is exactly the property under test.
                tags = sorted(live)
                live.pop(tags[op[1] % len(tags)]).cancel()
        elif op[0] == "run_for":
            sim.run_for(op[1])
        elif op[0] == "run_max":
            sim.run(max_events=op[1])
        else:
            sim.run()
    return log, sim.events_processed, sim.now


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_differential_fuzz_identical_pop_sequence(seed):
    script = _random_trace(seed)
    reference, ref_count, ref_now = _execute(script, "heap")
    assert ref_count == len(reference)
    for backend in ("calendar", "wheel", "adaptive"):
        log, count, now = _execute(script, backend)
        assert count == ref_count, f"{backend}: event count diverged"
        assert now == ref_now, f"{backend}: final clock diverged"
        assert log == reference, f"{backend}: pop sequence diverged"


# ----------------------------------------------------------------------
# peek_time: the non-destructive horizon probe (shard coordinator API)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS + ("adaptive",))
def test_peek_time_reports_earliest_live_event(backend):
    sim = Simulator(scheduler=backend)
    assert sim.peek_time() is None  # empty
    sim.schedule(500, lambda: None)
    handle = sim.schedule(100, lambda: None)
    sim.schedule(900, lambda: None)
    assert sim.peek_time() == 100
    handle.cancel()
    assert sim.peek_time() == 500  # skips the cancelled head
    sim.run()
    assert sim.peek_time() is None  # drained
    sim.schedule(0, lambda: None)
    assert sim.peek_time() == sim.now  # a due event is "now", not future


@pytest.mark.parametrize("seed", [0, 1])
def test_peek_between_pops_never_perturbs_order(seed):
    """Differential: interleaving peeks leaves the pop trace bit-identical.

    The same fuzz script runs twice per backend — once untouched, once
    with a ``peek_time()`` probe before every op — and the pop logs must
    match.  This is the contract the shard coordinator relies on when it
    probes every shard's horizon between epochs.
    """
    script = _random_trace(seed, ops=1500)
    for backend in BACKENDS + ("adaptive",):
        plain, plain_count, plain_now = _execute(script, backend)
        peeked, peeked_count, peeked_now = _execute(
            script, backend, peek_every_op=True
        )
        assert peeked == plain, f"{backend}: peeking perturbed the order"
        assert peeked_count == plain_count
        assert peeked_now == plain_now


def test_peek_time_on_raw_backends_matches_next_live_time():
    class _Ev:
        __slots__ = ("time", "seq", "cancelled")

        def __init__(self, time, seq):
            self.time = time
            self.seq = seq
            self.cancelled = False

    for backend in BACKENDS:
        sched = make_scheduler(backend)
        assert sched.peek_time() is None
        sched.push(40, 0, _Ev(40, 0))
        early = _Ev(10, 1)
        sched.push(10, 1, early)
        assert sched.peek_time() == 10 == sched.next_live_time()
        early.cancelled = True
        assert sched.peek_time() == 40 == sched.next_live_time()
