"""Unit conventions and conversion helpers for the simulator.

All simulation time is kept as **integer nanoseconds** to guarantee exact,
drift-free arithmetic in the event loop.  All link rates are **bits per
second** and all sizes are **bytes**.  These helpers keep call sites readable
(``milliseconds(3)`` instead of ``3 * 10**6``) and centralise the rounding
policy for rate/size -> time conversions.
"""

from __future__ import annotations

# Canonical time constants (integer nanoseconds).
NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000

# Canonical rate constants (bits per second).
KBPS = 1_000
MBPS = 1_000_000
GBPS = 1_000_000_000

# Canonical size constants (bytes).
KB = 1_000
MB = 1_000_000
KIB = 1_024
MIB = 1_048_576


def nanoseconds(value: float) -> int:
    """Convert a value expressed in nanoseconds to integer nanoseconds."""
    return round(value)


def microseconds(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * MICROSECOND)


def milliseconds(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * MILLISECOND)


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(value * SECOND)


def to_seconds(time_ns: int) -> float:
    """Convert integer nanoseconds back to float seconds (for reporting)."""
    return time_ns / SECOND


def to_microseconds(time_ns: int) -> float:
    """Convert integer nanoseconds back to float microseconds."""
    return time_ns / MICROSECOND


def to_milliseconds(time_ns: int) -> float:
    """Convert integer nanoseconds back to float milliseconds."""
    return time_ns / MILLISECOND


def gbps(value: float) -> int:
    """Convert gigabits per second to bits per second."""
    return round(value * GBPS)


def mbps(value: float) -> int:
    """Convert megabits per second to bits per second."""
    return round(value * MBPS)


def transmission_time_ns(size_bytes: int, rate_bps: int) -> int:
    """Serialisation delay of ``size_bytes`` on a ``rate_bps`` link.

    Rounded up so a packet never finishes transmitting early; this keeps
    back-to-back packets on a saturated link spaced at exactly the line rate
    or slower, never faster.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    bits = size_bytes * 8
    return -(-bits * SECOND // rate_bps)  # ceil division


def bytes_in_interval(rate_bps: int, interval_ns: int) -> float:
    """How many bytes a ``rate_bps`` link carries in ``interval_ns``."""
    return rate_bps * interval_ns / (8 * SECOND)


def bandwidth_delay_product(rate_bps: int, rtt_ns: int) -> float:
    """Bandwidth-delay product in bytes (the paper's token value c*rtt)."""
    return bytes_in_interval(rate_bps, rtt_ns)
