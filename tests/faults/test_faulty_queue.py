"""Loss models and the composable FaultyQueue."""

import random

import pytest

from repro.net.packet import MSS, Packet
from repro.net.queues import (
    BernoulliLoss,
    DropTailQueue,
    FaultyQueue,
    FilteredLoss,
    GilbertElliottLoss,
    is_pure_ack,
)


def data_packet():
    return Packet(1, 2, 3, 4, payload=MSS)


def ack_packet():
    return Packet(2, 1, 4, 3, payload=0, is_ack=True)


# ----------------------------------------------------------------------
# Loss models
# ----------------------------------------------------------------------
def test_bernoulli_loss_rate():
    model = BernoulliLoss(0.25, random.Random(3))
    drops = sum(model.should_drop(data_packet()) for _ in range(4000))
    assert 850 < drops < 1150  # ~25% of 4000


def test_bernoulli_validates_probability():
    for bad in (-0.1, 1.0, 1.5):
        with pytest.raises(ValueError):
            BernoulliLoss(bad, random.Random(0))


def test_gilbert_elliott_loss_is_bursty():
    """Same mean loss rate as Bernoulli, but drops arrive in runs."""
    model = GilbertElliottLoss(
        random.Random(5), p_enter_bad=0.02, p_exit_bad=0.2
    )
    outcomes = [model.should_drop(data_packet()) for _ in range(20_000)]
    drops = sum(outcomes)
    # Stationary bad-state share: 0.02 / (0.02 + 0.2) ~ 9%.
    assert 0.05 < drops / len(outcomes) < 0.14
    bursts = []
    run = 0
    for dropped in outcomes:
        if dropped:
            run += 1
        elif run:
            bursts.append(run)
            run = 0
    mean_burst = sum(bursts) / len(bursts)
    # Mean burst ~ 1/p_exit_bad = 5; independent loss at 9% would give ~1.1.
    assert mean_burst > 2.5


def test_gilbert_elliott_deterministic_from_rng():
    def pattern(seed):
        model = GilbertElliottLoss(
            random.Random(seed), p_enter_bad=0.05, p_exit_bad=0.3
        )
        return [model.should_drop(data_packet()) for _ in range(1000)]

    assert pattern(11) == pattern(11)
    assert pattern(11) != pattern(12)


def test_gilbert_elliott_validates():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        GilbertElliottLoss(rng, p_enter_bad=0.0, p_exit_bad=0.5)
    with pytest.raises(ValueError):
        GilbertElliottLoss(rng, p_enter_bad=0.5, p_exit_bad=1.5)
    with pytest.raises(ValueError):
        GilbertElliottLoss(rng, 0.1, 0.1, loss_bad=1.2)


def test_filtered_loss_only_hits_matching_packets():
    model = FilteredLoss(BernoulliLoss(0.99, random.Random(1)), is_pure_ack)
    assert not any(model.should_drop(data_packet()) for _ in range(200))
    drops = sum(model.should_drop(ack_packet()) for _ in range(200))
    assert drops > 150


def test_filtered_loss_preserves_inner_state_for_nonmatching():
    """A stream of data packets must not advance the inner chain."""
    inner = GilbertElliottLoss(
        random.Random(2), p_enter_bad=0.5, p_exit_bad=0.5
    )
    model = FilteredLoss(inner, is_pure_ack)
    before = inner.bad
    for _ in range(50):
        model.should_drop(data_packet())
    assert inner.bad == before


def test_is_pure_ack():
    assert is_pure_ack(ack_packet())
    assert not is_pure_ack(data_packet())
    piggyback = Packet(1, 2, 3, 4, payload=MSS, is_ack=True)
    assert not is_pure_ack(piggyback)


# ----------------------------------------------------------------------
# FaultyQueue composition
# ----------------------------------------------------------------------
def test_faulty_queue_without_model_is_droptail():
    queue = FaultyQueue(10 * MSS)
    for _ in range(20):
        queue.enqueue(data_packet())
    plain = DropTailQueue(10 * MSS)
    for _ in range(20):
        plain.enqueue(data_packet())
    assert queue.drops == plain.drops > 0
    assert queue.faulted_drops == 0


def test_loss_model_attaches_to_any_queue_mid_run():
    """The fault engine toggles ``loss_model`` on live queues."""
    queue = DropTailQueue(10**9)
    assert all(queue.enqueue(data_packet()) for _ in range(50))
    queue.loss_model = BernoulliLoss(1.0 - 1e-9, random.Random(0))
    assert not any(queue.enqueue(data_packet()) for _ in range(50))
    assert queue.faulted_drops == 50
    queue.loss_model = None
    assert all(queue.enqueue(data_packet()) for _ in range(50))
    assert queue.faulted_drops == 50


def test_faulted_drops_counted_in_totals():
    queue = FaultyQueue(
        10**9, BernoulliLoss(1.0 - 1e-9, random.Random(0))
    )
    packet = data_packet()
    assert not queue.enqueue(packet)
    assert queue.drops == queue.faulted_drops == 1
    assert queue.dropped_bytes == packet.size
    assert queue.byte_length == 0
