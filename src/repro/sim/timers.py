"""Restartable timers built on top of the event kernel.

Transport protocols need timers that can be started, pushed back, and
cancelled many times (retransmission timers, delayed-ACK timers, the TFC
delimiter re-election timer).  :class:`Timer` wraps the cancel-and-reschedule
dance so protocol code stays readable.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .engine import Event, Simulator


class Timer:
    """A single restartable timer bound to one callback.

    The callback fires at most once per ``start``; restarting cancels the
    previous deadline.  Arguments passed to :meth:`start` are forwarded to
    the callback when it fires.
    """

    __slots__ = ("_sim", "_callback", "_event", "name")

    def __init__(self, sim: Simulator, callback: Callable[..., None], name: str = ""):
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None
        self.name = name

    @property
    def running(self) -> bool:
        """Whether a deadline is currently armed."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> Optional[int]:
        """Absolute expiry time in ns, or None when not running."""
        if self.running:
            return self._event.time
        return None

    def start(self, delay_ns: int, *args: Any) -> None:
        """(Re)arm the timer ``delay_ns`` from now, replacing any deadline."""
        self.stop()
        self._event = self._sim.schedule(delay_ns, self._fire, *args)

    def start_if_idle(self, delay_ns: int, *args: Any) -> None:
        """Arm the timer only when no deadline is currently pending."""
        if not self.running:
            self.start(delay_ns, *args)

    def stop(self) -> None:
        """Disarm the timer; a no-op when it is not running."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self, *args: Any) -> None:
        self._event = None
        self._callback(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"expires={self._event.time}" if self.running else "idle"
        return f"<Timer {self.name or self._callback!r} {state}>"
