"""Fig. 7 — accuracy of the effective-flow count with inactive flows.

Paper setup: host H4 keeps n2 = 5 steady flows to H6 (one of them is the
delimiter); host H1 runs n1 flows that ramp 1 -> 10 and then go inactive
back down to 0, changing once per step.  The switch port feeding H6
measures E every slot.  Because H1's flows have a longer RTT than the
delimiter (cross-rack vs intra-rack), the expected count is
``n1 / r + n2`` where r is the RTT ratio (Eq. 1) — and silent flows must
drop out of the count immediately even though their connections stay open.

"Active" here means backlogged (the paper's flows are bandwidth-greedy
while active); "inactive" flows keep their connection but queue nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..net.topology import testbed
from ..sim.units import GBPS, seconds
from ..transport.registry import open_flow
from .common import ExperimentResult, build_topology


def _mean_srtt(senders) -> float:
    """Mean smoothed RTT (ns) over senders that have a sample."""
    values = [s.rto.srtt for s in senders if s.rto.srtt]
    return sum(values) / len(values) if values else 0.0


@dataclass
class NeResult:
    """Measured vs expected effective-flow counts over time."""

    # (time_s, measured_E, expected_E)
    samples: List[Tuple[float, float, float]] = field(default_factory=list)
    rtt_ratio: float = 2.0

    def max_error(self) -> float:
        """Worst absolute deviation between measured and expected E."""
        return max(abs(m - e) for _, m, e in self.samples)

    def mean_error(self) -> float:
        """Mean absolute deviation."""
        return sum(abs(m - e) for _, m, e in self.samples) / len(self.samples)


def run_fig07(
    n2: int = 5,
    n1_max: int = 10,
    step_s: float = 0.04,
    sample_interval_s: float = 0.005,
    settle_s: float = 0.2,
    rate_bps: int = 10 * GBPS,
    seed: int = 0,
) -> NeResult:
    """Ramp n1 active cross-rack flows up then down; record measured E.

    The links default to 10 Gbps so that W = T/E stays above one MSS for
    all 15 flows: in the sub-MSS regime the switch delay function paces
    every flow to the same grant cycle, which (correctly) equalises their
    round durations and hides the RTT-ratio weighting this figure is
    about.
    """
    topo = build_topology(
        testbed, "tfc", buffer_bytes=256_000, rate_bps=rate_bps, seed=seed
    )
    net = topo.network
    h1, h4, h6 = topo.host(0), topo.host(3), topo.host(5)

    # Steady intra-rack flows H4 -> H6 (the first becomes the delimiter,
    # as in the paper: "The delimiter flow ... is a flow sent from H4").
    intra_senders = [open_flow(h4, h6, "tfc") for _ in range(n2)]

    # n1_max cross-rack connections H1 -> H6, established shortly after
    # the intra flows (so the delimiter election is settled) and toggled
    # between backlogged (long_lived) and silent.
    cross_senders = [
        open_flow(h1, h6, "tfc", size_bytes=0, start_ns=seconds(0.02))
        for _ in range(n1_max)
    ]
    for sender in cross_senders:
        sender.fin_on_empty = False

    state = {"n1": 0}

    def apply_step(n1: int) -> None:
        state["n1"] = n1
        for i, sender in enumerate(cross_senders):
            active = i < n1
            if active and not sender.long_lived:
                sender.long_lived = True
                sender.try_send()
            elif not active and sender.long_lived:
                # Silent: connection stays open, nothing more is queued.
                sender.long_lived = False
                sender.flow_bytes = sender.snd_nxt

    schedule: List[Tuple[int, int]] = []
    t = seconds(settle_s)
    for n1 in list(range(1, n1_max + 1)) + list(range(n1_max - 1, -1, -1)):
        schedule.append((t, n1))
        t += seconds(step_s)
    end_ns = t + seconds(step_s)
    for when, n1 in schedule:
        net.sim.schedule_at(when, apply_step, n1)

    agent = topo.bottleneck("to_H6").agent
    result = NeResult()

    def sample() -> None:
        measured = float(agent.published_e)
        # Expected E per Eq. 1: each cross flow counts as rtt_m / rtt_f.
        # Use the live RTT estimates so the prediction reflects the actual
        # topology rather than a hard-coded hop ratio (paper used ~1.5).
        intra_rtt = _mean_srtt(intra_senders)
        cross_rtt = _mean_srtt(cross_senders[: max(state["n1"], 1)])
        ratio = cross_rtt / intra_rtt if intra_rtt and cross_rtt else 2.0
        result.rtt_ratio = ratio
        expected = state["n1"] / ratio + n2
        result.samples.append((net.sim.now_seconds, measured, expected))
        net.sim.schedule(seconds(sample_interval_s), sample)

    net.sim.schedule(seconds(settle_s * 0.9), sample)
    net.run_until(end_ns)
    return result


def run_fig07_cell(
    n2: int = 5,
    n1_max: int = 10,
    seed: int = 0,
) -> "ExperimentResult":
    """Picklable cell adapter for the parallel runner."""
    res = run_fig07(n2=n2, n1_max=n1_max, seed=seed)
    return ExperimentResult(
        name=f"fig07:n2={n2}:n1max={n1_max}:seed{seed}",
        protocol="tfc",
        scalars={
            "max_error": res.max_error(),
            "mean_error": res.mean_error(),
            "rtt_ratio": res.rtt_ratio,
        },
        series={"samples": list(res.samples)},
    )
