#!/usr/bin/env python3
"""Work conservation across two bottlenecks (the paper's Fig. 5/11).

Host 1 pushes 8 flows to host 4 and 2 flows to host 3; host 2 pushes 2
flows to host 3.  The S1 uplink limits host 1's flows; switch S2 would
happily give its host-3 downlink flows much more.  Without the token
adjustment the S2 downlink idles at ~40%; with it, host 2's flows absorb
the slack and both links run near capacity — which this script prints,
per flow group.

Run::

    python examples/multi_bottleneck.py
"""

from repro.experiments.common import build_topology, format_table
from repro.net import multi_bottleneck
from repro.sim.units import seconds
from repro.transport import open_flow

DURATION_S = 0.8


def main() -> None:
    topo = build_topology(multi_bottleneck, "tfc", buffer_bytes=256_000)
    net = topo.network
    h1, h2, h3, h4 = topo.hosts

    groups = {
        "n1 (h1->h4, S1-limited)": [open_flow(h1, h4, "tfc") for _ in range(8)],
        "n2 (h1->h3, dual bottleneck)": [open_flow(h1, h3, "tfc") for _ in range(2)],
        "n3 (h2->h3, S2 only)": [open_flow(h2, h3, "tfc") for _ in range(2)],
    }

    net.run_for(seconds(DURATION_S))

    rows = []
    for name, flows in groups.items():
        goodput = sum(f.stats.bytes_acked for f in flows) * 8 / DURATION_S
        per_flow = goodput / len(flows)
        rows.append([name, len(flows), f"{goodput / 1e6:.0f}", f"{per_flow / 1e6:.0f}"])
    print(format_table(["group", "flows", "aggregate Mbps", "per-flow Mbps"], rows))

    s1 = sum(f.stats.bytes_acked for f in groups["n1 (h1->h4, S1-limited)"])
    s1 += sum(f.stats.bytes_acked for f in groups["n2 (h1->h3, dual bottleneck)"])
    s2 = sum(f.stats.bytes_acked for f in groups["n2 (h1->h3, dual bottleneck)"])
    s2 += sum(f.stats.bytes_acked for f in groups["n3 (h2->h3, S2 only)"])
    print()
    print(f"S1 uplink goodput:   {s1 * 8 / DURATION_S / 1e6:.0f} Mbps")
    print(f"S2->h3 link goodput: {s2 * 8 / DURATION_S / 1e6:.0f} Mbps")
    print(f"S2->h3 max queue:    {topo.bottleneck('s2_to_h3').queue.max_bytes_seen} B")
    print(f"drops anywhere:      {net.total_drops()}")
    print()
    print("n3 flows get ~4x the window of n2 flows at S2: the token")
    print("adjustment detected the S2 downlink's unused capacity and")
    print("re-allocated it — no work-conserving problem (paper section 4.5).")


if __name__ == "__main__":
    main()
