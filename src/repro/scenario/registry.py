"""The named-scenario registry: ``scenarios/*.yaml`` plus programmatic entries.

Scenarios resolve by name through two layers, programmatic first:

* :func:`register_scenario` — in-process registration (tests, bespoke
  harnesses, sweep drivers building scenarios on the fly);
* the scenario directory — ``scenarios/`` at the repository root by
  default, overridable with ``$REPRO_SCENARIOS`` (the CI smoke job and
  sweep scripts point it at temporary farms).

File-backed scenarios are loaded lazily and never cached: the registry
re-reads on every lookup so an edited YAML takes effect immediately, and
a stale cache can never mask a validation error.  :func:`resolve` also
accepts explicit paths (anything containing a slash or ending in
``.yaml``), which is what lets the runner take ``--scenario
path/to/file.yaml`` without registry involvement.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from .loader import load_scenario_file
from .schema import Scenario, ScenarioError

#: Environment override for the scenario directory.
SCENARIOS_ENV_VAR = "REPRO_SCENARIOS"

#: Programmatically registered scenarios (name -> scenario).
_PROGRAMMATIC: Dict[str, Scenario] = {}


def scenarios_dir() -> Path:
    """The directory named scenarios load from (may not exist)."""
    override = os.environ.get(SCENARIOS_ENV_VAR, "")
    if override:
        return Path(override)
    # src/repro/scenario/registry.py -> repository root / "scenarios"
    return Path(__file__).resolve().parents[3] / "scenarios"


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Register ``scenario`` under its own name (programmatic door).

    Registered names shadow same-named files; re-registering an existing
    name requires ``replace=True`` so tests cannot silently clobber each
    other's fixtures.
    """
    if scenario.name in _PROGRAMMATIC and not replace:
        raise ScenarioError(
            scenario.name,
            "already registered; pass replace=True to overwrite",
        )
    _PROGRAMMATIC[scenario.name] = scenario
    return scenario


def unregister_scenario(name: str) -> None:
    """Remove a programmatic registration (no-op if absent)."""
    _PROGRAMMATIC.pop(name, None)


def list_scenarios() -> List[str]:
    """Every resolvable scenario name, sorted (files + programmatic)."""
    names = set(_PROGRAMMATIC)
    directory = scenarios_dir()
    if directory.is_dir():
        names.update(p.stem for p in directory.glob("*.yaml"))
    return sorted(names)


def get_scenario(name: str) -> Scenario:
    """Resolve a registered name or a ``scenarios/<name>.yaml`` file."""
    if name in _PROGRAMMATIC:
        return _PROGRAMMATIC[name]
    candidate = scenarios_dir() / f"{name}.yaml"
    if candidate.exists():
        return load_scenario_file(candidate)
    known = ", ".join(list_scenarios()) or "(none)"
    raise ScenarioError(
        name,
        f"unknown scenario; known names: {known} "
        f"(directory: {scenarios_dir()})",
    )


def resolve(name_or_path: Union[str, Path]) -> Scenario:
    """Accept either a registered name or an explicit YAML path."""
    text = str(name_or_path)
    if os.sep in text or text.endswith(".yaml") or text.endswith(".yml"):
        return load_scenario_file(text)
    return get_scenario(text)


def glob_scenarios(pattern: str) -> List[Scenario]:
    """Every scenario in the scenario directory matching ``pattern``.

    The pattern is a file glob over stems (``ml-*``) or full file names
    (``ml-*.yaml``); results are sorted by name for deterministic sweep
    order.
    """
    directory = scenarios_dir()
    if not pattern.endswith((".yaml", ".yml")):
        pattern = f"{pattern}.yaml"
    matches = sorted(directory.glob(pattern)) if directory.is_dir() else []
    if not matches:
        raise ScenarioError(
            pattern, f"no scenarios match in {directory}"
        )
    return [load_scenario_file(p) for p in matches]


def default_scenario_names() -> Optional[List[str]]:
    """The committed smoke-trio when present (runner default plan)."""
    wanted = ["ml-allreduce", "storage-fanout", "multi-tenant-mix"]
    available = set(list_scenarios())
    found = [name for name in wanted if name in available]
    return found or None
