"""Tiny Buffer TCP: capped fabric buffers + paced, capped windows."""

import pytest

from repro.experiments.common import build_topology
from repro.net.packet import MSS, MTU
from repro.net.topology import dumbbell
from repro.sim.units import milliseconds
from repro.transport.registry import open_flow
from repro.transport.tbtcp import TbtcpParams, TbtcpSender, make_tbtcp_queue


def test_params_validation():
    TbtcpParams()
    with pytest.raises(ValueError, match="buffer cap"):
        TbtcpParams(buffer_cap_bytes=2 * MTU - 1)
    with pytest.raises(ValueError, match="cwnd cap"):
        TbtcpParams(cwnd_cap_bytes=MSS)
    with pytest.raises(ValueError, match="pace gain"):
        TbtcpParams(pace_gain=0.0)
    with pytest.raises(ValueError, match="pace gain"):
        TbtcpParams(pace_gain=1.5)


def test_queue_cap_overrides_physical_buffer():
    assert make_tbtcp_queue(TbtcpParams(), 256_000, 10**9).capacity_bytes == 48_000
    # ... but never grows a buffer that is already tiny.
    assert make_tbtcp_queue(TbtcpParams(), 10_000, 10**9).capacity_bytes == 10_000


def test_cwnd_cap_and_paced_slow_start():
    """A lone tbtcp flow: cwnd never exceeds the cap (ssthresh is clamped
    from construction), and slow-start growth is strictly slower than the
    plain NewReno doubling on an identical topology."""
    params = TbtcpParams()

    def run(protocol):
        topo = build_topology(
            dumbbell, protocol, buffer_bytes=256_000, n_senders=1, seed=1
        )
        sender = open_flow(topo.host(0), topo.host(1), protocol)
        peaks = []

        def probe():
            peaks.append(sender.cwnd)
            topo.sim.schedule(100_000, probe)

        topo.sim.schedule(100_000, probe)
        topo.network.run_for(milliseconds(3))
        return sender, peaks

    tb_sender, tb_peaks = run("tbtcp")
    assert isinstance(tb_sender, TbtcpSender)
    assert tb_sender.ssthresh <= params.cwnd_cap_bytes
    assert max(tb_peaks) <= params.cwnd_cap_bytes
    _, tcp_peaks = run("tcp")
    # Same instants, same acks available: pacing must be strictly behind.
    assert max(tb_peaks) < max(tcp_peaks)


def test_contended_queue_stays_under_cap():
    """Four flows into one tiny-buffer port: occupancy is bounded by the
    cap (tens of KB, the premise of the baseline), flows still finish."""
    topo = build_topology(
        dumbbell, "tbtcp", buffer_bytes=256_000, n_senders=4, seed=1
    )
    senders = [
        open_flow(topo.host(i), topo.host(4), "tbtcp", size_bytes=200_000)
        for i in range(4)
    ]
    topo.network.run_for(milliseconds(60))
    queue = topo.bottleneck("main").queue
    assert queue.capacity_bytes == 48_000
    assert queue.max_bytes_seen <= 48_000
    assert all(s.stats.bytes_acked >= 200_000 for s in senders)
