"""Perf harness: snapshot schema, comparison logic, and the tiny pinned
workloads themselves (at smoke scale, so CI never waits on a benchmark)."""

from repro.perf.bench import build_payload, machine_info, run_kernel_suite
from repro.perf.compare import (
    compare_results,
    snapshot_schedulers,
    snapshot_variants,
)
from repro.perf.workloads import (
    KERNEL_WORKLOADS,
    TimerChurnWorkload,
    run_churn_workload,
)


def _kernel_rows(**rates):
    return [{"name": name, "events_per_sec": rate} for name, rate in rates.items()]


def test_compare_passes_within_threshold():
    committed = _kernel_rows(a=100_000.0)
    fresh = _kernel_rows(a=90_000.0)  # -10%, inside the 15% budget
    report, regressions = compare_results("kernel", committed, fresh, 0.15)
    assert regressions == []
    assert any("a@adaptive:" in line for line in report)


def test_compare_fails_beyond_threshold():
    committed = _kernel_rows(a=100_000.0, b=100_000.0)
    fresh = _kernel_rows(a=80_000.0, b=99_000.0)  # a is -20%
    _, regressions = compare_results("kernel", committed, fresh, 0.15)
    assert len(regressions) == 1
    assert "a@adaptive regressed" in regressions[0]


def test_compare_experiments_uses_inverse_wall_clock():
    committed = [{"name": "cell", "wall_s": 1.0}]
    fresh = [{"name": "cell", "wall_s": 1.3}]  # 30% slower -> regression
    _, regressions = compare_results("experiments", committed, fresh, 0.15)
    assert regressions
    fresh_ok = [{"name": "cell", "wall_s": 1.1}]  # ~9% slower -> fine
    _, regressions = compare_results("experiments", committed, fresh_ok, 0.15)
    assert regressions == []


def test_compare_tolerates_renamed_workloads():
    """Added/removed workloads are reported, never a red build."""
    committed = _kernel_rows(old=100_000.0)
    fresh = _kernel_rows(new=100_000.0)
    report, regressions = compare_results("kernel", committed, fresh, 0.15)
    assert regressions == []
    assert any("missing" in line for line in report)
    assert any("new workload" in line for line in report)


def test_snapshot_payload_schema():
    payload = build_payload(
        "kernel",
        _kernel_rows(a=1.0),
        repeats=1,
        baseline={"label": "x", "results": {"a": 1.0}},
    )
    assert payload["schema"] == 1
    assert payload["kind"] == "kernel"
    assert payload["machine"]["cpu_count"] == machine_info()["cpu_count"]
    assert isinstance(payload["git_sha"], str)
    assert payload["baseline"]["results"] == {"a": 1.0}


def test_compare_skips_zero_throughput_baseline():
    """A zero committed number can't produce a ratio: warn and skip."""
    committed = _kernel_rows(a=0.0, b=100_000.0)
    fresh = _kernel_rows(a=50_000.0, b=100_000.0)
    report, regressions = compare_results("kernel", committed, fresh, 0.15)
    assert regressions == []
    assert any("zero" in line for line in report)


def test_compare_matches_legacy_bare_names_to_adaptive_rows():
    """Pre-backend snapshots (bare names) gate against the adaptive rows
    of a fresh backend-dimension run."""
    committed = _kernel_rows(dumbbell=100_000.0)
    fresh = [
        {"name": "dumbbell@adaptive", "events_per_sec": 70_000.0},
        {"name": "dumbbell@wheel", "events_per_sec": 200_000.0},
    ]
    report, regressions = compare_results("kernel", committed, fresh, 0.15)
    assert len(regressions) == 1
    assert "dumbbell@adaptive" in regressions[0]
    assert any("dumbbell@wheel: new workload" in line for line in report)


def test_snapshot_schedulers_extraction():
    rows = [
        {"name": "a@heap", "scheduler": "heap"},
        {"name": "a@wheel", "scheduler": "wheel"},
        {"name": "b@heap", "scheduler": "heap"},
        {"name": "legacy_bare"},
    ]
    assert snapshot_schedulers(rows) == ["heap", "wheel", "adaptive"]


def test_snapshot_schedulers_skips_variant_rows():
    rows = [
        {"name": "a@heap", "scheduler": "heap"},
        {"name": "a@heap+unbatched", "scheduler": "heap", "variant": "unbatched"},
        {"name": "a@heap+compiled"},  # variant key absent: name parse
    ]
    assert snapshot_schedulers(rows) == ["heap"]


def test_snapshot_variants_extraction():
    rows = [
        {"name": "a@heap", "scheduler": "heap"},
        {"name": "a@heap+unbatched", "variant": "unbatched"},
        {"name": "b@heap+unbatched", "variant": "unbatched"},
        {"name": "a@heap+compiled"},  # variant key absent: name parse
    ]
    assert snapshot_variants(rows) == ["unbatched", "compiled"]
    # Pre-variant snapshots yield no variants, so the gate measures none.
    assert snapshot_variants([{"name": "a@heap"}, {"name": "legacy"}]) == []


def test_variant_cells_pair_with_their_lead_plain_cell(monkeypatch):
    """A variant cell runs immediately after its workload's lead-backend
    plain cell — the pair readers compare must not straddle machine
    drift accumulated over the rest of the matrix."""
    from repro.perf import bench

    calls = []

    def fake(workload, duration_scale=1.0, scheduler=None, variant=None):
        calls.append((workload.name, scheduler, variant))
        return {"name": workload.name, "events_per_sec": 1.0}

    monkeypatch.setattr(bench, "run_kernel_workload", fake)
    run_kernel_suite(
        repeats=1, schedulers=("adaptive", "heap"), variants=("unbatched",)
    )
    for workload in KERNEL_WORKLOADS:
        name = workload.name
        mine = [c for c in calls if c[0] == name]
        if getattr(workload, "lead_only", False):
            # Sharded-fabric twins: lead backend only, no variant rows.
            assert mine == [(name, "adaptive", None)]
        else:
            assert mine == [
                (name, "adaptive", None),
                (name, "adaptive", "unbatched"),
                (name, "heap", None),
            ]


def test_kernel_workloads_run_at_smoke_scale():
    """The pinned workloads execute end-to-end (1% duration: ~fractions of
    a second) and report sane positive throughput."""
    results = run_kernel_suite(
        repeats=1, duration_scale=0.01, schedulers=("adaptive",)
    )
    assert [r["name"] for r in results] == [
        f"{w.name}@adaptive" for w in KERNEL_WORKLOADS
    ]
    for row in results:
        assert row["events"] > 0
        assert row["events_per_sec"] > 0
        assert row["scheduler"] == "adaptive"
        assert row["workload"] in {w.name for w in KERNEL_WORKLOADS}


def test_churn_workload_is_backend_invariant():
    """The timer-churn trace is bit-identical across backends: same event
    count and final clock on every scheduler."""
    tiny = TimerChurnWorkload("churn_probe", 64, 0.001)
    reference = None
    for scheduler in ("heap", "calendar", "wheel", "adaptive"):
        row = run_churn_workload(tiny, scheduler=scheduler)
        probe = (row["events"],)
        if reference is None:
            reference = probe
        assert probe == reference, scheduler
