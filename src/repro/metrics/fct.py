"""Flow-completion-time collection.

The benchmark experiments (Figs. 13 and 16) report FCT two ways: the tail
distribution of *query* flows, and the 99.9th percentile of *background*
flows bucketed by flow size.  :class:`FctCollector` receives completed
senders (via the ``on_complete`` callback of :func:`repro.transport.
open_flow`) tagged with a category, and produces both reports.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.units import to_microseconds
from ..transport.base import Sender
from .stats import percentile, summarize_tail

# The paper's Fig. 13b / 16b size buckets.
SIZE_BUCKETS: Sequence[Tuple[str, int, int]] = (
    ("<1KB", 0, 1_000),
    ("1-10KB", 1_000, 10_000),
    ("10KB-100KB", 10_000, 100_000),
    ("100KB-1MB", 100_000, 1_000_000),
    ("1-10MB", 1_000_000, 10_000_000),
    (">10MB", 10_000_000, 1 << 62),
)


def bucket_for_size(size_bytes: int) -> str:
    """Name of the paper's size bucket containing ``size_bytes``."""
    for name, lo, hi in SIZE_BUCKETS:
        if lo <= size_bytes < hi:
            return name
    return SIZE_BUCKETS[-1][0]


class FctRecord:
    """One completed flow."""

    __slots__ = ("category", "size_bytes", "fct_ns", "timeouts")

    def __init__(self, category: str, size_bytes: int, fct_ns: int, timeouts: int):
        self.category = category
        self.size_bytes = size_bytes
        self.fct_ns = fct_ns
        self.timeouts = timeouts


class FctCollector:
    """Accumulates completed flows and renders the paper's FCT rows."""

    def __init__(self) -> None:
        self.records: List[FctRecord] = []
        self.pending = 0

    # ------------------------------------------------------------------
    def expect(self, count: int = 1) -> None:
        """Declare flows that should complete (for completion accounting)."""
        self.pending += count

    def completion_handler(self, category: str):
        """An ``on_complete`` callback recording flows under ``category``."""

        def handler(sender: Sender) -> None:
            fct = sender.stats.fct_ns
            assert fct is not None, "on_complete fired without completion time"
            self.records.append(
                FctRecord(category, sender.flow_bytes, fct, sender.stats.timeouts)
            )
            self.pending -= 1

        return handler

    # ------------------------------------------------------------------
    def fcts_us(self, category: Optional[str] = None) -> List[float]:
        """FCTs in microseconds, optionally filtered by category."""
        return [
            to_microseconds(record.fct_ns)
            for record in self.records
            if category is None or record.category == category
        ]

    def tail_summary_us(self, category: str) -> Dict[str, float]:
        """Mean/95/99/99.9/99.99th FCT (us) for one category (Fig. 13a)."""
        values = self.fcts_us(category)
        if not values:
            raise ValueError(f"no completed flows in category {category!r}")
        return summarize_tail(values)

    def bucketed_p999_us(self, category: str) -> Dict[str, float]:
        """99.9th percentile FCT (us) per size bucket (Fig. 13b)."""
        buckets: Dict[str, List[float]] = defaultdict(list)
        for record in self.records:
            if record.category == category:
                buckets[bucket_for_size(record.size_bytes)].append(
                    to_microseconds(record.fct_ns)
                )
        return {
            name: percentile(values, 99.9)
            for name, values in buckets.items()
            if values
        }

    def total_timeouts(self, category: Optional[str] = None) -> int:
        """Sum of RTO events across completed flows."""
        return sum(
            record.timeouts
            for record in self.records
            if category is None or record.category == category
        )

    def completed(self, category: Optional[str] = None) -> int:
        """Number of completed flows (optionally per category)."""
        if category is None:
            return len(self.records)
        return sum(1 for record in self.records if record.category == category)
