"""Empirical distributions for benchmark traffic generation.

The paper generates its benchmark workload "based on the cumulative
distribution function of the interval time between two arrival flows and
the probability distribution of background flow sizes in [7]" — the DCTCP
measurement study of ~6000 production servers.  The authors' raw traces are
not public, but the published distributions are; :data:`WEB_SEARCH_FLOW_SIZES`
transcribes the DCTCP paper's background flow-size CDF (heavy-tailed: over
half the flows are small, yet most bytes live in multi-MB flows), and flow
arrivals are Poisson with a configurable load, as in the original study.

:class:`PiecewiseCdf` inverts an empirical CDF by linear interpolation in
log-size space, which matches how such distributions are universally
re-sampled in datacenter-transport papers.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence, Tuple


class PiecewiseCdf:
    """Inverse-transform sampler over an empirical CDF.

    ``points`` are (value, cumulative_probability) pairs with strictly
    increasing values and probabilities, ending at probability 1.0.
    Sampling interpolates between the points — geometrically when
    ``log_interp`` is set, which suits heavy-tailed size distributions.
    """

    def __init__(
        self,
        points: Sequence[Tuple[float, float]],
        log_interp: bool = True,
    ):
        if len(points) < 2:
            raise ValueError("a CDF needs at least two points")
        values = [v for v, _ in points]
        probs = [p for _, p in points]
        if any(b <= a for a, b in zip(values, values[1:])):
            raise ValueError("CDF values must be strictly increasing")
        if any(b <= a for a, b in zip(probs, probs[1:])):
            raise ValueError("CDF probabilities must be strictly increasing")
        if probs[0] < 0.0:
            raise ValueError("CDF probabilities must be non-negative")
        if not math.isclose(probs[-1], 1.0):
            raise ValueError("CDF must end at probability 1.0")
        if log_interp and values[0] <= 0:
            raise ValueError("log interpolation requires positive values")
        self._values = values
        self._probs = probs
        self._log = log_interp

    def sample(self, rng: random.Random) -> float:
        """Draw one value by inverse-transform sampling."""
        return self.quantile(rng.random())

    def quantile(self, p: float) -> float:
        """Value at cumulative probability ``p`` (0 <= p <= 1)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        if p <= self._probs[0]:
            return self._values[0]
        if p >= self._probs[-1]:
            return self._values[-1]
        hi = bisect.bisect_left(self._probs, p)
        lo = hi - 1
        span = self._probs[hi] - self._probs[lo]
        frac = (p - self._probs[lo]) / span if span > 0 else 0.0
        v_lo, v_hi = self._values[lo], self._values[hi]
        if self._log:
            return math.exp(
                math.log(v_lo) + frac * (math.log(v_hi) - math.log(v_lo))
            )
        return v_lo + frac * (v_hi - v_lo)

    def mean(self, steps: int = 10_000) -> float:
        """Numerical mean of the distribution (midpoint rule on quantiles)."""
        total = 0.0
        for i in range(steps):
            total += self.quantile((i + 0.5) / steps)
        return total / steps


# DCTCP paper (SIGCOMM 2010) background flow-size CDF for the web-search
# cluster, in bytes.  Transcribed from the published distribution: ~50% of
# flows are mice under ~35 KB, ~95% of bytes come from flows over 1 MB.
WEB_SEARCH_FLOW_SIZES = PiecewiseCdf(
    [
        (1_000, 0.02),
        (6_000, 0.15),
        (13_000, 0.28),
        (19_000, 0.39),
        (33_000, 0.50),
        (53_000, 0.63),
        (133_000, 0.70),
        (667_000, 0.80),
        (1_333_000, 0.90),
        (3_333_000, 0.95),
        (6_667_000, 0.98),
        (20_000_000, 1.00),
    ]
)

# Short "message" flows (coordination traffic in the DCTCP study):
# 50 KB - 1 MB, skewed towards the small end.
SHORT_MESSAGE_SIZES = PiecewiseCdf(
    [
        (50_000, 0.30),
        (100_000, 0.55),
        (250_000, 0.75),
        (500_000, 0.90),
        (1_000_000, 1.00),
    ]
)

QUERY_RESPONSE_BYTES = 2_000  # paper: "The size of each query message is 2 KB"


def exponential_interarrival_ns(rng: random.Random, rate_per_s: float) -> int:
    """One Poisson-process inter-arrival gap, in integer nanoseconds."""
    if rate_per_s <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate_per_s}")
    gap_s = rng.expovariate(rate_per_s)
    return max(int(gap_s * 1e9), 1)


def poisson_arrival_times_ns(
    rng: random.Random,
    rate_per_s: float,
    duration_ns: int,
    start_ns: int = 0,
) -> List[int]:
    """All arrival instants of a Poisson process over a window."""
    times: List[int] = []
    t = start_ns
    while True:
        t += exponential_interarrival_ns(rng, rate_per_s)
        if t >= start_ns + duration_ns:
            return times
        times.append(t)
