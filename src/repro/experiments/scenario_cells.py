"""The ``scenario`` figure: declarative scenarios as runner cells.

One cell = one ``(scenario, seed, transport)`` run of
:func:`repro.scenario.run.run_scenario`.  The entry point is top-level
and takes only picklable primitives (the scenario travels as its *name
or path*, resolved inside the worker), so scenario sweeps fan out over
the runner's process pool exactly like the paper figures — and inherit
the same determinism contract: the cell seed is derived from the root
seed and the cell's identity labels, so ``--jobs N`` is bit-identical to
a serial run.
"""

from __future__ import annotations

from typing import Optional, Union

from .common import ExperimentResult


def run_scenario_cell(
    scenario: Union[str, "object"],
    seed: int = 0,
    quick: bool = False,
    duration_ms: Optional[float] = None,
    transport: Optional[str] = None,
) -> ExperimentResult:
    """Resolve ``scenario`` (name, path or Scenario) and run it.

    Resolution happens here, in the worker, so cells stay picklable and
    a farm of YAML files can be swept without loading them all in the
    parent.
    """
    from ..scenario import Scenario, resolve, run_scenario

    if not isinstance(scenario, Scenario):
        scenario = resolve(scenario)
    return run_scenario(
        scenario,
        seed=seed,
        quick=quick,
        duration_ms=duration_ms,
        transport=transport,
    )
