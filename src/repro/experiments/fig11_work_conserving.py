"""Fig. 11 — work-conserving behaviour with two bottlenecks.

Paper setup (Fig. 5 topology): host 1 opens n1 = 8 flows to host 4 and
n2 = 2 flows to host 3; host 2 opens n3 = 2 flows to host 3.  Two
bottlenecks form: S1's uplink (carrying n1 + n2 = 10 flows) and S2's
downlink to host 3 (carrying n2 + n3 = 4 flows).  S2 allocates the n2
flows more window than S1 lets them use; without the token adjustment the
S2 downlink would sit idle-in-part.  The paper reports both links at high
goodput (S1 slightly below S2) and the S2 queue hovering near one packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..metrics.samplers import QueueSampler, RateSampler, Series
from ..net.topology import multi_bottleneck
from ..sim.units import microseconds, milliseconds, seconds
from ..transport.registry import open_flow
from .common import ExperimentResult, build_topology


@dataclass
class WorkConservingResult:
    """Aggregated goodput through each bottleneck plus queue series."""

    protocol: str
    s1_goodput_series: Series = field(default_factory=list)
    s2_goodput_series: Series = field(default_factory=list)
    s1_queue_series: Series = field(default_factory=list)
    s2_queue_series: Series = field(default_factory=list)
    drops: int = 0

    def _steady(self, series: Series, skip_frac: float = 0.3) -> List[float]:
        skip = int(len(series) * skip_frac)
        return [v for _, v in series[skip:]]

    def s1_goodput_bps(self) -> float:
        values = self._steady(self.s1_goodput_series)
        return sum(values) / len(values) if values else 0.0

    def s2_goodput_bps(self) -> float:
        values = self._steady(self.s2_goodput_series)
        return sum(values) / len(values) if values else 0.0

    def s2_queue_mean_bytes(self) -> float:
        values = self._steady(self.s2_queue_series)
        return sum(values) / len(values) if values else 0.0


def run_fig11(
    protocol: str = "tfc",
    n1: int = 8,
    n2: int = 2,
    n3: int = 2,
    duration_s: float = 1.0,
    buffer_bytes: int = 256_000,
    seed: int = 0,
) -> WorkConservingResult:
    """Run the two-bottleneck scenario and measure both links."""
    topo = build_topology(
        multi_bottleneck, protocol, buffer_bytes=buffer_bytes, seed=seed
    )
    net = topo.network
    h1, h2, h3, h4 = topo.hosts

    senders_via_s1 = [open_flow(h1, h4, protocol) for _ in range(n1)]
    senders_n2 = [open_flow(h1, h3, protocol) for _ in range(n2)]
    senders_n3 = [open_flow(h2, h3, protocol) for _ in range(n3)]

    # Aggregate goodput through each bottleneck: S1's uplink carries n1+n2,
    # S2's downlink to host 3 carries n2+n3.
    via_s1 = senders_via_s1 + senders_n2
    via_s2 = senders_n2 + senders_n3

    result = WorkConservingResult(protocol=protocol)
    s1_rate = RateSampler(
        net.sim,
        (lambda: sum(s.receiver.bytes_received for s in via_s1)),
        milliseconds(20),
    )
    s2_rate = RateSampler(
        net.sim,
        (lambda: sum(s.receiver.bytes_received for s in via_s2)),
        milliseconds(20),
    )
    s1_queue = QueueSampler(net.sim, topo.bottleneck("s1_up"), microseconds(100))
    s2_queue = QueueSampler(net.sim, topo.bottleneck("s2_to_h3"), microseconds(100))

    net.run_for(seconds(duration_s))

    result.s1_goodput_series = s1_rate.series
    result.s2_goodput_series = s2_rate.series
    result.s1_queue_series = s1_queue.series
    result.s2_queue_series = s2_queue.series
    result.drops = net.total_drops()
    return result


def run_fig11_cell(
    protocol: str = "tfc",
    duration_s: float = 1.0,
    seed: int = 0,
) -> "ExperimentResult":
    """Picklable cell adapter for the parallel runner."""
    res = run_fig11(protocol=protocol, duration_s=duration_s, seed=seed)
    return ExperimentResult(
        name=f"fig11:{protocol}:seed{seed}",
        protocol=protocol,
        scalars={
            "s1_goodput_bps": res.s1_goodput_bps(),
            "s2_goodput_bps": res.s2_goodput_bps(),
            "s2_queue_mean_bytes": res.s2_queue_mean_bytes(),
            "drops": float(res.drops),
        },
    )
