"""Figure 9 — goodput and small-timescale fairness of four staggered flows.

Paper: all three protocols fill the bottleneck, but TFC shares it fairly
even at a 20 ms timescale, while TCP's per-flow goodput is unstable.
"""

from conftest import run_once

from repro.experiments import run_staggered_flows
from repro.metrics.stats import jain_fairness


def run_all():
    return {
        proto: run_staggered_flows(proto, interval_s=0.2, tail_s=0.4)
        for proto in ("tfc", "dctcp", "tcp")
    }


def small_timescale_fairness(result):
    """Mean Jain index over individual 20 ms samples once all flows run."""
    start = (result.n_flows - 1) * result.interval_ns + result.interval_ns // 2
    times = [t for t, _ in result.goodput_series[0] if t >= start]
    indices = []
    for t in times:
        rates = []
        for series in result.goodput_series.values():
            value = dict(series).get(t)
            if value is not None:
                rates.append(value)
        if rates and sum(rates) > 0:
            indices.append(jain_fairness(rates))
    return sum(indices) / len(indices) if indices else 0.0


def test_fig09_goodput_fairness(benchmark, report):
    results = run_once(benchmark, run_all)

    rows = [
        [
            proto.upper(),
            f"{r.aggregate_goodput_bps() / 1e6:.0f}",
            f"{r.steady_state_fairness():.4f}",
            f"{small_timescale_fairness(r):.4f}",
        ]
        for proto, r in results.items()
    ]
    report(
        "Fig. 9: aggregate goodput and fairness (4 staggered flows)",
        ["protocol", "goodput (Mbps)", "fairness (avg)", "fairness (20ms)"],
        rows,
    )

    for proto, r in results.items():
        assert r.aggregate_goodput_bps() > 0.75e9, proto  # link well used
    # TFC is fair even at the 20 ms timescale; TCP is visibly less so.
    assert small_timescale_fairness(results["tfc"]) > 0.97
    assert small_timescale_fairness(results["tfc"]) >= small_timescale_fairness(
        results["tcp"]
    )
