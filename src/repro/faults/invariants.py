"""Runtime invariant monitoring for TFC control loops.

A chaos run is only evidence of robustness if the control loops stay
*inside their envelope* while recovering — a run that reconverges after
letting the token value explode through its clamps proved nothing.  The
:class:`InvariantMonitor` attaches to a built network and checks, on every
slot boundary and on a periodic sweep:

* **queue bound** — no queue ever exceeds its configured capacity;
* **token clamps** — every agent's token value stays within the
  ``[min, max]_token_bdp_factor x c x rtt_b`` clamps (with a small
  tolerance for the EWMA crossing an ``rtt_b`` step);
* **flow count** — the published effective-flow count is at least 1 and
  the live counter never goes negative;
* **delay-arbiter credit** — the sub-MSS credit counter stays within
  ``[-cap, +cap]`` (the paper's token-bucket debt bound);
* **window monotonicity** — the window field of a packet is only ever
  *lowered* by a switch (min-reduction along the path), checked by
  wrapping each agent's transit hook.

Violations carry a full event-context report (time, location, the values
involved) and raise :class:`InvariantViolation` immediately by default;
experiments that want to keep running collect them instead
(``raise_on_violation=False``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from ..net.packet import MSS
from ..sim.trace import INVARIANT_VIOLATION, TFC_WINDOW_UPDATE
from ..sim.units import bandwidth_delay_product, microseconds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.switch_agent import TfcPortAgent
    from ..net.network import Network

_EPSILON = 1e-6


@dataclass
class Violation:
    """One observed invariant breach, with everything needed to debug it.

    ``node``/``port_index``/``slot`` carry the structured identity of the
    breach site (and the agent's slot counter at the time), so a
    flight-recorder dump is attributable without replaying the run;
    ``location`` remains the human-readable form.  ``slot`` is -1 for
    checks not tied to an agent (e.g. the queue-capacity sweep).
    """

    time_ns: int
    invariant: str
    location: str
    message: str
    context: Dict[str, float] = field(default_factory=dict)
    node: str = ""
    port_index: int = -1
    slot: int = -1

    def report(self) -> str:
        """Multi-line event-context report."""
        lines = [
            f"invariant violated: {self.invariant}",
            f"  at t={self.time_ns}ns ({self.time_ns / 1e6:.3f} ms)",
            f"  location: {self.location}",
        ]
        if self.node:
            lines.append(
                f"  node: {self.node} port: {self.port_index}"
                f" slot: {self.slot}"
            )
        lines.append(f"  {self.message}")
        for key, value in sorted(self.context.items()):
            lines.append(f"    {key} = {value}")
        return "\n".join(lines)


class InvariantViolation(RuntimeError):
    """Raised when a monitored invariant breaks (carries the Violation)."""

    def __init__(self, violation: Violation):
        super().__init__(violation.report())
        self.violation = violation


class InvariantMonitor:
    """Attach runtime assertions to every TFC agent of a network.

    ``tolerance`` loosens the token-clamp check by a fractional margin:
    the clamps are applied to the *raw* token value before EWMA smoothing,
    so when ``rtt_b`` steps (first real measurement, periodic refresh,
    post-reset re-learning) the smoothed value can lag one or two slots
    outside the clamp computed against the new BDP.  That lag is bounded
    and expected; sustained excursions are what the monitor must catch.
    """

    def __init__(
        self,
        network: "Network",
        raise_on_violation: bool = True,
        sweep_interval_ns: int = microseconds(50),
        tolerance: float = 0.25,
        registry=None,
    ):
        self.network = network
        self.sim = network.sim
        self.tracer = network.tracer
        self.raise_on_violation = raise_on_violation
        self.tolerance = tolerance
        self.sweep_interval_ns = sweep_interval_ns
        self.violations: List[Violation] = []
        self.checks_run = 0
        # Optional repro.obs.MetricRegistry mirror of the two monitor
        # counters, so telemetry exports carry them without the chaos
        # driver copying fields by hand.
        self._checks_counter = None
        self._violations_counter = None
        if registry is not None:
            self._checks_counter = registry.counter(
                "invariant.checks", help="invariant checks run"
            )
            self._violations_counter = registry.counter(
                "invariant.violations", help="invariant violations observed"
            )
        self._attached = False
        self._stopped = False
        self._wrapped_agents: List["TfcPortAgent"] = []
        # When a lossless fabric is installed its PfcPortAgent wraps the
        # TFC agent; the monitor checks the *protocol* agent underneath
        # (token clamps, arbiter credit are TFC state, not PFC state).
        from ..net.pfc import protocol_agent

        agents: List["TfcPortAgent"] = []
        for switch in network.switches:
            for port in switch.ports:
                agent = protocol_agent(port.agent)
                if agent is not None:
                    agents.append(agent)
        self.agents = agents
        self._attach()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _attach(self) -> None:
        if self._attached:
            return
        self._attached = True
        self.tracer.subscribe(TFC_WINDOW_UPDATE, self._on_window_update)
        for agent in self.agents:
            self._wrap_transit(agent)
        self.sim.schedule(self.sweep_interval_ns, self._sweep)

    def _wrap_transit(self, agent: "TfcPortAgent") -> None:
        original = agent.on_transit

        def checked_transit(packet) -> None:
            window_before = packet.window
            original(packet)
            if packet.window > window_before + _EPSILON:
                self._violation(
                    "window_min_reduction",
                    self._locate(agent),
                    "switch raised a packet's window field (must only "
                    "ever lower it: min-reduction along the path)",
                    agent=agent,
                    window_before=window_before,
                    window_after=packet.window,
                )

        agent.on_transit = checked_transit  # instance attr shadows method
        self._wrapped_agents.append(agent)

    def detach(self) -> None:
        """Remove all hooks (wrappers, subscription, sweep)."""
        if not self._attached:
            return
        self._attached = False
        self._stopped = True
        self.tracer.unsubscribe(TFC_WINDOW_UPDATE, self._on_window_update)
        for agent in self._wrapped_agents:
            if "on_transit" in agent.__dict__:
                del agent.on_transit  # uncover the class method
        self._wrapped_agents.clear()

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    @staticmethod
    def _locate(agent: "TfcPortAgent") -> str:
        port = agent.port
        return f"{port.node.name}[{port.index}]->{port.peer_node.name}"

    def _violation(
        self,
        invariant: str,
        location: str,
        message: str,
        agent: "TfcPortAgent" = None,
        port=None,
        **context: float,
    ) -> None:
        # Structured identity for the breach site: from the agent when the
        # check is agent-bound (which also supplies the slot counter),
        # else from the port the sweep was inspecting.
        slot = -1
        if agent is not None:
            port = agent.port
            slot = getattr(agent, "slot_index", -1)
        elif port is not None and port.agent is not None:
            slot = getattr(port.agent, "slot_index", -1)
        violation = Violation(
            time_ns=self.sim.now,
            invariant=invariant,
            location=location,
            message=message,
            context=context,
            node=port.node.name if port is not None else "",
            port_index=port.index if port is not None else -1,
            slot=slot,
        )
        self.violations.append(violation)
        if self._violations_counter is not None:
            self._violations_counter.inc()
        self.tracer.emit(
            INVARIANT_VIOLATION,
            violation=violation,
            invariant=invariant,
            node=violation.node,
            port_index=violation.port_index,
            slot=violation.slot,
            location=location,
        )
        if self.raise_on_violation:
            raise InvariantViolation(violation)

    def _count_check(self) -> None:
        self.checks_run += 1
        if self._checks_counter is not None:
            self._checks_counter.inc()

    def _on_window_update(self, agent: "TfcPortAgent" = None, **_kw) -> None:
        if agent is None or agent not in self.agents:
            return
        self._count_check()
        self._check_agent(agent)

    def _check_agent(self, agent: "TfcPortAgent") -> None:
        params = agent.params
        location = self._locate(agent)
        bdp = bandwidth_delay_product(agent.rate_bps, agent.rttb_ns)
        low = params.min_token_bdp_factor * bdp * (1.0 - self.tolerance) - MSS
        high = params.max_token_bdp_factor * bdp * (1.0 + self.tolerance) + MSS
        if not low <= agent.tokens <= high:
            self._violation(
                "token_clamps",
                location,
                f"token value escaped its "
                f"[{params.min_token_bdp_factor}, "
                f"{params.max_token_bdp_factor}] x c x rtt_b clamps",
                agent=agent,
                tokens=agent.tokens,
                bdp=bdp,
                rttb_ns=agent.rttb_ns,
                low=low,
                high=high,
            )
        if agent.published_e < 1:
            self._violation(
                "effective_flows",
                location,
                "published effective-flow count below 1",
                agent=agent,
                published_e=agent.published_e,
            )
        if agent.effective_flows < 0:
            self._violation(
                "effective_flows",
                location,
                "live effective-flow counter went negative",
                agent=agent,
                effective_flows=agent.effective_flows,
            )
        if agent.window < 0:
            self._violation(
                "window_nonnegative",
                location,
                "published window is negative",
                agent=agent,
                window=agent.window,
            )
        self._check_arbiter(agent, location)

    def _check_arbiter(self, agent: "TfcPortAgent", location: str) -> None:
        arbiter = agent.delay_arbiter
        bound = arbiter.cap * (1.0 + self.tolerance) + MSS
        if not -bound <= arbiter.credit <= bound:
            self._violation(
                "delay_arbiter_credit",
                location,
                "delay-arbiter credit escaped its [-cap, +cap] bound",
                agent=agent,
                credit=arbiter.credit,
                cap=arbiter.cap,
            )

    def _sweep(self) -> None:
        """Periodic checks that are not tied to a slot boundary."""
        if self._stopped:
            return
        for node in self.network.nodes:
            for port in node.ports:
                queue = port.queue
                if queue.byte_length > queue.capacity_bytes:
                    self._violation(
                        "queue_capacity",
                        f"{node.name}[{port.index}]",
                        "queue occupancy exceeds configured capacity",
                        port=port,
                        byte_length=queue.byte_length,
                        capacity_bytes=queue.capacity_bytes,
                    )
        for agent in self.agents:
            self._check_arbiter(agent, self._locate(agent))
        self._count_check()
        self.sim.schedule(self.sweep_interval_ns, self._sweep)

    # ------------------------------------------------------------------
    def assert_clean(self) -> None:
        """Raise (with the first report) if any violation was recorded."""
        if self.violations:
            raise InvariantViolation(self.violations[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<InvariantMonitor agents={len(self.agents)}"
            f" checks={self.checks_run} violations={len(self.violations)}>"
        )
