"""Tests for topology builders and shortest-path routing."""

import pytest

from repro.net.packet import Packet, MSS
from repro.net.topology import dumbbell, fat_tree, leaf_spine, multi_bottleneck
from repro.net.topology import testbed as build_testbed
from repro.sim.units import GBPS


def all_pairs_reachable(topo):
    """Every host can route a packet to every other host."""
    hosts = topo.hosts
    for src in hosts:
        for dst in hosts:
            if src is dst:
                continue
            # Walk the forwarding tables hop by hop.
            node = src
            hops = 0
            while node is not dst:
                port = node.port_towards(dst.node_id)
                node = port.peer_node
                hops += 1
                assert hops < 10, f"routing loop {src.name}->{dst.name}"
    return True


def test_dumbbell_structure():
    topo = dumbbell(n_senders=4)
    assert len(topo.hosts) == 5
    assert len(topo.switches) == 1
    assert all_pairs_reachable(topo)
    # The registered bottleneck is the switch port facing the receiver.
    receiver = topo.hosts[-1]
    assert topo.bottleneck("main").peer_node is receiver


def test_dumbbell_multiple_receivers():
    topo = dumbbell(n_senders=2, n_receivers=2)
    assert len(topo.hosts) == 4
    assert topo.bottleneck("rx1").peer_node is topo.hosts[-1]


def test_dumbbell_needs_senders():
    with pytest.raises(ValueError):
        dumbbell(n_senders=0)


def test_testbed_matches_paper_figure4():
    topo = build_testbed()
    assert [h.name for h in topo.hosts] == [f"H{i}" for i in range(1, 10)]
    assert [s.name for s in topo.switches] == ["NF0", "NF1", "NF2", "NF3"]
    assert all_pairs_reachable(topo)
    # H1..H3 under NF1, H4..H6 under NF2 (paper layout).
    assert topo.bottleneck("to_H3").node.name == "NF1"
    assert topo.bottleneck("to_H6").node.name == "NF2"


def test_testbed_intra_vs_cross_rack_hops():
    topo = build_testbed()
    h4, h6, h1 = topo.host(3), topo.host(5), topo.host(0)

    def count_hops(src, dst):
        node, hops = src, 0
        while node is not dst:
            node = node.port_towards(dst.node_id).peer_node
            hops += 1
        return hops

    assert count_hops(h4, h6) == 2  # intra-rack: host->leaf->host
    assert count_hops(h1, h6) == 4  # cross-rack via the root


def test_multi_bottleneck_paths():
    topo = multi_bottleneck()
    h1, h2, h3, h4 = topo.hosts
    s1, s2 = topo.switches
    # Host 1 reaches host 3 via S1 then S2.
    assert h1.port_towards(h3.node_id).peer_node is s1
    assert s1.port_towards(h3.node_id).peer_node is s2
    # Host 2 hangs off S2: it must NOT cross the S1 uplink.
    assert h2.port_towards(h3.node_id).peer_node is s2
    assert topo.bottleneck("s1_up").node is s1
    assert topo.bottleneck("s2_to_h3").peer_node is h3
    assert all_pairs_reachable(topo)


def test_leaf_spine_shape():
    topo = leaf_spine(n_leaves=3, hosts_per_leaf=4)
    assert len(topo.hosts) == 12
    assert len(topo.switches) == 4  # spine + 3 leaves
    assert all_pairs_reachable(topo)


def test_leaf_spine_paper_rtt():
    """20 us links + store-and-forward give ~160 us inter-rack RTT."""
    topo = leaf_spine(n_leaves=2, hosts_per_leaf=1)
    net = topo.network
    src, dst = topo.hosts
    arrival = []

    class Sink:
        def on_packet(self, pkt):
            arrival.append(net.sim.now)

    dst.register_connection((src.node_id, dst.node_id, 1, 2), Sink())
    src.send(Packet(src.node_id, dst.node_id, 1, 2, payload=MSS))
    net.sim.run()
    one_way = arrival[0]
    # 4 links x 20 us propagation plus serialisations and host processing:
    # the paper quotes 160 us round trip for 4 hops.
    assert 80_000 <= one_way <= 120_000


def test_leaf_spine_uplink_is_faster():
    topo = leaf_spine(n_leaves=2, hosts_per_leaf=2)
    spine = topo.switches[0]
    leaf = topo.switches[1]
    # Leaf's port towards the spine runs at the uplink rate.
    up_port = leaf.port_towards(spine.node_id)
    assert up_port.rate_bps == 10 * GBPS
    host_port = topo.bottleneck("to_H1")
    assert host_port.rate_bps == GBPS


def unique_cables(topo):
    """One (low, high) node-id pair per cable; fails on duplicate wiring."""
    pairs = []
    for node in topo.network.nodes:
        for port in node.ports:
            a, b = node.node_id, port.peer_node.node_id
            if a < b:
                pairs.append((a, b))
    assert len(pairs) == len(set(pairs)), "same node pair cabled twice"
    return pairs


@pytest.mark.parametrize("k", [4, 6])
def test_fat_tree_structure(k):
    """Al-Fares counts: k^3/4 hosts, 5k^2/4 switches, 3k^3/4 cables."""
    topo = fat_tree(k=k)
    half = k // 2
    assert len(topo.hosts) == k**3 // 4
    cores = [s for s in topo.switches if s.name.startswith("C")]
    aggs = [s for s in topo.switches if s.name.startswith("A")]
    edges = [s for s in topo.switches if s.name.startswith("E")]
    assert len(cores) == half * half
    assert len(aggs) == k * half
    assert len(edges) == k * half
    assert len(topo.switches) == 5 * k * k // 4
    assert len(unique_cables(topo)) == 3 * k**3 // 4
    assert all_pairs_reachable(topo)


def test_fat_tree_equal_cost_sets():
    topo = fat_tree(k=4)
    by_name = {s.name: s for s in topo.switches}
    edge0, agg0 = by_name["E0_0"], by_name["A0_0"]
    local, remote = topo.hosts[0], topo.hosts[-1]
    # Towards a remote pod: k/2 agg choices at the edge, then k/2 core
    # choices at the agg — (k/2)^2 = 4 core paths in total.
    assert len(edge0.multipath_table[remote.node_id]) == 2
    assert len(agg0.multipath_table[remote.node_id]) == 2
    # The elected BFS next hop always leads the candidate tuple.
    assert (
        edge0.multipath_table[remote.node_id][0]
        == edge0.forwarding_table[remote.node_id]
    )
    # A host on this edge switch has exactly one way down.
    assert len(edge0.multipath_table[local.node_id]) == 1
    # ports_towards mirrors the table as Port objects, same order.
    ports = edge0.ports_towards(remote.node_id)
    assert [p.index for p in ports] == list(
        edge0.multipath_table[remote.node_id]
    )
    assert {p.peer_node.name for p in ports} == {"A0_0", "A0_1"}


def test_fat_tree_validates_k():
    for bad in (0, 3, -2):
        with pytest.raises(ValueError):
            fat_tree(k=bad)


def test_leaf_spine_multi_spine_equal_cost():
    topo = leaf_spine(n_leaves=2, hosts_per_leaf=2, spines=3)
    assert len(topo.switches) == 5  # 3 spines + 2 leaves
    leaf0 = topo.switches[3]
    local, remote = topo.hosts[0], topo.hosts[2]
    candidates = leaf0.multipath_table[remote.node_id]
    assert len(candidates) == 3
    assert {leaf0.ports[i].peer_node.name for i in candidates} == {
        "SPINE0",
        "SPINE1",
        "SPINE2",
    }
    assert candidates[0] == leaf0.forwarding_table[remote.node_id]
    # Hosts on this leaf are single-homed.
    assert len(leaf0.multipath_table[local.node_id]) == 1
    assert all_pairs_reachable(topo)


def test_leaf_spine_validates_spines():
    with pytest.raises(ValueError):
        leaf_spine(spines=0)


def test_custom_buffer_applies_to_switch_ports():
    topo = dumbbell(n_senders=2, buffer_bytes=64_000)
    assert topo.bottleneck("main").queue.capacity_bytes == 64_000


def test_host_nic_queue_is_deep():
    topo = dumbbell(n_senders=1)
    nic = topo.hosts[0].ports[0]
    assert nic.queue.capacity_bytes >= 1_000_000
