"""Pluggable routing / load-balancing policies for multi-path fabrics.

Mirrors the :mod:`repro.sim.sched` backend pattern: a small registry of
named policies, selection through three surfaces, and an environment
variable for code paths that build their own :class:`~repro.net.network.
Network` internally:

* ``Network(routing=...)`` — a name or a policy instance;
* ``REPRO_ROUTING`` — validated env default (what the experiment runner
  and the CI shard export process-wide);
* ``runner --routing`` — pins the policy for every experiment cell.

Policies, all bit-deterministic under a fixed network seed:

* ``single``  — fixed BFS next hop (the default; bit-identical to the
  pre-multipath datapath, enforced by the golden-determinism suite);
* ``ecmp``    — per-flow seeded 5-tuple hash;
* ``flowlet`` — idle-gap flowlet switching (``FlowletPolicy(gap_ns=...)``
  for a non-default gap);
* ``spray``   — per-packet round-robin (reordering stress case).
"""

from __future__ import annotations

import os
from typing import Optional, Union

from .base import RoutingPolicy, flow_hash
from .policies import EcmpPolicy, FlowletPolicy, SinglePathPolicy, SprayPolicy

#: Name -> policy class.
ROUTING_POLICIES = {
    "single": SinglePathPolicy,
    "ecmp": EcmpPolicy,
    "flowlet": FlowletPolicy,
    "spray": SprayPolicy,
}

#: Every accepted value for Network(routing=...) / REPRO_ROUTING.
ROUTING_NAMES = tuple(sorted(ROUTING_POLICIES))

ROUTING_ENV_VAR = "REPRO_ROUTING"


def make_routing(name: str) -> RoutingPolicy:
    """Instantiate a policy by registry name."""
    try:
        policy_cls = ROUTING_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; "
            f"choose from {', '.join(ROUTING_NAMES)}"
        ) from None
    return policy_cls()


def resolve_routing(
    routing: Optional[Union[str, RoutingPolicy]],
) -> RoutingPolicy:
    """Turn a Network's ``routing=`` argument into a policy instance.

    ``None`` falls back to ``$REPRO_ROUTING`` (validated), then to
    ``single``.  Policy instances pass through untouched, so one
    pre-configured policy (e.g. a custom flowlet gap) can be handed to a
    network directly.
    """
    if isinstance(routing, RoutingPolicy):
        return routing
    if routing is None:
        routing = os.environ.get(ROUTING_ENV_VAR, "") or "single"
        if routing not in ROUTING_POLICIES:
            raise ValueError(
                f"${ROUTING_ENV_VAR}={routing!r} is not a routing policy; "
                f"choose from {', '.join(ROUTING_NAMES)}"
            )
    return make_routing(routing)


def routing_env(name: Optional[str]):
    """Deprecated shim: use :func:`repro.config.env` instead.

    Pins ``REPRO_ROUTING`` while the block runs (None = no-op), with
    identical validation and restore semantics.  Kept so pre-config
    callers keep working; new code should write
    ``with repro.config.env(routing=name):``.
    """
    from ..config import env  # deferred: repro.config imports this module

    return env(routing=name)


__all__ = [
    "RoutingPolicy",
    "SinglePathPolicy",
    "EcmpPolicy",
    "FlowletPolicy",
    "SprayPolicy",
    "ROUTING_POLICIES",
    "ROUTING_NAMES",
    "ROUTING_ENV_VAR",
    "flow_hash",
    "make_routing",
    "resolve_routing",
    "routing_env",
]
