"""Per-policy selection semantics, on a synthetic switch.

The policies only ever touch ``switch.node_id``, ``switch.sim.now``,
the routing tables and the packet header, so a stub switch exercises
every branch without building a network; the golden-determinism suite
covers the policies on real fabrics.
"""

import pytest

from repro.net.packet import Packet
from repro.routing import (
    EcmpPolicy,
    FlowletPolicy,
    SinglePathPolicy,
    SprayPolicy,
    flow_hash,
)

DST = 99


class FakeSim:
    def __init__(self):
        self.now = 0


class FakeSwitch:
    def __init__(self, node_id=7, candidates=(0, 1, 2, 3)):
        self.node_id = node_id
        self.multipath_table = {DST: tuple(candidates)}
        self.forwarding_table = {DST: candidates[0]}
        self.sim = FakeSim()


def pkt(sport, dport=5000, src=1):
    return Packet(src, DST, sport, dport, payload=1000)


# ----------------------------------------------------------------------
# flow_hash
# ----------------------------------------------------------------------
def test_flow_hash_pinned_values():
    """FNV-1a over the fields — pinned so the path mapping never drifts
    (a silent change would invalidate every recorded ECMP experiment)."""
    assert flow_hash(0, 1, 2, 3, 4, 5) == 0xF66DCBF4F6B7D88
    assert flow_hash(0xDEADBEEF, 1, 2, 3, 4, 5) == 0x7F7F688AFECCF991


def test_flow_hash_sensitivity():
    base = flow_hash(0, 1, 2, 3, 4)
    assert flow_hash(0, 1, 2, 3, 4) == base
    assert flow_hash(1, 1, 2, 3, 4) != base  # salt matters
    assert flow_hash(0, 1, 2, 3, 5) != base  # every field matters
    assert 0 <= base < 2**64


# ----------------------------------------------------------------------
# single
# ----------------------------------------------------------------------
def test_single_returns_elected_port():
    switch = FakeSwitch(candidates=(3, 0, 1))
    assert SinglePathPolicy().select(switch, pkt(1)) == 3


# ----------------------------------------------------------------------
# ecmp
# ----------------------------------------------------------------------
def test_ecmp_pins_flow_for_its_lifetime():
    policy = EcmpPolicy()
    policy.salt = 42
    switch = FakeSwitch()
    first = policy.select(switch, pkt(1))
    assert first in switch.multipath_table[DST]
    for _ in range(20):
        assert policy.select(switch, pkt(1)) == first


def test_ecmp_matches_documented_hash():
    policy = EcmpPolicy()
    policy.salt = 42
    switch = FakeSwitch()
    packet = pkt(1)
    key = (switch.node_id, *packet.flow_key)
    candidates = switch.multipath_table[DST]
    expected = candidates[flow_hash(42, *key) % len(candidates)]
    assert policy.select(switch, packet) == expected


def test_ecmp_spreads_distinct_flows():
    policy = EcmpPolicy()
    policy.salt = 42
    switch = FakeSwitch()
    picks = {policy.select(switch, pkt(sport)) for sport in range(64)}
    assert len(picks) > 1  # 64 flows over 4 ports must not all collide


def test_ecmp_rebuild_clears_stale_pins():
    policy = EcmpPolicy()
    policy.salt = 0
    switch = FakeSwitch(candidates=(0, 1, 2, 3))
    policy.select(switch, pkt(1))
    # A link died: the candidate set shrank.  Stale pins must go.
    switch.multipath_table[DST] = (2,)
    policy.on_routes_rebuilt(None)
    assert policy.select(switch, pkt(1)) == 2


def test_ecmp_single_candidate_short_circuits():
    policy = EcmpPolicy()
    switch = FakeSwitch(candidates=(5,))
    assert policy.select(switch, pkt(1)) == 5
    assert not policy._pinned  # no state burned on degenerate sets


# ----------------------------------------------------------------------
# flowlet
# ----------------------------------------------------------------------
def test_flowlet_sticks_within_gap_and_rehashes_after():
    policy = FlowletPolicy(gap_ns=100)
    policy.salt = 7
    switch = FakeSwitch()
    packet = pkt(1)
    key = (switch.node_id, *packet.flow_key)
    candidates = switch.multipath_table[DST]

    def expected(seq):
        return candidates[flow_hash(7, *key, seq) % len(candidates)]

    first = policy.select(switch, packet)
    assert first == expected(0)
    # Inside the gap (measured from the *last* packet): same flowlet.
    switch.sim.now = 90
    assert policy.select(switch, packet) == first
    switch.sim.now = 180  # 90 ns since last seen — still inside
    assert policy.select(switch, packet) == first
    # Silence longer than the gap starts flowlet #1, re-hashed.
    switch.sim.now = 400
    assert policy.select(switch, packet) == expected(1)


def test_flowlet_flows_do_not_share_state():
    policy = FlowletPolicy(gap_ns=100)
    policy.salt = 7
    switch = FakeSwitch()
    a = policy.select(switch, pkt(1))
    policy.select(switch, pkt(2))
    assert policy.select(switch, pkt(1)) == a


def test_flowlet_validates_gap():
    for bad in (0, -5):
        with pytest.raises(ValueError, match="gap"):
            FlowletPolicy(gap_ns=bad)


def test_flowlet_rebuild_forgets_flowlets():
    policy = FlowletPolicy(gap_ns=100)
    switch = FakeSwitch(candidates=(0, 1))
    policy.select(switch, pkt(1))
    switch.multipath_table[DST] = (1,)
    policy.on_routes_rebuilt(None)
    assert policy.select(switch, pkt(1)) == 1


# ----------------------------------------------------------------------
# spray
# ----------------------------------------------------------------------
def test_spray_round_robins_the_candidates():
    policy = SprayPolicy()
    switch = FakeSwitch(candidates=(2, 5, 9))
    picks = [policy.select(switch, pkt(1)) for _ in range(7)]
    assert picks == [2, 5, 9, 2, 5, 9, 2]


def test_spray_cursor_is_shared_per_destination():
    """Interleaved flows advance one shared per-(switch, dst) cursor —
    the hardware port-group behaviour the docstring promises."""
    policy = SprayPolicy()
    switch = FakeSwitch(candidates=(0, 1, 2))
    assert policy.select(switch, pkt(1)) == 0
    assert policy.select(switch, pkt(2)) == 1  # different flow, same dst
    assert policy.select(switch, pkt(1)) == 2


def test_spray_rebuild_resets_cursor():
    policy = SprayPolicy()
    switch = FakeSwitch(candidates=(0, 1))
    policy.select(switch, pkt(1))
    policy.on_routes_rebuilt(None)
    assert policy.select(switch, pkt(1)) == 0
