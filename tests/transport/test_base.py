"""Tests for the shared reliability framework (handshake, sliding window,
reassembly, retransmission, completion accounting)."""

import pytest

from repro.net.packet import MSS, Packet
from repro.sim.units import MILLISECOND, seconds
from repro.transport.base import FlowState, Receiver
from repro.transport.registry import open_flow


def test_handshake_then_transfer_completes(tiny_net):
    net, a, b, _ = tiny_net
    done = []
    sender = open_flow(a, b, "tcp", size_bytes=10_000, on_complete=done.append)
    net.run_for(seconds(1))
    assert sender.state is FlowState.DONE
    assert done == [sender]
    assert sender.stats.bytes_acked == 10_000
    assert sender.receiver.bytes_received == 10_000
    assert sender.receiver.fin_seen


def test_fct_measured_from_open(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tcp", size_bytes=1460)
    net.run_for(seconds(1))
    fct = sender.stats.fct_ns
    # SYN + SYN-ACK + one segment + ACK: at least 2 RTTs, below 1 ms here.
    assert 2 * 30_000 < fct < MILLISECOND


def test_zero_byte_flow_completes(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tcp", size_bytes=0)
    net.run_for(seconds(1))
    assert sender.state is FlowState.DONE
    assert sender.stats.bytes_acked == 0


def test_sub_mss_flow(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tcp", size_bytes=700)
    net.run_for(seconds(1))
    assert sender.state is FlowState.DONE
    assert sender.receiver.bytes_received == 700


def test_long_lived_flow_never_completes(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tcp")
    net.run_for(seconds(0.1))
    assert sender.state is FlowState.ESTABLISHED
    assert sender.stats.complete_ns is None
    assert sender.stats.bytes_acked > 1_000_000  # actually moving data


def test_finish_closes_long_lived_flow(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tcp")
    net.run_for(seconds(0.05))
    sender.finish()
    net.run_for(seconds(0.5))
    assert sender.state is FlowState.DONE


def test_queue_bytes_on_off_source(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tcp", size_bytes=0)
    sender.fin_on_empty = False
    net.run_for(seconds(0.01))
    sender.queue_bytes(5_000)
    net.run_for(seconds(0.05))
    assert sender.stats.bytes_acked == 5_000
    assert sender.state is FlowState.ESTABLISHED  # still open
    sender.queue_bytes(5_000)
    sender.finish()
    net.run_for(seconds(0.5))
    assert sender.state is FlowState.DONE
    assert sender.stats.bytes_acked == 10_000


def test_queue_bytes_after_done_rejected(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tcp", size_bytes=100)
    net.run_for(seconds(0.5))
    with pytest.raises(ValueError):
        sender.queue_bytes(10)


def test_syn_retransmitted_on_loss(tiny_net):
    net, a, b, _ = tiny_net
    # Break routing temporarily by filling the switch egress with junk is
    # fiddly; instead drop the SYN by unregistering the receiver demux so
    # the SYN orphan-drops, then restoring it.
    sender = open_flow(a, b, "tcp", size_bytes=1460, min_rto_ns=MILLISECOND)
    receiver = sender.receiver
    b.unregister_connection(sender.flow_key)
    net.run_for(MILLISECOND // 2)  # first SYN orphaned
    b.register_connection(sender.flow_key, receiver)
    net.run_for(seconds(1))
    assert sender.state is FlowState.DONE


def test_flight_size_bounded_by_window(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tcp", awnd_bytes=4 * MSS)
    observed = []

    def watch():
        observed.append(sender.flight_size)
        net.sim.schedule(10_000, watch)

    net.sim.schedule(0, watch)
    net.run_for(seconds(0.05))
    assert max(observed) <= 4 * MSS
    assert sender.stats.bytes_acked > 0


def test_receiver_reassembles_out_of_order():
    # Drive the receiver directly with crafted segments.
    from repro.net.network import Network
    from repro.sim.units import GBPS, microseconds

    net = Network(seed=0)
    a = net.add_host("A")
    b = net.add_host("B")
    net.cable(a, b, GBPS, microseconds(1))
    net.build_routes()
    receiver = Receiver(b, (a.node_id, b.node_id, 1, 2))
    for seq in (1460, 4380, 2920):  # holes first
        receiver.on_packet(Packet(a.node_id, b.node_id, 1, 2, seq=seq, payload=1460))
    assert receiver.rcv_nxt == 0
    receiver.on_packet(Packet(a.node_id, b.node_id, 1, 2, seq=0, payload=1460))
    assert receiver.rcv_nxt == 5840
    assert receiver.bytes_received == 5840


def test_receiver_ignores_duplicates():
    from repro.net.network import Network
    from repro.sim.units import GBPS, microseconds

    net = Network(seed=0)
    a = net.add_host("A")
    b = net.add_host("B")
    net.cable(a, b, GBPS, microseconds(1))
    net.build_routes()
    receiver = Receiver(b, (a.node_id, b.node_id, 1, 2))
    pkt = Packet(a.node_id, b.node_id, 1, 2, seq=0, payload=1000)
    receiver.on_packet(pkt)
    receiver.on_packet(Packet(a.node_id, b.node_id, 1, 2, seq=0, payload=1000))
    assert receiver.bytes_received == 1000
    assert receiver.rcv_nxt == 1000


def test_receiver_merges_overlapping_segments():
    from repro.net.network import Network
    from repro.sim.units import GBPS, microseconds

    net = Network(seed=0)
    a = net.add_host("A")
    b = net.add_host("B")
    net.cable(a, b, GBPS, microseconds(1))
    net.build_routes()
    receiver = Receiver(b, (a.node_id, b.node_id, 1, 2))
    receiver.on_packet(Packet(a.node_id, b.node_id, 1, 2, seq=1000, payload=1000))
    receiver.on_packet(Packet(a.node_id, b.node_id, 1, 2, seq=1500, payload=1000))
    receiver.on_packet(Packet(a.node_id, b.node_id, 1, 2, seq=0, payload=1000))
    assert receiver.rcv_nxt == 2500
    assert receiver.bytes_received == 2500


def test_karn_rule_no_rtt_sample_from_retransmission(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tcp", size_bytes=20 * MSS, min_rto_ns=MILLISECOND)
    receiver = sender.receiver
    # Black-hole the flow mid-stream so segments need retransmission.
    net.run_for(80_000)
    b.unregister_connection(sender.flow_key)
    net.run_for(2 * MILLISECOND)
    b.register_connection(sender.flow_key, receiver)
    net.run_for(seconds(1))
    assert sender.state is FlowState.DONE
    assert sender.stats.timeouts >= 1
    # The retransmission's ACK must not have produced a bogus multi-ms
    # RTT sample.
    assert sender.rto.srtt < 2 * MILLISECOND


def test_stats_count_retransmissions(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tcp", size_bytes=50 * MSS, min_rto_ns=MILLISECOND)
    receiver = sender.receiver
    net.run_for(150_000)
    b.unregister_connection(sender.flow_key)
    net.run_for(MILLISECOND)
    b.register_connection(sender.flow_key, receiver)
    net.run_for(seconds(2))
    assert sender.state is FlowState.DONE
    assert sender.stats.retransmissions > 0
    assert sender.stats.bytes_acked == 50 * MSS
    assert receiver.bytes_received == 50 * MSS


def test_go_back_n_rewinds_snd_nxt(tiny_net):
    net, a, b, _ = tiny_net
    sender = open_flow(a, b, "tcp", size_bytes=100 * MSS, min_rto_ns=MILLISECOND)
    receiver = sender.receiver
    net.run_for(200_000)
    high_before = sender.snd_nxt
    assert high_before > 0
    b.unregister_connection(sender.flow_key)
    net.run_for(3 * MILLISECOND)  # RTO fires while black-holed
    assert sender.stats.timeouts >= 1
    b.register_connection(sender.flow_key, receiver)
    net.run_for(seconds(3))
    assert sender.state is FlowState.DONE
    assert receiver.bytes_received == 100 * MSS
