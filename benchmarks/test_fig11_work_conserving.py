"""Figure 11 — work conservation with two bottlenecks.

Paper: n1=8 flows host1->host4, n2=2 flows host1->host3, n3=2 flows
host2->host3.  S2 hands n2 more window than S1 permits; the token
adjustment lets the n3 flows absorb the slack, so both bottlenecks stay
near full rate with the S2 queue around one packet (~2 KB).
"""

from conftest import run_once

from repro.experiments import run_fig11


def test_fig11_work_conserving(benchmark, report):
    result = run_once(benchmark, run_fig11, duration_s=1.0)

    report(
        "Fig. 11: two-bottleneck goodput and queue (TFC)",
        ["link", "goodput (Mbps)", "queue mean (B)"],
        [
            ["S1 uplink", f"{result.s1_goodput_bps() / 1e6:.0f}", "-"],
            [
                "S2 -> host3",
                f"{result.s2_goodput_bps() / 1e6:.0f}",
                f"{result.s2_queue_mean_bytes():.0f}",
            ],
        ],
    )

    # Both bottlenecks at high goodput: no work-conserving problem.
    assert result.s1_goodput_bps() > 0.85e9
    assert result.s2_goodput_bps() > 0.85e9
    # Queue hovers around a packet or two, as in the paper ("about 2 KB").
    assert result.s2_queue_mean_bytes() < 6_000
    assert result.drops == 0
