"""TCP NewReno congestion control (RFC 6582) — the paper's "TCP" baseline.

Slow start, congestion avoidance, fast retransmit / fast recovery with
NewReno partial-ACK handling, and RTO-triggered slow start.  All window
arithmetic is in float bytes; segments are MSS-sized.
"""

from __future__ import annotations

from ..net.packet import MSS, Packet
from ..sim.trace import FAST_RETRANSMIT
from .base import Receiver, Sender

INITIAL_CWND_SEGMENTS = 2
DUPACK_THRESHOLD = 3


class NewRenoSender(Sender):
    """Loss-based AIMD sender."""

    protocol_name = "tcp"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.cwnd = float(INITIAL_CWND_SEGMENTS * MSS)
        self.ssthresh = float(1 << 30)
        self.in_recovery = False
        self._recovery_high = 0

    # ------------------------------------------------------------------
    # Congestion control hooks
    # ------------------------------------------------------------------
    def on_ack_accepted(self, packet: Packet, newly_acked: int) -> None:
        if self.in_recovery:
            if packet.ack >= self._recovery_high:
                # Full ACK: leave recovery, deflate to ssthresh.
                self.in_recovery = False
                self.cwnd = self.ssthresh
            else:
                # Partial ACK: retransmit the next hole, deflate partially.
                self.retransmit_head()
                self.cwnd = max(self.cwnd - newly_acked + MSS, float(MSS))
            return
        if self.cwnd < self.ssthresh:
            self.cwnd += min(newly_acked, MSS)  # slow start
        else:
            self.cwnd += MSS * MSS / self.cwnd  # congestion avoidance

    def on_duplicate_ack(self, packet: Packet) -> None:
        if self.in_recovery:
            self.cwnd += MSS  # inflate per extra dupack
            return
        if self.dupacks >= DUPACK_THRESHOLD:
            self._enter_recovery()

    def _enter_recovery(self) -> None:
        self.stats.fast_retransmits += 1
        self.tracer.emit(FAST_RETRANSMIT, sender=self)
        self.ssthresh = max(self.flight_size / 2.0, 2.0 * MSS)
        self.cwnd = self.ssthresh + DUPACK_THRESHOLD * MSS
        self.in_recovery = True
        self._recovery_high = self.snd_nxt
        self.retransmit_head()

    def on_timeout(self) -> None:
        self.ssthresh = max(self.flight_size / 2.0, 2.0 * MSS)
        self.cwnd = float(MSS)
        self.in_recovery = False
        self.dupacks = 0


class NewRenoReceiver(Receiver):
    """Plain cumulative-ACK receiver (no decoration needed)."""
