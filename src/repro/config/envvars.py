"""The validated ``REPRO_*`` environment surface, in one place.

Three subsystems grew the same copy-pasted pattern — a validated
environment default plus a save/restore context manager
(``REPRO_SCHEDULER``/``scheduler_env``, ``REPRO_ROUTING``/``routing_env``,
and telemetry was about to be the third).  This module consolidates them:
one knob table (:data:`KNOBS`), one validated reader (:func:`current`),
and one shared context manager (:func:`env`) that pins any subset of the
knobs at once.  The old per-subsystem entry points survive as thin
deprecation shims delegating here.

Environment variables exist for code paths that build their own
:class:`~repro.sim.engine.Simulator` or :class:`~repro.net.network.
Network` internally (topology builders, figure cells, pool workers) and
therefore cannot take a constructor argument; everything else should
prefer :class:`~repro.config.SimConfig`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..obs.session import TELEMETRY_MODES
from ..routing import ROUTING_NAMES
from ..sim.sched import SCHEDULER_NAMES

SCHEDULER_ENV_VAR = "REPRO_SCHEDULER"
ROUTING_ENV_VAR = "REPRO_ROUTING"
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"
TELEMETRY_DIR_ENV_VAR = "REPRO_TELEMETRY_DIR"
LOSSLESS_ENV_VAR = "REPRO_LOSSLESS"
BATCH_ENV_VAR = "REPRO_BATCH"
COMPILED_ENV_VAR = "REPRO_COMPILED"
SHARDS_ENV_VAR = "REPRO_SHARDS"

# Two-state switches share one value vocabulary.
ONOFF: Tuple[str, ...] = ("on", "off")

# Defined here rather than imported from repro.net.pfc: the config layer
# must stay importable without pulling in the datapath (and net imports
# nothing from config).  Kept in sync by a test in tests/config.
LOSSLESS_MODES: Tuple[str, ...] = ("off", "pfc")


def _positive_int(what: str) -> Callable[[str], str]:
    """A checker for knobs whose value is a count, not a name."""

    def check(value: str) -> str:
        try:
            ok = int(value) >= 1
        except ValueError:
            ok = False
        if not ok:
            raise ValueError(
                f"invalid {what} {value!r}; expected a positive integer"
            )
        return value

    return check


@dataclass(frozen=True)
class EnvKnob:
    """One validated environment variable."""

    var: str
    default: str
    names: Optional[Tuple[str, ...]]  # None: free-form (paths) or checked
    what: str  # noun for error messages: "scheduler backend", ...
    check: Optional[Callable[[str], str]] = None  # non-vocabulary validation

    def validate(self, value: str) -> str:
        if self.names is not None and value not in self.names:
            raise ValueError(
                f"unknown {self.what} {value!r}; "
                f"choose from {', '.join(self.names)}"
            )
        if self.check is not None:
            return self.check(value)
        return value


#: Keyword name (as accepted by :func:`env` / ``SimConfig``) -> knob.
KNOBS: Dict[str, EnvKnob] = {
    "scheduler": EnvKnob(
        SCHEDULER_ENV_VAR, "adaptive", SCHEDULER_NAMES, "scheduler backend"
    ),
    "routing": EnvKnob(
        ROUTING_ENV_VAR, "single", ROUTING_NAMES, "routing policy"
    ),
    "telemetry": EnvKnob(
        TELEMETRY_ENV_VAR, "off", TELEMETRY_MODES, "telemetry mode"
    ),
    "telemetry_dir": EnvKnob(
        TELEMETRY_DIR_ENV_VAR, "", None, "telemetry directory"
    ),
    "lossless": EnvKnob(
        LOSSLESS_ENV_VAR, "off", LOSSLESS_MODES, "lossless fabric mode"
    ),
    "batch": EnvKnob(
        BATCH_ENV_VAR, "on", ONOFF, "hot-loop batching mode"
    ),
    "compiled": EnvKnob(
        COMPILED_ENV_VAR, "off", ONOFF, "compiled kernel core mode"
    ),
    "shards": EnvKnob(
        SHARDS_ENV_VAR,
        "",  # unset: serial, single-simulator runs
        None,
        "shard count",
        check=_positive_int("shard count"),
    ),
}


def current(knob: str) -> str:
    """The knob's effective value: its env var if set (validated, with
    the variable named in the error), else its default."""
    spec = KNOBS[knob]
    raw = os.environ.get(spec.var, "")
    if not raw:
        return spec.default
    try:
        return spec.validate(raw)
    except ValueError as exc:
        raise ValueError(f"${spec.var}: {exc}") from None


def scheduler_name() -> str:
    """Effective default scheduler backend (``adaptive`` when unset)."""
    return current("scheduler")


def routing_name() -> str:
    """Effective default routing policy (``single`` when unset)."""
    return current("routing")


def telemetry_mode() -> str:
    """Effective telemetry mode (``off`` when unset)."""
    return current("telemetry")


def telemetry_dir() -> Optional[str]:
    """Telemetry export directory, or None when not configured."""
    return current("telemetry_dir") or None


def lossless_mode() -> str:
    """Effective lossless-fabric mode (``off`` when unset)."""
    return current("lossless")


def batch_mode() -> str:
    """Effective hot-loop batching mode (``on`` when unset)."""
    return current("batch")


def compiled_mode() -> str:
    """Effective compiled-core mode (``off`` when unset)."""
    return current("compiled")


def shard_count() -> Optional[int]:
    """Requested shard count, or None for serial (the default)."""
    value = current("shards")
    return int(value) if value else None


class _EnvContext:
    """Pin a set of (var, value) pairs; restore previous values on exit."""

    __slots__ = ("_pins", "_saved")

    def __init__(self, pins: Dict[str, str]):
        self._pins = pins
        self._saved: Dict[str, Optional[str]] = {}

    def __enter__(self) -> "_EnvContext":
        for var, value in self._pins.items():
            self._saved[var] = os.environ.get(var)
            os.environ[var] = value
        return self

    def __exit__(self, *exc_info) -> None:
        for var, previous in self._saved.items():
            if previous is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = previous
        self._saved.clear()


def env(
    scheduler: Optional[str] = None,
    routing: Optional[str] = None,
    telemetry: Optional[str] = None,
    telemetry_dir: Optional[str] = None,
    lossless: Optional[str] = None,
    batch: Optional[str] = None,
    compiled: Optional[str] = None,
    shards: Optional[str] = None,
) -> _EnvContext:
    """Pin any subset of the ``REPRO_*`` knobs while a block runs.

    Values are validated *eagerly* (a typo raises at the call site, not
    inside the block); ``None`` knobs are left untouched, so
    ``with env():`` is a no-op.  Previous values — including "unset" —
    are restored on exit, and child worker processes started inside the
    block inherit the pinned values.
    """
    requested = {
        "scheduler": scheduler,
        "routing": routing,
        "telemetry": telemetry,
        "telemetry_dir": telemetry_dir,
        "lossless": lossless,
        "batch": batch,
        "compiled": compiled,
        "shards": shards,
    }
    pins: Dict[str, str] = {}
    for knob, value in requested.items():
        if value is None:
            continue
        spec = KNOBS[knob]
        pins[spec.var] = spec.validate(value)
    return _EnvContext(pins)
