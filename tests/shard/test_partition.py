"""Partition plans: validation, ownership, and name-convention pinning."""

import pytest

from repro.experiments.common import derive_cell_seed
from repro.net.topology import fat_tree
from repro.sim.shard import (
    ShardContext,
    ShardError,
    ShardPlan,
    plan_fat_tree,
    shard_seed,
)
from repro.sim.units import microseconds


# ----------------------------------------------------------------------
# ShardPlan validation and queries
# ----------------------------------------------------------------------
def test_plan_fat_tree_shape():
    plan = plan_fat_tree(k=4, pod_shards=2)
    assert plan.pod_shards == 2
    assert plan.core_shard == 2
    assert plan.total_shards == 3
    assert len(plan.pods) == 4
    assert len(plan.core) == 4  # (k/2)^2 core switches
    # Contiguous blocks: pods 0-1 -> shard 0, pods 2-3 -> shard 1.
    assert plan.pod_to_shard == (0, 0, 1, 1)
    assert plan.pods_of(0) == (0, 1)
    assert plan.pods_of(plan.core_shard) == ()


def test_plan_owner_of_covers_every_name():
    plan = plan_fat_tree(k=4, pod_shards=4)
    assert plan.owner_of("H1") == 0
    assert plan.owner_of("H16") == 3
    assert plan.owner_of("A2_1") == 2
    assert plan.owner_of("C1_0") == plan.core_shard
    with pytest.raises(ShardError, match="not covered"):
        plan.owner_of("H99")
    # members_of partitions the name set exactly.
    everything = set()
    for shard in range(plan.total_shards):
        members = plan.members_of(shard)
        assert everything.isdisjoint(members)
        everything.update(members)
    assert everything == set(plan._owner_map)


def test_plan_validation_rejects_bad_shapes():
    with pytest.raises(ShardError, match="lookahead"):
        ShardPlan(pods=(("H1",),), core=(), pod_to_shard=(0,), lookahead_ns=0)
    with pytest.raises(ShardError, match="every pod"):
        ShardPlan(
            pods=(("H1",), ("H2",)), core=(), pod_to_shard=(0,),
            lookahead_ns=1,
        )
    with pytest.raises(ShardError, match="contiguous"):
        ShardPlan(
            pods=(("H1",), ("H2",)), core=(), pod_to_shard=(0, 2),
            lookahead_ns=1,
        )
    with pytest.raises(ShardError, match="arity"):
        plan_fat_tree(k=3)
    with pytest.raises(ShardError, match="pod_shards"):
        plan_fat_tree(k=4, pod_shards=5)


@pytest.mark.parametrize("k", (4, 8))
def test_plan_names_match_fat_tree_builder(k):
    """The plan's name convention is pinned against the real topology."""
    plan = plan_fat_tree(k=k, pod_shards=2)
    topo = fat_tree(k=k)
    assert len(plan.pods) == len(topo.pod_members)
    for pod, members in enumerate(topo.pod_members):
        assert set(plan.pods[pod]) == set(members)
    assert set(plan.core) == set(topo.core_members)
    # Together they cover the whole fabric, with nothing unowned.
    assert set(plan._owner_map) == {
        node.name for node in topo.network.nodes
    }


def test_default_lookahead_matches_builder_link_delay():
    assert plan_fat_tree().lookahead_ns == microseconds(5)


# ----------------------------------------------------------------------
# ShardContext
# ----------------------------------------------------------------------
def test_context_ownership_and_serial():
    plan = plan_fat_tree(k=4, pod_shards=2)
    serial = ShardContext(plan, None)
    assert serial.serial
    assert serial.owns("H1") and serial.owns("C0_0")
    shard0 = ShardContext(plan, 0)
    assert shard0.owns("H1") and not shard0.owns("H16")
    core = ShardContext(plan, plan.core_shard)
    assert core.owns("C0_0") and not core.owns("H1")
    with pytest.raises(ShardError, match="out of range"):
        ShardContext(plan, 3)


# ----------------------------------------------------------------------
# Seeding (satellite: derive_cell_seed reuse)
# ----------------------------------------------------------------------
def test_shard_seed_reuses_runner_identity_hash():
    """shard_seed is derive_cell_seed under a 'shard' namespace."""
    assert shard_seed(7, "pod", 3) == derive_cell_seed(7, "shard", "pod", 3)
    # The namespace prefix keeps shard streams disjoint from runner cell
    # streams drawn from the same root seed.
    assert shard_seed(7, "pod", 3) != derive_cell_seed(7, "pod", 3)


def test_shard_seed_depends_on_identity_not_order():
    """Mirror of the runner's cell-seed test, for shard streams."""
    a = shard_seed(1, "pod", 0)
    b = shard_seed(1, "pod", 1)
    assert a != b
    # Stable across calls.
    assert a == shard_seed(1, "pod", 0)
    # Different root seeds give different streams.
    assert a != shard_seed(2, "pod", 0)


@pytest.mark.parametrize("pod_shards", (1, 2, 4))
def test_seed_for_is_invariant_across_shard_counts(pod_shards):
    """Seeds key on pod identity, so regrouping pods never moves them."""
    plan = plan_fat_tree(k=4, pod_shards=pod_shards)
    reference = ShardContext(plan_fat_tree(k=4, pod_shards=2), None, 5)
    for pod in range(4):
        ctx = ShardContext(plan, plan.pod_to_shard[pod], root_seed=5)
        assert ctx.seed_for("pod", pod) == reference.seed_for("pod", pod)
