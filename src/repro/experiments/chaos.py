"""Chaos scenarios — TFC recovery under every fault primitive.

The robustness claim behind the paper's recovery machinery (delimiter
re-election, window re-acquisition, token re-learning) is testable: under
any single fault, a TFC dumbbell should reconverge to at least 90% of its
pre-fault aggregate goodput without ever breaking a control-loop
invariant.  This driver runs that experiment for one fault or the whole
catalogue, with the :class:`~repro.faults.InvariantMonitor` attached
throughout, and reports time-to-reconverge, goodput dip depth, and
post-fault timeouts per fault.

Every run is deterministic: topology, workload and fault schedule all
derive from the single scenario seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..config import telemetry_dir as _configured_telemetry_dir
from ..faults import (
    FaultInjector,
    FaultRecord,
    InvariantMonitor,
    RecoveryReport,
    Violation,
    measure_recovery,
)
from ..metrics.samplers import RateSampler, Series
from ..net.topology import dumbbell
from ..obs import drain_pending as _drain_telemetry
from ..obs import install as _install_telemetry
from ..sim.units import microseconds, milliseconds
from ..transport.registry import open_flow
from .common import build_topology, format_table

# The complete fault catalogue exercised by run_all / the acceptance test.
FAULT_KINDS = (
    "link_flap",
    "degrade",
    "burst_loss",
    "ack_loss",
    "switch_reset",
    "delimiter_kill",
    "host_pause",
)


@dataclass
class ChaosResult:
    """Outcome of one chaos scenario run."""

    fault: str
    seed: int
    report: RecoveryReport
    violations: List[Violation] = field(default_factory=list)
    records: List[FaultRecord] = field(default_factory=list)
    goodput_series: Series = field(default_factory=list)
    invariant_checks: int = 0
    telemetry_paths: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Recovered to threshold with zero invariant violations."""
        return self.report.recovered and not self.violations


def _inject(
    fault: str,
    injector: FaultInjector,
    topo,
    senders,
    at_ns: int,
    duration_ns: int,
) -> int:
    """Schedule ``fault`` and return the settle time (ns after onset
    before recovery may be declared — the fault window for faults with a
    cure event, 0 for one-shot faults)."""
    switch = topo.switches[0]
    bottleneck = topo.bottleneck()
    if fault == "link_flap":
        # Cut sender 0's access cable; the other flows absorb its share.
        injector.link_flap(topo.host(0).ports[0], at_ns, duration_ns)
        return duration_ns
    if fault == "degrade":
        # Bottleneck serialises at half rate; tokens must shrink to match
        # and then re-grow once the optics recover.
        injector.degrade_link(bottleneck, 0.5, at_ns, duration_ns)
        return duration_ns
    if fault == "burst_loss":
        injector.burst_loss(bottleneck, at_ns, duration_ns)
        return duration_ns
    if fault == "ack_loss":
        # Drop pure ACKs heading back to sender 0 (one-way loss).
        injector.ack_loss(switch.ports[0], at_ns, duration_ns)
        return duration_ns
    if fault == "switch_reset":
        injector.reset_switch(switch, at_ns)
        return 0
    if fault == "delimiter_kill":
        # Silent death of the slot-defining flow: no FIN, so the agent
        # must re-elect from the silence backoff.
        injector.kill_delimiter(bottleneck, senders, at_ns)
        return 0
    if fault == "host_pause":
        injector.pause_host(topo.host(0), at_ns, duration_ns)
        return duration_ns
    raise ValueError(f"unknown fault {fault!r}; choose from {FAULT_KINDS}")


def run_chaos(
    fault: str,
    n_flows: int = 4,
    seed: int = 1,
    warmup_ns: int = milliseconds(60),
    fault_ns: int = milliseconds(20),
    tail_ns: int = milliseconds(120),
    threshold: float = 0.9,
    sample_interval_ns: int = microseconds(500),
    buffer_bytes: int = 256_000,
    raise_on_violation: bool = False,
    telemetry_dir: Optional[str] = None,
) -> ChaosResult:
    """Run one fault scenario on a TFC dumbbell and measure recovery.

    ``n_flows`` long-lived flows warm up for ``warmup_ns``, the fault
    fires, and the run continues for ``tail_ns`` past the fault window.
    Aggregate goodput across all receivers is the recovery signal.

    ``telemetry_dir`` records full telemetry (metrics + slot timelines +
    flight recorder, with invariant counters, the goodput timeline and
    the recovery report folded into the registry) and exports it there
    labelled ``chaos_{fault}_{seed}``; ``$REPRO_TELEMETRY`` attaches the
    same machinery through :func:`~repro.experiments.common.build_topology`.
    """
    topo = build_topology(
        dumbbell,
        "tfc",
        buffer_bytes=buffer_bytes,
        n_senders=n_flows,
        seed=seed,
    )
    net = topo.network
    if telemetry_dir is not None and net.telemetry is None:
        _install_telemetry(net, "full", dump_dir=telemetry_dir)
    session = net.telemetry
    registry = session.registry if session is not None else None
    receiver_host = topo.host(n_flows)  # first (only) receiver
    senders = [
        open_flow(topo.host(i), receiver_host, "tfc") for i in range(n_flows)
    ]

    sampler = RateSampler(
        net.sim,
        lambda: sum(s.receiver.bytes_received for s in senders),
        sample_interval_ns,
        label="aggregate",
    )
    monitor = InvariantMonitor(
        net, raise_on_violation=raise_on_violation, registry=registry
    )
    injector = FaultInjector(net)
    settle_ns = _inject(fault, injector, topo, senders, warmup_ns, fault_ns)

    # Snapshot the timeout counters at fault onset so the report only
    # counts timeouts the fault (or the recovery from it) caused.
    timeouts_at_fault = {"n": 0}

    def snapshot() -> None:
        timeouts_at_fault["n"] = sum(s.stats.timeouts for s in senders)

    net.sim.schedule_at(warmup_ns, snapshot)

    net.sim.run(until_ns=warmup_ns + fault_ns + tail_ns)
    sampler.stop()
    monitor.detach()

    post_fault_timeouts = (
        sum(s.stats.timeouts for s in senders) - timeouts_at_fault["n"]
    )
    report = measure_recovery(
        sampler.series,
        fault_start_ns=warmup_ns,
        threshold=threshold,
        settle_ns=settle_ns,
        post_fault_timeouts=post_fault_timeouts,
    )
    telemetry_paths: List[str] = []
    if session is not None:
        sampler.register(registry, "chaos.goodput_bps")
        report.register(registry)
        session.detach()
        _drain_telemetry()  # this run's session is exported right here
        export_dir = telemetry_dir or _configured_telemetry_dir()
        if export_dir:
            telemetry_paths = session.export(
                export_dir, f"chaos_{fault}_{seed}"
            )
    return ChaosResult(
        fault=fault,
        seed=seed,
        report=report,
        violations=list(monitor.violations),
        records=list(injector.records),
        goodput_series=sampler.series,
        invariant_checks=monitor.checks_run,
        telemetry_paths=telemetry_paths,
    )


def run_all(seed: int = 1, **kwargs) -> List[ChaosResult]:
    """Run the full fault catalogue (one isolated run per fault)."""
    return [run_chaos(fault, seed=seed, **kwargs) for fault in FAULT_KINDS]


def main(argv=None) -> None:
    """CLI entry: run every fault and print the recovery table."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.chaos",
        description="Run the chaos fault catalogue on a TFC dumbbell.",
    )
    parser.add_argument("--seed", type=int, default=1, help="scenario seed")
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="export full telemetry (metrics/slots/flight) per fault into DIR",
    )
    args = parser.parse_args(argv)

    results = run_all(seed=args.seed, telemetry_dir=args.telemetry)
    rows = []
    for result in results:
        report = result.report
        ttr = report.time_to_reconverge_ns
        rows.append(
            [
                result.fault,
                f"{report.baseline / 1e9:.3f}",
                f"{report.dip_depth * 100:.0f}%",
                "never" if ttr is None else f"{ttr / 1e6:.2f}",
                str(report.post_fault_timeouts),
                str(len(result.violations)),
            ]
        )
    print(
        format_table(
            [
                "fault",
                "baseline Gbps",
                "dip",
                "reconverge ms",
                "timeouts",
                "violations",
            ],
            rows,
        )
    )
    clean = sum(1 for r in results if r.clean)
    print(f"\n{clean}/{len(results)} faults recovered cleanly")


if __name__ == "__main__":
    main()
