"""Cross-cutting TFC invariants observed through the tracer."""

from repro.net.packet import MSS
from repro.net.topology import dumbbell
from repro.sim.trace import (
    TFC_ACK_DELAYED,
    TFC_DELIMITER_ELECTED,
    TFC_WINDOW_UPDATE,
)
from repro.sim.units import seconds
from repro.transport.base import FlowState
from repro.transport.registry import configure_network, open_flow, queue_factory_for


def tfc_topo(n, params=None):
    topo = dumbbell(n_senders=n, queue_factory=queue_factory_for("tfc", 256_000))
    configure_network(topo.network, "tfc", params)
    return topo


def test_window_updates_happen_every_slot():
    topo = tfc_topo(3)
    receiver = topo.hosts[-1]
    for host in topo.hosts[:3]:
        open_flow(host, receiver, "tfc")
    topo.network.run_for(seconds(0.2))
    # Slots are one RTT (~110 us); 0.2 s should see thousands of updates
    # across the agents.
    assert topo.network.tracer.count(TFC_WINDOW_UPDATE) > 500


def test_delimiter_elected_once_per_port_in_steady_state():
    topo = tfc_topo(3)
    receiver = topo.hosts[-1]
    for host in topo.hosts[:3]:
        open_flow(host, receiver, "tfc")
    topo.network.run_for(seconds(0.3))
    # Steady long flows: elections happen at startup and then stay put
    # (re-election churn would show up as a large count).
    assert topo.network.tracer.count(TFC_DELIMITER_ELECTED) <= 2 * len(
        [p for sw in topo.switches for p in sw.ports]
    )


def test_delimiter_reelected_after_fin():
    topo = tfc_topo(2)
    receiver = topo.hosts[-1]
    first = open_flow(topo.hosts[0], receiver, "tfc", size_bytes=200_000)
    open_flow(topo.hosts[1], receiver, "tfc")
    topo.network.run_for(seconds(0.5))
    assert first.state is FlowState.DONE
    agent = topo.bottleneck("main").agent
    # The surviving flow must have taken over as delimiter and windows
    # keep updating.
    assert agent.delimiter_key is not None
    assert agent.delimiter_key != first.flow_key
    before = agent.slot_index
    topo.network.run_for(seconds(0.05))
    assert agent.slot_index > before


def test_sub_mss_regime_engages_delay_function():
    topo = tfc_topo(40)
    receiver = topo.hosts[-1]
    for host in topo.hosts[:40]:
        open_flow(host, receiver, "tfc")
    topo.network.run_for(seconds(0.3))
    agent = topo.bottleneck("main").agent
    assert agent.window < MSS  # allocation genuinely sub-MSS
    assert topo.network.tracer.count(TFC_ACK_DELAYED) > 0
    assert agent.delay_arbiter.dropped_acks == 0
    assert topo.network.total_drops() == 0


def test_tokens_track_bdp_in_steady_state():
    topo = tfc_topo(4)
    receiver = topo.hosts[-1]
    for host in topo.hosts[:4]:
        open_flow(host, receiver, "tfc")
    topo.network.run_for(seconds(0.5))
    agent = topo.bottleneck("main").agent
    from repro.sim.units import bandwidth_delay_product

    bdp = bandwidth_delay_product(agent.rate_bps, agent.rttb_ns)
    assert 0.5 * bdp <= agent.tokens <= 3 * bdp


def test_total_grants_per_slot_bounded_by_tokens():
    """The core token invariant, sampled over many slots."""
    topo = tfc_topo(6)
    receiver = topo.hosts[-1]
    for host in topo.hosts[:6]:
        open_flow(host, receiver, "tfc")
    agent = topo.bottleneck("main").agent
    violations = []

    def check(agent=None):
        if agent is topo.bottleneck("main").agent:
            # granted_bytes was just reset; check the previous slot's
            # published allocation instead: E * W <= T + one quantum.
            total = agent.published_e * agent.window
            if total > agent.tokens + MSS:
                violations.append((total, agent.tokens))

    topo.network.tracer.subscribe(TFC_WINDOW_UPDATE, check)
    topo.network.run_for(seconds(0.3))
    assert not violations
