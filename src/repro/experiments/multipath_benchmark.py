"""The Fig. 13 empirical workload on a multi-path fat tree.

The paper's benchmark mix (query fan-in, short messages, heavy-tailed
background flows) was evaluated on single-path topologies; this module
replays it on a k-ary fat tree per routing policy, which is the setting
the paper's §6.3 argues for but the original testbed could not build.
The questions it answers:

* does TFC's FCT advantage over DCTCP survive ECMP hash collisions and
  the resulting path asymmetry?
* what does per-packet spraying (maximal reordering) cost each
  protocol?  TFC's RM round accounting and the receivers' out-of-order
  reassembly both get exercised for real here.

Scalars mirror :mod:`repro.experiments.fig13_benchmark` (query FCT
tails, background p99.9 per size bucket, completion fraction) so the
two are directly comparable, plus the fabric-level drop count.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..metrics.fct import FctCollector
from ..net.topology import fat_tree
from ..sim.units import MILLISECOND, seconds
from ..workloads.empirical import BenchmarkWorkload
from .common import ExperimentResult, build_topology
from .fig13_benchmark import BenchmarkResult


def run_multipath_benchmark(
    protocol: str,
    routing: str = "ecmp",
    k: int = 4,
    duration_s: float = 2.0,
    drain_s: float = 1.0,
    query_rate_per_s: float = 200.0,
    query_fanin: Optional[int] = None,
    short_rate_per_s: float = 30.0,
    background_rate_per_s: float = 30.0,
    min_rto_ns: int = 200 * MILLISECOND,
    seed: int = 0,
) -> BenchmarkResult:
    """Run the benchmark workload on a fat tree under ``routing``.

    Defaults match the testbed-scale Fig. 13 run (same rates, same
    200 ms min-RTO) so differences against the single-path numbers are
    attributable to the fabric and the policy, not the workload.
    """
    topo = build_topology(
        fat_tree,
        protocol,
        buffer_bytes=256_000,
        k=k,
        seed=seed,
        routing=routing,
    )
    fanin = query_fanin if query_fanin is not None else min(
        6, len(topo.hosts) - 1
    )
    collector = FctCollector()
    workload = BenchmarkWorkload(
        topo.hosts,
        protocol,
        duration_ns=seconds(duration_s),
        query_rate_per_s=query_rate_per_s,
        query_fanin=fanin,
        short_rate_per_s=short_rate_per_s,
        background_rate_per_s=background_rate_per_s,
        min_rto_ns=min_rto_ns,
        seed_name=f"benchmark:fattree{k}:{routing}:{seed}",
        collector=collector,
    )
    topo.network.run_for(seconds(duration_s + drain_s))
    return BenchmarkResult(
        protocol=protocol,
        collector=collector,
        flows_launched=workload.flows_launched,
        drops=topo.network.total_drops(),
    )


def run_multipath_cell(
    protocol: str,
    routing: str = "ecmp",
    k: int = 4,
    duration_s: float = 2.0,
    drain_s: float = 1.0,
    min_rto_ns: int = 200 * MILLISECOND,
    seed: int = 0,
) -> ExperimentResult:
    """Picklable cell adapter for the parallel runner."""
    res = run_multipath_benchmark(
        protocol,
        routing=routing,
        k=k,
        duration_s=duration_s,
        drain_s=drain_s,
        min_rto_ns=min_rto_ns,
        seed=seed,
    )
    scalars = {
        "flows_launched": float(res.flows_launched),
        "completed": float(res.collector.completed()),
        "completion_fraction": res.completion_fraction(),
        "drops": float(res.drops),
        "total_timeouts": float(res.collector.total_timeouts()),
    }
    if res.collector.completed("query"):
        for key, value in res.query_summary_us().items():
            scalars[f"query_fct_us:{key}"] = value
    for bucket, value in res.background_p999_us().items():
        scalars[f"bg_p999_us:{bucket}"] = value
    records = sorted(
        (r.category, r.size_bytes, r.fct_ns, r.timeouts)
        for r in res.collector.records
    )
    return ExperimentResult(
        name=f"mpath:fattree{k}:{routing}:{protocol}:seed{seed}",
        protocol=protocol,
        scalars=scalars,
        series={"fct_records": records},
    )


def run_grid(
    protocols: Sequence[str] = ("tfc", "dctcp"),
    routings: Sequence[str] = ("single", "ecmp", "flowlet", "spray"),
    **kwargs,
) -> Dict[str, BenchmarkResult]:
    """TFC vs DCTCP across every policy (keys ``<protocol>/<routing>``)."""
    return {
        f"{protocol}/{routing}": run_multipath_benchmark(
            protocol, routing=routing, **kwargs
        )
        for protocol in protocols
        for routing in routings
    }
