"""Pluggable event-scheduler backends for :class:`repro.sim.engine.Simulator`.

Three interchangeable backends, all bit-identical in pop order (enforced
by ``tests/sim/test_golden_determinism.py`` and the cross-backend
differential fuzz in ``tests/sim/test_sched_backends.py``):

* ``heap``     — the PR-2 tuple heap; O(log n), lowest constant factors,
                 best for small event populations (the default start).
* ``calendar`` — adaptive-width calendar queue; amortised O(1), best for
                 large mixed populations.
* ``wheel``    — hierarchical timer wheel; O(1) schedule, best for heavy
                 armed-then-cancelled timer churn (RTO / delayed-ACK).

``adaptive`` (the default policy) is not a backend class: the simulator
starts on the heap and migrates the live population to the calendar queue
once it crosses a threshold — see ``Simulator`` in :mod:`repro.sim.engine`.

Selection: ``Simulator(scheduler=...)`` takes a name or an instance; the
``REPRO_SCHEDULER`` environment variable sets the default for simulators
constructed without an explicit choice (how the experiment runner and CI
shards select a backend process-wide).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from .base import Scheduler
from .calendar import CalendarScheduler
from .heap import HeapScheduler
from .wheel import TimerWheelScheduler

#: Name -> backend class (``adaptive`` is a Simulator policy, not a class).
SCHEDULER_BACKENDS = {
    "heap": HeapScheduler,
    "calendar": CalendarScheduler,
    "wheel": TimerWheelScheduler,
}

#: Every accepted value for Simulator(scheduler=...) / REPRO_SCHEDULER.
SCHEDULER_NAMES = ("adaptive",) + tuple(sorted(SCHEDULER_BACKENDS))


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a backend by name (``adaptive`` is rejected here)."""
    try:
        backend = SCHEDULER_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler backend {name!r}; "
            f"choose from {', '.join(SCHEDULER_NAMES)}"
        ) from None
    return backend()


@contextmanager
def scheduler_env(name: Optional[str]) -> Iterator[None]:
    """Pin ``REPRO_SCHEDULER`` while the block runs (None = no-op).

    For code paths that build their own :class:`Simulator` internally
    (topology builders, figure cells) and therefore cannot take a
    ``scheduler=`` argument directly.  Restores the previous value on
    exit.  Child worker processes forked/spawned inside the block
    inherit the pinned value.
    """
    if name is None:
        yield
        return
    if name not in SCHEDULER_NAMES:
        raise ValueError(
            f"unknown scheduler backend {name!r}; "
            f"choose from {', '.join(SCHEDULER_NAMES)}"
        )
    saved = os.environ.get("REPRO_SCHEDULER")
    os.environ["REPRO_SCHEDULER"] = name
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_SCHEDULER", None)
        else:
            os.environ["REPRO_SCHEDULER"] = saved


__all__ = [
    "Scheduler",
    "HeapScheduler",
    "CalendarScheduler",
    "TimerWheelScheduler",
    "SCHEDULER_BACKENDS",
    "SCHEDULER_NAMES",
    "make_scheduler",
    "scheduler_env",
]
