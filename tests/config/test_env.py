"""The consolidated REPRO_* environment surface and its legacy shims."""

import os

import pytest

from repro.config import (
    KNOBS,
    LOSSLESS_MODES,
    ROUTING_NAMES,
    SCHEDULER_NAMES,
    TELEMETRY_MODES,
    current,
    env,
    lossless_mode,
    routing_name,
    scheduler_name,
    telemetry_dir,
    telemetry_mode,
)


def test_knob_table_covers_every_surface():
    assert set(KNOBS) == {
        "scheduler", "routing", "telemetry", "telemetry_dir", "lossless",
        "batch", "compiled", "shards",
    }
    assert KNOBS["scheduler"].names == SCHEDULER_NAMES
    assert KNOBS["routing"].names == ROUTING_NAMES
    assert KNOBS["telemetry"].names == TELEMETRY_MODES
    assert KNOBS["telemetry_dir"].names is None  # free-form path
    assert KNOBS["lossless"].names == LOSSLESS_MODES
    assert KNOBS["batch"].names == ("on", "off")
    assert KNOBS["compiled"].names == ("on", "off")
    assert KNOBS["shards"].names is None  # a count, checked not enumerated
    assert KNOBS["shards"].var == "REPRO_SHARDS"


def test_defaults_when_unset(monkeypatch):
    for knob in KNOBS.values():
        monkeypatch.delenv(knob.var, raising=False)
    assert scheduler_name() == "adaptive"
    assert routing_name() == "single"
    assert telemetry_mode() == "off"
    assert telemetry_dir() is None
    assert lossless_mode() == "off"
    assert current("batch") == "on"
    assert current("compiled") == "off"


def test_current_validates_and_names_the_variable(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "bogus")
    with pytest.raises(ValueError, match=r"\$REPRO_SCHEDULER"):
        current("scheduler")
    with pytest.raises(ValueError, match="unknown scheduler backend"):
        current("scheduler")


def test_env_pins_and_restores(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "heap")
    monkeypatch.delenv("REPRO_ROUTING", raising=False)
    with env(scheduler="calendar", routing="ecmp", telemetry="full",
             telemetry_dir="/tmp/t"):
        assert os.environ["REPRO_SCHEDULER"] == "calendar"
        assert os.environ["REPRO_ROUTING"] == "ecmp"
        assert os.environ["REPRO_TELEMETRY"] == "full"
        assert os.environ["REPRO_TELEMETRY_DIR"] == "/tmp/t"
    assert os.environ["REPRO_SCHEDULER"] == "heap"  # previous value back
    assert "REPRO_ROUTING" not in os.environ  # unset restored to unset
    assert "REPRO_TELEMETRY" not in os.environ


def test_env_none_knobs_are_untouched(monkeypatch):
    monkeypatch.setenv("REPRO_ROUTING", "spray")
    with env(scheduler="heap"):
        assert os.environ["REPRO_ROUTING"] == "spray"
    with env():  # a no-op context
        pass


def test_env_validates_eagerly():
    context = None
    with pytest.raises(ValueError, match="unknown scheduler backend"):
        context = env(scheduler="bogus")
    assert context is None  # raised before the block could even start
    with pytest.raises(ValueError, match="unknown routing policy"):
        env(routing="bogus")
    with pytest.raises(ValueError, match="unknown telemetry mode"):
        env(telemetry="bogus")


def test_shard_count_knob(monkeypatch):
    from repro.config import shard_count

    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    assert shard_count() is None  # unset: serial
    with env(shards="4"):
        assert os.environ["REPRO_SHARDS"] == "4"
        assert shard_count() == 4
    assert "REPRO_SHARDS" not in os.environ
    monkeypatch.setenv("REPRO_SHARDS", "2")
    assert shard_count() == 2
    for bogus in ("zero", "0", "-3", "2.5"):
        monkeypatch.setenv("REPRO_SHARDS", bogus)
        with pytest.raises(ValueError, match=r"\$REPRO_SHARDS"):
            shard_count()
    with pytest.raises(ValueError, match="positive integer"):
        env(shards="nope")  # eager validation, like every other knob


def test_env_restores_on_exception(monkeypatch):
    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    with pytest.raises(RuntimeError):
        with env(scheduler="heap"):
            raise RuntimeError("boom")
    assert "REPRO_SCHEDULER" not in os.environ


# ----------------------------------------------------------------------
# Legacy shims
# ----------------------------------------------------------------------
def test_scheduler_env_shim(monkeypatch):
    from repro.sim.sched import scheduler_env

    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    with scheduler_env("wheel"):
        assert os.environ["REPRO_SCHEDULER"] == "wheel"
    assert "REPRO_SCHEDULER" not in os.environ
    with pytest.raises(ValueError, match="unknown scheduler backend"):
        scheduler_env("bogus")


def test_routing_env_shim(monkeypatch):
    from repro.routing import routing_env

    monkeypatch.delenv("REPRO_ROUTING", raising=False)
    with routing_env("flowlet"):
        assert os.environ["REPRO_ROUTING"] == "flowlet"
    assert "REPRO_ROUTING" not in os.environ
    with pytest.raises(ValueError, match="unknown routing policy"):
        routing_env("bogus")
