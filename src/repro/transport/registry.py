"""Protocol registry: protocol-owned fabric hooks plus the flow opener.

Experiments want one call that wires up a flow of a given protocol between
two hosts, and one chokepoint that prepares a network for that protocol.
The registry hosts both, behind a plugin-style :class:`Protocol` spec:

* ``Protocol.queue_factory(buffer_bytes, rate_bps)`` — build the switch
  port queue discipline the protocol expects (drop-tail, ECN-marking,
  per-flow backpressure queues...).
* ``Protocol.install(network, params)`` — install the protocol's switch
  behaviour (TFC token agents, PFC lossless fabric, BFC per-flow pause,
  FairQ fair-share marking) after the topology is wired.
* ``Protocol.params_cls`` / ``default_params`` — the typed per-protocol
  parameter slot both hooks receive.
* Capability surface (``supports_weight``, ``monitor_invariants``) for
  the few call sites that must know *what* a protocol can do without
  knowing *which* protocol it is.

New transports register through :func:`register_protocol` — experiments
and tests can add entries without editing this module, and a registered
name is immediately valid everywhere a transport name is accepted
(scenario ``transport:``/``fabric:`` fields, ``SimConfig.transport``,
the runner's ``--scenario-transports`` sweep).

:func:`queue_factory_for` and :func:`configure_network` survive as thin
deprecated shims delegating to the hooks above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Type

from ..net.host import Host
from ..net.network import Network
from ..net.queues import DropTailQueue, EcnQueue
from ..sim.units import MILLISECOND
from .base import Receiver, Sender

DEFAULT_DCTCP_K_BYTES = 32_000  # paper: K = 32 KB on the 1 Gbps testbed


@dataclass(frozen=True)
class EcnParams:
    """Step-marking threshold for ECN-queue protocols (DCTCP's ``K``)."""

    ecn_threshold_bytes: int = DEFAULT_DCTCP_K_BYTES

    def __post_init__(self) -> None:
        if self.ecn_threshold_bytes <= 0:
            raise ValueError(
                f"ecn threshold must be positive, got {self.ecn_threshold_bytes}"
            )


@dataclass(frozen=True)
class Protocol:
    """Everything needed to run one transport protocol in a scenario.

    The two callables are the protocol-owned fabric hooks; both receive
    the resolved params object (an instance of ``params_cls``, or None
    for parameterless protocols):

    ``make_queue(params, buffer_bytes, rate_bps)``
        One switch-port queue.  None means plain drop-tail.
    ``installer(network, params)``
        Switch-side install (agents, fabrics).  None means the protocol
        is purely end-to-end.
    """

    name: str
    sender_cls: Type[Sender]
    receiver_cls: Type[Receiver]
    #: Human-readable label for report tables ("" = name.upper()).
    label: str = ""
    #: Typed per-protocol parameter slot.
    params_cls: Optional[type] = None
    default_params: Optional[object] = None
    make_queue: Optional[Callable[[object, int, int], DropTailQueue]] = None
    installer: Optional[Callable[[Network, object], object]] = None
    #: Capability surface — the only booleans call sites may consult.
    supports_weight: bool = False
    monitor_invariants: bool = False

    # ------------------------------------------------------------------
    @property
    def display_label(self) -> str:
        """Label for tables (explicit ``label`` or the uppercased name)."""
        return self.label or self.name.upper()

    def resolve_params(self, params: Optional[object] = None) -> Optional[object]:
        """Validate ``params`` against the typed slot (None = defaults)."""
        if params is None:
            return self.default_params
        if self.params_cls is None:
            raise TypeError(
                f"protocol {self.name!r} takes no params, got {params!r}"
            )
        if not isinstance(params, self.params_cls):
            raise TypeError(
                f"protocol {self.name!r} expects {self.params_cls.__name__} "
                f"params, got {type(params).__name__}"
            )
        return params

    def queue_factory(
        self,
        buffer_bytes: int,
        rate_bps: int,
        params: Optional[object] = None,
    ) -> DropTailQueue:
        """Build one switch-port queue for a port of ``rate_bps``."""
        params = self.resolve_params(params)
        if self.make_queue is None:
            return DropTailQueue(buffer_bytes)
        return self.make_queue(params, buffer_bytes, rate_bps)

    def port_queue_factory(
        self, buffer_bytes: int, params: Optional[object] = None
    ) -> Callable[[int], DropTailQueue]:
        """Adapter for topology builders: ``rate_bps -> queue``."""
        params = self.resolve_params(params)
        return lambda rate_bps: self.queue_factory(
            buffer_bytes, rate_bps, params
        )

    def install(
        self,
        network: Network,
        params: Optional[object] = None,
        pfc_params=None,
    ) -> None:
        """Install this protocol's switch behaviour on ``network``.

        Runs the protocol's own installer first (so a PFC wrapper, when
        one applies, wraps the protocol agent rather than the reverse),
        then the fabric-wide lossless layer: an explicit ``pfc_params``
        (a :class:`repro.net.pfc.PfcParams`, the pathology scenarios'
        knob) forces PFC regardless of protocol; otherwise the
        ``$REPRO_LOSSLESS`` environment knob decides.
        """
        params = self.resolve_params(params)
        if self.installer is not None:
            self.installer(network, params)
        if pfc_params is not None:
            from ..net.pfc import enable_pfc

            enable_pfc(network, pfc_params)
        elif getattr(network, "lossless", None) is None:
            from ..config import lossless_mode

            if lossless_mode() == "pfc":
                from ..net.pfc import enable_pfc

                enable_pfc(network)


# Populated lazily: repro.core imports this module (its endpoints subclass
# Sender/Receiver), so importing repro.core.sender at module scope here
# would be circular.
PROTOCOLS: Dict[str, Protocol] = {}


def _ecn_queue(params: EcnParams, buffer_bytes: int, rate_bps: int) -> EcnQueue:
    return EcnQueue(buffer_bytes, params.ecn_threshold_bytes)


def _ensure_registry() -> Dict[str, Protocol]:
    if not PROTOCOLS:
        from ..core.params import DEFAULT_PARAMS, TfcParams
        from ..core.sender import TfcReceiver, TfcSender
        from ..core.switch_agent import enable_tfc
        from ..net.bfc import BfcParams, enable_bfc, make_bfc_queue
        from ..net.fairq import FairqParams, enable_fairq, make_fairq_queue
        from ..net.pfc import PfcParams, enable_pfc
        from .bfc import BfcReceiver, BfcSender
        from .dctcp import DctcpReceiver, DctcpSender
        from .fairq import FairqReceiver, FairqSender
        from .newreno import NewRenoReceiver, NewRenoSender
        from .tbtcp import TbtcpParams, TbtcpReceiver, TbtcpSender, make_tbtcp_queue
        from .tracks import TracksReceiver, TracksSender

        PROTOCOLS["tcp"] = Protocol("tcp", NewRenoSender, NewRenoReceiver)
        PROTOCOLS["dctcp"] = Protocol(
            "dctcp",
            DctcpSender,
            DctcpReceiver,
            params_cls=EcnParams,
            default_params=EcnParams(),
            make_queue=_ecn_queue,
        )
        PROTOCOLS["tfc"] = Protocol(
            "tfc",
            TfcSender,
            TfcReceiver,
            params_cls=TfcParams,
            default_params=DEFAULT_PARAMS,
            installer=enable_tfc,
            supports_weight=True,
            monitor_invariants=True,
        )
        # The PFC baseline TFC argues against: a loss-based transport on
        # a fabric made lossless by hop-by-hop pausing (RoCE-style
        # deployments).  The endpoints are plain NewReno — with no drops
        # they simply never cut cwnd — and the switches do the pausing.
        # default_params=None: enable_pfc scales thresholds to the
        # network's buffer size when no explicit PfcParams is given.
        PROTOCOLS["pfc"] = Protocol(
            "pfc",
            NewRenoSender,
            NewRenoReceiver,
            label="TCP+PFC",
            params_cls=PfcParams,
            installer=enable_pfc,
        )
        # --- Baseline transports from the related work (DESIGN.md §6k) ---
        PROTOCOLS["bfc"] = Protocol(
            "bfc",
            BfcSender,
            BfcReceiver,
            label="TCP+BFC",
            params_cls=BfcParams,
            default_params=BfcParams(),
            make_queue=make_bfc_queue,
            installer=enable_bfc,
        )
        PROTOCOLS["tbtcp"] = Protocol(
            "tbtcp",
            TbtcpSender,
            TbtcpReceiver,
            label="TB-TCP",
            params_cls=TbtcpParams,
            default_params=TbtcpParams(),
            make_queue=make_tbtcp_queue,
        )
        PROTOCOLS["tracks"] = Protocol(
            "tracks",
            TracksSender,
            TracksReceiver,
            label="T-RACKs",
        )
        PROTOCOLS["fairq"] = Protocol(
            "fairq",
            FairqSender,
            FairqReceiver,
            label="FairQ",
            params_cls=FairqParams,
            default_params=FairqParams(),
            make_queue=make_fairq_queue,
            installer=enable_fairq,
        )
    return PROTOCOLS


def register_protocol(protocol: Protocol, replace: bool = False) -> Protocol:
    """Add ``protocol`` to the live registry (the public plugin point).

    The name becomes immediately valid everywhere transports are named:
    :func:`open_flow`, scenario ``transport:``/``fabric:`` fields,
    ``SimConfig.transport`` and the experiment runner's transport sweeps.
    Registering an existing name raises unless ``replace=True`` (tests
    overriding a baseline restore the original afterwards).
    """
    registry = _ensure_registry()
    if not replace and protocol.name in registry:
        raise ValueError(
            f"protocol {protocol.name!r} is already registered; "
            f"pass replace=True to override it"
        )
    registry[protocol.name] = protocol
    return protocol


def unregister_protocol(name: str) -> None:
    """Remove a registered protocol (test cleanup for late registrations)."""
    _ensure_registry().pop(name, None)


def registered_protocols() -> Tuple[str, ...]:
    """Sorted names currently in the live registry."""
    return tuple(sorted(_ensure_registry()))


def get_protocol(name: str) -> Protocol:
    """Look up a protocol by name with a helpful error.

    The error lists the *live* registry — late registrations via
    :func:`register_protocol` appear in it too.
    """
    registry = _ensure_registry()
    try:
        return registry[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; choose from {sorted(registry)}"
        ) from None


def resolve_legacy_params(
    spec: Protocol,
    params: Optional[object] = None,
    tfc_params=None,
    pfc_params=None,
    ecn_threshold_bytes: Optional[int] = None,
) -> Optional[object]:
    """Map the old per-protocol keyword soup onto the typed params slot.

    The only place allowed to branch on protocol parameter types: the
    deprecated ``tfc_params``/``pfc_params``/``ecn_threshold_bytes``
    keywords apply exactly when the protocol's params slot is of the
    matching type, and are ignored otherwise (as the old
    ``queue_factory_for`` / ``configure_network`` pair ignored them;
    a ``pfc_params`` on a non-PFC protocol still layers the lossless
    fabric via :meth:`Protocol.install`'s own keyword).
    """
    if params is not None:
        return spec.resolve_params(params)
    from ..core.params import TfcParams
    from ..net.pfc import PfcParams

    if tfc_params is not None and spec.params_cls is TfcParams:
        return spec.resolve_params(tfc_params)
    if pfc_params is not None and spec.params_cls is PfcParams:
        return spec.resolve_params(pfc_params)
    if (
        ecn_threshold_bytes is not None
        and spec.params_cls is EcnParams
        and ecn_threshold_bytes != DEFAULT_DCTCP_K_BYTES
    ):
        return EcnParams(ecn_threshold_bytes)
    return spec.default_params


def queue_factory_for(
    protocol: str,
    buffer_bytes: int,
    ecn_threshold_bytes: int = DEFAULT_DCTCP_K_BYTES,
) -> Callable[[int], DropTailQueue]:
    """Queue discipline the given protocol expects on switch ports.

    .. deprecated:: use ``get_protocol(name).port_queue_factory(...)``
       (or :func:`repro.experiments.common.build_topology`); kept as a
       thin shim for existing call sites.
    """
    spec = get_protocol(protocol)
    params = resolve_legacy_params(
        spec, ecn_threshold_bytes=ecn_threshold_bytes
    )
    return spec.port_queue_factory(buffer_bytes, params)


def configure_network(
    network: Network,
    protocol: str,
    tfc_params=None,
    pfc_params=None,
) -> None:
    """Install protocol-specific switch behaviour.

    .. deprecated:: use ``get_protocol(name).install(network, params)``;
       kept as a thin shim for existing call sites.
    """
    spec = get_protocol(protocol)
    params = resolve_legacy_params(
        spec, tfc_params=tfc_params, pfc_params=pfc_params
    )
    spec.install(network, params, pfc_params=pfc_params)


def open_flow(
    src: Host,
    dst: Host,
    protocol: str,
    size_bytes: Optional[int] = None,
    start_ns: Optional[int] = None,
    on_complete: Optional[Callable[[Sender], None]] = None,
    min_rto_ns: int = 10 * MILLISECOND,
    awnd_bytes: Optional[int] = None,
    weight: Optional[int] = None,
    tenant: Optional[str] = None,
) -> Sender:
    """Create a ``src -> dst`` flow and schedule its start.

    ``size_bytes=None`` makes the flow long-lived; ``start_ns=None`` starts
    it immediately.  ``weight`` selects the weighted allocation policy on
    transports whose spec declares ``supports_weight`` (today: TFC).
    ``tenant`` tags both endpoints for multi-tenant accounting (per-tenant
    goodput/FCT in ``repro.obs`` and ``repro.metrics.fct``).  Returns the
    sender (its ``stats`` carry everything the experiments measure; the
    receiver is reachable for tests via ``sender.receiver``).
    """
    spec = get_protocol(protocol)
    sport = src.allocate_port()
    dport = dst.allocate_port()
    common = {} if awnd_bytes is None else {"awnd_bytes": awnd_bytes}
    sender_kwargs = dict(common)
    if weight is not None:
        if not spec.supports_weight:
            raise ValueError(
                "weighted allocation is a TFC feature "
                f"({spec.name!r} does not support flow weights)"
            )
        sender_kwargs["weight"] = weight
    sender = spec.sender_cls(
        src,
        dst.node_id,
        dport,
        size_bytes=size_bytes,
        sport=sport,
        min_rto_ns=min_rto_ns,
        on_complete=on_complete,
        **sender_kwargs,
    )
    receiver = spec.receiver_cls(dst, sender.flow_key, **common)
    sender.receiver = receiver  # convenience back-reference for tests
    if tenant is not None:
        sender.tenant = tenant
        receiver.tenant = tenant
    if start_ns is None or start_ns <= src.sim.now:
        sender.start()
    else:
        src.sim.schedule_at(start_ns, sender.start)
    return sender
