"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark runs one paper figure's experiment at a reduced (but
representative) scale, prints the same rows/series the paper reports, and
registers the wall-clock cost with pytest-benchmark (single round — these
are measurements of simulated systems, not micro-benchmarks).

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def report():
    """Print a titled ASCII table after the benchmark body."""
    from repro.experiments.common import format_table

    def _report(title, headers, rows):
        print()
        print(f"=== {title} ===")
        print(format_table(headers, [[str(c) for c in row] for row in rows]))

    return _report
