"""Figure 15 — large-scale incast (10 Gbps, 512 KB buffers).

Paper: with block sizes 64/128/256 KB and up to 400 senders, TFC keeps
~90% link utilisation with timeouts "always around zero", while TCP's
throughput decays and flows suffer up to ~0.8 timeouts per block.

Scaled defaults: sender counts up to 200 and 2 rounds per point so the
sweep completes in minutes (paper-scale values are plain parameters).
"""

from conftest import run_once

from repro.experiments import run_fig15

SENDERS = (50, 100, 200)
BLOCKS = (64_000, 256_000)


def test_fig15_incast_large(benchmark, report):
    results = run_once(
        benchmark,
        run_fig15,
        sender_counts=SENDERS,
        block_sizes=BLOCKS,
        rounds=2,
    )

    rows = []
    for block in BLOCKS:
        for i, n in enumerate(SENDERS):
            row = [f"{block // 1000}KB", n]
            for proto in ("tfc", "tcp"):
                point = results[proto][block][i]
                row.append(f"{point.goodput_bps / 1e9:.2f}")
                row.append(f"{point.max_timeouts_per_block:.2f}")
            rows.append(row)
    report(
        "Fig. 15: large-scale incast, throughput (Gbps) and max timeouts/block",
        ["block", "senders", "TFC gput", "TFC TO/blk", "TCP gput", "TCP TO/blk"],
        rows,
    )

    for block in BLOCKS:
        for point in results["tfc"][block]:
            # TFC: near-zero loss at any fan-in (the headline claim).
            assert point.max_timeouts_per_block == 0
            assert point.drops == 0
    # TCP suffers timeouts at high fan-in.
    tcp_worst = results["tcp"][BLOCKS[0]][-1]
    assert tcp_worst.max_timeouts_per_block > 0
    # TFC beats TCP at the largest fan-in for each block size.
    for block in BLOCKS:
        assert (
            results["tfc"][block][-1].goodput_bps
            > results["tcp"][block][-1].goodput_bps
        )
