"""The runtime invariant monitor."""

import pytest

from repro.experiments.common import build_topology
from repro.faults import InvariantMonitor, InvariantViolation
from repro.net.packet import MSS, Packet
from repro.net.pfc import protocol_agent
from repro.net.topology import dumbbell
from repro.sim.trace import INVARIANT_VIOLATION
from repro.sim.units import milliseconds
from repro.transport.registry import open_flow


def tfc_scenario(n_senders=2, seed=0):
    topo = build_topology(
        dumbbell, "tfc", buffer_bytes=256_000, n_senders=n_senders, seed=seed
    )
    receiver = topo.hosts[-1]
    senders = [
        open_flow(topo.host(i), receiver, "tfc") for i in range(n_senders)
    ]
    return topo, senders


def test_clean_run_has_no_violations():
    topo, _ = tfc_scenario()
    monitor = InvariantMonitor(topo.network)
    topo.network.run_for(milliseconds(30))
    assert monitor.violations == []
    assert monitor.checks_run > 100  # slots closed and sweeps ran
    monitor.assert_clean()


def test_token_clamp_violation_raises_with_context():
    topo, _ = tfc_scenario()
    monitor = InvariantMonitor(topo.network)
    agent = topo.bottleneck().agent

    def corrupt():
        agent.tokens = 1e12  # way past 6 x BDP

    topo.network.sim.schedule_at(milliseconds(10), corrupt)
    with pytest.raises(InvariantViolation) as excinfo:
        topo.network.run_for(milliseconds(30))
    violation = excinfo.value.violation
    assert violation.invariant == "token_clamps"
    # The EWMA has pulled the corrupted value toward its own by the time
    # the slot closes, but it is still orders of magnitude past the clamp.
    assert violation.context["tokens"] > violation.context["high"]
    assert "SW" in violation.location
    assert "token" in str(excinfo.value)
    assert monitor.violations == [violation]


def test_collect_mode_keeps_running_and_emits_trace():
    topo, _ = tfc_scenario()
    monitor = InvariantMonitor(topo.network, raise_on_violation=False)
    agent = topo.bottleneck().agent
    topo.network.sim.schedule_at(
        milliseconds(10), lambda: setattr(agent, "effective_flows", -50)
    )
    topo.network.run_for(milliseconds(12))
    assert any(v.invariant == "effective_flows" for v in monitor.violations)
    assert topo.network.tracer.counters[INVARIANT_VIOLATION] >= 1
    with pytest.raises(InvariantViolation):
        monitor.assert_clean()


def test_window_min_reduction_check():
    """A switch that *raises* the window field is caught by the wrapper."""
    topo, _ = tfc_scenario()
    agent = topo.bottleneck().agent
    def raising_transit(packet):
        packet.window += float(MSS)

    agent.on_transit = raising_transit
    monitor = InvariantMonitor(topo.network, raise_on_violation=False)
    packet = Packet(0, 3, 1, 2, payload=MSS, window=float(10 * MSS))
    agent.on_transit(packet)
    assert [v.invariant for v in monitor.violations] == ["window_min_reduction"]
    assert monitor.violations[0].context["window_after"] == float(11 * MSS)


def test_queue_capacity_sweep():
    topo, _ = tfc_scenario()
    monitor = InvariantMonitor(topo.network, raise_on_violation=False)
    queue = topo.bottleneck().queue
    queue._bytes = queue.capacity_bytes + 1  # simulate an accounting bug
    monitor._sweep()
    assert any(v.invariant == "queue_capacity" for v in monitor.violations)


def test_detach_removes_all_hooks():
    topo, _ = tfc_scenario()
    monitor = InvariantMonitor(topo.network)
    # The monitor shadows on_transit on the *protocol* agent (under the
    # REPRO_LOSSLESS=pfc shard, port.agent is the PFC wrapper above it).
    agent = protocol_agent(topo.bottleneck().agent)
    assert "on_transit" in agent.__dict__  # wrapped
    monitor.detach()
    assert "on_transit" not in agent.__dict__
    agent.tokens = 1e12  # would violate, but nobody is watching
    topo.network.run_for(milliseconds(5))
    assert monitor.violations == []


def test_monitor_mirrors_counters_into_registry():
    """With a registry attached, checks and violations surface as
    ``invariant.*`` counters (the chaos driver's telemetry export path)."""
    from repro.obs import MetricRegistry

    registry = MetricRegistry()
    topo, _ = tfc_scenario()
    monitor = InvariantMonitor(
        topo.network, raise_on_violation=False, registry=registry
    )
    topo.network.run_for(milliseconds(10))
    assert registry.get("invariant.checks").value == monitor.checks_run
    assert registry.get("invariant.violations").value == 0
    agent = topo.bottleneck().agent
    agent.effective_flows = -1
    monitor._check_agent(agent)
    assert registry.get("invariant.violations").value == len(monitor.violations)
    assert registry.get("invariant.violations").value > 0


def test_violation_report_is_readable():
    topo, _ = tfc_scenario()
    monitor = InvariantMonitor(topo.network, raise_on_violation=False)
    agent = topo.bottleneck().agent
    agent.effective_flows = -3
    monitor._check_agent(agent)
    report = monitor.violations[0].report()
    assert "effective_flows" in report
    assert "-3" in report
    assert "location" in report
