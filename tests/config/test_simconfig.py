"""SimConfig: validation, env round-trip, and layer acceptance."""

import pytest

from repro.config import SimConfig
from repro.net.network import Network
from repro.obs import drain_pending
from repro.sim.engine import Simulator


@pytest.fixture(autouse=True)
def _clean_pending():
    drain_pending()
    yield
    drain_pending()


def test_defaults_defer_everything():
    cfg = SimConfig()
    assert cfg.seed == 0
    assert cfg.scheduler is None
    assert cfg.routing is None
    assert cfg.transport is None
    assert cfg.telemetry is None
    assert not cfg.telemetry_enabled


def test_validation_matches_legacy_error_messages():
    with pytest.raises(ValueError, match="unknown scheduler backend"):
        SimConfig(scheduler="bogus")
    with pytest.raises(ValueError, match="unknown routing policy"):
        SimConfig(routing="bogus")
    with pytest.raises(ValueError, match="unknown telemetry mode"):
        SimConfig(telemetry="bogus")
    with pytest.raises(ValueError, match="unknown protocol"):
        SimConfig(transport="quic")


def test_shards_field_validates_and_exports(monkeypatch):
    import os

    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    assert SimConfig().shards is None
    with pytest.raises(ValueError, match="positive integer"):
        SimConfig(shards=0)
    with pytest.raises(ValueError, match="positive integer"):
        SimConfig(shards=-2)
    cfg = SimConfig(shards=4)
    with cfg.env():
        assert os.environ["REPRO_SHARDS"] == "4"
    assert "REPRO_SHARDS" not in os.environ
    monkeypatch.setenv("REPRO_SHARDS", "3")
    assert SimConfig.from_env().shards == 3


def test_with_overrides_revalidates():
    cfg = SimConfig(scheduler="heap")
    assert cfg.with_overrides(routing="ecmp").routing == "ecmp"
    assert cfg.with_overrides(routing="ecmp").scheduler == "heap"
    with pytest.raises(ValueError):
        cfg.with_overrides(scheduler="bogus")


def test_from_env_pins_current_defaults(monkeypatch):
    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    monkeypatch.setenv("REPRO_ROUTING", "ecmp")
    cfg = SimConfig.from_env(seed=7)
    assert cfg.seed == 7
    assert cfg.scheduler == "adaptive"
    assert cfg.routing == "ecmp"
    assert cfg.telemetry == "off"
    assert cfg.telemetry_dir is None


def test_simulator_accepts_config():
    assert Simulator(config=SimConfig(scheduler="heap")).scheduler_name == "heap"
    assert Simulator(config=SimConfig()).scheduler_name == "adaptive"
    # explicit argument wins over the config
    assert (
        Simulator(scheduler="calendar", config=SimConfig(scheduler="heap"))
        .scheduler_name
        == "calendar"
    )


def test_network_accepts_config():
    cfg = SimConfig(seed=5, scheduler="heap", routing="ecmp")
    net = Network(config=cfg)
    assert net.sim.scheduler_name == "heap"
    assert net.routing.name == "ecmp"
    assert net.seeds.root_seed == Network(seed=5).seeds.root_seed
    assert net.telemetry is None  # telemetry deferred -> off


def test_network_explicit_args_win_over_config():
    cfg = SimConfig(seed=5, routing="ecmp")
    net = Network(seed=9, routing="spray", config=cfg)
    assert net.routing.name == "spray"
    assert net.seeds.root_seed == Network(seed=9).seeds.root_seed


def test_network_config_installs_telemetry():
    net = Network(config=SimConfig(telemetry="full"))
    assert net.telemetry is not None
    assert net.telemetry.mode == "full"
    assert net.telemetry.slots is not None
    assert net.telemetry.flight is not None
    assert drain_pending() == [net.telemetry]


def test_telemetry_enabled_property():
    assert SimConfig(telemetry="counters").telemetry_enabled
    assert not SimConfig(telemetry="off").telemetry_enabled
    assert not SimConfig().telemetry_enabled


# ----------------------------------------------------------------------
# to_dict / from_dict round-trip
# ----------------------------------------------------------------------
def test_to_dict_from_dict_round_trip_all_fields():
    cfg = SimConfig(
        seed=42,
        scheduler="heap",
        routing="ecmp",
        transport="tfc",
        telemetry="counters",
        telemetry_dir="/tmp/somewhere",
        lossless="pfc",
        batch="on",
        compiled="off",
        shards=3,
    )
    data = cfg.to_dict()
    assert data["shards"] == 3
    assert data["lossless"] == "pfc"
    restored = SimConfig.from_dict(data)
    assert restored == cfg


def test_round_trip_of_defaults():
    cfg = SimConfig()
    assert SimConfig.from_dict(cfg.to_dict()) == cfg


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown SimConfig field"):
        SimConfig.from_dict({"seed": 1, "sched": "heap"})


def test_from_dict_validates_values():
    with pytest.raises(ValueError, match="unknown scheduler backend"):
        SimConfig.from_dict({"scheduler": "bogus"})
