"""The redesigned protocol registry: hooks, typed params, plugin point.

Covers the API surface DESIGN.md §6k documents: protocol-owned queue
factories and installers, the typed params slot, the capability surface
(``supports_weight``/``monitor_invariants``), runtime registration via
``register_protocol``, and the deprecated ``queue_factory_for`` /
``configure_network`` shims.
"""

import pytest

from repro.core.params import TfcParams
from repro.experiments.common import build_topology
from repro.net.bfc import BfcQueue
from repro.net.queues import DropTailQueue, EcnQueue
from repro.net.topology import dumbbell
from repro.sim.units import seconds
from repro.transport.newreno import NewRenoReceiver, NewRenoSender
from repro.transport.registry import (
    EcnParams,
    Protocol,
    configure_network,
    get_protocol,
    open_flow,
    queue_factory_for,
    register_protocol,
    registered_protocols,
    resolve_legacy_params,
    unregister_protocol,
)
from repro.transport.tbtcp import TbtcpParams


# ----------------------------------------------------------------------
# Typed params slot
# ----------------------------------------------------------------------
def test_resolve_params_defaults_and_type_check():
    tfc = get_protocol("tfc")
    assert tfc.resolve_params(None) is tfc.default_params
    custom = TfcParams(rho0=0.9)
    assert tfc.resolve_params(custom) is custom
    with pytest.raises(TypeError, match="expects TfcParams"):
        tfc.resolve_params(EcnParams())


def test_parameterless_protocol_rejects_params():
    tracks = get_protocol("tracks")
    assert tracks.params_cls is None
    assert tracks.resolve_params(None) is None
    with pytest.raises(TypeError, match="takes no params"):
        tracks.resolve_params(TfcParams())


def test_display_labels():
    assert get_protocol("tcp").display_label == "TCP"
    assert get_protocol("pfc").display_label == "TCP+PFC"
    assert get_protocol("bfc").display_label == "TCP+BFC"
    assert get_protocol("tbtcp").display_label == "TB-TCP"
    assert get_protocol("tracks").display_label == "T-RACKs"
    assert get_protocol("fairq").display_label == "FairQ"


# ----------------------------------------------------------------------
# Protocol-owned queue factory
# ----------------------------------------------------------------------
def test_queue_factory_hooks():
    assert type(get_protocol("tcp").queue_factory(64_000, 10**9)) is DropTailQueue
    dctcp_q = get_protocol("dctcp").queue_factory(
        64_000, 10**9, EcnParams(ecn_threshold_bytes=9000)
    )
    assert isinstance(dctcp_q, EcnQueue)
    assert dctcp_q.mark_threshold_bytes == 9000
    assert isinstance(get_protocol("bfc").queue_factory(64_000, 10**9), BfcQueue)
    # TB-TCP caps the shared buffer regardless of what the port offers.
    tb_q = get_protocol("tbtcp").queue_factory(256_000, 10**9)
    assert tb_q.capacity_bytes == TbtcpParams().buffer_cap_bytes


def test_port_queue_factory_adapter():
    factory = get_protocol("dctcp").port_queue_factory(64_000)
    queue = factory(10**9)
    assert isinstance(queue, EcnQueue)
    assert queue.capacity_bytes == 64_000


# ----------------------------------------------------------------------
# Capability surface
# ----------------------------------------------------------------------
def test_capability_surface():
    tfc = get_protocol("tfc")
    assert tfc.supports_weight and tfc.monitor_invariants
    for name in ("tcp", "dctcp", "pfc", "bfc", "tbtcp", "tracks", "fairq"):
        spec = get_protocol(name)
        assert not spec.supports_weight
        assert not spec.monitor_invariants


def test_open_flow_weight_gated_by_capability():
    topo = build_topology(dumbbell, "tcp", buffer_bytes=64_000, n_senders=2)
    with pytest.raises(ValueError, match="'tcp' does not support flow weights"):
        open_flow(topo.hosts[0], topo.hosts[-1], "tcp", weight=2)


# ----------------------------------------------------------------------
# Runtime registration (the plugin point)
# ----------------------------------------------------------------------
def test_register_protocol_end_to_end():
    class MySender(NewRenoSender):
        protocol_name = "myproto"

    spec = Protocol(
        "myproto", MySender, NewRenoReceiver, label="My/Proto"
    )
    register_protocol(spec)
    try:
        assert "myproto" in registered_protocols()
        assert get_protocol("myproto") is spec
        # Immediately usable through the normal entry points.
        topo = build_topology(
            dumbbell, "myproto", buffer_bytes=64_000, n_senders=2
        )
        flow = open_flow(topo.hosts[0], topo.hosts[-1], "myproto")
        assert isinstance(flow, MySender)
        topo.network.run_for(seconds(0.002))
        assert flow.stats.bytes_acked > 0
        # A fresh lookup error now names it.
        with pytest.raises(ValueError, match="myproto"):
            get_protocol("nope")
        # Duplicate registration needs replace=True.
        with pytest.raises(ValueError, match="already registered"):
            register_protocol(spec)
        register_protocol(spec, replace=True)
    finally:
        unregister_protocol("myproto")
    assert "myproto" not in registered_protocols()


def test_get_protocol_error_lists_live_registry():
    with pytest.raises(ValueError) as excinfo:
        get_protocol("quic")
    message = str(excinfo.value)
    for name in registered_protocols():
        assert name in message


# ----------------------------------------------------------------------
# Legacy keyword mapping + deprecated shims
# ----------------------------------------------------------------------
def test_resolve_legacy_params_matches_slot_type():
    tfc_params = TfcParams(rho0=0.9)
    assert resolve_legacy_params(get_protocol("tfc"), tfc_params=tfc_params) is tfc_params
    # Mismatched keywords fall back to defaults instead of leaking across.
    tcp = get_protocol("tcp")
    assert resolve_legacy_params(tcp, tfc_params=tfc_params) is None
    dctcp = get_protocol("dctcp")
    resolved = resolve_legacy_params(dctcp, ecn_threshold_bytes=9000)
    assert isinstance(resolved, EcnParams)
    assert resolved.ecn_threshold_bytes == 9000
    # The explicit typed slot always wins.
    explicit = EcnParams(ecn_threshold_bytes=12_000)
    assert (
        resolve_legacy_params(
            dctcp, params=explicit, ecn_threshold_bytes=9000
        )
        is explicit
    )


def test_deprecated_shims_still_work():
    factory = queue_factory_for("dctcp", 64_000, ecn_threshold_bytes=9000)
    queue = factory(10**9)
    assert isinstance(queue, EcnQueue)
    assert queue.mark_threshold_bytes == 9000

    topo = dumbbell(
        n_senders=2,
        queue_factory=queue_factory_for("tfc", 64_000),
    )
    configure_network(topo.network, "tfc", tfc_params=TfcParams(rho0=0.9))
    from repro.net.pfc import protocol_agent

    agent = protocol_agent(topo.bottleneck("main").agent)
    assert agent is not None and agent.params.rho0 == 0.9
