"""Loading scenarios from YAML files and raw mappings.

YAML is the storage format for the committed scenario farm
(``scenarios/*.yaml``); the parser is imported lazily so everything that
never touches a YAML file (programmatic scenarios, the whole simulator)
works without PyYAML installed.  Validation itself lives in
:mod:`repro.scenario.schema` — the loader only does I/O and error
labelling: every :class:`~repro.scenario.schema.ScenarioError` raised
while loading a file is re-raised with the file name prefixed onto the
error path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Union

from .schema import Scenario, ScenarioError, scenario_from_dict


def _yaml():
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - environment-dependent
        raise ScenarioError(
            "", "loading YAML scenarios requires PyYAML (python -m pip "
            "install pyyaml); programmatic scenarios via "
            "scenario_from_dict() work without it"
        ) from exc
    return yaml


def load_scenario_text(text: str, source: str = "<string>") -> Scenario:
    """Parse and validate a YAML document given as a string."""
    try:
        raw = _yaml().safe_load(text)
    except Exception as exc:
        raise ScenarioError(source, f"not valid YAML: {exc}") from None
    if not isinstance(raw, dict):
        raise ScenarioError(source, f"expected a YAML mapping, got {type(raw).__name__}")
    try:
        return scenario_from_dict(raw)
    except ScenarioError as exc:
        raise ScenarioError(f"{source}{exc.path}", _strip_path(exc)) from None


def load_scenario_file(path: Union[str, Path]) -> Scenario:
    """Load, parse and validate one ``*.yaml`` scenario file.

    The scenario's ``name`` must match the file stem — the registry
    resolves names to files, so a mismatch would make a scenario
    unreachable under its own name.
    """
    path = Path(path)
    if not path.exists():
        raise ScenarioError(str(path), "no such scenario file")
    scenario = load_scenario_text(path.read_text(), source=path.name)
    if scenario.name != path.stem:
        raise ScenarioError(
            f"{path.name}.name",
            f"scenario name {scenario.name!r} must match the file stem "
            f"{path.stem!r}",
        )
    return scenario


def load_scenario_dict(raw: Dict[str, Any], source: str = "scenario") -> Scenario:
    """Validate an in-memory mapping (the programmatic door)."""
    return scenario_from_dict(raw, source=source)


def _strip_path(exc: ScenarioError) -> str:
    """The error message without its already-extracted path prefix."""
    message = str(exc)
    prefix = f"{exc.path}: "
    return message[len(prefix):] if exc.path and message.startswith(prefix) else message
