"""Satellite: silent delimiter death -> re-election within the paper bound.

Section 5.2: when the delimiter flow goes silent without a FIN, the agent
waits ``2^k x rtt_last`` (k <= 7) before giving up on it.  This test kills
the delimiter mid-run with :meth:`FaultInjector.kill_delimiter` (an abort,
no FIN) and asserts a replacement is adopted within the k=7 bound — with
the invariant monitor attached, so the E and token clamps are checked on
every slot throughout the churn.
"""

from repro.experiments.common import build_topology
from repro.faults import FaultInjector, InvariantMonitor
from repro.net.pfc import protocol_agent
from repro.net.topology import dumbbell
from repro.sim.trace import TFC_DELIMITER_ELECTED
from repro.sim.units import milliseconds
from repro.transport.base import FlowState
from repro.transport.registry import open_flow


def test_silent_delimiter_death_triggers_bounded_reelection():
    topo = build_topology(dumbbell, "tfc", buffer_bytes=256_000, n_senders=3)
    net = topo.network
    receiver = topo.hosts[-1]
    senders = [open_flow(topo.host(i), receiver, "tfc") for i in range(3)]
    # Unwrap: election traces carry the protocol agent, and under the
    # REPRO_LOSSLESS=pfc shard port.agent is the PFC wrapper around it.
    agent = protocol_agent(topo.bottleneck().agent)
    monitor = InvariantMonitor(net)  # raises on any clamp breach

    elections = []
    net.tracer.subscribe(
        TFC_DELIMITER_ELECTED,
        lambda agent=None, flow_key=None, **kw: elections.append(
            (net.sim.now, agent, flow_key)
        ),
    )

    kill_ns = milliseconds(20)
    at_kill = {}

    def snapshot():
        at_kill["key"] = agent.delimiter_key
        at_kill["rtt_last_ns"] = agent.rtt_last_ns

    net.sim.schedule_at(kill_ns, snapshot)  # scheduled first: runs first
    injector = FaultInjector(net)
    record = injector.kill_delimiter(topo.bottleneck(), senders, kill_ns)

    net.run_for(milliseconds(60))

    # The injector found and killed the delimiter flow, silently.
    killed_key = record.detail["delimiter_key"]
    assert killed_key == at_kill["key"] is not None
    killed = next(s for s in senders if s.flow_key == killed_key)
    assert killed.state is FlowState.DONE
    assert killed.stats.complete_ns is None

    # A replacement delimiter was adopted within 2^7 x rtt_last.
    adoption = [
        (t, key)
        for t, a, key in elections
        if a is agent and t > kill_ns and key != killed_key
    ]
    assert adoption, "no replacement delimiter was ever elected"
    adopted_ns, adopted_key = adoption[0]
    bound_ns = (1 << 7) * at_kill["rtt_last_ns"]
    assert adopted_ns - kill_ns <= bound_ns
    assert adopted_key in {s.flow_key for s in senders if s is not killed}

    # The survivors keep running and no invariant broke during the churn.
    for sender in senders:
        if sender is not killed:
            assert sender.state is FlowState.ESTABLISHED
    monitor.assert_clean()
    assert monitor.checks_run > 0


def test_delimiter_fin_handover_still_immediate():
    """Clean FIN hand-over (the non-fault path) does not use the backoff:
    the agent forgets the delimiter the moment the FIN transits."""
    topo = build_topology(dumbbell, "tfc", buffer_bytes=256_000, n_senders=2)
    net = topo.network
    receiver = topo.hosts[-1]
    senders = [open_flow(topo.host(i), receiver, "tfc") for i in range(2)]
    agent = topo.bottleneck().agent

    net.run_for(milliseconds(20))
    delimiter = next(
        s for s in senders if s.flow_key == agent.delimiter_key
    )
    delimiter.finish()
    net.run_for(milliseconds(20))
    assert agent.delimiter_key is not None
    assert agent.delimiter_key != delimiter.flow_key
