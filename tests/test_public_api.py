"""The documented public API stays importable and coherent."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_quickstart_from_package_docstring():
    """The exact snippet in repro.__doc__ must run."""
    from repro.experiments.common import build_topology
    from repro.net import dumbbell
    from repro.transport import open_flow
    from repro.sim.units import seconds

    topo = build_topology(dumbbell, "tfc", buffer_bytes=256_000, n_senders=4)
    flows = [open_flow(h, topo.hosts[-1], "tfc") for h in topo.hosts[:4]]
    topo.network.run_for(seconds(0.05))
    assert sum(f.stats.bytes_acked for f in flows) > 0


def test_top_level_namespaces():
    from repro import (
        config,
        core,
        experiments,
        faults,
        metrics,
        net,
        obs,
        sim,
        transport,
        workloads,
    )

    assert core.TfcParams
    assert net.Packet and net.dumbbell
    assert net.FaultyQueue and net.GilbertElliottLoss
    assert sim.Simulator
    assert transport.open_flow and transport.PROTOCOLS is not None
    assert callable(transport.register_protocol)
    assert callable(transport.registered_protocols)
    assert workloads.IncastCoordinator
    assert metrics.FctCollector
    assert experiments.run_fig12
    assert experiments.run_chaos
    assert faults.FaultInjector and faults.InvariantMonitor
    assert config.SimConfig and config.env
    assert obs.MetricRegistry and obs.Telemetry


def test_config_namespace_is_the_selection_surface():
    """Every run-level selection knob is reachable from repro.config."""
    from repro.config import (
        KNOBS,
        LOSSLESS_MODES,
        ROUTING_NAMES,
        SCHEDULER_NAMES,
        TELEMETRY_MODES,
        SimConfig,
        batch_mode,
        compiled_mode,
        env,
        lossless_mode,
        routing_name,
        scheduler_name,
        shard_count,
        telemetry_dir,
        telemetry_mode,
    )

    assert set(SCHEDULER_NAMES) >= {"heap", "calendar", "wheel", "adaptive"}
    assert set(ROUTING_NAMES) >= {"single", "ecmp", "flowlet", "spray"}
    assert TELEMETRY_MODES == ("off", "counters", "slots", "full")
    assert LOSSLESS_MODES == ("off", "pfc")
    assert set(KNOBS) == {
        "scheduler", "routing", "telemetry", "telemetry_dir", "lossless",
        "batch", "compiled", "shards",
    }
    assert callable(env) and callable(scheduler_name)
    assert callable(routing_name) and callable(telemetry_mode)
    assert callable(telemetry_dir) and callable(lossless_mode)
    assert callable(batch_mode) and callable(compiled_mode)
    assert callable(shard_count)
    assert SimConfig().seed == 0


def test_obs_namespace_surface():
    from repro.obs import (
        SLOT_FIELDS,
        TELEMETRY_MODES,
        Counter,
        FlightRecorder,
        Gauge,
        Histogram,
        MetricRegistry,
        SlotTimelineRecorder,
        Telemetry,
        Timeline,
        drain_pending,
        install,
        maybe_install,
        write_metrics_jsonl,
        write_slots_csv,
    )

    assert SLOT_FIELDS[0] == "time_ns" and "tokens" in SLOT_FIELDS
    assert TELEMETRY_MODES[0] == "off"
    registry = MetricRegistry()
    assert registry.counter("c") is registry.counter("c")
    assert Counter and Gauge and Histogram and Timeline
    assert Telemetry and SlotTimelineRecorder and FlightRecorder
    assert callable(install) and callable(maybe_install)
    assert callable(drain_pending)
    assert callable(write_metrics_jsonl) and callable(write_slots_csv)


def test_observability_quickstart_from_package_docstring(tmp_path):
    """The observability snippet in repro.__doc__ must run."""
    from repro.config import SimConfig
    from repro.net import Network
    from repro.obs import drain_pending
    from repro.sim.units import seconds
    from repro.transport import configure_network, open_flow

    net = Network(config=SimConfig(seed=1, telemetry="full"))
    senders = [net.add_host(f"s{i}") for i in range(2)]
    receiver = net.add_host("r")
    switch = net.add_switch("sw")
    for host in senders + [receiver]:
        net.cable(host, switch, 10_000_000_000, 1_000)
    net.build_routes()
    configure_network(net, "tfc")
    for host in senders:
        open_flow(host, receiver, "tfc")
    net.run_for(seconds(0.02))
    paths = net.telemetry.export(str(tmp_path), "my_run")
    assert len(paths) == 3
    drain_pending()


def test_protocol_registry_contents():
    from repro.transport import get_protocol, registered_protocols

    for name in (
        "tcp", "dctcp", "tfc", "pfc", "bfc", "tbtcp", "tracks", "fairq",
    ):
        spec = get_protocol(name)
        assert spec.name == name
        assert name in registered_protocols()
    import pytest

    with pytest.raises(ValueError) as excinfo:
        get_protocol("quic")
    # The error names the live registry, not a frozen list.
    assert "bfc" in str(excinfo.value) and "tfc" in str(excinfo.value)
