"""Per-flow backpressure (BFC) unit tests and the PFC differential.

The contract, in order of importance:

1. **Per-flow granularity** — pauses name a single flow; other flows on
   the same link keep flowing (the head-of-line-blocking fix over PFC,
   verified head-to-head at the bottom of this file).
2. **Losslessness in practice** — tiny per-flow thresholds absorb an
   incast with zero drops, and matched pause/resume leaves the fabric
   idle, not wedged.
3. **Determinism** — round-robin service order and pause state are
   structural (deque rotation, callback-driven), so same-seed runs are
   bit-identical.
"""

import pytest

from repro.experiments.common import build_topology
from repro.net.bfc import (
    BfcHostAgent,
    BfcParams,
    BfcPortAgent,
    BfcQueue,
    enable_bfc,
)
from repro.net.network import Network
from repro.net.packet import MTU, Packet
from repro.net.pfc import PfcParams
from repro.net.topology import Topology, dumbbell
from repro.sim.units import GBPS, microseconds, milliseconds
from repro.transport.registry import open_flow


def _packet(sport, seq=0, payload=1000):
    return Packet(src=0, dst=1, sport=sport, dport=9, seq=seq, payload=payload)


# ----------------------------------------------------------------------
# Parameters
# ----------------------------------------------------------------------
def test_params_validation():
    BfcParams()  # defaults are self-consistent
    with pytest.raises(ValueError, match="xoff"):
        BfcParams(xoff_bytes=MTU - 1)
    with pytest.raises(ValueError, match="xon"):
        BfcParams(xoff_bytes=3 * MTU, xon_bytes=4 * MTU)
    with pytest.raises(ValueError, match="xon"):
        BfcParams(xon_bytes=0)


# ----------------------------------------------------------------------
# The per-flow queue
# ----------------------------------------------------------------------
def test_per_flow_fifo_and_round_robin():
    """Flows are served round-robin in first-arrival order; packets
    within a flow stay FIFO."""
    queue = BfcQueue(1_000_000)
    for seq in range(3):
        assert queue.enqueue(_packet(sport=1, seq=seq))
    for seq in range(2):
        assert queue.enqueue(_packet(sport=2, seq=seq))
    order = []
    while True:
        packet = queue.dequeue()
        if packet is None:
            break
        order.append((packet.sport, packet.seq))
    assert order == [(1, 0), (2, 0), (1, 1), (2, 1), (1, 2)]
    assert len(queue) == 0 and queue.byte_length == 0


def test_paused_flow_is_skipped_not_blocking():
    """Pausing one flow starves only that flow — the ring serves the
    others; with every flow paused the queue reports idle (and counts
    the pause-skip, the backpressure-bites signal)."""
    queue = BfcQueue(1_000_000)
    queue.enqueue(_packet(sport=1))
    queue.enqueue(_packet(sport=2))
    queue.pause_flow((0, 1, 1, 9))
    packet = queue.dequeue()
    assert packet.sport == 2
    assert queue.dequeue() is None
    assert queue.pause_skips == 1
    queue.resume_flow((0, 1, 1, 9))
    assert queue.dequeue().sport == 1


def test_threshold_callbacks_fire_on_crossings():
    """XOFF fires once on the upward crossing, XON once on draining back
    to the watermark — no re-signalling while the level stays high."""
    params = BfcParams(xoff_bytes=3 * MTU, xon_bytes=MTU)
    queue = BfcQueue(1_000_000, params)
    events = []
    queue.on_congested = lambda key: events.append(("xoff", key))
    queue.on_drained = lambda key: events.append(("xon", key))
    # 4 x 1500 B > 3 MTU crosses; the 5th does not re-signal.
    for seq in range(5):
        queue.enqueue(_packet(sport=1, seq=seq, payload=1460))
    assert [e[0] for e in events] == ["xoff"]
    # Drain: crossing back under XON signals exactly once.
    while queue.dequeue() is not None:
        pass
    assert [e[0] for e in events] == ["xoff", "xon"]


def test_capacity_overflow_still_drops():
    """Per-flow pause is the primary defence; the shared capacity stays
    a hard drop-tail backstop."""
    queue = BfcQueue(2_000)
    assert queue.enqueue(_packet(sport=1, payload=1460))
    assert not queue.enqueue(_packet(sport=2, payload=1460))
    assert queue.drops == 1


# ----------------------------------------------------------------------
# Install semantics
# ----------------------------------------------------------------------
def test_enable_bfc_installs_agents_and_nic_queues():
    topo = build_topology(dumbbell, "bfc", buffer_bytes=256_000, n_senders=2)
    net = topo.network
    fabric = net.bfc
    assert fabric is not None
    assert enable_bfc(net) is fabric  # idempotent
    for switch in topo.switches:
        for port in switch.ports:
            assert isinstance(port.agent, BfcPortAgent)
            assert isinstance(port.queue, BfcQueue)
    for host in topo.hosts:
        for port in host.ports:
            assert isinstance(port.agent, BfcHostAgent)
            assert isinstance(port.queue, BfcQueue)
            assert not port.burst_enabled


# ----------------------------------------------------------------------
# The lossless-in-practice guarantee
# ----------------------------------------------------------------------
def test_incast_pauses_per_flow_without_drops():
    topo = build_topology(dumbbell, "bfc", buffer_bytes=256_000, n_senders=4, seed=1)
    net = topo.network
    senders = [
        open_flow(
            topo.host(i), topo.host(4), "bfc",
            size_bytes=300_000, awnd_bytes=200_000,
        )
        for i in range(4)
    ]
    net.run_for(milliseconds(100))
    fabric = net.bfc
    assert all(s.stats.bytes_acked >= 300_000 for s in senders)
    assert net.total_drops() == 0
    assert fabric.pause_frames > 0
    # Finite flows drained: every XOFF got its XON, nothing stays paused.
    assert fabric.pause_frames == fabric.resume_frames
    assert fabric.paused_flow_count() == 0
    assert fabric.unknown_upstream == 0


def test_bfc_runs_are_bit_identical():
    def run():
        topo = build_topology(
            dumbbell, "bfc", buffer_bytes=256_000, n_senders=4, seed=1
        )
        senders = [
            open_flow(topo.host(i), topo.host(4), "bfc", awnd_bytes=200_000)
            for i in range(4)
        ]
        topo.network.run_for(milliseconds(20))
        fabric = topo.network.bfc
        return (
            topo.network.sim.events_processed,
            fabric.pause_frames,
            fabric.resume_frames,
            [s.stats.bytes_acked for s in senders],
        )

    assert run() == run()


# ----------------------------------------------------------------------
# The differential: per-flow pause avoids HoL victim collapse
# ----------------------------------------------------------------------
def _hol_topology(buffer_bytes=256_000, queue_factory=None, seed=1):
    """Four culprits + one victim behind a shared inter-switch link.

    Culprits C0-C3 incast into HOT (congesting switch B's 1 Gbps egress
    to it); the victim V sends to the idle COLD through the same A->B
    link.  The inter-switch link runs at 4 Gbps so it is *not* itself a
    bottleneck — all congestion lives at B's egress to HOT, and any
    pause B sends up the A->B link is where the two fabrics diverge:
    PFC stops the whole link (victim included), BFC names the culprit
    flows and lets the victim through.
    """
    net = Network(seed=seed, default_buffer_bytes=buffer_bytes)
    a = net.add_switch("A")
    b = net.add_switch("B")
    culprits = [net.add_host(f"C{i}") for i in range(4)]
    victim = net.add_host("V")
    hot = net.add_host("HOT")
    cold = net.add_host("COLD")
    delay = microseconds(5)
    for host in culprits + [victim]:
        net.cable(host, a, GBPS, delay, queue_factory)
    net.cable(a, b, 4 * GBPS, delay, queue_factory)
    net.cable(hot, b, GBPS, delay, queue_factory)
    net.cable(cold, b, GBPS, delay, queue_factory)
    net.build_routes()
    return Topology(
        network=net,
        hosts=culprits + [victim, hot, cold],
        switches=[a, b],
    )


def _run_hol(protocol, **build_kwargs):
    topo = build_topology(
        _hol_topology, protocol, buffer_bytes=256_000, seed=1, **build_kwargs
    )
    culprit_hosts, victim = topo.hosts[:4], topo.hosts[4]
    hot, cold = topo.hosts[5], topo.hosts[6]
    culprits = [
        open_flow(host, hot, protocol, awnd_bytes=200_000)
        for host in culprit_hosts
    ]
    victim_flow = open_flow(victim, cold, protocol, awnd_bytes=200_000)
    topo.network.run_for(milliseconds(20))
    return topo, culprits, victim_flow


def test_per_flow_pause_avoids_hol_victim_collapse():
    """The head-to-head DESIGN.md §6k promises: under per-port PFC the
    victim flow is collaterally paused by the culprits' congestion
    (classic HoL victim collapse); under per-flow BFC the same victim
    runs at a large multiple of its PFC goodput, with zero drops and
    pauses aimed only at the culprit flows."""
    tight = PfcParams(xoff_bytes=32_000, xon_bytes=8_000, headroom_bytes=32_000)
    pfc_topo, pfc_culprits, pfc_victim = _run_hol("pfc", pfc_params=tight)
    bfc_topo, bfc_culprits, bfc_victim = _run_hol("bfc")

    # Both fabrics actually paused, and both kept the fabric lossless.
    assert pfc_topo.network.lossless.pause_frames > 0
    assert bfc_topo.network.bfc.pause_frames > 0
    assert pfc_topo.network.total_drops() == 0
    assert bfc_topo.network.total_drops() == 0

    # The culprits saturate HOT's 1 Gbps downlink either way.
    assert sum(s.stats.bytes_acked for s in pfc_culprits) > 1_000_000
    assert sum(s.stats.bytes_acked for s in bfc_culprits) > 1_000_000

    # The victim: collateral damage under PFC, unharmed under BFC.
    assert bfc_victim.stats.bytes_acked >= 2 * pfc_victim.stats.bytes_acked
    # BFC never paused the victim's flow anywhere in the fabric.
    victim_key = bfc_victim.flow_key
    for node in bfc_topo.network.nodes:
        for port in node.ports:
            if isinstance(port.queue, BfcQueue):
                assert victim_key not in port.queue.paused_flows
