"""Figure 16 — benchmark FCT on the 360-server leaf-spine.

Paper: on the 18-leaf x 20-server topology, every query triggers a large
synchronous fan-in; TFC's query FCT is ~30x below DCTCP's on average and
its tail stays flat (the switch delay function absorbs the burst), while
TCP and DCTCP suffer heavy tail latency from timeouts.  Background flows
above 1 KB finish slightly slower under TFC because query flows keep
their bandwidth.

Scaled defaults: a 0.3 s generation window and fan-in 300 (the paper fans
in from all 359 servers over 2 s) so the three runs stay within minutes.
The fan-in must exceed ~256 for the scenario to bite at all: below that,
one query's responses (fan-in x 2 KB) fit in the 512 KB port buffer and
no protocol drops anything.
"""

from conftest import run_once

from repro.experiments import run_fig16


def test_fig16_large_benchmark(benchmark, report):
    results = run_once(
        benchmark,
        run_fig16,
        duration_s=0.3,
        drain_s=1.5,
        query_rate_per_s=60,
        query_fanin=300,
        short_rate_per_s=20,
        background_rate_per_s=20,
    )

    rows = []
    for proto, result in results.items():
        q = result.query_summary_us()
        rows.append(
            [
                proto.upper(),
                f"{q['mean'] / 1000:.2f}",
                f"{q['p99'] / 1000:.2f}",
                f"{q['p99.9'] / 1000:.2f}",
                f"{q['p99.99'] / 1000:.2f}",
                f"{result.completion_fraction():.3f}",
            ]
        )
    report(
        "Fig. 16a: query flow FCT (ms) on the 360-server leaf-spine",
        ["protocol", "mean", "99th", "99.9th", "99.99th", "completed"],
        rows,
    )

    tfc_q = results["tfc"].query_summary_us()
    dctcp_q = results["dctcp"].query_summary_us()
    tcp_q = results["tcp"].query_summary_us()
    # Ordering: TFC mean and tail below both baselines; large factor at
    # the tail (the paper reports ~30x on the mean at full fan-in).
    assert tfc_q["mean"] < dctcp_q["mean"]
    assert tfc_q["mean"] < tcp_q["mean"]
    # The tail gap is dramatic: the baselines pay 200 ms RTO stalls.
    assert tfc_q["p99.9"] < dctcp_q["p99.9"] / 5
    assert tfc_q["p99.9"] < tcp_q["p99.9"] / 5
    assert results["tfc"].drops == 0
    assert results["tfc"].completion_fraction() == 1.0
