"""Unit tests for seeding, tracing, and unit conversion."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import SeedSequence
from repro.sim.trace import Tracer
from repro.sim import units


# ----------------------------------------------------------------------
# SeedSequence
# ----------------------------------------------------------------------
def test_same_seed_same_stream():
    a = SeedSequence(7).stream("workload")
    b = SeedSequence(7).stream("workload")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_independent():
    seq = SeedSequence(7)
    a = seq.stream("a")
    b = seq.stream("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    seq = SeedSequence(0)
    assert seq.stream("x") is seq.stream("x")


def test_construction_order_does_not_matter():
    seq1 = SeedSequence(3)
    first = seq1.stream("alpha").random()
    seq2 = SeedSequence(3)
    seq2.stream("beta")  # created before alpha this time
    assert seq2.stream("alpha").random() == first


def test_spawn_derives_independent_child():
    parent = SeedSequence(1)
    child = parent.spawn("sub")
    assert child.root_seed != parent.root_seed
    assert parent.spawn("sub").root_seed == child.root_seed


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
def test_emit_counts_without_handlers():
    tracer = Tracer()
    tracer.emit("topic")
    tracer.emit("topic")
    assert tracer.count("topic") == 2
    assert tracer.count("other") == 0


def test_handlers_receive_kwargs():
    tracer = Tracer()
    got = []
    tracer.subscribe("t", lambda value=None: got.append(value))
    tracer.emit("t", value=42)
    assert got == [42]


def test_unsubscribe():
    tracer = Tracer()
    got = []
    handler = got.append
    tracer.subscribe("t", handler)
    tracer.unsubscribe("t", handler)
    tracer.emit("t", 1)
    assert got == []


def test_unsubscribe_tolerates_unknown_topic_and_handler():
    """Teardown paths must never raise: unknown topics, never-subscribed
    handlers, and double-unsubscribes are all silent no-ops."""
    tracer = Tracer()
    handler = lambda: None  # noqa: E731
    tracer.unsubscribe("never-seen", handler)  # unknown topic
    tracer.subscribe("t", handler)
    tracer.unsubscribe("t", lambda: None)  # wrong handler: stays subscribed
    assert tracer.active("t")
    tracer.unsubscribe("t", handler)
    assert not tracer.active("t")
    tracer.unsubscribe("t", handler)  # double-unsubscribe
    assert not tracer.active("t")


def test_unsubscribe_keeps_topic_active_for_remaining_handlers():
    tracer = Tracer()
    got = []
    first, second = got.append, lambda v: got.append(-v)
    tracer.subscribe("t", first)
    tracer.subscribe("t", second)
    tracer.unsubscribe("t", first)
    assert tracer.active("t")
    tracer.emit("t", 1)
    assert got == [-1]


def test_multiple_handlers_all_called():
    tracer = Tracer()
    got = []
    tracer.subscribe("t", lambda: got.append("a"))
    tracer.subscribe("t", lambda: got.append("b"))
    tracer.emit("t")
    assert got == ["a", "b"]


def test_reset_clears_counters():
    tracer = Tracer()
    tracer.emit("t")
    tracer.reset()
    assert tracer.count("t") == 0


# ----------------------------------------------------------------------
# Units
# ----------------------------------------------------------------------
def test_time_conversions_round_trip():
    assert units.seconds(1.5) == 1_500_000_000
    assert units.milliseconds(2) == 2_000_000
    assert units.microseconds(3) == 3_000
    assert units.to_seconds(units.seconds(0.25)) == pytest.approx(0.25)
    assert units.to_microseconds(units.microseconds(7)) == pytest.approx(7)


def test_rate_constructors():
    assert units.gbps(1) == 1_000_000_000
    assert units.mbps(100) == 100_000_000


def test_transmission_time_exact():
    # 1500 bytes at 1 Gbps = 12 us exactly.
    assert units.transmission_time_ns(1500, units.gbps(1)) == 12_000


def test_transmission_time_rounds_up():
    # 1 byte at 3 bits/ns-ish rates must not round to zero.
    assert units.transmission_time_ns(1, 999_999_999_999) >= 1


def test_transmission_time_rejects_bad_rate():
    with pytest.raises(ValueError):
        units.transmission_time_ns(100, 0)


def test_bandwidth_delay_product():
    # 1 Gbps x 80 us = 10 KB.
    assert units.bandwidth_delay_product(units.gbps(1), units.microseconds(80)) == pytest.approx(10_000)


@given(
    st.integers(min_value=1, max_value=10_000),
    st.integers(min_value=1_000_000, max_value=100_000_000_000),
)
def test_property_transmission_never_faster_than_line_rate(size, rate):
    tx = units.transmission_time_ns(size, rate)
    # Sending `size` bytes in tx ns must not exceed the line rate.
    assert units.bytes_in_interval(rate, tx) >= size - 1e-9


@given(
    st.integers(min_value=1, max_value=10_000),
    st.integers(min_value=1_000_000, max_value=100_000_000_000),
)
def test_property_transmission_within_one_ns_of_exact(size, rate):
    tx = units.transmission_time_ns(size, rate)
    exact = size * 8 * units.SECOND / rate
    assert exact <= tx < exact + 1
