"""Detectors for the three classic lossless-fabric pathologies.

PFC buys losslessness by pausing upstream transmitters, and every
production deployment of it has met the same three failure modes.  Each
gets a detector here, built only from signals the fabric already exposes
(pause-frame trace emissions, the paused-port set, port counters):

* **Pause storm** (:class:`PauseStormDetector`) — one slow drain point
  pauses its upstreams, their buffers fill, they pause *their*
  upstreams, and soon whole subtrees spend most of their time paused.
  Detected as a sustained pause duty-cycle per transmitter: the fraction
  of a sliding window a port spent XOFF'd crossing a threshold.

* **Head-of-line blocking** (:class:`HolBlockingDetector`) — a paused
  port stalls every flow queued behind it, including "victim" flows
  whose own path beyond the shared hop is idle.  Detected as a victim
  flow's delivery rate collapsing below a fraction of its own observed
  peak while pause is active somewhere in the fabric.

* **Cyclic buffer dependency deadlock** (:class:`CbdDeadlockDetector`)
  — routes (typically after a reroute around a failure) thread paused
  buffers into a ring: every hop waits for the next to drain, and
  nothing ever does.  Detected as a cycle in the wait-for graph over
  paused ports — port ``P`` (paused, transmitting into node ``D``)
  waits on every paused egress of ``D`` — that persists across sweeps
  with zero transmit progress on any port in the cycle.

All three run off periodic simulator timers (and pure trace
subscriptions), register their counters/timelines into a
:class:`repro.obs.MetricRegistry` when given one, and emit
``fault.pathology`` — which the :class:`repro.obs.FlightRecorder`
auto-dumps on, so every detection ships with the event story that led
to it.  TFC's side of the head-to-head runs with the same detectors
armed: its acceptance claim is that none of them ever fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..sim.trace import PATHOLOGY_DETECTED, PFC_PAUSE, PFC_RESUME
from ..sim.units import milliseconds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..net.network import Network
    from ..net.pfc import LosslessFabric
    from ..net.port import Port


def _port_name(port: "Port") -> str:
    """Same format the fault engine uses: ``node[index]->peer``."""
    return f"{port.node.name}[{port.index}]->{port.peer_node.name}"


@dataclass
class Pathology:
    """One detected fabric pathology, with the evidence that tripped it."""

    time_ns: int
    kind: str
    location: str
    message: str
    context: Dict[str, object] = field(default_factory=dict)

    def report(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"pathology detected: {self.kind}",
            f"  at t={self.time_ns}ns ({self.time_ns / 1e6:.3f} ms)",
            f"  location: {self.location}",
            f"  {self.message}",
        ]
        for key, value in sorted(self.context.items()):
            lines.append(f"    {key} = {value}")
        return "\n".join(lines)


class _PeriodicDetector:
    """Shared skeleton: periodic sweep timer, detections list, metrics."""

    kind = "pathology"

    def __init__(
        self,
        network: "Network",
        fabric: Optional["LosslessFabric"],
        check_interval_ns: int,
        registry=None,
    ):
        self.network = network
        self.fabric = fabric
        self.sim = network.sim
        self.tracer = network.tracer
        self.check_interval_ns = check_interval_ns
        self.detections: List[Pathology] = []
        self.checks_run = 0
        self._stopped = False
        self._counter = None
        self._timeline = None
        if registry is not None:
            self._counter = registry.counter(
                f"pathology.{self.kind}", help=f"{self.kind} detections"
            )
            self._timeline = registry.timeline(
                f"pathology.{self.kind}.detections",
                help=f"(time_ns, 1) per {self.kind} detection",
            )
        self.sim.schedule(check_interval_ns, self._tick)

    @property
    def detected(self) -> bool:
        return bool(self.detections)

    def stop(self) -> None:
        """Stop sweeping (pending timer becomes a no-op)."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        self.checks_run += 1
        self.check()
        self.sim.schedule(self.check_interval_ns, self._tick)

    def check(self) -> None:  # pragma: no cover - subclasses implement
        raise NotImplementedError

    def _detect(self, location: str, message: str, **context) -> None:
        pathology = Pathology(
            time_ns=self.sim.now,
            kind=self.kind,
            location=location,
            message=message,
            context=dict(context),
        )
        self.detections.append(pathology)
        if self._counter is not None:
            self._counter.inc()
        if self._timeline is not None:
            self._timeline.append(self.sim.now, 1.0)
        self.tracer.emit(
            PATHOLOGY_DETECTED,
            kind=self.kind,
            location=location,
            message=message,
            pathology=pathology,
            **context,
        )


class PauseStormDetector(_PeriodicDetector):
    """Sustained pause duty-cycle per transmitter.

    Builds per-port pause intervals from the fabric's own XOFF/XON
    trace emissions (so host NIC pauses count too — a storm reaching
    the sources is precisely the interesting endpoint) and flags any
    port that spent at least ``duty_threshold`` of the trailing
    ``window_ns`` paused.  Each port is reported once.
    """

    kind = "pause_storm"

    def __init__(
        self,
        network: "Network",
        fabric: Optional["LosslessFabric"] = None,
        window_ns: int = milliseconds(5),
        duty_threshold: float = 0.5,
        check_interval_ns: int = milliseconds(1),
        registry=None,
    ):
        if not 0.0 < duty_threshold <= 1.0:
            raise ValueError(
                f"duty threshold must be in (0, 1], got {duty_threshold}"
            )
        super().__init__(network, fabric, check_interval_ns, registry)
        self.window_ns = window_ns
        self.duty_threshold = duty_threshold
        #: port -> [[start_ns, end_ns|None], ...], pruned as they age out.
        self._intervals: Dict["Port", List[list]] = {}
        self._reported: set = set()
        self.tracer.subscribe(PFC_PAUSE, self._on_pause)
        self.tracer.subscribe(PFC_RESUME, self._on_resume)

    def stop(self) -> None:
        super().stop()
        self.tracer.unsubscribe(PFC_PAUSE, self._on_pause)
        self.tracer.unsubscribe(PFC_RESUME, self._on_resume)

    # ------------------------------------------------------------------
    def _on_pause(self, port: "Port" = None, **_kw) -> None:
        if port is None:
            return
        intervals = self._intervals.setdefault(port, [])
        if not intervals or intervals[-1][1] is not None:
            intervals.append([self.sim.now, None])

    def _on_resume(self, port: "Port" = None, **_kw) -> None:
        if port is None:
            return
        intervals = self._intervals.get(port)
        if intervals and intervals[-1][1] is None:
            intervals[-1][1] = self.sim.now

    def duty_cycle(self, port: "Port") -> float:
        """Fraction of the trailing window ``port`` spent paused."""
        now = self.sim.now
        window_start = max(now - self.window_ns, 0)
        horizon = now - window_start
        if horizon <= 0:
            return 0.0
        paused = 0
        for start, end in self._intervals.get(port, ()):  # oldest first
            closed_end = now if end is None else end
            overlap = min(closed_end, now) - max(start, window_start)
            if overlap > 0:
                paused += overlap
        return paused / horizon

    def check(self) -> None:
        window_start = self.sim.now - self.window_ns
        for port, intervals in self._intervals.items():
            # Prune intervals that ended before the window; keeps each
            # port's list bounded by the storm's own churn rate.
            while intervals and intervals[0][1] is not None and (
                intervals[0][1] < window_start
            ):
                intervals.pop(0)
            if port in self._reported:
                continue
            duty = self.duty_cycle(port)
            if duty >= self.duty_threshold:
                self._reported.add(port)
                self._detect(
                    _port_name(port),
                    f"transmitter paused {duty:.0%} of the trailing "
                    f"{self.window_ns / 1e6:.1f} ms window",
                    duty=round(duty, 4),
                    window_ns=self.window_ns,
                )


class HolBlockingDetector(_PeriodicDetector):
    """Victim-flow throughput collapse while pause is active.

    ``victims`` maps a label to a callable returning the flow's
    cumulative delivered bytes (``lambda: sender.stats.bytes_acked``).
    Each interval the detector compares the victim's delivered delta
    against its own observed peak; ``consecutive`` intervals at or below
    ``collapse_fraction`` of peak *while some port is PFC-paused* is a
    detection.  The peak-referenced baseline means a victim that never
    got going (slow start) cannot false-positive, and the pause gate
    means ordinary congestion cannot either.
    """

    kind = "hol_blocking"

    def __init__(
        self,
        network: "Network",
        fabric: "LosslessFabric",
        victims: Dict[str, Callable[[], int]],
        check_interval_ns: int = milliseconds(1),
        collapse_fraction: float = 0.1,
        consecutive: int = 2,
        min_peak_bytes: int = 20_000,
        registry=None,
    ):
        super().__init__(network, fabric, check_interval_ns, registry)
        if not victims:
            raise ValueError("need at least one victim flow to watch")
        self.victims = dict(victims)
        self.collapse_fraction = collapse_fraction
        self.consecutive = consecutive
        self.min_peak_bytes = min_peak_bytes
        self._last: Dict[str, int] = {k: fn() for k, fn in self.victims.items()}
        self._peak: Dict[str, int] = {k: 0 for k in self.victims}
        self._collapsed: Dict[str, int] = {k: 0 for k in self.victims}
        self._reported: set = set()

    def check(self) -> None:
        paused = self.fabric.any_paused()
        for label, fn in self.victims.items():
            total = fn()
            delta = total - self._last[label]
            self._last[label] = total
            if delta > self._peak[label]:
                self._peak[label] = delta
            peak = self._peak[label]
            if (
                paused
                and peak >= self.min_peak_bytes
                and delta <= self.collapse_fraction * peak
            ):
                self._collapsed[label] += 1
            else:
                self._collapsed[label] = 0
            if (
                self._collapsed[label] >= self.consecutive
                and label not in self._reported
            ):
                self._reported.add(label)
                self._detect(
                    label,
                    "victim flow collapsed behind a paused class: "
                    f"{delta} B/interval vs a {peak} B/interval peak",
                    delta_bytes=delta,
                    peak_bytes=peak,
                    intervals=self._collapsed[label],
                )


class CbdDeadlockDetector(_PeriodicDetector):
    """Cycle in the wait-for graph over paused ports.

    A paused transmitter ``P`` (into node ``D``) can only resume when
    ``D``'s congested ingress drains, which requires ``D``'s egress
    ports holding those bytes to transmit — so ``P`` *waits for* every
    paused egress of ``D``.  A cycle in that graph is a candidate
    deadlock; it is reported once it has persisted for ``persistence``
    consecutive sweeps with no transmit progress on any member port
    (transient cycles resolve themselves; a real CBD never does).
    """

    kind = "cbd_deadlock"

    def __init__(
        self,
        network: "Network",
        fabric: "LosslessFabric",
        check_interval_ns: int = milliseconds(1),
        persistence: int = 2,
        registry=None,
    ):
        super().__init__(network, fabric, check_interval_ns, registry)
        self.persistence = persistence
        #: cycle key -> [sweeps persisted, tx-progress snapshot]
        self._candidates: Dict[Tuple, List] = {}
        self._reported: set = set()

    # ------------------------------------------------------------------
    def _wait_for_graph(self) -> Dict["Port", List["Port"]]:
        # Sets iterate in id()-dependent order; sort so the graph (and
        # therefore which cycle DFS reports first) is identical across
        # runs and worker processes.
        paused = sorted(
            self.fabric.paused_ports,
            key=lambda p: (p.node.name, p.index),
        )
        by_node: Dict[object, List["Port"]] = {}
        for port in paused:
            by_node.setdefault(port.node, []).append(port)
        graph: Dict["Port", List["Port"]] = {}
        for port in paused:
            graph[port] = by_node.get(port.link.dst_node, [])
        return graph

    @staticmethod
    def _find_cycle(graph: Dict["Port", List["Port"]]) -> List["Port"]:
        """First cycle found by DFS (deterministic: insertion order)."""
        WHITE, GREY, BLACK = 0, 1, 2
        color = {node: WHITE for node in graph}
        for root in graph:
            if color[root] != WHITE:
                continue
            stack: List[Tuple["Port", int]] = [(root, 0)]
            path: List["Port"] = []
            color[root] = GREY
            path.append(root)
            while stack:
                node, edge_index = stack[-1]
                edges = graph[node]
                if edge_index < len(edges):
                    stack[-1] = (node, edge_index + 1)
                    succ = edges[edge_index]
                    if color[succ] == GREY:
                        return path[path.index(succ):]
                    if color[succ] == WHITE:
                        color[succ] = GREY
                        path.append(succ)
                        stack.append((succ, 0))
                else:
                    color[node] = BLACK
                    path.pop()
                    stack.pop()
        return []

    def check(self) -> None:
        graph = self._wait_for_graph()
        cycle = self._find_cycle(graph)
        if not cycle:
            self._candidates.clear()
            return
        key = tuple(
            sorted((port.node.name, port.index) for port in cycle)
        )
        snapshot = tuple(
            port.tx_packets
            for _, port in sorted(
                ((port.node.name, port.index), port) for port in cycle
            )
        )
        entry = self._candidates.get(key)
        if entry is None or entry[1] != snapshot:
            # New cycle, or frames still moving: (re)start persistence.
            self._candidates = {key: [1, snapshot]}
            return
        entry[0] += 1
        if entry[0] >= self.persistence and key not in self._reported:
            self._reported.add(key)
            names = [
                _port_name(port)
                for port in sorted(
                    cycle, key=lambda p: (p.node.name, p.index)
                )
            ]
            self._detect(
                " -> ".join(names),
                f"{len(cycle)}-port cyclic buffer dependency persisted "
                f"{entry[0]} sweeps with zero transmit progress",
                cycle_ports=len(cycle),
                sweeps=entry[0],
                ports=names,
            )


class PathologySuite:
    """All three detectors armed together (the head-to-head default)."""

    def __init__(
        self,
        network: "Network",
        fabric: "LosslessFabric",
        victims: Optional[Dict[str, Callable[[], int]]] = None,
        registry=None,
        storm_window_ns: int = milliseconds(5),
        storm_duty_threshold: float = 0.5,
        check_interval_ns: int = milliseconds(1),
        cbd_check_interval_ns: Optional[int] = None,
    ):
        self.pause_storm = PauseStormDetector(
            network,
            fabric,
            window_ns=storm_window_ns,
            duty_threshold=storm_duty_threshold,
            check_interval_ns=check_interval_ns,
            registry=registry,
        )
        self.hol_blocking = (
            HolBlockingDetector(
                network,
                fabric,
                victims,
                check_interval_ns=check_interval_ns,
                registry=registry,
            )
            if victims
            else None
        )
        # CBD cycles in a host-terminated fabric recur as short-lived
        # (hundreds of µs) both-directions-paused windows; a millisecond
        # sweep steps right over them, so the CBD detector gets its own,
        # tighter cadence.
        self.cbd_deadlock = CbdDeadlockDetector(
            network,
            fabric,
            check_interval_ns=cbd_check_interval_ns or check_interval_ns,
            registry=registry,
        )

    @property
    def detectors(self):
        return [
            d
            for d in (self.pause_storm, self.hol_blocking, self.cbd_deadlock)
            if d is not None
        ]

    def stop(self) -> None:
        for detector in self.detectors:
            detector.stop()

    def detections(self) -> Dict[str, int]:
        """Detection counts per pathology kind (0 entries included)."""
        counts = {"pause_storm": 0, "hol_blocking": 0, "cbd_deadlock": 0}
        for detector in self.detectors:
            counts[detector.kind] = len(detector.detections)
        return counts
