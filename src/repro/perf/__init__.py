"""Performance-regression harness.

Pinned workloads (:mod:`repro.perf.workloads`) measure kernel events/sec
and per-experiment-cell wall-clock; :mod:`repro.perf.bench` writes the
``BENCH_kernel.json`` / ``BENCH_experiments.json`` snapshots committed at
the repo root, and :mod:`repro.perf.compare` fails (exit 1) when a fresh
measurement regresses more than 15% against the committed snapshot.
"""

from .workloads import (
    EXPERIMENT_WORKLOADS,
    KERNEL_WORKLOADS,
    ExperimentWorkload,
    KernelWorkload,
    TelemetryWorkload,
    run_experiment_workload,
    run_kernel_workload,
    run_telemetry_workload,
)

__all__ = [
    "EXPERIMENT_WORKLOADS",
    "KERNEL_WORKLOADS",
    "ExperimentWorkload",
    "KernelWorkload",
    "TelemetryWorkload",
    "run_experiment_workload",
    "run_kernel_workload",
    "run_telemetry_workload",
]
