"""Tests for the weighted token-allocation extension.

The paper's basic model (section 4.1) notes that "we could allocate the
total tokens to flows according to any allocation policies"; this is the
simplest non-fair policy: a flow of weight w counts as w effective flows
and receives w shares of the tokens.
"""

import pytest

from repro.net.topology import dumbbell
from repro.sim.units import seconds
from repro.transport.registry import configure_network, open_flow, queue_factory_for


def weighted_pair(w_light, w_heavy, duration_s=0.5):
    topo = dumbbell(n_senders=2, queue_factory=queue_factory_for("tfc", 256_000))
    configure_network(topo.network, "tfc")
    receiver = topo.hosts[-1]
    light = open_flow(topo.hosts[0], receiver, "tfc", weight=w_light)
    heavy = open_flow(topo.hosts[1], receiver, "tfc", weight=w_heavy)
    topo.network.run_for(seconds(duration_s))
    return topo, light, heavy


@pytest.mark.parametrize("ratio", [2, 3, 4])
def test_throughput_follows_weights(ratio):
    topo, light, heavy = weighted_pair(1, ratio)
    measured = heavy.stats.bytes_acked / light.stats.bytes_acked
    assert measured == pytest.approx(ratio, rel=0.25)
    assert topo.network.total_drops() == 0


def test_equal_weights_are_fair():
    topo, a, b = weighted_pair(2, 2)
    assert a.stats.bytes_acked == pytest.approx(b.stats.bytes_acked, rel=0.1)


def test_weighted_flows_keep_link_utilised():
    topo, light, heavy = weighted_pair(1, 3)
    total = light.stats.bytes_acked + heavy.stats.bytes_acked
    assert total * 8 / 0.5 > 0.8e9


def test_weight_validation():
    topo = dumbbell(n_senders=1, queue_factory=queue_factory_for("tfc", 256_000))
    configure_network(topo.network, "tfc")
    with pytest.raises(ValueError):
        open_flow(topo.hosts[0], topo.hosts[-1], "tfc", weight=0)


def test_weight_rejected_for_non_tfc():
    topo = dumbbell(n_senders=1)
    with pytest.raises(ValueError):
        open_flow(topo.hosts[0], topo.hosts[-1], "tcp", weight=2)


def test_weight_carried_on_rm_packets():
    from repro.net.packet import Packet

    topo = dumbbell(n_senders=1, queue_factory=queue_factory_for("tfc", 256_000))
    configure_network(topo.network, "tfc")
    sender = open_flow(topo.hosts[0], topo.hosts[-1], "tfc", size_bytes=0, weight=5)
    pkt = Packet(sender.src_id, sender.dst_id, sender.sport, sender.dport, payload=100)
    sender.next_packet_hook(pkt)
    assert pkt.weight == 5
    syn = Packet(sender.src_id, sender.dst_id, sender.sport, sender.dport, syn=True)
    sender.syn_hook(syn)
    assert syn.weight == 5
