"""Statistics helpers: exact percentiles, CDFs, fairness.

The paper reports tail percentiles (95th/99th/99.9th/99.99th FCT), CDFs
(measured rtt_b, Fig. 6) and small-timescale fairness (Fig. 9), so these
are implemented once here and reused by every experiment.  Percentiles use
the nearest-rank method on the sorted sample — exact, deterministic, and
meaningful even for tails thinner than the sample supports (they clamp to
the maximum, the honest answer for "99.99th of 2 000 samples").
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile ``p`` (0 < p <= 100) of ``values``."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 < p <= 100.0:
        raise ValueError(f"p must be in (0, 100], got {p}")
    ordered = sorted(values)
    rank = math.ceil(p / 100.0 * len(ordered))
    return ordered[max(rank, 1) - 1]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean."""
    if not values:
        raise ValueError("mean of an empty sample")
    return sum(values) / len(values)


def summarize_tail(values: Sequence[float]) -> dict:
    """The paper's FCT row: mean plus the four tail percentiles."""
    return {
        "mean": mean(values),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "p99.9": percentile(values, 99.9),
        "p99.99": percentile(values, 99.99),
    }


def cdf_points(values: Iterable[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) steps."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return []
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


def jain_fairness(rates: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one flow hogs."""
    if not rates:
        raise ValueError("fairness of an empty sample")
    total = sum(rates)
    squares = sum(rate * rate for rate in rates)
    if squares == 0:
        return 1.0
    return (total * total) / (len(rates) * squares)


def time_average(series: Sequence[Tuple[int, float]], horizon_ns: int) -> float:
    """Time-weighted average of a piecewise-constant (time_ns, value) series."""
    if not series:
        return 0.0
    total = 0.0
    for i, (t, value) in enumerate(series):
        t_next = series[i + 1][0] if i + 1 < len(series) else horizon_ns
        if t_next > t:
            total += value * (t_next - t)
    span = horizon_ns - series[0][0]
    return total / span if span > 0 else series[-1][1]
