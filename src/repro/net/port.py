"""Output ports and unidirectional links.

A :class:`Port` is the transmitting side of one link direction: it owns the
packet queue, serialises one packet at a time at the link rate, and hands
finished frames to the :class:`Link`, which delivers them to the peer node
after the propagation delay.  Store-and-forward behaviour (the paper's
NetFPGA switches, and the reason RTT depends on frame size) falls out
naturally: a node only sees a packet once the whole frame has been received.

Burst drain (``REPRO_BATCH``, default on; full invariants in DESIGN.md
§6h): when the port starts transmitting with more frames queued behind the
head, it precomputes the whole back-to-back run's serialisation schedule
once (sum of per-frame ceils — exactly the serial schedule) and services
the run through :meth:`Port._continue_burst`, a lean chained completion
that replaces the general ``_finish_tx``/``_start_next`` pair per frame.
The chain is *bit-exact* with the serial path by construction: it makes
the same ``schedule()`` calls, in the same order, at the same dispatch
points — so sequence-number allocation, same-nanosecond tie-breaking, and
every publicly observable queue/counter state are identical with batching
on or off.  (A stronger drain that elides the per-frame completion events
entirely was measured to reorder same-nanosecond deliveries — see §6h —
and is therefore not offered.)  Interactions dissolve the chain at its
next completion boundary: pause/XOFF and link cuts are re-checked every
completion exactly as the serial path would, and a rate change marks the
chain dirty via :meth:`Port.flush_burst` so the remaining frames fall back
to freshly computed serial times.
"""

from __future__ import annotations

from itertools import islice
from typing import TYPE_CHECKING, Optional

from ..sim import core as _core
from ..sim.engine import Simulator
from ..sim.trace import PACKET_DROP, Tracer
from ..sim.units import transmission_time_ns
from .packet import Packet
from .queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import Node

#: Chain-formation thresholds (pure tuning — the chain is bit-exact with
#: the serial path wherever it engages, so these trade setup cost against
#: per-frame savings without any behavioural effect).  Token-paced
#: protocols mostly queue 2-3 back-to-back frames, too few to amortise
#: the snapshot + schedule precompute, so short runs stay serial; the cap
#: bounds the snapshot copy on deep (host software) queues — a capped
#: chain simply re-forms from ``_start_next`` when it drains.
BURST_MIN_QUEUED = 4
BURST_CAP = 64


class Link:
    """One direction of a cable: nominal rate and propagation delay.

    Fault hooks (driven by :mod:`repro.faults`): ``up = False`` models a
    cut cable — frames finishing serialisation vanish instead of arriving
    (counted in ``faulted_frames``); ``rate_factor`` degrades the
    serialisation rate (failing optics, autoneg fallback) without changing
    the nominal rate protocols were configured against.
    """

    __slots__ = (
        "_sim",
        "rate_bps",
        "delay_ns",
        "dst_node",
        "dst_port_index",
        "up",
        "_rate_factor",
        "effective_rate_bps",
        "faulted_frames",
        "owner",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: int,
        delay_ns: int,
        dst_node: "Node",
        dst_port_index: int,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if delay_ns < 0:
            raise ValueError(f"link delay must be >= 0, got {delay_ns}")
        self._sim = sim
        self.rate_bps = rate_bps
        self.delay_ns = delay_ns
        self.dst_node = dst_node
        self.dst_port_index = dst_port_index
        self.up = True
        self._rate_factor = 1.0
        # Serialisation rate after degradation, cached as a plain attribute
        # (read once per transmitted frame) and refreshed only when the
        # factor changes.
        self.effective_rate_bps = rate_bps
        self.faulted_frames = 0
        # Transmitting Port feeding this direction (set when one attaches):
        # rate changes must invalidate its tx-time cache and dissolve any
        # in-flight burst chain before the new rate takes effect.
        self.owner: Optional["Port"] = None

    @property
    def rate_factor(self) -> float:
        """Injected serialisation-rate degradation factor (1.0 = healthy)."""
        return self._rate_factor

    @rate_factor.setter
    def rate_factor(self, factor: float) -> None:
        self._rate_factor = factor
        if factor >= 1.0:
            self.effective_rate_bps = self.rate_bps
        else:
            self.effective_rate_bps = max(int(self.rate_bps * factor), 1)
        owner = self.owner
        if owner is not None:
            owner._tx_cache.clear()
            owner.flush_burst()

    def degrade(self, factor: float) -> None:
        """Scale the serialisation rate by ``factor`` (0 < factor <= 1)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"rate factor must be in (0, 1], got {factor}")
        self.rate_factor = factor

    def restore_rate(self) -> None:
        """Clear any injected rate degradation."""
        self.rate_factor = 1.0

    def carry(self, packet: Packet) -> None:
        """Deliver a fully serialised frame to the far end after the delay.

        Kept for external callers and tests; the :class:`Port` transmit
        path inlines this (one scheduled delivery straight to the
        destination node) because the propagation delay is static.
        """
        if not self.up:
            self.faulted_frames += 1
            return  # the cable is cut; the frame vanishes
        packet.hops += 1
        self._sim.schedule(
            self.delay_ns, self.dst_node.receive, packet, self.dst_port_index
        )


class Port:
    """Transmit side of a link direction, owned by a node.

    ``agent`` is an optional protocol hook (the TFC switch agent attaches
    here); the port itself never inspects it — nodes do.
    """

    __slots__ = (
        "_sim",
        "node",
        "index",
        "link",
        "queue",
        "tracer",
        "agent",
        "on_dequeue",
        "_busy",
        "paused",
        "tx_packets",
        "tx_bytes",
        "burst_enabled",
        "_tx_cache",
        "_b_pkts",
        "_b_done",
        "_b_next",
        "_b_dirty",
    )

    def __init__(
        self,
        sim: Simulator,
        node: "Node",
        index: int,
        link: Link,
        queue: DropTailQueue,
        tracer: Optional[Tracer] = None,
    ):
        self._sim = sim
        self.node = node
        self.index = index
        self.link = link
        link.owner = self
        self.queue = queue
        self.tracer = tracer
        self.agent = None  # set by protocols that need per-port state
        # Optional callable(packet) fired when a packet leaves the queue
        # to start serialising — the lossless fabric releases its ingress
        # accounting here (the buffer slot is free once TX begins).  A
        # port with this hook set keeps the general serial path so the
        # hook's reentrancy (XON releases, cascaded pauses) is confined
        # to one code path.
        self.on_dequeue = None
        self._busy = False
        self.paused = False
        self.tx_packets = 0
        self.tx_bytes = 0
        # Opt-in (Network.cable wires it from the batch knob): standalone
        # ports keep the strictly serial path.
        self.burst_enabled = False
        # frame_size -> serialisation ns at the current effective rate;
        # cleared by Link.rate_factor on any rate change.
        self._tx_cache: dict = {}
        # Active burst chain (pkts is None outside one): the snapshot of
        # back-to-back members, their precomputed completion times, the
        # index of the member currently on the wire, and the dirty flag a
        # mid-chain rate change raises.
        self._b_pkts: Optional[list] = None
        self._b_done: Optional[list] = None
        self._b_next = 0
        self._b_dirty = False

    @property
    def rate_bps(self) -> int:
        """Line rate of the attached link."""
        return self.link.rate_bps

    @property
    def peer_node(self) -> "Node":
        """Node on the far end of the attached link."""
        return self.link.dst_node

    def send(self, packet: Packet) -> bool:
        """Queue ``packet`` for transmission; False if drop-tail rejected it."""
        if not self.queue.enqueue(packet):
            tracer = self.tracer
            if tracer is not None:
                if tracer.active(PACKET_DROP):
                    tracer.emit(PACKET_DROP, packet=packet, port=self)
                else:
                    tracer.bump(PACKET_DROP)
            return False
        if not self._busy and not self.paused:
            self._start_next()
        return True

    def pause(self) -> None:
        """Stop starting new transmissions (host stall fault, PFC XOFF).

        A frame already on the wire finishes serialising; everything else
        accumulates in the queue until :meth:`resume`.  An in-flight
        burst chain observes the pause at the on-wire frame's completion,
        exactly where the serial path would.
        """
        self.paused = True

    def resume(self) -> None:
        """Resume transmission after :meth:`pause`."""
        if not self.paused:
            return
        self.paused = False
        if not self._busy:
            self._start_next()

    def kick(self) -> None:
        """Restart service if the port sits idle with work newly eligible.

        Queue disciplines that can hold back queued packets (per-flow
        pause in :class:`repro.net.bfc.BfcQueue`) leave the port idle
        when ``dequeue`` returns None with bytes still buffered; whoever
        makes a packet eligible again (a per-flow XON) must kick.  A
        no-op while transmitting or paused — identical to the send-path
        idle check, so it can never double-start service.
        """
        if not self._busy and not self.paused:
            self._start_next()

    def _start_next(self) -> None:
        if self.paused:
            self._busy = False
            return
        queue = self.queue
        if (
            self.burst_enabled
            and len(queue._queue) >= BURST_MIN_QUEUED
            and self.on_dequeue is None
        ):
            self._start_burst()
            return
        packet = queue.dequeue()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        if self.on_dequeue is not None:
            self.on_dequeue(packet)
        size = packet.frame_size
        cache = self._tx_cache
        tx_ns = cache.get(size)
        if tx_ns is None:
            tx_ns = transmission_time_ns(size, self.link.effective_rate_bps)
            cache[size] = tx_ns
        self._sim.schedule(tx_ns, self._finish_tx, packet)

    def _finish_tx(self, packet: Packet) -> None:
        # One scheduled delivery straight to the peer node: the propagation
        # delay is static, so the Link.carry -> schedule(_arrive) hop adds
        # nothing but call overhead on this per-frame path.
        self.tx_packets += 1
        self.tx_bytes += packet.frame_size
        link = self.link
        if link.up:
            packet.hops += 1
            self._sim.schedule(
                link.delay_ns, link.dst_node.receive, packet, link.dst_port_index
            )
        else:
            link.faulted_frames += 1
        self._start_next()

    # ------------------------------------------------------------------
    # Burst drain (DESIGN.md §6h)
    # ------------------------------------------------------------------
    def _start_burst(self) -> None:
        # Precompute the whole back-to-back run's completion schedule and
        # hand it to the chained completion.  Bit-exactness contract with
        # the serial path: this dispatch dequeues exactly the head frame
        # and makes exactly one schedule() call, just like _start_next.
        sim = self._sim
        queue = self.queue
        pkts = list(islice(queue._queue, BURST_CAP))
        head = pkts[0]
        queue._queue.popleft()
        queue._bytes -= head.size
        core = sim._core
        if core is None:
            core = _core
        now = sim._now
        dones = core.burst_times(
            [p.frame_size for p in pkts], self.link.effective_rate_bps, now
        )[1]
        self._busy = True
        self._b_pkts = pkts
        self._b_done = dones
        self._b_next = 0
        self._b_dirty = False
        sim.schedule(dones[0] - now, self._continue_burst)

    def _continue_burst(self) -> None:
        # Completion of chain member i — the fused, precomputed equivalent
        # of _finish_tx + _start_next for the next member.  Makes the same
        # schedule() calls in the same order (delivery first, then the
        # next completion), so event sequence numbers — and therefore
        # same-nanosecond tie-breaking — match the serial path exactly.
        i = self._b_next
        pkts = self._b_pkts
        packet = pkts[i]
        self.tx_packets += 1
        self.tx_bytes += packet.frame_size
        link = self.link
        sim = self._sim
        if link.up:
            packet.hops += 1
            sim.schedule(
                link.delay_ns, link.dst_node.receive, packet, link.dst_port_index
            )
        else:
            link.faulted_frames += 1
        i += 1
        if i < len(pkts) and not self.paused and not self._b_dirty:
            # Start member i: dequeue it (it is still the physical queue
            # head — later arrivals enqueue behind the snapshot) and chain
            # the next completion at its precomputed finish time.
            queue = self.queue
            queue._queue.popleft()
            queue._bytes -= pkts[i].size
            self._b_next = i
            sim.schedule(self._b_done[i] - sim._now, self._continue_burst)
            return
        # Chain dissolves: drained, paused, or dirtied by a rate change.
        # _start_next re-evaluates the world exactly as the serial path
        # would after a completion (fresh tx times at the current rate,
        # pause check, possibly a new chain).
        self._b_pkts = None
        self._b_done = None
        self._b_dirty = False
        self._start_next()

    def flush_burst(self) -> None:
        """Dissolve the active burst chain at its next completion boundary.

        The chain's remaining completion times were precomputed, so any
        interaction that can change them — currently a link rate change —
        must call this.  The on-wire frame keeps its committed completion
        time (serial behaviour: a frame already serialising finishes on
        the old schedule); the members behind it fall back to freshly
        computed serial times.  No event is cancelled or rescheduled, so
        sequence-number allocation stays bit-identical.  No-op outside a
        chain.
        """
        if self._b_pkts is not None:
            self._b_dirty = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.node.name}[{self.index}] q={self.queue.byte_length}B>"
