"""Figs. 13 and 16 — flow completion times under the benchmark workload.

Fig. 13 runs the three-class workload (2 KB query responses with fan-in,
short messages, heavy-tailed background flows) on the Fig. 4 testbed;
Fig. 16 runs the same generator on the 18-leaf / 360-server leaf-spine.
The reported rows are:

* query flows — mean and 95/99/99.9/99.99th-percentile FCT, per protocol
  (the paper's headline: TFC's mean is ~30x below DCTCP's, and its tail is
  flat because the delay function absorbs the response burst);
* background flows — 99.9th-percentile FCT per size bucket (TFC wins for
  mice, large flows pay a modest price because queries stop timing out and
  keep their bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..metrics.fct import FctCollector
from ..net.topology import leaf_spine, testbed
from ..sim.units import MILLISECOND, seconds
from ..workloads.empirical import BenchmarkWorkload
from .common import ExperimentResult, build_topology


@dataclass
class BenchmarkResult:
    """FCT summaries for one protocol under the benchmark workload."""

    protocol: str
    collector: FctCollector
    flows_launched: int
    drops: int

    def query_summary_us(self) -> Dict[str, float]:
        return self.collector.tail_summary_us("query")

    def background_p999_us(self) -> Dict[str, float]:
        return self.collector.bucketed_p999_us("background")

    def completion_fraction(self) -> float:
        launched = self.flows_launched
        return self.collector.completed() / launched if launched else 0.0


def run_benchmark(
    protocol: str,
    scale: str = "testbed",
    duration_s: float = 2.0,
    drain_s: float = 1.0,
    query_rate_per_s: float = 200.0,
    query_fanin: Optional[int] = None,
    short_rate_per_s: float = 30.0,
    background_rate_per_s: float = 30.0,
    min_rto_ns: int = 200 * MILLISECOND,
    seed: int = 0,
) -> BenchmarkResult:
    """Run the benchmark workload at testbed or large scale.

    ``scale="testbed"`` is the 9-host Fig. 4 network with a modest query
    fan-in; ``scale="large"`` is the leaf-spine of Fig. 16 where every
    query fans in from many servers (the paper uses all 359).  After the
    generation window, the run continues for ``drain_s`` so in-flight
    flows can finish.

    ``min_rto_ns`` defaults to the Linux 200 ms minimum RTO the paper's
    stacks used — it is what turns baseline incast drops into the
    order-of-magnitude FCT gaps of Figs. 13a and 16a.
    """
    if scale == "testbed":
        topo = build_topology(testbed, protocol, buffer_bytes=256_000, seed=seed)
        fanin = query_fanin if query_fanin is not None else 6
    elif scale == "large":
        topo = build_topology(
            leaf_spine, protocol, buffer_bytes=512_000, seed=seed
        )
        fanin = query_fanin if query_fanin is not None else 40
    else:
        raise ValueError(f"scale must be 'testbed' or 'large', got {scale!r}")

    collector = FctCollector()
    workload = BenchmarkWorkload(
        topo.hosts,
        protocol,
        duration_ns=seconds(duration_s),
        query_rate_per_s=query_rate_per_s,
        query_fanin=fanin,
        short_rate_per_s=short_rate_per_s,
        background_rate_per_s=background_rate_per_s,
        min_rto_ns=min_rto_ns,
        seed_name=f"benchmark:{scale}:{seed}",
        collector=collector,
    )
    topo.network.run_for(seconds(duration_s + drain_s))
    return BenchmarkResult(
        protocol=protocol,
        collector=collector,
        flows_launched=workload.flows_launched,
        drops=topo.network.total_drops(),
    )


def run_fig13(
    protocols: Sequence[str] = ("tfc", "dctcp", "tcp"),
    **kwargs,
) -> Dict[str, BenchmarkResult]:
    """Fig. 13: the benchmark on the small testbed, per protocol."""
    return {p: run_benchmark(p, scale="testbed", **kwargs) for p in protocols}


def run_fig16(
    protocols: Sequence[str] = ("tfc", "dctcp", "tcp"),
    **kwargs,
) -> Dict[str, BenchmarkResult]:
    """Fig. 16: the benchmark on the 360-server leaf-spine, per protocol."""
    return {p: run_benchmark(p, scale="large", **kwargs) for p in protocols}


def run_benchmark_cell(
    protocol: str,
    scale: str = "testbed",
    duration_s: float = 2.0,
    drain_s: float = 1.0,
    query_rate_per_s: float = 200.0,
    min_rto_ns: int = 200 * MILLISECOND,
    seed: int = 0,
) -> "ExperimentResult":
    """Picklable cell adapter for the parallel runner.

    Flattens the FCT collector into plain scalars/series so the result
    crosses a process boundary without dragging simulation objects along.
    """
    res = run_benchmark(
        protocol,
        scale=scale,
        duration_s=duration_s,
        drain_s=drain_s,
        query_rate_per_s=query_rate_per_s,
        min_rto_ns=min_rto_ns,
        seed=seed,
    )
    scalars = {
        "flows_launched": float(res.flows_launched),
        "completed": float(res.collector.completed()),
        "completion_fraction": res.completion_fraction(),
        "drops": float(res.drops),
        "total_timeouts": float(res.collector.total_timeouts()),
    }
    if res.collector.completed("query"):
        for key, value in res.query_summary_us().items():
            scalars[f"query_fct_us:{key}"] = value
    for bucket, value in res.background_p999_us().items():
        scalars[f"bg_p999_us:{bucket}"] = value
    records = sorted(
        (r.category, r.size_bytes, r.fct_ns, r.timeouts)
        for r in res.collector.records
    )
    return ExperimentResult(
        name=f"fig13:{scale}:{protocol}:seed{seed}",
        protocol=protocol,
        scalars=scalars,
        series={"fct_records": records},
    )
