"""Perf-regression gate: fresh measurement vs committed snapshot.

Loads a committed ``BENCH_*.json``, re-runs the same pinned workloads,
and exits non-zero when any workload's throughput regressed more than
the threshold (default 15%).  "Throughput" is events/sec for kernel
snapshots and 1/wall-clock for experiment snapshots, so the threshold
means the same thing for both kinds.

CLI::

    python -m repro.perf.compare BENCH_kernel.json
    python -m repro.perf.compare BENCH_experiments.json --threshold 0.20
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from .bench import DEFAULT_SCHEDULERS, run_experiment_suite, run_kernel_suite

DEFAULT_THRESHOLD = 0.15


def _canonical(name: str) -> str:
    """Row key: bare pre-backend names alias to the adaptive default."""
    return name if "@" in name else f"{name}@adaptive"


def snapshot_schedulers(results: List[Dict[str, float]]) -> List[str]:
    """Backends the snapshot covers, so the fresh run measures the same.

    Row order is preserved (first appearance wins); bare legacy rows
    count as ``adaptive``; variant rows (``...+unbatched``) do not add
    backends of their own.
    """
    seen: List[str] = []
    for row in results:
        if row.get("variant") or "+" in row["name"]:
            continue
        sched = row.get("scheduler") or _canonical(row["name"]).split("@")[1]
        if sched not in seen:
            seen.append(sched)
    return seen


def snapshot_variants(results: List[Dict[str, float]]) -> List[str]:
    """Kernel-mode variants the snapshot covers (empty for old baselines).

    Pre-variant snapshots have no ``+`` rows, so the fresh run measures
    none either and the gate behaves exactly as before this dimension
    existed.
    """
    seen: List[str] = []
    for row in results:
        variant = row.get("variant")
        if not variant and "+" in row["name"]:
            variant = row["name"].rsplit("+", 1)[1]
        if variant and variant not in seen:
            seen.append(variant)
    return seen


def _throughputs(kind: str, results: List[Dict[str, float]]) -> Dict[str, float]:
    """canonical name -> higher-is-better throughput for either kind."""
    if kind == "kernel":
        return {
            _canonical(r["name"]): float(r["events_per_sec"]) for r in results
        }
    return {
        _canonical(r["name"]): (
            1.0 / float(r["wall_s"]) if r["wall_s"] > 0 else 0.0
        )
        for r in results
    }


def compare_results(
    kind: str,
    committed: List[Dict[str, float]],
    fresh: List[Dict[str, float]],
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[str], List[str]]:
    """Return (report_lines, regressions) for fresh vs committed runs.

    A workload present in only one side is reported but never fails the
    gate (renames and newly added workloads need a baseline
    regeneration, not a red build).  A committed row with zero/negative
    throughput is likewise warn-and-skip: there is no meaningful ratio
    to gate on.
    """
    old = _throughputs(kind, committed)
    new = _throughputs(kind, fresh)
    report: List[str] = []
    regressions: List[str] = []
    for name in old:
        if name not in new:
            report.append(f"{name}: missing from fresh run (skipped)")
            continue
        if old[name] <= 0:
            report.append(
                f"{name}: committed throughput is zero (skipped)"
            )
            continue
        ratio = new[name] / old[name]
        line = f"{name}: {ratio:6.2%} of committed throughput"
        if ratio < 1.0 - threshold:
            regressions.append(
                f"{name} regressed to {ratio:.2%} of the committed snapshot "
                f"(threshold {1.0 - threshold:.0%})"
            )
            line += "  <-- REGRESSION"
        report.append(line)
    for name in new:
        if name not in old:
            report.append(f"{name}: new workload, no committed number")
    return report, regressions


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.compare",
        description="Fail when current perf regresses vs a committed snapshot.",
    )
    parser.add_argument("snapshot", help="committed BENCH_*.json to compare against")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional slowdown (default 0.15)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    with open(args.snapshot) as fh:
        snapshot = json.load(fh)
    kind = snapshot.get("kind", "kernel")
    committed = snapshot["results"]
    schedulers = snapshot_schedulers(committed) or list(DEFAULT_SCHEDULERS)
    variants = snapshot_variants(committed)

    if kind == "kernel":
        fresh = run_kernel_suite(
            repeats=args.repeats, schedulers=schedulers, variants=variants
        )
    else:
        fresh = run_experiment_suite(
            repeats=args.repeats, schedulers=schedulers
        )

    report, regressions = compare_results(
        kind, committed, fresh, args.threshold
    )
    print(f"comparing against {args.snapshot} (kind={kind}, "
          f"measured at {snapshot.get('git_sha', 'unknown')[:12]})")
    for line in report:
        print("  " + line)
    if regressions:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for line in regressions:
            print("  " + line, file=sys.stderr)
        return 1
    print("no regression beyond threshold")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
