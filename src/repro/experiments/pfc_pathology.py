"""PFC pathology scenarios — TFC vs PFC head-to-head under chaos.

The paper's case against lossless fabrics built on pause frames is that
hop-by-hop XOFF/XON backpressure fails in three characteristic ways:
pause storms (pauses cascading upstream from one congested port), victim
head-of-line blocking (an uncongested flow starved behind a paused
class), and cyclic buffer dependencies (rings of paused ports waiting on
each other — the deadlock precondition).  TFC's claim is that per-port
token control absorbs the same workloads with *zero* pause events.

This driver makes that head-to-head a pinned experiment.  Each scenario
builds one topology + workload + fault schedule and runs it twice — once
with plain NewReno over the PFC lossless fabric (``fabric="pfc"``, the
RoCE-style baseline) and once with TFC over the *same armed fabric*
(``fabric="tfc"``: the pause machinery is live with identical tight
thresholds, so "zero pause frames" is measured, not assumed).  The
:class:`~repro.faults.PathologySuite` and
:class:`~repro.faults.InvariantMonitor` are attached throughout.

Scenarios
=========

``pause_storm``
    Six-way long-lived incast onto one testbed host.  Under PFC the
    congested leaf ingress XOFFs its feeder, the pause cascades through
    the root to every source leaf and NIC, and the storm detector trips
    on sustained pause duty.

``hol``
    The same incast plus one victim flow that shares only the paused
    trunk — its own destination link is idle.  Under PFC the victim's
    throughput collapses to zero behind pauses aimed at the incast;
    under TFC it keeps its fair share.

``cbd``
    Fat-tree ``k=4``: four *bidirectional* ``link_down`` cuts reroute
    cross-pod traffic onto 7-hop bounce paths (up-down-up — the routing
    shape deadlock papers blame), and six flows form two interlocked
    congestion chains whose pause cascades meet head-on.  Both
    directions of the shared trunk links end up paused with zero
    transmit progress — a cyclic buffer dependency the CBD detector
    reports.  The cuts are bidirectional on purpose: a directed cut
    would sever the reverse pause channel of a live data direction and
    turn the scenario into silent packet loss instead of backpressure.

Every run is deterministic: topology, workload, fault schedule and
detector sweeps all derive from the scenario seed and fire on the
simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import telemetry_dir as _configured_telemetry_dir
from ..faults import FaultInjector, InvariantMonitor, Pathology, PathologySuite, Violation
from ..metrics.samplers import RateSampler, Series
from ..net.pfc import PfcParams
from ..net.topology import fat_tree, testbed
from ..obs import drain_pending as _drain_telemetry
from ..obs import install as _install_telemetry
from ..sim.units import GBPS, microseconds, milliseconds
from ..transport.registry import open_flow
from .common import ExperimentResult, build_topology, format_table

SCENARIOS = ("pause_storm", "hol", "cbd")
FABRICS = ("pfc", "tfc")

#: Tight thresholds the scenarios pin: XOFF at 32 KB of ingress backlog,
#: resume at 8 KB, 32 KB of headroom.  Headroom is ~20x the 1 Gbps /
#: 5 us in-flight bound (2 BDP + 1 MTU ~ 2.8 KB), so the fabric stays
#: lossless; XOFF is low enough that a single saturated egress trips
#: pausing within one slow-start burst.
TIGHT_PFC = PfcParams(
    xoff_bytes=32_000, xon_bytes=8_000, headroom_bytes=32_000
)


@dataclass
class PathologyResult:
    """Outcome of one (scenario, fabric) pathology run."""

    scenario: str
    fabric: str
    seed: int
    scalars: Dict[str, float] = field(default_factory=dict)
    pathologies: List[Pathology] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    goodput_series: Series = field(default_factory=list)
    telemetry_paths: List[str] = field(default_factory=list)

    def __getitem__(self, key: str) -> float:
        return self.scalars[key]

    @property
    def clean(self) -> bool:
        """Zero pauses, zero detections, zero violations, reconverged.

        This is the TFC acceptance bar; a PFC run that exhibits its
        pathology is *expected* to be dirty.  ``goodput_ratio`` compares
        the final-quarter aggregate rate against the run's own best
        sustained rate — "reconverges to >= 90% goodput" means the
        workload ends the run at >= 90% of the best it ever sustained,
        i.e. chaos did not leave it degraded or collapsed.
        """
        return (
            self.scalars["pause_frames"] == 0
            and self.scalars["detections"] == 0
            and self.scalars["violations"] == 0
            and self.scalars["goodput_ratio"] >= 0.9
        )


def _steady_and_peak(series: Series, duration_ns: int) -> tuple:
    """(steady, peak) aggregate rates from a sampled bps series.

    ``steady`` is the mean over the final quarter of the run; ``peak`` is
    the best 5 ms rolling-window mean anywhere in it.  Their ratio is the
    reconvergence measure: a run that ends as fast as it ever ran scores
    ~1.0 regardless of what the workload's absolute capacity is.
    """
    if not series:
        return 0.0, 0.0
    tail_from = duration_ns * 3 // 4
    tail = [v for t, v in series if t >= tail_from]
    steady = sum(tail) / len(tail) if tail else 0.0
    if len(series) > 1:
        interval_ns = series[1][0] - series[0][0]
        window = max(1, milliseconds(5) // max(1, interval_ns))
    else:
        window = 1
    values = [v for _, v in series]
    peak = 0.0
    for i in range(len(values)):
        chunk = values[i : i + window]
        if len(chunk) == window:
            peak = max(peak, sum(chunk) / window)
    if peak == 0.0:
        peak = max(values, default=0.0)
    return steady, peak


def _cbd_cuts(topo) -> List:
    """The four bidirectional cuts that create the bounce-path geometry.

    * ``A1_0 -- E1_0``: pod-1 traffic for E1_0 must bounce down E1_1 and
      back up through A1_1.
    * ``A1_1 -- C1_0/C1_1``: severs pod 1 from the group-1 core plane,
      so all cross-pod traffic rides group 0 (through the bounce).
    * ``A0_0 -- E0_1``: pod-0 traffic for E0_1 descending at A0_0 must
      bounce through E0_0 and A0_1.
    """
    by_name = {s.name: s for s in topo.switches}

    def port_to(a: str, b: str):
        for port in by_name[a].ports:
            if port.peer_node.name == b:
                return port
        raise KeyError(f"no {a} -> {b} port")

    return [
        port_to("A1_0", "E1_0"),
        port_to("A1_1", "C1_0"),
        port_to("A1_1", "C1_1"),
        port_to("A0_0", "E0_1"),
    ]


#: cbd workload: two interlocked congestion chains.  f1/f3 trunk pod 0
#: -> pod 1 (f3 bouncing through E0_0 so it shares f1's trunk), f2/f4
#: trunk pod 1 -> pod 0 likewise, and two local fillers that congest
#: each chain's bounce egress (E1_1->A1_1 and E0_0->A0_1) so the pause
#: cascades run the full length of both trunks and meet on the shared
#: links' two directions.
CBD_FLOW_PAIRS = (
    ("H1", "H5"),
    ("H3", "H6"),
    ("H7", "H4"),
    ("H6", "H2"),
    ("H8", "H5"),
    ("H2", "H3"),
)


def run_pathology(
    scenario: str,
    fabric: str,
    seed: int = 1,
    duration_ns: int = milliseconds(60),
    awnd_bytes: int = 200_000,
    buffer_bytes: int = 256_000,
    sample_interval_ns: int = microseconds(500),
    pfc_params: Optional[PfcParams] = None,
    telemetry_dir: Optional[str] = None,
) -> PathologyResult:
    """Run one pathology scenario under one fabric and measure it.

    ``fabric="pfc"`` is NewReno over the lossless fabric; ``"tfc"`` is
    TFC with the same fabric armed (identical thresholds), so its pause
    counters are live evidence, not a disabled code path.  ``goodput_bps``
    is the aggregate rate over the final quarter of the run;
    ``goodput_ratio`` divides it by the best 5 ms rate the run ever
    sustained (the reconvergence measure — did chaos leave the workload
    degraded?); ``utilization`` divides it by the scenario's nominal
    max-min aggregate, which a token/pause-controlled transport
    necessarily undershoots by its wire and control overhead.
    """
    if scenario not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r}; choose from {SCENARIOS}"
        )
    if fabric not in FABRICS:
        raise ValueError(f"unknown fabric {fabric!r}; choose from {FABRICS}")
    params = pfc_params or TIGHT_PFC

    if scenario == "cbd":
        topo = build_topology(
            fat_tree,
            fabric,
            buffer_bytes=buffer_bytes,
            seed=seed,
            k=4,
            pfc_params=params,
        )
    else:
        topo = build_topology(
            testbed,
            fabric,
            buffer_bytes=buffer_bytes,
            seed=seed,
            pfc_params=params,
        )
    net = topo.network
    fab = net.lossless
    if telemetry_dir is not None and net.telemetry is None:
        _install_telemetry(net, "full", dump_dir=telemetry_dir)
    session = net.telemetry
    registry = session.registry if session is not None else None

    hosts = {h.name: h for h in topo.hosts}
    injector = FaultInjector(net)
    victim = None
    senders = []
    if scenario == "cbd":
        for port in _cbd_cuts(topo):
            injector.link_down(
                port, milliseconds(1), both_directions=True, reroute=True
            )
        for src, dst in CBD_FLOW_PAIRS:
            senders.append(
                open_flow(
                    hosts[src],
                    hosts[dst],
                    fabric,
                    awnd_bytes=awnd_bytes,
                    start_ns=milliseconds(2),
                )
            )
        # Max-min ideal: f1/f3/f5 split the A1_1->E1_0 trunk three ways,
        # f2/f4/f6 get half shares on their pairwise-shared links.
        nominal_bps = 2.5 * GBPS
    else:
        # Six-way incast H1..H6 -> H7: every source leaf funnels through
        # the NF0 -> NF3 trunk into the single bottleneck NF3 -> H7.
        for i in range(6):
            senders.append(
                open_flow(
                    topo.host(i), hosts["H7"], fabric, awnd_bytes=awnd_bytes
                )
            )
        if scenario == "hol":
            # Victim H5 -> H8: shares only the NF0 -> NF3 trunk with the
            # incast; its own last hop NF3 -> H8 is idle.
            victim = open_flow(
                hosts["H5"], hosts["H8"], fabric, awnd_bytes=awnd_bytes
            )
            senders.append(victim)
        nominal_bps = float(GBPS)

    victims = None
    if victim is not None:
        receiver = victim.receiver
        victims = {"H5->H8": lambda: receiver.bytes_received}
    suite = PathologySuite(
        net,
        fab,
        victims=victims,
        registry=registry,
        cbd_check_interval_ns=microseconds(150),
    )
    monitor = InvariantMonitor(net, raise_on_violation=False, registry=registry)
    sampler = RateSampler(
        net.sim,
        lambda: sum(s.receiver.bytes_received for s in senders),
        sample_interval_ns,
        label="aggregate",
    )
    if registry is not None:
        fab.register(registry)

    # Victim steady-state window: final quarter of the run (slow start,
    # the cuts and the first cascades all land well before it).
    measure_from = duration_ns * 3 // 4
    at_mark = {"victim": 0}

    def mark() -> None:
        if victim is not None:
            at_mark["victim"] = victim.receiver.bytes_received

    net.sim.schedule_at(measure_from, mark)
    net.sim.run(until_ns=duration_ns)
    sampler.stop()
    suite.stop()
    monitor.detach()

    window_s = (duration_ns - measure_from) / 1e9
    goodput_bps, peak_bps = _steady_and_peak(sampler.series, duration_ns)
    detections = suite.detections()
    pathologies = [
        p for detector in suite.detectors for p in detector.detections
    ]
    pathologies.sort(key=lambda p: p.time_ns)
    scalars: Dict[str, float] = {
        "pause_frames": float(fab.pause_frames),
        "resume_frames": float(fab.resume_frames),
        "headroom_overflows": float(fab.headroom_overflows),
        "max_ingress_bytes": float(fab.max_ingress_bytes()),
        "drops": float(net.total_drops()),
        "goodput_bps": goodput_bps,
        "peak_goodput_bps": peak_bps,
        "goodput_ratio": goodput_bps / peak_bps if peak_bps else 0.0,
        "utilization": goodput_bps / nominal_bps,
        "detections": float(sum(detections.values())),
        "det_pause_storm": float(detections["pause_storm"]),
        "det_hol_blocking": float(detections["hol_blocking"]),
        "det_cbd_deadlock": float(detections["cbd_deadlock"]),
        "violations": float(len(monitor.violations)),
    }
    if victim is not None:
        scalars["victim_bps"] = (
            (victim.receiver.bytes_received - at_mark["victim"]) * 8 / window_s
        )

    telemetry_paths: List[str] = []
    if session is not None:
        sampler.register(registry, "pathology.goodput_bps")
        session.detach()
        _drain_telemetry()
        export_dir = telemetry_dir or _configured_telemetry_dir()
        if export_dir:
            telemetry_paths = session.export(
                export_dir, f"pfc_{scenario}_{fabric}_{seed}"
            )
    return PathologyResult(
        scenario=scenario,
        fabric=fabric,
        seed=seed,
        scalars=scalars,
        pathologies=pathologies,
        violations=list(monitor.violations),
        goodput_series=sampler.series,
        telemetry_paths=telemetry_paths,
    )


def run_pathology_cell(
    scenario: str,
    fabric: str,
    seed: int = 1,
    duration_ms: int = 60,
    **kwargs,
) -> ExperimentResult:
    """Runner entry point: one (scenario, fabric) cell, plain scalars."""
    result = run_pathology(
        scenario,
        fabric,
        seed=seed,
        duration_ns=milliseconds(duration_ms),
        **kwargs,
    )
    return ExperimentResult(
        name=f"pfc_{scenario}",
        protocol=fabric,
        scalars=dict(result.scalars),
        series={"goodput_bps": list(result.goodput_series)},
    )


def run_head_to_head(
    scenario: str, seed: int = 1, **kwargs
) -> Dict[str, PathologyResult]:
    """Run one scenario under both fabrics (same seed, same workload)."""
    return {
        fabric: run_pathology(scenario, fabric, seed=seed, **kwargs)
        for fabric in FABRICS
    }


def main(argv=None) -> None:
    """CLI entry: run the head-to-head table for one or all scenarios."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.pfc_pathology",
        description="TFC vs PFC under pause-storm / HoL / CBD chaos.",
    )
    parser.add_argument(
        "--scenario",
        choices=SCENARIOS,
        default=None,
        help="one scenario (default: all three)",
    )
    parser.add_argument("--seed", type=int, default=1, help="scenario seed")
    parser.add_argument(
        "--duration-ms", type=int, default=60, help="sim duration per run"
    )
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="export full telemetry (metrics + flight recorder) into DIR",
    )
    args = parser.parse_args(argv)

    scenarios = [args.scenario] if args.scenario else list(SCENARIOS)
    rows = []
    for scenario in scenarios:
        results = run_head_to_head(
            scenario,
            seed=args.seed,
            duration_ns=milliseconds(args.duration_ms),
            telemetry_dir=args.telemetry,
        )
        for fabric in FABRICS:
            r = results[fabric]
            s = r.scalars
            rows.append(
                [
                    scenario,
                    fabric,
                    f"{int(s['pause_frames'])}",
                    f"{int(s['det_pause_storm'])}/"
                    f"{int(s['det_hol_blocking'])}/"
                    f"{int(s['det_cbd_deadlock'])}",
                    f"{s['goodput_bps'] / 1e9:.3f}",
                    f"{s['goodput_ratio'] * 100:.0f}%",
                    f"{int(s['drops'])}",
                    f"{int(s['violations'])}",
                ]
            )
    print(
        format_table(
            [
                "scenario",
                "fabric",
                "pauses",
                "storm/hol/cbd",
                "goodput Gbps",
                "ratio",
                "drops",
                "violations",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
