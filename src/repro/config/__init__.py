"""repro.config — one coherent configuration surface.

Two pieces:

* :class:`SimConfig` — a frozen dataclass carrying scheduler, routing,
  transport, telemetry and seed selection, accepted by
  ``Simulator(config=...)``, ``Network(config=...)`` and the experiment
  runner (``run_cells(config=...)``).
* :func:`env` — the single validated context manager behind every
  ``REPRO_*`` environment knob (scheduler backend, routing policy,
  telemetry mode and directory).  The historical per-subsystem helpers
  (``repro.sim.sched.scheduler_env``, ``repro.routing.routing_env``) are
  thin deprecation shims over it.

Name registries are re-exported here so callers can enumerate every
selection surface from one import::

    from repro.config import SCHEDULER_NAMES, ROUTING_NAMES, TELEMETRY_MODES
"""

from ..obs.session import TELEMETRY_MODES
from ..routing import ROUTING_NAMES
from ..sim.sched import SCHEDULER_NAMES
from .envvars import (
    BATCH_ENV_VAR,
    COMPILED_ENV_VAR,
    KNOBS,
    LOSSLESS_ENV_VAR,
    LOSSLESS_MODES,
    ROUTING_ENV_VAR,
    SCHEDULER_ENV_VAR,
    SHARDS_ENV_VAR,
    TELEMETRY_DIR_ENV_VAR,
    TELEMETRY_ENV_VAR,
    EnvKnob,
    batch_mode,
    compiled_mode,
    current,
    env,
    lossless_mode,
    routing_name,
    scheduler_name,
    shard_count,
    telemetry_dir,
    telemetry_mode,
)
from .simconfig import SimConfig

__all__ = [
    "SimConfig",
    "env",
    "current",
    "EnvKnob",
    "KNOBS",
    "scheduler_name",
    "routing_name",
    "telemetry_mode",
    "telemetry_dir",
    "lossless_mode",
    "batch_mode",
    "compiled_mode",
    "shard_count",
    "SCHEDULER_NAMES",
    "ROUTING_NAMES",
    "TELEMETRY_MODES",
    "LOSSLESS_MODES",
    "SCHEDULER_ENV_VAR",
    "ROUTING_ENV_VAR",
    "TELEMETRY_ENV_VAR",
    "TELEMETRY_DIR_ENV_VAR",
    "LOSSLESS_ENV_VAR",
    "BATCH_ENV_VAR",
    "COMPILED_ENV_VAR",
    "SHARDS_ENV_VAR",
]
