"""Deterministic random-number management.

Every stochastic component (workload generators, host processing jitter,
start-time staggering) draws from a named child stream derived from one root
seed.  Two runs with the same root seed are bit-identical regardless of the
order in which components are constructed, because each stream is seeded by
hashing ``(root_seed, stream_name)`` rather than by sharing one generator.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class SeedSequence:
    """Factory for named, independent :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so a component can re-fetch its stream without resetting it.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "SeedSequence":
        """Derive a child sequence (for nested components with sub-streams)."""
        digest = hashlib.sha256(
            f"{self.root_seed}:spawn:{name}".encode("utf-8")
        ).digest()
        return SeedSequence(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SeedSequence root={self.root_seed} streams={len(self._streams)}>"
