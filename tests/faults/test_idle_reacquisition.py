"""Satellite: host pause -> stale window -> re-acquisition, not a burst.

DESIGN.md section 5a.10: a TFC sender resuming after more than 0.5 ms of
idle must drop back into the window-acquisition phase instead of bursting
its held (stale) allocation.  Here the idle gap is created by the host
pause/resume fault primitive: the sender's burst drains, the host freezes
past ``idle_reacquire_ns``, and fresh application data arrives right after
the resume.
"""

from repro.experiments.common import build_topology
from repro.faults import FaultInjector
from repro.net.topology import dumbbell
from repro.sim.units import milliseconds
from repro.transport.registry import open_flow


def test_host_pause_forces_window_reacquisition():
    topo = build_topology(dumbbell, "tfc", buffer_bytes=256_000, n_senders=2)
    net = topo.network
    receiver = topo.hosts[-1]
    # Background long-lived flow keeps the switch agents and slots alive.
    open_flow(topo.host(1), receiver, "tfc")
    # On-off flow under test: size_bytes=0 + queue_bytes (application API).
    onoff = open_flow(topo.host(0), receiver, "tfc", size_bytes=0)
    onoff.queue_bytes(40_000)

    drain_ns = milliseconds(10)  # burst long since drained by now
    pause_ns = milliseconds(2)  # > idle_reacquire_ns (0.5 ms)
    injector = FaultInjector(net)
    injector.pause_host(topo.host(0), drain_ns, pause_ns)

    resumed_state = {}

    def send_after_resume():
        assert onoff.flight_size == 0  # it really was idle
        assert onoff.window_acquired  # holding a stale window
        onoff.queue_bytes(40_000)
        # queue_bytes saw the stale window: back to acquisition, no burst.
        resumed_state["reacquisitions"] = onoff.reacquisitions
        resumed_state["window_acquired"] = onoff.window_acquired
        resumed_state["cwnd"] = onoff.cwnd
        resumed_state["flight"] = onoff.flight_size

    net.sim.schedule_at(drain_ns + pause_ns + 1000, send_after_resume)
    net.run_for(milliseconds(40))

    assert resumed_state["reacquisitions"] == 1
    assert resumed_state["window_acquired"] is False
    assert resumed_state["cwnd"] == 0.0
    assert resumed_state["flight"] == 0  # nothing burst at resume
    # The flow then re-acquired a window and delivered the second burst.
    assert onoff.window_acquired
    assert onoff.receiver.bytes_received == 80_000


def test_short_gap_with_small_window_does_not_reacquire():
    """A sub-threshold gap with a modest held window resumes directly."""
    topo = build_topology(dumbbell, "tfc", buffer_bytes=256_000, n_senders=2)
    net = topo.network
    receiver = topo.hosts[-1]
    open_flow(topo.host(1), receiver, "tfc")
    onoff = open_flow(topo.host(0), receiver, "tfc", size_bytes=0)
    onoff.queue_bytes(40_000)

    gap_start = milliseconds(10)
    gap_ns = 200_000  # 0.2 ms < idle_reacquire_ns
    held = {}

    def send_again():
        held["cwnd"] = onoff.cwnd
        onoff.queue_bytes(20_000)
        held["reacquisitions"] = onoff.reacquisitions

    net.sim.schedule_at(gap_start + gap_ns, send_again)
    net.run_for(milliseconds(40))
    if held["cwnd"] <= onoff.resume_burst_limit:
        # Small held window, short gap: no re-acquisition round trip.
        assert held["reacquisitions"] == 0
    else:
        # The held window itself exceeded the burst limit, which must
        # trigger re-acquisition regardless of the gap length.
        assert held["reacquisitions"] == 1
    assert onoff.receiver.bytes_received == 60_000
