"""Unit tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0
    assert sim.now_seconds == 0.0


def test_events_run_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(30, log.append, "c")
    sim.schedule(10, log.append, "a")
    sim.schedule(20, log.append, "b")
    sim.run()
    assert log == ["a", "b", "c"]


def test_same_time_events_run_fifo():
    sim = Simulator()
    log = []
    for tag in range(10):
        sim.schedule(5, log.append, tag)
    sim.run()
    assert log == list(range(10))


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(42, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42]
    assert sim.now == 42


def test_schedule_in_past_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    log = []
    event = sim.schedule(10, log.append, "x")
    sim.schedule(5, event.cancel)
    sim.run()
    assert log == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()
    assert sim.events_processed == 0


def test_run_until_is_inclusive_and_advances_clock():
    sim = Simulator()
    log = []
    sim.schedule(100, log.append, "at-horizon")
    sim.schedule(101, log.append, "beyond")
    processed = sim.run(until_ns=100)
    assert log == ["at-horizon"]
    assert processed == 1
    assert sim.now == 100  # clock parked at the horizon


def test_run_until_leaves_future_events_runnable():
    sim = Simulator()
    log = []
    sim.schedule(50, log.append, 1)
    sim.schedule(150, log.append, 2)
    sim.run(until_ns=100)
    sim.run(until_ns=200)
    assert log == [1, 2]


def test_run_for_is_relative():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run_for(100)
    assert sim.now == 100
    sim.schedule(10, lambda: None)
    sim.run_for(100)
    assert sim.now == 200


def test_events_can_schedule_events():
    sim = Simulator()
    log = []

    def chain(n):
        log.append(n)
        if n < 5:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert log == [0, 1, 2, 3, 4, 5]
    assert sim.now == 50


def test_max_events_bound():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(0, forever)
    processed = sim.run(max_events=100)
    assert processed == 100


def test_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(0, reenter)
    sim.run()
    assert len(errors) == 1


def test_pending_events_counts_live_only():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    dead = sim.schedule(20, lambda: None)
    dead.cancel()
    assert sim.pending_events == 1


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50))
def test_property_execution_order_is_sorted(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=30),
    st.integers(min_value=0, max_value=1000),
)
def test_property_run_until_never_executes_beyond_horizon(delays, horizon):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run(until_ns=horizon)
    assert all(t <= horizon for t in fired)
    assert len(fired) == sum(1 for d in delays if d <= horizon)


# ----------------------------------------------------------------------
# Fast-path machinery: free list, compaction, cancel reference-dropping
# ----------------------------------------------------------------------
def test_cancel_drops_callback_and_args_references():
    """Cancelling must not pin the callback/args until the heap drains."""
    sim = Simulator()
    payload = object()
    event = sim.schedule(10, lambda p: None, payload)
    event.cancel()
    assert event.callback is None
    assert event.args == ()


def test_pending_events_is_live_counter():
    """pending_events tracks schedules, cancels, and executions exactly."""
    sim = Simulator()
    events = [sim.schedule(i + 1, lambda: None) for i in range(10)]
    assert sim.pending_events == 10
    for event in events[:4]:
        event.cancel()
    assert sim.pending_events == 6
    sim.run(until_ns=5)  # events at t=1..4 were cancelled; only t=5 fires
    assert sim.events_processed == 1
    assert sim.pending_events == 5


def test_executed_events_are_recycled():
    """The free list reuses retired Event objects instead of allocating."""
    sim = Simulator()
    first = sim.schedule(1, lambda: None)
    sim.run()
    second = sim.schedule(1, lambda: None)
    assert second is first  # recycled, not a fresh allocation
    sim.run()


def test_stale_cancel_of_fired_event_is_harmless():
    """cancel() on a handle that already fired must not kill later events."""
    sim = Simulator()
    fired = []
    handle = sim.schedule(1, lambda: fired.append("a"))
    sim.run()
    handle.cancel()  # stale: the event already executed
    sim.schedule(1, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b"]
    assert sim.pending_events == 0


def test_heap_compaction_preserves_order_and_counts():
    """Mass-cancelling (timer churn) compacts without losing live events."""
    sim = Simulator()
    fired = []
    live = []
    # Interleave many cancelled "timers" with a few real events.
    for i in range(2000):
        event = sim.schedule(10_000 + i, lambda: None)
        event.cancel()
    for i in range(5):
        live.append(sim.schedule(100 + i, fired.append, i))
    # Compaction triggered: the heap must be mostly dead-free now.
    assert sim.pending_events == 5
    sim.run()
    assert fired == [0, 1, 2, 3, 4]
    assert sim.pending_events == 0


def test_compaction_during_run_keeps_heap_consistent():
    """A callback that mass-cancels mid-run must not break the loop."""
    sim = Simulator()
    fired = []
    doomed = [sim.schedule(1_000_000 + i, lambda: None) for i in range(600)]

    def cancel_all():
        for event in doomed:
            event.cancel()
        fired.append("cancelled")

    sim.schedule(10, cancel_all)
    sim.schedule(20, fired.append, "after")
    sim.run()
    assert fired == ["cancelled", "after"]
    assert sim.pending_events == 0
