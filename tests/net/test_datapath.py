"""Integration tests for ports, links, switches, and hosts."""

import pytest

from repro.net.network import Network
from repro.net.packet import MSS, Packet
from repro.sim.trace import PACKET_DROP
from repro.sim.units import GBPS, microseconds


class SinkHostMixin:
    """Capture packets delivered to a host endpoint."""


def two_hosts_one_switch(jitter=0):
    net = Network(seed=1, host_processing_jitter_ns=jitter, host_processing_delay_ns=0)
    a = net.add_host("A")
    b = net.add_host("B")
    sw = net.add_switch("SW")
    net.cable(a, sw, GBPS, microseconds(1))
    net.cable(b, sw, GBPS, microseconds(1))
    net.build_routes()
    return net, a, b, sw


class Capture:
    def __init__(self):
        self.packets = []
        self.times = []

    def on_packet(self, packet):
        self.packets.append(packet)


def test_end_to_end_delivery_and_demux():
    net, a, b, sw = two_hosts_one_switch()
    sink = Capture()
    b.register_connection((a.node_id, b.node_id, 5, 6), sink)
    pkt = Packet(a.node_id, b.node_id, 5, 6, payload=100)
    a.send(pkt)
    net.sim.run()
    assert sink.packets == [pkt]
    assert pkt.hops == 2  # host->switch, switch->host


def test_store_and_forward_latency():
    # Full MTU at 1 Gbps: 12.144 us serialisation per hop (1518 B frame),
    # two hops, plus 2 x 1 us propagation.  Store-and-forward means the
    # second hop only starts after the first fully arrives.
    net, a, b, sw = two_hosts_one_switch()
    sink = Capture()
    arrival = []
    sink.on_packet = lambda pkt: arrival.append(net.sim.now)
    b.register_connection((a.node_id, b.node_id, 5, 6), sink)
    a.send(Packet(a.node_id, b.node_id, 5, 6, payload=MSS))
    net.sim.run()
    tx = 12_144  # 1518 * 8 ns at 1 Gbps
    assert arrival[0] == 2 * tx + 2 * 1000


def test_back_to_back_packets_spaced_at_line_rate():
    net, a, b, sw = two_hosts_one_switch()
    times = []
    sink = Capture()
    sink.on_packet = lambda pkt: times.append(net.sim.now)
    b.register_connection((a.node_id, b.node_id, 5, 6), sink)
    for _ in range(3):
        a.send(Packet(a.node_id, b.node_id, 5, 6, payload=MSS))
    net.sim.run()
    gaps = [t2 - t1 for t1, t2 in zip(times, times[1:])]
    assert gaps == [12_144, 12_144]


def test_switch_drop_emits_trace():
    # Two hosts fan in to one egress: the switch queue must overflow.
    net = Network(seed=1, default_buffer_bytes=1600)
    a = net.add_host("A")
    c = net.add_host("C")
    b = net.add_host("B")
    sw = net.add_switch("SW")
    net.cable(a, sw, GBPS, microseconds(1))
    net.cable(c, sw, GBPS, microseconds(1))
    net.cable(b, sw, GBPS, microseconds(1))
    net.build_routes()
    drops = []
    net.tracer.subscribe(PACKET_DROP, lambda packet=None, port=None: drops.append(packet))
    for _ in range(20):
        a.send(Packet(a.node_id, b.node_id, 5, 6, payload=MSS))
        c.send(Packet(c.node_id, b.node_id, 5, 6, payload=MSS))
    net.sim.run()
    # Host NIC queues are deep; drops happen at the switch port to B.
    assert net.total_drops() == len(drops) > 0


def test_unknown_destination_raises():
    net, a, b, sw = two_hosts_one_switch()
    with pytest.raises(KeyError):
        sw.forward(Packet(a.node_id, 999, 1, 2, payload=10))


def test_host_processing_jitter_within_bounds():
    net = Network(
        seed=3, host_processing_delay_ns=2_000, host_processing_jitter_ns=4_000
    )
    a = net.add_host("A")
    b = net.add_host("B")
    sw = net.add_switch("SW")
    net.cable(a, sw, GBPS, microseconds(1))
    net.cable(b, sw, GBPS, microseconds(1))
    net.build_routes()
    delays = []
    sink = Capture()
    base = 2 * 12_144 + 2_000  # wire time for MTU
    sink.on_packet = lambda pkt: delays.append(net.sim.now - pkt.sent_at - base)
    b.register_connection((a.node_id, b.node_id, 5, 6), sink)
    for _ in range(50):
        pkt = Packet(a.node_id, b.node_id, 5, 6, payload=MSS)
        pkt.sent_at = net.sim.now
        a.send(pkt)
        net.sim.run()
    assert all(2_000 <= d <= 6_000 for d in delays)
    assert len(set(delays)) > 1  # actually random


def test_orphan_packet_traced_not_crashing():
    net, a, b, sw = two_hosts_one_switch()
    a.send(Packet(a.node_id, b.node_id, 5, 6, payload=10))
    net.sim.run()
    assert net.tracer.count("host.orphan_packet") == 1


def test_listener_accepts_syn():
    net, a, b, sw = two_hosts_one_switch()
    accepted = []

    def acceptor(syn):
        sink = Capture()
        b.register_connection(syn.flow_key, sink)
        accepted.append(sink)
        return sink

    b.listen(6, acceptor)
    a.send(Packet(a.node_id, b.node_id, 5, 6, syn=True))
    net.sim.run()
    assert len(accepted) == 1
    assert len(accepted[0].packets) == 1
    # A second packet of the same flow reaches the registered endpoint.
    a.send(Packet(a.node_id, b.node_id, 5, 6, payload=10))
    net.sim.run()
    assert len(accepted[0].packets) == 2


def test_duplicate_registration_rejected():
    net, a, b, sw = two_hosts_one_switch()
    b.register_connection((1, 2, 3, 4), Capture())
    with pytest.raises(ValueError):
        b.register_connection((1, 2, 3, 4), Capture())
    b.unregister_connection((1, 2, 3, 4))
    b.register_connection((1, 2, 3, 4), Capture())  # ok after release


def test_allocate_port_is_unique():
    net, a, b, sw = two_hosts_one_switch()
    ports = {a.allocate_port() for _ in range(10)}
    assert len(ports) == 10
