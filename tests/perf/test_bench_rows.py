"""Pinned sharded-fabric bench rows and the suite wiring around them."""

import json
import os

import pytest

from repro.perf.bench import run_kernel_suite
from repro.perf.workloads import KERNEL_WORKLOADS, ShardedFabricWorkload

SNAPSHOT = os.path.join(
    os.path.dirname(__file__), "..", "..", "BENCH_kernel.json"
)


def test_sharded_twin_workloads_are_pinned():
    by_name = {w.name: w for w in KERNEL_WORKLOADS}
    serial = by_name["fattree8_tfc_serial"]
    sharded = by_name["fattree8_tfc_sharded4"]
    assert isinstance(serial, ShardedFabricWorkload)
    assert serial.pod_shards == 0  # the serial reference
    assert sharded.pod_shards == 4
    # Identical workload physics — only the execution mode differs.
    for field in ("protocol", "k", "flows_per_pod", "seed", "duration_s"):
        assert getattr(serial, field) == getattr(sharded, field)
    assert serial.lead_only and sharded.lead_only


def test_snapshot_carries_sharded_rows_with_machine_aware_speedup():
    """The committed twin rows, and the speedup claim scaled to the
    snapshot machine.

    The >= 2.5x events/sec target only makes sense where the machine can
    actually run the shards concurrently (cores >= worker processes).
    The committed baseline machine reports its cpu_count in the snapshot;
    on a single-core machine the honest sharded number is a *slowdown*
    (coordination overhead with zero parallelism — DESIGN.md §6i), and
    the pinned contract is that the rows exist, are measured, and are
    internally consistent.
    """
    with open(SNAPSHOT) as fh:
        snap = json.load(fh)
    rows = {
        row["workload"]: row
        for row in snap["results"]
        if not row.get("variant") and row.get("scheduler") == "adaptive"
    }
    serial = rows["fattree8_tfc_serial"]
    sharded = rows["fattree8_tfc_sharded4"]
    assert sharded["shards"] == 5  # 4 pod shards + the core shard
    assert serial["events_per_sec"] > 0 and sharded["events_per_sec"] > 0
    speedup = sharded["events_per_sec"] / serial["events_per_sec"]
    cores = snap["machine"]["cpu_count"]
    if cores >= sharded["shards"]:
        assert speedup >= 2.5, (
            f"sharded speedup {speedup:.2f}x below the 2.5x target on a "
            f"{cores}-core snapshot machine"
        )
    else:
        # Single-/few-core snapshot: parallel speedup is physically
        # unavailable; the honest measured ratio is still pinned > 0.
        assert speedup > 0


def test_lead_only_workloads_measure_one_backend_and_no_variants():
    rows = run_kernel_suite(
        repeats=1,
        duration_scale=0.02,
        schedulers=("heap", "calendar"),
        variants=("unbatched",),
        workloads=["fattree8_tfc_serial"],
    )
    assert [row["name"] for row in rows] == ["fattree8_tfc_serial@heap"]


def test_workload_filter_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown kernel workload"):
        run_kernel_suite(repeats=1, workloads=["no_such_workload"])
