"""Discrete-event simulation kernel: clock, events, timers, RNG, tracing."""

from .engine import ADAPTIVE_SWITCH_THRESHOLD, Event, SimulationError, Simulator
from .rng import SeedSequence
from .sched import SCHEDULER_BACKENDS, SCHEDULER_NAMES, Scheduler, make_scheduler
from .timers import Timer
from .trace import Tracer
from . import sched, trace, units

__all__ = [
    "ADAPTIVE_SWITCH_THRESHOLD",
    "Event",
    "SimulationError",
    "Simulator",
    "SeedSequence",
    "Scheduler",
    "SCHEDULER_BACKENDS",
    "SCHEDULER_NAMES",
    "make_scheduler",
    "Timer",
    "Tracer",
    "sched",
    "trace",
    "units",
]
