"""FairQ — switch-computed per-flow fair shares fed back through ECN.

FairQ (Abdelmoniem & Bensaou) moves fairness enforcement from end-host
AIMD dynamics into the switch: each egress port measures per-flow
arrival rates over a short interval, computes the equal share of the
port's capacity among the flows it actually saw, and pushes flows above
their share back down.  The published design writes an explicit rate
into feedback packets; this reproduction keeps the feedback channel the
repo already has — ECN — and marks precisely the *bytes a flow sends
beyond its fair share*, so the DCTCP-style sender backs off in
proportion to its overshoot while compliant flows never see a mark.
Selective marking is the whole difference from a plain
:class:`~repro.net.queues.EcnQueue`, which marks by queue depth and hits
every flow that happens to arrive behind the backlog.

Mechanics (deliberately event-free so determinism is structural):

* :class:`FairqPortAgent` hangs off a switch egress port's ``agent``
  slot, exactly like the TFC agent.  Every transiting packet lazily
  rolls the measurement slot forward — no timers, so an idle port costs
  nothing and bit-identical schedules need no event-ordering care.
* At each slot boundary the agent publishes ``fair_share_bytes =
  capacity(slot) x target_utilization / n_active`` where ``n_active`` is
  the number of flows that sent payload in the *finished* slot (the
  measure-then-apply split mirrors the paper's control interval).
* Within a slot, a flow's payload bytes beyond the published share get
  CE-marked (if ECN-capable); the per-flow counters reset each slot.

The port queue behind the agent is still an ECN queue
(:func:`make_fairq_queue`) with a *generous* threshold: it is the
safety net that keeps the buffer bounded while the first slot
measures, not the primary fairness signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from ..sim.units import MICROSECOND
from .packet import FlowKey, Packet
from .queues import EcnQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network
    from .node import Switch
    from .port import Port


@dataclass(frozen=True)
class FairqParams:
    """Control-interval and marking constants for the FairQ agent."""

    slot_us: float = 100.0
    """Measurement/enforcement interval.  Roughly one RTT of the paper's
    testbed topologies — long enough to see every active flow, short
    enough to track incast arrival waves."""

    target_utilization: float = 0.95
    """Fraction of port capacity divided among active flows; the
    headroom keeps the standing queue near zero, like TFC's rho0."""

    ecn_threshold_bytes: int = 96_000
    """Depth threshold of the backstop ECN queue.  Three times DCTCP's
    K: it should only fire while the first slot is still measuring or
    under flash crowds faster than the control interval."""

    def __post_init__(self) -> None:
        if self.slot_us <= 0:
            raise ValueError(f"slot must be positive, got {self.slot_us}")
        if not 0.0 < self.target_utilization <= 1.0:
            raise ValueError(
                "target utilization must be in (0, 1], "
                f"got {self.target_utilization}"
            )
        if self.ecn_threshold_bytes <= 0:
            raise ValueError(
                f"ecn threshold must be positive, got {self.ecn_threshold_bytes}"
            )


DEFAULT_FAIRQ_PARAMS = FairqParams()


def make_fairq_queue(
    params: FairqParams, buffer_bytes: int, rate_bps: int
) -> EcnQueue:
    """The backstop ECN queue behind a FairQ agent."""
    return EcnQueue(buffer_bytes, min(params.ecn_threshold_bytes, buffer_bytes))


class FairqPortAgent:
    """Per-egress-port fair-share measurement and selective CE marking."""

    def __init__(
        self,
        switch: "Switch",
        port: "Port",
        params: FairqParams = DEFAULT_FAIRQ_PARAMS,
    ):
        self.switch = switch
        self.port = port
        self.params = params
        self.sim = switch.sim
        self.slot_ns = max(int(params.slot_us * MICROSECOND), 1)
        #: Payload capacity of one slot, derated to the target utilisation.
        self.slot_budget_bytes = (
            port.rate_bps * self.slot_ns / 8e9 * params.target_utilization
        )
        self.slot_start_ns = 0
        self.slot_index = 0
        #: Fair share published from the last finished slot; packets in
        #: the current slot are judged against it.  Starts at the whole
        #: budget (one flow's worth): nothing is marked until flows have
        #: actually been counted.
        self.fair_share_bytes: float = self.slot_budget_bytes
        self._slot_bytes: Dict[FlowKey, int] = {}
        self.marked_packets = 0

    # ------------------------------------------------------------------
    # Fault hook: state reset (switch reboot)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all measured flows, as if the agent rebooted."""
        self.slot_start_ns = self.sim.now
        self.slot_index = 0
        self.fair_share_bytes = self.slot_budget_bytes
        self._slot_bytes.clear()

    # ------------------------------------------------------------------
    # Forward (data) direction
    # ------------------------------------------------------------------
    def on_transit(self, packet: Packet) -> None:
        """Measure the packet's flow; CE-mark bytes beyond the fair share."""
        now = self.sim.now
        elapsed = now - self.slot_start_ns
        if elapsed >= self.slot_ns:
            # Lazy slot rollover: publish the share measured in the slot
            # that just ended, then skip any fully idle slots in between
            # (an idle gap means no flows to measure — the published
            # share would only be recomputed from an empty count).
            counted = len(self._slot_bytes)
            if counted:
                self.fair_share_bytes = self.slot_budget_bytes / counted
                self._slot_bytes.clear()
            else:
                self.fair_share_bytes = self.slot_budget_bytes
            skipped = elapsed // self.slot_ns
            self.slot_start_ns += skipped * self.slot_ns
            self.slot_index += skipped
        if packet.payload <= 0:
            return  # pure ACKs/control: not rate-measured, never marked
        key = packet.flow_key
        sent = self._slot_bytes.get(key, 0) + packet.payload
        self._slot_bytes[key] = sent
        if sent > self.fair_share_bytes and packet.ecn_capable:
            packet.ecn_ce = True
            self.marked_packets += 1

    # ------------------------------------------------------------------
    # Reverse direction: FairQ sends nothing upstream itself
    # ------------------------------------------------------------------
    def on_reverse_arrival(self, packet: Packet) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FairqPortAgent {self.port!r} share={self.fair_share_bytes:.0f}B"
            f" active={len(self._slot_bytes)} marked={self.marked_packets}>"
        )


def enable_fairq(
    network: "Network", params: FairqParams = DEFAULT_FAIRQ_PARAMS
) -> int:
    """Attach a FairQ agent to every switch port of ``network``.

    Returns the number of agents installed.  Hosts keep plain NIC ports:
    like TFC, FairQ is a switch function — end hosts just run the
    ECN-reactive endpoints.
    """
    installed = 0
    for switch in network.switches:
        for port in switch.ports:
            port.agent = FairqPortAgent(switch, port, params)
            installed += 1
    return installed
