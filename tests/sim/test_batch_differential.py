"""Differential fuzz: batched execution vs. single-pop, event for event.

DESIGN.md §6h promises that hot-loop batching (``REPRO_BATCH``) is a pure
implementation detail — every dispatch happens at the same time, in the
same order, with the same public state, as the serial kernel.  The golden
suite pins a handful of blessed scenarios; these tests attack the claim
adversarially instead:

* **engine level** — randomized schedule/cancel storms with heavy
  same-nanosecond collisions, where callbacks cancel events that are
  *already inside the current micro-batch* (the lazy-skip path the
  batched dispatch loop must mirror exactly);
* **network level** — the interactions the port TX burst chain must
  survive mid-flight: a PFC XOFF landing between burst members, a loss
  model eating frames inside a burst window, ``link_down(reroute=True)``
  cutting a chained port, and a rate change dissolving the chain.

Every scenario runs twice (``REPRO_BATCH=on`` / ``off``) and must produce
an identical dispatch/delivery log and identical end state.
"""

import random

import pytest

from repro.config import SimConfig
from repro.experiments.common import build_topology
from repro.faults import FaultInjector
from repro.net.node import Node
from repro.net.pfc import PfcParams
from repro.net.topology import dumbbell, fat_tree
from repro.net.queues import BernoulliLoss
from repro.sim.engine import Simulator
from repro.sim.units import milliseconds, seconds
from repro.transport.registry import open_flow


# ----------------------------------------------------------------------
# Engine level: random cancel-mid-batch storms
# ----------------------------------------------------------------------
def _storm(batch: str, seed: int):
    """A randomized event storm with same-time pile-ups and cancellations.

    Callbacks log ``(now, ident)``, randomly cancel other *pending*
    events — including ones sharing their own timestamp, i.e. members of
    the micro-batch currently being dispatched — and randomly schedule
    more work at coarse times so collisions stay frequent.
    """
    sim = Simulator(config=SimConfig(batch=batch))
    rng = random.Random(seed)
    log = []
    pending = []

    def fire(ident: int) -> None:
        log.append((sim.now, ident))
        live = [e for e in pending if not e.cancelled and e.time >= sim.now]
        if live and rng.random() < 0.35:
            rng.choice(live).cancel()
        for _ in range(rng.randrange(3)):
            ident2 = rng.randrange(1 << 30)
            # Coarse 10 ns grid => many events share a timestamp.
            delay = rng.randrange(1, 8) * 10
            pending.append(sim.schedule(delay, fire, ident2))

    for ident in range(40):
        pending.append(sim.schedule(rng.randrange(1, 5) * 10, fire, ident))
    processed = sim.run(until_ns=5_000)
    return log, processed, sim.now


@pytest.mark.parametrize("seed", range(8))
def test_cancel_mid_batch_storm_is_order_identical(seed):
    batched = _storm("on", seed)
    serial = _storm("off", seed)
    assert batched == serial
    assert len(batched[0]) > 50  # the storm actually stormed


def test_batch_respects_run_horizon():
    """A micro-batch must not leak past ``until_ns``: events at the same
    timestamp straddling the horizon stay queued, exactly as serial."""

    def run(batch: str):
        sim = Simulator(config=SimConfig(batch=batch))
        log = []
        for ident in range(10):
            sim.schedule(100, log.append, ident)
        sim.run(until_ns=50)
        mid = list(log)
        sim.run(until_ns=200)
        return mid, log, sim.now

    assert run("on") == run("off")


# ----------------------------------------------------------------------
# Network level: the burst chain under mid-flight interference
# ----------------------------------------------------------------------
def _install_delivery_log(monkeypatch):
    """Patch Node.receive (once) to log arrivals into a swappable list."""
    original = Node.receive
    sink = []

    def logged(self, packet, port_index):
        sink.append((self.sim._now, self.node_id, port_index, packet.size))
        return original(self, packet, port_index)

    monkeypatch.setattr(Node, "receive", logged)

    def fresh_log():
        nonlocal sink
        sink = []
        return sink

    return fresh_log


def _state(net):
    rows = []
    for node in net.nodes:
        for port in node.ports:
            queue = port.queue
            rows.append(
                (
                    node.name,
                    port.index,
                    port.tx_packets,
                    port.tx_bytes,
                    port.link.faulted_frames,
                    queue.byte_length,
                    queue.drops,
                    queue.enqueues,
                    queue.max_bytes_seen,
                )
            )
    return rows


def _differential(monkeypatch, scenario):
    """Run ``scenario`` under both batch modes, return both observations."""
    results = []
    fresh_log = _install_delivery_log(monkeypatch)
    for batch in ("on", "off"):
        monkeypatch.setenv("REPRO_BATCH", batch)
        log = fresh_log()
        net = scenario()
        results.append(
            (
                log,
                net.sim.events_processed,
                net.sim.now,
                dict(sorted(net.tracer.counters.items())),
                _state(net),
                [n.rx_bytes for n in net.nodes],
            )
        )
    return results


def test_pfc_xoff_mid_burst_is_bit_identical(monkeypatch):
    """Tight PFC watermarks pause host NICs while their burst chains are
    mid-flight; the chain must honour the pause at the next completion
    boundary exactly as the serial port does."""

    def scenario():
        topo = build_topology(
            dumbbell,
            "tcp",
            buffer_bytes=256_000,
            n_senders=4,
            seed=1,
            pfc_params=PfcParams(
                xoff_bytes=32_000, xon_bytes=8_000, headroom_bytes=32_000
            ),
        )
        for i in range(4):
            open_flow(topo.host(i), topo.host(4), "tcp", awnd_bytes=200_000)
        topo.network.run_for(milliseconds(20))
        assert topo.network.lossless.pause_frames > 0  # XOFF actually hit
        return topo.network

    batched, serial = _differential(monkeypatch, scenario)
    assert batched == serial


def test_loss_model_drop_inside_burst_is_bit_identical(monkeypatch):
    """A Bernoulli loss model armed mid-run eats arrivals *during* burst
    windows; RNG draw order (one draw per enqueue) must be unchanged."""

    def scenario():
        topo = build_topology(
            dumbbell, "tcp", buffer_bytes=256_000, n_senders=4, seed=2
        )
        injector = FaultInjector(topo.network)
        stream = injector.seeds.stream("fuzz-loss")
        injector.inject_loss(
            topo.host(0).ports[0],
            BernoulliLoss(0.05, stream),
            at_ns=milliseconds(2),
            duration_ns=milliseconds(10),
        )
        for i in range(4):
            open_flow(topo.host(i), topo.host(4), "tcp", awnd_bytes=200_000)
        topo.network.run_for(milliseconds(20))
        port = topo.host(0).ports[0]
        assert port.queue.faulted_drops > 0  # the fault actually bit
        return topo.network

    batched, serial = _differential(monkeypatch, scenario)
    assert batched == serial


def test_link_down_reroute_mid_burst_is_bit_identical(monkeypatch):
    """``link_down(reroute=True)`` on a multi-path fabric cuts a cable
    while chained bursts are in flight and rebuilds every route; chained
    frames finishing into the cut must vanish exactly as serial ones."""

    def scenario():
        topo = build_topology(
            fat_tree, "tcp", buffer_bytes=256_000, k=4, seed=3, routing="ecmp"
        )
        injector = FaultInjector(topo.network)
        # Cut an aggregation uplink both ways, restore later.
        uplink = topo.switches[0].ports[2]
        injector.link_down(
            uplink,
            at_ns=milliseconds(1),
            duration_ns=milliseconds(5),
            reroute=True,
        )
        for i in range(4):
            open_flow(
                topo.hosts[i], topo.hosts[8 + i], "tcp", awnd_bytes=200_000
            )
        topo.network.run_for(milliseconds(15))
        assert topo.network.route_rebuilds >= 2
        return topo.network

    batched, serial = _differential(monkeypatch, scenario)
    assert batched == serial


def test_rate_change_mid_chain_is_bit_identical(monkeypatch):
    """``degrade_link`` rewrites the effective rate mid-run: every burst
    chain on the degraded link must dissolve at its next completion
    boundary and re-plan at the new rate (DESIGN.md §6h flush rule)."""

    def scenario():
        topo = build_topology(
            dumbbell, "tcp", buffer_bytes=256_000, n_senders=4, seed=4
        )
        injector = FaultInjector(topo.network)
        for host in topo.hosts[:4]:
            injector.degrade_link(
                host.ports[0],
                0.25,
                at_ns=milliseconds(3),
                duration_ns=milliseconds(6),
            )
        for i in range(4):
            open_flow(topo.host(i), topo.host(4), "tcp", awnd_bytes=200_000)
        topo.network.run_for(milliseconds(20))
        return topo.network

    batched, serial = _differential(monkeypatch, scenario)
    assert batched == serial


def test_tfc_long_run_is_bit_identical(monkeypatch):
    """The paper's own transport, long enough for thousands of bursts."""

    def scenario():
        topo = build_topology(
            dumbbell, "tfc", buffer_bytes=256_000, n_senders=4, seed=1
        )
        for i in range(4):
            open_flow(topo.host(i), topo.host(4), "tfc")
        topo.network.run_for(seconds(0.05))
        return topo.network

    batched, serial = _differential(monkeypatch, scenario)
    assert batched == serial
