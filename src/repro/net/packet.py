"""Packet model.

One packet class serves every protocol in the library.  It is a TCP-like
segment plus the two TFC flag bits (RM / RMA) and the ECN bits DCTCP needs.
Following the paper's implementation section, the TFC header "is similar to
the TCP header except that it uses two reserved bits in the flags field",
so sharing the structure is faithful, not a shortcut.

Sizes: ``payload`` is the number of application bytes carried; the wire size
adds a fixed 40-byte TCP/IP header plus 18 bytes of Ethernet framing, and is
lower-bounded by the 64-byte minimum Ethernet frame.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

HEADER_BYTES = 40        # TCP/IP header (no options)
ETHERNET_OVERHEAD = 18   # Ethernet header + FCS (preamble/IFG folded in)
MIN_FRAME_BYTES = 64     # minimum Ethernet frame
MSS = 1460               # maximum segment size (payload bytes)
MTU = MSS + HEADER_BYTES # 1500-byte IP MTU

# Sentinel stamped by TFC senders into the window field of outgoing data
# packets; any real switch allocation is smaller. The paper uses 0xffff with
# a window scale; we keep it in bytes.
WINDOW_SENTINEL = float(0xFFFF * MSS)

_packet_ids = itertools.count()

FlowKey = Tuple[int, int, int, int]  # (src, dst, sport, dport)


class Packet:
    """A simulated segment/frame.

    Attributes mirror header fields; ``hops`` counts store-and-forward
    stages for debugging, and ``sent_at`` carries the original transmission
    timestamp used for RTT sampling (legitimate for a simulator: real stacks
    recover it from the segment's position in the retransmission queue).
    """

    __slots__ = (
        "packet_id", "src", "dst", "sport", "dport",
        "seq", "ack", "_payload",
        "syn", "fin", "is_ack",
        "rm", "rma", "window", "weight",
        "ecn_capable", "ecn_ce", "ecn_echo",
        "sent_at", "retransmitted", "hops",
        "size", "frame_size", "flow_key", "reverse_flow_key",
        "pfc_ingress",
    )

    # PFC fields with class-level defaults: data packets never carry a
    # pause opcode and (for now) all traffic rides lossless class 0, so
    # reads resolve against the class and cost nothing per instance.
    # PauseFrame (repro.net.pfc) shadows these with real slots.
    pfc_op: Optional[str] = None
    pfc_class: int = 0
    priority: int = 0

    # BFC per-flow pause fields, same pattern: only BfcFrame
    # (repro.net.bfc) shadows these with real slots.
    bfc_op: Optional[str] = None
    bfc_key: Optional[FlowKey] = None

    def __init__(
        self,
        src: int,
        dst: int,
        sport: int,
        dport: int,
        seq: int = 0,
        ack: int = 0,
        payload: int = 0,
        syn: bool = False,
        fin: bool = False,
        is_ack: bool = False,
        rm: bool = False,
        rma: bool = False,
        window: float = WINDOW_SENTINEL,
        ecn_capable: bool = False,
    ):
        self.packet_id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.seq = seq
        self.ack = ack
        self._payload = payload
        # Sizes and flow keys are read on every enqueue/serialise/stat bump
        # but written only here (and via the payload setter), so they are
        # precomputed attributes rather than recomputed properties.
        self.size = payload + HEADER_BYTES
        frame = payload + HEADER_BYTES + ETHERNET_OVERHEAD
        self.frame_size = frame if frame >= MIN_FRAME_BYTES else MIN_FRAME_BYTES
        self.flow_key = (src, dst, sport, dport)
        self.reverse_flow_key = (dst, src, dport, sport)
        self.syn = syn
        self.fin = fin
        self.is_ack = is_ack
        self.rm = rm
        self.rma = rma
        self.window = window
        self.weight = 1  # TFC allocation weight (weighted policy extension)
        self.ecn_capable = ecn_capable
        self.ecn_ce = False
        self.ecn_echo = False
        self.sent_at: Optional[int] = None
        self.retransmitted = False
        self.hops = 0
        # Ingress-accounting handle set by the lossless fabric while the
        # packet occupies a switch buffer (repro.net.pfc); None otherwise.
        self.pfc_ingress = None

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def payload(self) -> int:
        """Application bytes carried; assignment recomputes the sizes."""
        return self._payload

    @payload.setter
    def payload(self, value: int) -> None:
        self._payload = value
        self.size = value + HEADER_BYTES
        frame = value + HEADER_BYTES + ETHERNET_OVERHEAD
        self.frame_size = frame if frame >= MIN_FRAME_BYTES else MIN_FRAME_BYTES

    @property
    def end_seq(self) -> int:
        """Sequence number immediately after this segment's payload."""
        return self.seq + self.payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            name
            for name, value in (
                ("S", self.syn), ("F", self.fin), ("A", self.is_ack),
                ("M", self.rm), ("m", self.rma), ("E", self.ecn_ce),
            )
            if value
        )
        return (
            f"<Pkt#{self.packet_id} {self.src}:{self.sport}->"
            f"{self.dst}:{self.dport} seq={self.seq} ack={self.ack} "
            f"len={self.payload} [{flags}]>"
        )
