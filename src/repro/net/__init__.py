"""Network substrate: packets, queues, links, switches, hosts, topologies."""

from .host import Host
from .network import Network
from .node import Endpoint, Node, Switch
from .packet import (
    ETHERNET_OVERHEAD,
    HEADER_BYTES,
    MIN_FRAME_BYTES,
    MSS,
    MTU,
    WINDOW_SENTINEL,
    FlowKey,
    Packet,
)
from .pfc import (
    LosslessFabric,
    PauseFrame,
    PfcIngress,
    PfcParams,
    PfcPortAgent,
    enable_pfc,
    protocol_agent,
)
from .port import Link, Port
from .queues import (
    BernoulliLoss,
    DropTailQueue,
    EcnQueue,
    FaultyQueue,
    FilteredLoss,
    GilbertElliottLoss,
    LossModel,
    RandomDropQueue,
    is_pure_ack,
)
from .topology import Topology, dumbbell, leaf_spine, multi_bottleneck, testbed

__all__ = [
    "ETHERNET_OVERHEAD",
    "HEADER_BYTES",
    "MIN_FRAME_BYTES",
    "MSS",
    "MTU",
    "WINDOW_SENTINEL",
    "FlowKey",
    "Packet",
    "Host",
    "Network",
    "Endpoint",
    "Node",
    "Switch",
    "Link",
    "Port",
    "DropTailQueue",
    "EcnQueue",
    "FaultyQueue",
    "RandomDropQueue",
    "LossModel",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "FilteredLoss",
    "is_pure_ack",
    "PfcParams",
    "PauseFrame",
    "PfcIngress",
    "PfcPortAgent",
    "LosslessFabric",
    "enable_pfc",
    "protocol_agent",
    "Topology",
    "dumbbell",
    "leaf_spine",
    "multi_bottleneck",
    "testbed",
]
