"""Multi-tenant traffic mixing and per-tenant accounting.

A production fabric never carries one workload: the interesting regime
is search queries, training collectives and storage replication sharing
links, each belonging to a different *tenant* whose goodput/FCT the
operator accounts separately.  Two pieces make that composable here:

* :class:`MultiTenantMixer` — interleaves existing generators under
  per-tenant identities.  Each tenant supplies a build callback that
  constructs its generator (with a tenant-tagged
  :class:`~repro.metrics.fct.FctCollector` handed to it); the mixer owns
  the shared collector and the per-tenant reporting.
* :func:`per_tenant_stats` — walks a network's live transport endpoints
  and aggregates sender statistics by the ``tenant`` tag that
  :func:`~repro.transport.registry.open_flow` stamps on every flow.
  This is generator-agnostic: any flow opened with ``tenant=`` is
  accounted, whether or not it ever completes (long-lived background
  flows count their acked bytes too).

Goodput here is *tenant goodput*: acked application bytes over the
measurement window.  Jain's index over tenant goodputs is the fairness
number the multi-tenant scenarios report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from ..metrics.fct import FctCollector
from ..metrics.stats import jain_fairness, percentile
from ..transport.base import Sender

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..net.network import Network


@dataclass
class TenantStats:
    """Aggregated sender-side statistics for one tenant."""

    flows: int = 0
    completed_flows: int = 0
    bytes_acked: int = 0
    bytes_sent: int = 0
    timeouts: int = 0
    retransmissions: int = 0

    def goodput_bps(self, duration_ns: int) -> float:
        """Acked bytes over the window, as bits per second."""
        if duration_ns <= 0:
            return 0.0
        return self.bytes_acked * 8 * 1e9 / duration_ns


def tenant_senders(network: "Network") -> Dict[str, List[Sender]]:
    """Live senders grouped by tenant tag (untagged flows are skipped).

    Endpoints stay registered in each host's connection table after
    completion, so this sees every tenant-tagged flow the run opened.
    """
    groups: Dict[str, List[Sender]] = {}
    for host in network.hosts:
        for endpoint in host._connections.values():
            if not isinstance(endpoint, Sender):
                continue
            tenant = endpoint.tenant
            if tenant is None:
                continue
            groups.setdefault(tenant, []).append(endpoint)
    return groups


def per_tenant_stats(network: "Network") -> Dict[str, TenantStats]:
    """Per-tenant sender statistics for every tagged flow in ``network``."""
    stats: Dict[str, TenantStats] = {}
    for tenant, senders in sorted(tenant_senders(network).items()):
        acc = stats.setdefault(tenant, TenantStats())
        for sender in senders:
            acc.flows += 1
            if sender.stats.complete_ns is not None:
                acc.completed_flows += 1
            acc.bytes_acked += sender.stats.bytes_acked
            acc.bytes_sent += sender.stats.bytes_sent
            acc.timeouts += sender.stats.timeouts
            acc.retransmissions += sender.stats.retransmissions
    return stats


def tenant_goodputs_bps(
    network: "Network", duration_ns: int
) -> Dict[str, float]:
    """Tenant name -> goodput over the window (sorted by tenant name)."""
    return {
        tenant: acc.goodput_bps(duration_ns)
        for tenant, acc in per_tenant_stats(network).items()
    }


def tenant_jain_index(network: "Network", duration_ns: int) -> float:
    """Jain's fairness index over per-tenant goodputs (1.0 when <2 tenants)."""
    goodputs = list(tenant_goodputs_bps(network, duration_ns).values())
    if len(goodputs) < 2:
        return 1.0
    return jain_fairness(goodputs)


#: A tenant's traffic: its name plus a callback building the generator.
#: The callback receives ``(tenant_name, collector)`` and must construct
#: (and schedule) the tenant's workload, tagging every flow it opens with
#: ``tenant=tenant_name`` and recording completions into ``collector``.
TenantBuilder = Callable[[str, FctCollector], object]


@dataclass
class MixReport:
    """One tenant's line in the mixer's summary."""

    tenant: str
    goodput_bps: float
    flows: int
    completed_flows: int
    fct_p99_us: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)


class MultiTenantMixer:
    """Builds per-tenant workloads over one network and accounts them.

    Tenants are constructed in list order (construction order is part of
    the deterministic event schedule).  All tenants share one
    :class:`FctCollector`; per-tenant slices come from the tenant tag
    that rides each record.
    """

    def __init__(
        self,
        network: "Network",
        tenants: Sequence[Tuple[str, TenantBuilder]],
        collector: Optional[FctCollector] = None,
    ):
        names = [name for name, _ in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.network = network
        self.collector = collector if collector is not None else FctCollector()
        self.tenant_names = names
        self.generators: Dict[str, object] = {}
        for name, build in tenants:
            self.generators[name] = build(name, self.collector)

    # ------------------------------------------------------------------
    def goodputs_bps(self, duration_ns: int) -> Dict[str, float]:
        """Per-tenant goodput over the run window."""
        measured = tenant_goodputs_bps(self.network, duration_ns)
        # Tenants that opened no flows still get a row (goodput 0).
        return {name: measured.get(name, 0.0) for name in self.tenant_names}

    def jain_index(self, duration_ns: int) -> float:
        """Fairness over the mixer's tenants (zero-flow tenants included)."""
        goodputs = list(self.goodputs_bps(duration_ns).values())
        if len(goodputs) < 2:
            return 1.0
        return jain_fairness(goodputs)

    def reports(self, duration_ns: int) -> List[MixReport]:
        """One summary row per tenant, in tenant list order."""
        stats = per_tenant_stats(self.network)
        rows = []
        for name in self.tenant_names:
            acc = stats.get(name, TenantStats())
            fcts = self.collector.fcts_us(tenant=name)
            rows.append(
                MixReport(
                    tenant=name,
                    goodput_bps=acc.goodput_bps(duration_ns),
                    flows=acc.flows,
                    completed_flows=acc.completed_flows,
                    fct_p99_us=None if not fcts else percentile(fcts, 99),
                )
            )
        return rows
