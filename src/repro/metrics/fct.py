"""Flow-completion-time collection.

The benchmark experiments (Figs. 13 and 16) report FCT two ways: the tail
distribution of *query* flows, and the 99.9th percentile of *background*
flows bucketed by flow size.  :class:`FctCollector` receives completed
senders (via the ``on_complete`` callback of :func:`repro.transport.
open_flow`) tagged with a category, and produces both reports.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.units import to_microseconds
from ..transport.base import Sender
from .stats import jain_fairness, percentile, summarize_tail

# The paper's Fig. 13b / 16b size buckets.
SIZE_BUCKETS: Sequence[Tuple[str, int, int]] = (
    ("<1KB", 0, 1_000),
    ("1-10KB", 1_000, 10_000),
    ("10KB-100KB", 10_000, 100_000),
    ("100KB-1MB", 100_000, 1_000_000),
    ("1-10MB", 1_000_000, 10_000_000),
    (">10MB", 10_000_000, 1 << 62),
)


def bucket_for_size(size_bytes: int) -> str:
    """Name of the paper's size bucket containing ``size_bytes``."""
    for name, lo, hi in SIZE_BUCKETS:
        if lo <= size_bytes < hi:
            return name
    return SIZE_BUCKETS[-1][0]


class FctRecord:
    """One completed flow."""

    __slots__ = ("category", "size_bytes", "fct_ns", "timeouts", "tenant")

    def __init__(
        self,
        category: str,
        size_bytes: int,
        fct_ns: int,
        timeouts: int,
        tenant: Optional[str] = None,
    ):
        self.category = category
        self.size_bytes = size_bytes
        self.fct_ns = fct_ns
        self.timeouts = timeouts
        self.tenant = tenant


class FctCollector:
    """Accumulates completed flows and renders the paper's FCT rows."""

    def __init__(self) -> None:
        self.records: List[FctRecord] = []
        self.pending = 0

    # ------------------------------------------------------------------
    def expect(self, count: int = 1) -> None:
        """Declare flows that should complete (for completion accounting)."""
        self.pending += count

    def completion_handler(self, category: str, tenant: Optional[str] = None):
        """An ``on_complete`` callback recording flows under ``category``.

        The record's tenant is ``tenant`` when given, else the sender's
        own tag (stamped by ``open_flow(tenant=...)``) — so generators
        that thread tenant identity through their flows need no extra
        plumbing here.
        """

        def handler(sender: Sender) -> None:
            fct = sender.stats.fct_ns
            assert fct is not None, "on_complete fired without completion time"
            self.records.append(
                FctRecord(
                    category,
                    sender.flow_bytes,
                    fct,
                    sender.stats.timeouts,
                    tenant if tenant is not None else sender.tenant,
                )
            )
            self.pending -= 1

        return handler

    # ------------------------------------------------------------------
    def _selected(
        self, category: Optional[str], tenant: Optional[str]
    ) -> List[FctRecord]:
        return [
            record
            for record in self.records
            if (category is None or record.category == category)
            and (tenant is None or record.tenant == tenant)
        ]

    def fcts_us(
        self, category: Optional[str] = None, tenant: Optional[str] = None
    ) -> List[float]:
        """FCTs in microseconds, filtered by category and/or tenant."""
        return [
            to_microseconds(record.fct_ns)
            for record in self._selected(category, tenant)
        ]

    def tenants(self) -> List[str]:
        """Tenant names seen on completed flows, sorted."""
        return sorted({r.tenant for r in self.records if r.tenant is not None})

    def tenant_bytes(self, tenant: str) -> int:
        """Completed application bytes attributed to ``tenant``."""
        return sum(r.size_bytes for r in self._selected(None, tenant))

    def tenant_goodputs_bps(self, duration_ns: int) -> Dict[str, float]:
        """Completed-bytes goodput per tenant over a window.

        Counts only *completed* flows; for a window-accurate number that
        includes long-lived flows, use
        :func:`repro.workloads.mixer.tenant_goodputs_bps` (sender-side
        acked bytes) instead.
        """
        if duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        return {
            tenant: self.tenant_bytes(tenant) * 8 * 1e9 / duration_ns
            for tenant in self.tenants()
        }

    def tenant_jain_index(self, duration_ns: int) -> float:
        """Jain's fairness index over per-tenant completed goodput."""
        goodputs = list(self.tenant_goodputs_bps(duration_ns).values())
        if len(goodputs) < 2:
            return 1.0
        return jain_fairness(goodputs)

    def tenant_tail_us(self, tenant: str) -> Dict[str, float]:
        """Mean/95/99/99.9/99.99th FCT (us) for one tenant's flows."""
        values = self.fcts_us(tenant=tenant)
        if not values:
            raise ValueError(f"no completed flows for tenant {tenant!r}")
        return summarize_tail(values)

    def tail_summary_us(self, category: str) -> Dict[str, float]:
        """Mean/95/99/99.9/99.99th FCT (us) for one category (Fig. 13a)."""
        values = self.fcts_us(category)
        if not values:
            raise ValueError(f"no completed flows in category {category!r}")
        return summarize_tail(values)

    def bucketed_p999_us(self, category: str) -> Dict[str, float]:
        """99.9th percentile FCT (us) per size bucket (Fig. 13b)."""
        buckets: Dict[str, List[float]] = defaultdict(list)
        for record in self.records:
            if record.category == category:
                buckets[bucket_for_size(record.size_bytes)].append(
                    to_microseconds(record.fct_ns)
                )
        return {
            name: percentile(values, 99.9)
            for name, values in buckets.items()
            if values
        }

    def total_timeouts(
        self, category: Optional[str] = None, tenant: Optional[str] = None
    ) -> int:
        """Sum of RTO events across completed flows."""
        return sum(r.timeouts for r in self._selected(category, tenant))

    def completed(
        self, category: Optional[str] = None, tenant: Optional[str] = None
    ) -> int:
        """Number of completed flows (optionally per category/tenant)."""
        return len(self._selected(category, tenant))
