"""Recovery metrics: how fast and how cleanly did TFC come back?

Takes a goodput series (from a :class:`~repro.metrics.samplers.RateSampler`)
and a fault timeline and produces the three numbers the robustness
evaluation reports per fault:

* **time-to-reconverge** — from fault onset to the first moment goodput
  reaches and *holds* the recovery threshold (a fraction of the pre-fault
  baseline);
* **dip depth** — how far goodput fell during/after the fault, as a
  fraction of baseline (1.0 = total outage);
* **post-fault timeouts** — retransmission timeouts fired after onset, a
  proxy for how much the recovery leaned on last-resort mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

Series = List[Tuple[int, float]]  # (time_ns, value) — matches metrics


@dataclass
class RecoveryReport:
    """Recovery metrics for one fault event."""

    fault_start_ns: int
    baseline: float  # mean pre-fault goodput (bits/s)
    threshold: float  # recovery target as a fraction of baseline
    reconverge_ns: Optional[int]  # absolute time recovery held; None = never
    dip_depth: float  # worst fractional drop below baseline, in [0, 1]
    post_fault_timeouts: int = 0

    @property
    def time_to_reconverge_ns(self) -> Optional[int]:
        """Fault onset to recovery (None when it never reconverged)."""
        if self.reconverge_ns is None:
            return None
        return self.reconverge_ns - self.fault_start_ns

    @property
    def recovered(self) -> bool:
        return self.reconverge_ns is not None

    def summary(self) -> str:
        """One-line human-readable report."""
        if self.reconverge_ns is None:
            recon = "never reconverged"
        else:
            recon = (
                f"reconverged in "
                f"{self.time_to_reconverge_ns / 1e6:.2f} ms"
            )
        return (
            f"baseline {self.baseline / 1e9:.3f} Gbps, "
            f"dip {self.dip_depth * 100:.0f}%, {recon}, "
            f"{self.post_fault_timeouts} post-fault timeouts"
        )

    def register(self, registry, prefix: str = "recovery") -> None:
        """Mirror the report into a :class:`repro.obs.MetricRegistry`.

        Gauges under ``{prefix}.`` plus one counter for the timeouts; a
        never-reconverged run records ``{prefix}.reconverge_ns = -1`` so
        the export stays numeric.
        """
        registry.gauge(f"{prefix}.baseline_bps").set(self.baseline)
        registry.gauge(f"{prefix}.dip_depth").set(self.dip_depth)
        registry.gauge(f"{prefix}.reconverge_ns").set(
            -1.0 if self.reconverge_ns is None else float(self.reconverge_ns)
        )
        registry.counter(f"{prefix}.post_fault_timeouts").set_total(
            self.post_fault_timeouts
        )


def measure_recovery(
    series: Series,
    fault_start_ns: int,
    threshold: float = 0.9,
    hold_samples: int = 5,
    baseline_window: int = 20,
    settle_ns: int = 0,
    post_fault_timeouts: int = 0,
) -> RecoveryReport:
    """Derive a :class:`RecoveryReport` from a goodput series.

    The baseline is the mean of the last ``baseline_window`` samples
    strictly before ``fault_start_ns``.  Recovery is the first timestamp
    at or after ``fault_start_ns + settle_ns`` from which ``hold_samples``
    consecutive samples are all at least ``threshold x baseline``
    (``settle_ns`` skips the fault window itself for faults whose cure —
    link back up, host resumed — only lands later).  The dip is measured
    from fault onset onward, so a fault with no effect reports 0.0.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    pre_fault = [v for t, v in series if t < fault_start_ns]
    if not pre_fault:
        raise ValueError("no samples before the fault: cannot baseline")
    tail = pre_fault[-baseline_window:]
    baseline = sum(tail) / len(tail)
    if baseline <= 0:
        raise ValueError("pre-fault baseline goodput is zero")

    target = threshold * baseline
    search_from = fault_start_ns + settle_ns
    run = 0
    run_start: Optional[int] = None
    reconverge_ns: Optional[int] = None
    worst = baseline
    for t, value in series:
        if t < fault_start_ns:
            continue
        worst = min(worst, value)
        if reconverge_ns is not None:
            continue
        if t >= search_from and value >= target:
            if run == 0:
                run_start = t
            run += 1
            if run >= hold_samples:
                reconverge_ns = run_start
        else:
            run = 0
            run_start = None

    dip_depth = max(0.0, (baseline - worst) / baseline)
    return RecoveryReport(
        fault_start_ns=fault_start_ns,
        baseline=baseline,
        threshold=threshold,
        reconverge_ns=reconverge_ns,
        dip_depth=dip_depth,
        post_fault_timeouts=post_fault_timeouts,
    )
