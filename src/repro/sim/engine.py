"""Discrete-event simulation kernel.

A :class:`Simulator` owns a monotonic integer-nanosecond clock and a
pluggable pending-event store (a :class:`~repro.sim.sched.Scheduler`
backend).  Events scheduled for the same instant fire in the order they
were scheduled (FIFO tie-breaking via a monotonically increasing sequence
number), which makes every run fully deterministic — on *every* backend:
the backends are interchangeable bit-for-bit, and the golden-determinism
tests plus a cross-backend differential fuzz enforce it.

The kernel is deliberately tiny: components interact only through
``schedule`` / ``cancel`` and the read-only ``now`` property.  Everything
network-specific lives in :mod:`repro.net` and above.

Backend selection (see :mod:`repro.sim.sched` for the data structures):

* ``Simulator(scheduler="heap" | "calendar" | "wheel")`` pins a backend.
* ``Simulator(scheduler="adaptive")`` — the default — starts on the heap
  (lowest constants for small populations) and migrates the live event
  population to the calendar queue once it crosses
  ``ADAPTIVE_SWITCH_THRESHOLD``, where amortised O(1) wins.
* The ``REPRO_SCHEDULER`` environment variable overrides the default for
  simulators built without an explicit ``scheduler=`` (the experiment
  runner's ``--scheduler`` flag and the CI backend shards use this).

Fast-path design carried over from the tuple-heap kernel (measured on the
pinned workloads, see ``repro.perf``):

* Backends store ``(time, seq, event)`` tuples, not :class:`Event`
  objects, so ordering compares happen in C tuple comparison instead of
  ``Event.__lt__``.  ``(time, seq)`` is unique per event, so the
  comparison never reaches the event object itself.
* Executed and cancelled-and-popped events are recycled through a free
  list shared by all backends (it survives an adaptive migration);
  :meth:`schedule` reuses them.  A retired event keeps
  ``cancelled = True`` until reuse, so a stale ``cancel()`` on an
  already-fired handle is a no-op.  The one contract this imposes on
  callers: do not retain an :class:`Event` handle across its own firing
  and cancel it later — use :class:`repro.sim.timers.Timer`, which clears
  its handle before the callback runs, for restartable semantics.
* Live (non-cancelled) events are counted incrementally, so
  :attr:`pending_events` is O(1) on every backend.
* When more than half a backend's store is dead (cancelled timers that
  were never popped — long-RTO transports generate these in bulk) it is
  compacted in place, bounding both memory and ordering work.

Batching (``REPRO_BATCH``, default ``on``; see DESIGN.md §6h):

* The run loop pops all events sharing one time key in a single
  :meth:`~repro.sim.sched.Scheduler.pop_batch` call and dispatches them
  in ``seq`` order — third-party backends get a correct single-pop
  fallback from the base class.  Batch members stay individually
  cancellable: a member cancelled by an earlier member's callback is
  skipped exactly as the store's lazy dead-entry discard would have.
  Dispatch order is identical to single-pop, so results are bit-exact.
* The port layer (``repro.net.port``) additionally precomputes whole TX
  burst schedules, replacing the general per-frame completion path with
  a lean chained one — same events, same order, less work per event.

Compiled core (``REPRO_COMPILED``, default ``off``): the hot batch
helpers live in :mod:`repro.sim.core`, written to compile under mypyc
(``pip install .[compiled]`` + ``benchmarks/perf/build_compiled.py``).
When the knob is on the engine routes through :func:`load_core`, which
prefers the compiled twin and silently falls back to the interpreted
module — same bit-identical results either way.
"""

from __future__ import annotations

import os
from bisect import insort as _insort
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, List, Optional, Tuple, Union

from .sched import (
    CalendarScheduler,
    HeapScheduler,
    Scheduler,
    TimerWheelScheduler,
    make_scheduler,
)
from .sched.base import COMPACT_MIN_ENTRIES
from .sched.calendar import _MAX_BUCKETS as _CAL_MAX_BUCKETS
from .units import SECOND, to_seconds

Callback = Callable[..., None]

# Sentinels letting the run loop test bounds with plain comparisons
# instead of per-event ``is not None`` checks.
_NO_HORIZON = 1 << 62
_NO_LIMIT = 1 << 62

# The adaptive policy migrates heap -> calendar when this many live
# events are pending.  Dumbbell-scale runs (tens to hundreds of live
# events) stay on the heap; fleet-scale runs (leaf-spine, large incast,
# timer-churn) cross it early and stay on the calendar queue.
ADAPTIVE_SWITCH_THRESHOLD = 2048

HeapEntry = Tuple[int, int, "Event"]


def load_core(compiled: bool):
    """The kernel-helper module: compiled twin when asked for and built.

    With ``compiled`` False this returns the interpreted
    :mod:`repro.sim.core`.  With True it prefers the mypyc-built
    ``repro.sim._core_compiled`` (produced by
    ``benchmarks/perf/build_compiled.py``) and falls back to the
    interpreted module when the build is absent — opting in never breaks
    an environment without the extension.
    """
    if compiled:
        try:
            from . import _core_compiled  # type: ignore[attr-defined]

            return _core_compiled
        except ImportError:
            pass
    from . import core

    return core


class Event:
    """A scheduled callback (the cancellation handle returned by ``schedule``).

    Events are created through :meth:`Simulator.schedule` and ordered by
    ``(time, seq)`` so the backend pops them in deterministic order.
    Cancelling marks the event dead and drops its callback/argument
    references immediately (so cancelled retransmission timers stop
    pinning packets); the backend lazily discards the dead entry, or a
    compaction sweep removes it earlier.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "sim")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Optional[Callback],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Mark this event dead so the engine skips it when popped.

        Idempotent; also a no-op on an event that has already fired.  The
        callback and argument references are nulled out right away so the
        objects they pin (packets, senders) are reclaimable without waiting
        for the dead entry to surface.
        """
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = None
        self.args = ()
        sim = self.sim
        if sim is not None:
            # Inlined Scheduler.note_cancel plus the live-count decrement
            # — timer-churn transports cancel several times per executed
            # event, so the extra method calls are measurable.
            sim._live -= 1
            sched = sim._sched
            dead = sched._dead + 1
            sched._dead = dead
            if dead >= COMPACT_MIN_ENTRIES:
                heap = sim._heap_list
                size = len(heap) if heap is not None else sched._size
                if dead * 2 > size:
                    sched.compact()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time}ns #{self.seq} {name}{state}>"


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, negative delays)."""


class Simulator:
    """The event loop: a clock plus a pluggable priority store of events."""

    # Slots measurably speed up schedule()/run(): every per-event
    # attribute touch skips the instance dict (see DESIGN.md §6d).
    __slots__ = (
        "_now",
        "_seq",
        "_free",
        "_live",
        "_running",
        "_events_processed",
        "_batch",
        "_core",
        "_adapt_at",
        "scheduler_name",
        "_sched",
        "_push",
        "_heap_list",
        "_cal",
        "_wheel",
    )

    def __init__(
        self,
        scheduler: Optional[Union[str, Scheduler]] = None,
        config: Optional[Any] = None,
    ) -> None:
        # ``config`` is a repro.config.SimConfig (duck-typed here so the
        # kernel stays free of upper-layer imports): its ``scheduler``
        # field applies when no explicit ``scheduler=`` is given.
        if scheduler is None and config is not None:
            scheduler = config.scheduler
        self._now: int = 0
        self._seq: int = 0
        self._free: List[Event] = []
        self._live: int = 0
        self._running = False
        self._events_processed = 0
        batch = getattr(config, "batch", None) if config is not None else None
        if batch is None:
            batch = os.environ.get("REPRO_BATCH", "") or "on"
        self._batch = batch != "off"
        compiled = (
            getattr(config, "compiled", None) if config is not None else None
        )
        if compiled is None:
            compiled = os.environ.get("REPRO_COMPILED", "") or "off"
        # None = pure inlined fast paths; a module = route batch pops and
        # burst schedules through repro.sim.core (compiled when built).
        # "1" is accepted as an alias for "on" (CI shard convenience).
        self._core = load_core(True) if compiled in ("on", "1") else None

        if scheduler is None:
            scheduler = os.environ.get("REPRO_SCHEDULER", "") or "adaptive"
        # Past this live-event count, schedule() migrates the population
        # to the calendar backend; pinned backends never adapt (sentinel).
        self._adapt_at = _NO_LIMIT
        if isinstance(scheduler, str):
            name = scheduler.strip().lower()
            self.scheduler_name = name
            if name == "adaptive":
                self._sched: Scheduler = HeapScheduler()
                self._adapt_at = ADAPTIVE_SWITCH_THRESHOLD
            else:
                self._sched = make_scheduler(name)
        else:
            self._sched = scheduler
            self.scheduler_name = scheduler.name
        self._sched.bind_free_list(self._free)
        self._bind_backend()

    def _bind_backend(self) -> None:
        """Cache the hot entry points of the active backend.

        Each stock backend gets an inlined fast path (exactly one of
        ``_heap_list`` / ``_cal`` / ``_wheel`` is non-None when active):
        schedule() inserts directly into the backend's store and run()
        drains it without a function call per event.  The slow corners
        (rebuilds, wheel refills, year scans) stay behind method calls.
        Subclassed backends (e.g. test shadows) keep the generic bound
        ``push``/``pop_due`` path — the ``type() is`` checks are exact.
        """
        sched = self._sched
        kind = type(sched)
        self._push = sched.push
        self._heap_list: Optional[List[HeapEntry]] = (
            sched._heap if kind is HeapScheduler else None
        )
        self._cal: Optional[CalendarScheduler] = (
            sched if kind is CalendarScheduler else None
        )
        self._wheel: Optional[TimerWheelScheduler] = (
            sched if kind is TimerWheelScheduler else None
        )

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in integer nanoseconds."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current simulation time in float seconds (reporting only)."""
        return to_seconds(self._now)

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    @property
    def active_backend(self) -> str:
        """Name of the backend currently holding events (``adaptive``
        reports whichever side of the switch it is on)."""
        return self._sched.name

    def peek_time(self) -> Optional[int]:
        """Time of the earliest pending live event, or None when drained.

        Non-destructive: delegates to the active backend's
        :meth:`~repro.sim.sched.base.Scheduler.peek_time` (the adaptive
        policy reports through whichever backend currently holds the
        population).  The shard coordinator uses this between
        horizon-bounded :meth:`run` calls to compute the next
        conservative epoch.
        """
        return self._sched.peek_time()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_ns: int, callback: Callback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns}ns in the past")
        time_ns = self._now + delay_ns
        seq = self._seq
        self._seq = seq + 1
        live = self._live + 1
        self._live = live
        free = self._free
        if free:
            event = free.pop()
            event.time = time_ns
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
        else:
            event = Event(time_ns, seq, callback, args, self)
        heap_list = self._heap_list
        if heap_list is not None:
            _heappush(heap_list, (time_ns, seq, event))
        else:
            cal = self._cal
            if cal is not None:
                # Inlined CalendarScheduler.push (kept in sync with it).
                _insort(
                    cal._buckets[(time_ns >> cal._wshift) & cal._mask],
                    (-time_ns, -seq, event),
                )
                stored = cal._size + 1
                cal._size = stored
                if (
                    stored - cal._dead > cal._grow_at
                    and cal._nbuckets < _CAL_MAX_BUCKETS
                ):
                    cal._rebuild(cal._nbuckets << 1)
            else:
                wheel = self._wheel
                if wheel is not None:
                    # Inlined TimerWheelScheduler.push for the two levels
                    # that cover delays under ~67 ms (where timer churn
                    # lives); longer delays take the method.
                    wtime = wheel._wtime
                    if time_ns >= wtime:
                        delta = time_ns - wtime
                        if delta < 262144:  # 2**18: level 0
                            wheel._rings[0][(time_ns >> 10) & 255].append(
                                (-time_ns, -seq, event)
                            )
                            wheel._counts[0] += 1
                            wheel._size += 1
                        elif delta < 67108864:  # 2**26: level 1
                            wheel._rings[1][(time_ns >> 18) & 255].append(
                                (-time_ns, -seq, event)
                            )
                            wheel._counts[1] += 1
                            wheel._size += 1
                        else:
                            wheel.push(time_ns, seq, event)
                    else:
                        _insort(wheel._due, (-time_ns, -seq, event))
                        wheel._size += 1
                else:
                    self._push(time_ns, seq, event)
        if live >= self._adapt_at:
            self._adapt()
        return event

    def schedule_at(self, time_ns: int, callback: Callback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, now is {self._now}ns"
            )
        return self.schedule(time_ns - self._now, callback, *args)

    def _adapt(self) -> None:
        """Migrate the live population heap -> calendar (adaptive policy).

        Dead entries are recycled during the drain instead of migrating.
        The run loop notices the swap when the (drained) old backend runs
        dry and rebinds, so adapting from inside a callback is safe.
        """
        self._adapt_at = _NO_LIMIT
        calendar = CalendarScheduler()
        calendar.bind_free_list(self._free)
        calendar.prefill(self._sched.drain_live())
        self._sched = calendar
        self._bind_backend()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until_ns: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events in order until the queue drains or a bound is hit.

        ``until_ns`` is inclusive: events scheduled exactly at ``until_ns``
        still execute, and the clock is left at ``until_ns`` if the horizon
        was reached (so samplers see the full window).  Returns the number of
        events processed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        processed = 0
        free = self._free
        horizon = _NO_HORIZON if until_ns is None else until_ns
        limit = _NO_LIMIT if max_events is None else max_events
        core = self._core
        # Batched dispatch pops whole same-time groups before running
        # them, so it only engages when no max_events bound can land
        # mid-group; a bounded run keeps the exact per-event fast path.
        batch: Optional[List[Event]] = (
            [] if (self._batch and limit == _NO_LIMIT) else None
        )
        try:
            while processed < limit:
                sched = self._sched
                heap = self._heap_list
                cal = self._cal
                wheel = self._wheel
                if heap is not None and core is not None and batch is not None:
                    # Compiled-core heap drain: same-time groups pop in
                    # one core call (C when the extension is built), then
                    # dispatch here.  Members stay cancellable mid-batch:
                    # a cancelled member mirrors the store's lazy skip
                    # (its cancel() charged _dead as if still stored).
                    pop_batch = core.heap_pop_batch
                    while True:
                        n, ndead = pop_batch(heap, free, horizon, batch)
                        if ndead:
                            sched._dead -= ndead
                        if n == 0:
                            break
                        self._now = batch[0].time
                        for event in batch:
                            if event.cancelled:
                                sched._dead -= 1
                                free.append(event)
                                continue
                            callback = event.callback
                            args = event.args
                            event.cancelled = True
                            event.callback = None
                            event.args = ()
                            callback(*args)
                            free.append(event)
                            processed += 1
                        del batch[:]
                elif heap is not None:
                    # Inlined heap drain (the PR-2 loop): no function
                    # call per event.  A callback may adapt the backend
                    # mid-loop — drain_live empties the heap *in place*,
                    # so this alias runs dry and the outer loop rebinds.
                    while processed < limit:
                        if not heap:
                            break
                        entry = heap[0]
                        event = entry[2]
                        if event.cancelled:
                            _heappop(heap)
                            sched._dead -= 1
                            free.append(event)
                            continue
                        if entry[0] > horizon:
                            break
                        _heappop(heap)
                        self._now = entry[0]
                        callback = event.callback
                        args = event.args
                        # Retire the handle before the callback runs: a
                        # stale cancel() inside it must not double-count.
                        event.cancelled = True
                        event.callback = None
                        event.args = ()
                        callback(*args)
                        free.append(event)
                        processed += 1
                elif cal is not None:
                    # Inlined calendar drain: while the floor bucket's
                    # tail entry is live inside its year window it is the
                    # global minimum (see CalendarScheduler._hot_bucket),
                    # so it pops without the year-scan preamble.  Dead
                    # tails, empty/stale hot caches and year rollovers
                    # fall through to pop_due.
                    while processed < limit:
                        bucket = cal._hot_bucket
                        if bucket:
                            key = bucket[-1]
                            time_ns = -key[0]
                            if time_ns < cal._hot_top:
                                event = key[2]
                                if not event.cancelled:
                                    if time_ns > horizon:
                                        break
                                    bucket.pop()
                                    cal._size -= 1
                                    cal._floor = time_ns
                                    self._now = time_ns
                                    callback = event.callback
                                    args = event.args
                                    event.cancelled = True
                                    event.callback = None
                                    event.args = ()
                                    callback(*args)
                                    free.append(event)
                                    processed += 1
                                    continue
                        event = cal.pop_due(horizon)
                        if event is None:
                            break
                        self._now = event.time
                        callback = event.callback
                        args = event.args
                        event.cancelled = True
                        event.callback = None
                        event.args = ()
                        callback(*args)
                        free.append(event)
                        processed += 1
                elif wheel is not None:
                    # Inlined wheel drain: pop the sorted due buffer from
                    # the tail; refill (slot drain / cascade) stays a
                    # method call.  _refill may rebind _due, so the local
                    # alias is refreshed after every refill; pushes and
                    # compaction mutate it in place.
                    due = wheel._due
                    while processed < limit:
                        if due:
                            key = due[-1]
                            event = key[2]
                            if event.cancelled:
                                due.pop()
                                wheel._size -= 1
                                wheel._dead -= 1
                                free.append(event)
                                continue
                            time_ns = -key[0]
                            if time_ns > horizon:
                                break
                            due.pop()
                            wheel._size -= 1
                            self._now = time_ns
                            callback = event.callback
                            args = event.args
                            event.cancelled = True
                            event.callback = None
                            event.args = ()
                            callback(*args)
                            free.append(event)
                            processed += 1
                            continue
                        if not wheel._refill():
                            break
                        due = wheel._due
                elif batch is not None:
                    # Generic backend, batching on: one pop_batch call per
                    # same-time group (the base class gives third-party
                    # backends a correct single-pop fallback).  Cancel
                    # handling matches the compiled-core branch above.
                    pop_batch = sched.pop_batch
                    while True:
                        if pop_batch(horizon, batch) == 0:
                            break
                        self._now = batch[0].time
                        for event in batch:
                            if event.cancelled:
                                sched._dead -= 1
                                free.append(event)
                                continue
                            callback = event.callback
                            args = event.args
                            event.cancelled = True
                            event.callback = None
                            event.args = ()
                            callback(*args)
                            free.append(event)
                            processed += 1
                        del batch[:]
                else:
                    pop_due = sched.pop_due
                    while processed < limit:
                        event = pop_due(horizon)
                        if event is None:
                            break
                        self._now = event.time
                        callback = event.callback
                        args = event.args
                        event.cancelled = True
                        event.callback = None
                        event.args = ()
                        callback(*args)
                        free.append(event)
                        processed += 1
                if self._sched is sched:
                    break  # drained / horizon / limit on a stable backend
                # A callback adapted the backend mid-run; the old one
                # drained into the new one, so rebind and keep going.
        finally:
            self._running = False
            # Batched counter updates: nothing reads these mid-run, and
            # per-event attribute writes are measurable at this call rate.
            self._events_processed += processed
            self._live -= processed
        if until_ns is not None and self._now < until_ns:
            # Park the clock at the horizon unless a live event remains
            # inside it (only possible when max_events stopped us early).
            next_live = self._sched.next_live_time()
            if next_live is None or next_live > until_ns:
                self._now = until_ns
        return processed

    def run_for(self, duration_ns: int) -> int:
        """Run for ``duration_ns`` of simulated time from the current clock."""
        return self.run(until_ns=self._now + duration_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now / SECOND:.6f}s"
            f" pending={self._live} done={self._events_processed}"
            f" backend={self._sched.name}>"
        )
