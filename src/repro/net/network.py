"""Network container: nodes, cables, and static shortest-path routing.

:class:`Network` is the object experiments hold: it owns the simulator,
tracer, and RNG, provides builders for hosts/switches/cables, and computes
forwarding tables once the topology is wired.  Cables are full duplex — one
call creates both unidirectional links with their own ports and queues, so
the two directions never share a queue (as on real hardware).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.rng import SeedSequence
from ..sim.trace import Tracer
from .host import Host
from .node import Node, Switch
from .port import Link, Port
from .queues import DropTailQueue

QueueFactory = Callable[[int], DropTailQueue]


def _default_queue_factory(capacity_bytes: int) -> QueueFactory:
    def make(rate_bps: int) -> DropTailQueue:  # noqa: ARG001 - uniform signature
        return DropTailQueue(capacity_bytes)

    return make


class Network:
    """Topology plus the simulation services every component needs."""

    def __init__(
        self,
        seed: int = 0,
        default_buffer_bytes: int = 256_000,
        host_buffer_bytes: int = 4_000_000,
        host_processing_delay_ns: int = 2_000,
        host_processing_jitter_ns: int = 4_000,
    ):
        self.sim = Simulator()
        self.tracer = Tracer()
        self.seeds = SeedSequence(seed)
        self.default_buffer_bytes = default_buffer_bytes
        self.host_buffer_bytes = host_buffer_bytes
        self.host_processing_delay_ns = host_processing_delay_ns
        self.host_processing_jitter_ns = host_processing_jitter_ns
        self.nodes: List[Node] = []
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        self._adjacency: Dict[int, List[Tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_host(self, name: str) -> Host:
        """Create a host (its NIC port appears when it is cabled)."""
        host = Host(
            self.sim,
            len(self.nodes),
            name,
            self.tracer,
            self.seeds,
            processing_delay_ns=self.host_processing_delay_ns,
            processing_jitter_ns=self.host_processing_jitter_ns,
        )
        self.nodes.append(host)
        self.hosts.append(host)
        self._adjacency[host.node_id] = []
        return host

    def add_switch(self, name: str) -> Switch:
        """Create a switch."""
        switch = Switch(self.sim, len(self.nodes), name, self.tracer)
        self.nodes.append(switch)
        self.switches.append(switch)
        self._adjacency[switch.node_id] = []
        return switch

    def cable(
        self,
        a: Node,
        b: Node,
        rate_bps: int,
        delay_ns: int,
        queue_factory: Optional[QueueFactory] = None,
    ) -> Tuple[Port, Port]:
        """Connect ``a`` and ``b`` full duplex; returns (port on a, port on b)."""
        make_queue = queue_factory or _default_queue_factory(
            self.default_buffer_bytes
        )

        def queue_for(node: Node) -> DropTailQueue:
            # Host NICs get deep software queues (the OS, not a switch ASIC)
            # so switch-buffer experiments aren't polluted by sender drops.
            if isinstance(node, Host):
                return DropTailQueue(self.host_buffer_bytes)
            return make_queue(rate_bps)

        port_a_index = len(a.ports)
        port_b_index = len(b.ports)
        link_ab = Link(self.sim, rate_bps, delay_ns, b, port_b_index)
        link_ba = Link(self.sim, rate_bps, delay_ns, a, port_a_index)
        port_a = Port(self.sim, a, port_a_index, link_ab, queue_for(a), self.tracer)
        port_b = Port(self.sim, b, port_b_index, link_ba, queue_for(b), self.tracer)
        a.add_port(port_a)
        b.add_port(port_b)
        self._adjacency[a.node_id].append((b.node_id, port_a_index))
        self._adjacency[b.node_id].append((a.node_id, port_b_index))
        return port_a, port_b

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def build_routes(self) -> None:
        """Populate every node's forwarding table with BFS shortest paths.

        Ties are broken by neighbour insertion order, which is deterministic
        because topology builders wire cables in a fixed order.
        """
        for destination in self.nodes:
            self._route_towards(destination.node_id)

    def _route_towards(self, dst_id: int) -> None:
        # BFS outward from the destination; the first hop discovered at each
        # node is its next hop towards dst.
        visited = {dst_id}
        frontier = deque([dst_id])
        while frontier:
            current = frontier.popleft()
            for neighbor_id, neighbor_port in self._adjacency[current]:
                if neighbor_id in visited:
                    continue
                # neighbor reaches dst via the port pointing back at current.
                for peer_id, port_index in self._adjacency[neighbor_id]:
                    if peer_id == current:
                        self.nodes[neighbor_id].forwarding_table[dst_id] = port_index
                        break
                visited.add(neighbor_id)
                frontier.append(neighbor_id)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def run_for(self, duration_ns: int) -> int:
        """Advance the simulation by ``duration_ns``."""
        return self.sim.run_for(duration_ns)

    def run_until(self, time_ns: int) -> int:
        """Advance the simulation to absolute time ``time_ns``."""
        return self.sim.run(until_ns=time_ns)

    def host_by_name(self, name: str) -> Host:
        """Look up a host by its builder-assigned name."""
        for host in self.hosts:
            if host.name == name:
                return host
        raise KeyError(f"no host named {name}")

    def total_drops(self) -> int:
        """Sum of drop-tail losses across every port in the network."""
        return sum(
            port.queue.drops for node in self.nodes for port in node.ports
        )
