"""Benchmark runner: measure the pinned workloads, write BENCH_*.json.

The JSON schema (version 1)::

    {
      "schema": 1,
      "kind": "kernel" | "experiments",
      "git_sha": "<commit the numbers were measured at>",
      "machine": {"python": ..., "platform": ..., "cpu_count": ...},
      "repeats": 3,
      "results": [{"name": "<workload>@<scheduler>",
                   "workload": ..., "scheduler": ...,
                   "events_per_sec" | "wall_s": ...}, ...],
      "baseline": {           # optional: what compare.py diffs against
        "label": "...",
        "results": {"<name>": <events_per_sec | wall_s>, ...}
      }
    }

Per-workload numbers are the best of ``repeats`` runs (max events/sec,
min wall-clock) — perf measurements are one-sided-noise: interference
only ever makes a run slower, so the best run is the least-noisy
estimate of the machine's capability.

CLI::

    python -m repro.perf.bench --kind kernel --out BENCH_kernel.json
    python -m repro.perf.bench --kind experiments --out BENCH_experiments.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from typing import Dict, List, Optional, Sequence

from .workloads import (
    EXPERIMENT_WORKLOADS,
    KERNEL_WORKLOADS,
    run_experiment_workload,
    run_kernel_workload,
)

SCHEMA_VERSION = 1

#: The backend dimension measured by default: the adaptive policy (what
#: users get) plus every pinned backend.  Rows are named
#: ``<workload>@<scheduler>`` so each (workload, backend) pair carries
#: its own baseline through the regression gate.
DEFAULT_SCHEDULERS = ("adaptive", "heap", "calendar", "wheel")


def default_variants() -> tuple:
    """Kernel-mode variants measured by default, on the lead backend only.

    ``unbatched`` always (the plain/unbatched ratio is the batching
    speedup); ``compiled`` only when the mypyc twin is actually built —
    an interpreted-fallback row would just duplicate the plain number.
    """
    variants = ["unbatched"]
    from ..sim.engine import load_core

    if load_core(True).COMPILED:
        variants.append("compiled")
    return tuple(variants)


def machine_info() -> Dict[str, object]:
    """Enough machine context to judge whether two snapshots are comparable."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def git_sha() -> str:
    """Current commit, or 'unknown' outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except OSError:
        return "unknown"


def run_kernel_suite(
    repeats: int = 3,
    duration_scale: float = 1.0,
    schedulers: Optional[Sequence[str]] = DEFAULT_SCHEDULERS,
    variants: Sequence[str] = (),
    workloads: Optional[Sequence[str]] = None,
) -> List[Dict[str, float]]:
    """Best-of-``repeats`` events/sec for every pinned kernel workload.

    One row per (workload, scheduler).  ``schedulers=None`` runs the
    session default backend only, with bare row names (the pre-backend
    snapshot format).  Repeats interleave across backends so machine
    noise spreads evenly instead of biasing whichever backend ran last.

    ``variants`` adds one extra row per (workload, variant) measured on
    the lead backend only (``<workload>@<lead>+<variant>``) — the
    kernel-mode dimension (unbatched / compiled) is backend-independent
    enough that the full cross product would only add noise surface.
    Each variant cell runs immediately after its workload's lead-backend
    plain cell: the pair is the comparison readers make, so it must not
    straddle minutes of machine drift.

    Workloads that declare ``lead_only`` (the sharded-fabric twins)
    measure on the lead backend only and skip the variant dimension:
    they compare against their serial/sharded twin, not across backends.
    ``workloads`` filters the suite to the named subset (unknown names
    raise, so a CI filter cannot silently measure nothing).
    """
    if workloads is not None:
        wanted = set(workloads)
        known = {w.name for w in KERNEL_WORKLOADS}
        unknown = wanted - known
        if unknown:
            raise ValueError(
                f"unknown kernel workload(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        pool = [w for w in KERNEL_WORKLOADS if w.name in wanted]
    else:
        pool = list(KERNEL_WORKLOADS)
    sched_list = list(schedulers or (None,))
    cells: List[tuple] = []
    for workload in pool:
        lead_only = getattr(workload, "lead_only", False)
        for sched in sched_list:
            if lead_only and sched != sched_list[0]:
                continue
            cells.append((workload, sched, None))
            if sched == sched_list[0] and not lead_only:
                cells.extend(
                    (workload, sched, variant)
                    for variant in variants
                    if variant
                )
    best: Dict[int, Dict[str, float]] = {}
    for _ in range(max(repeats, 1)):
        for idx, (workload, sched, variant) in enumerate(cells):
            run = run_kernel_workload(
                workload, duration_scale, sched, variant
            )
            if (
                idx not in best
                or run["events_per_sec"] > best[idx]["events_per_sec"]
            ):
                best[idx] = run
    return [best[idx] for idx in range(len(cells))]


def run_experiment_suite(
    repeats: int = 1,
    duration_scale: float = 1.0,
    schedulers: Optional[Sequence[str]] = DEFAULT_SCHEDULERS,
) -> List[Dict[str, float]]:
    """Best-of-``repeats`` wall-clock for every pinned experiment cell."""
    cells = [
        (workload, sched)
        for workload in EXPERIMENT_WORKLOADS
        for sched in (schedulers or (None,))
    ]
    best: Dict[int, Dict[str, float]] = {}
    for _ in range(max(repeats, 1)):
        for idx, (workload, sched) in enumerate(cells):
            run = run_experiment_workload(workload, duration_scale, sched)
            if idx not in best or run["wall_s"] < best[idx]["wall_s"]:
                best[idx] = run
    return [best[idx] for idx in range(len(cells))]


def build_payload(
    kind: str,
    results: List[Dict[str, float]],
    repeats: int,
    baseline: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "git_sha": git_sha(),
        "machine": machine_info(),
        "repeats": repeats,
        "results": results,
    }
    if baseline is not None:
        payload["baseline"] = baseline
    return payload


def write_bench(path: str, payload: Dict[str, object]) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=False)
        fh.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.bench",
        description="Measure the pinned perf workloads and write a snapshot.",
    )
    parser.add_argument(
        "--kind", choices=("kernel", "experiments"), default="kernel"
    )
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--duration-scale",
        type=float,
        default=1.0,
        help="shrink simulated durations (smoke runs; not baseline-comparable)",
    )
    parser.add_argument(
        "--keep-baseline",
        metavar="PATH",
        default=None,
        help="carry the 'baseline' block over from an existing snapshot",
    )
    parser.add_argument(
        "--schedulers",
        default=",".join(DEFAULT_SCHEDULERS),
        help=(
            "comma-separated backend list to measure "
            f"(default: {','.join(DEFAULT_SCHEDULERS)})"
        ),
    )
    parser.add_argument(
        "--variants",
        default="auto",
        help=(
            "comma-separated kernel-mode variants measured on the lead "
            "backend (kernel kind only); 'auto' = unbatched plus "
            "compiled-when-built, 'none' disables the dimension"
        ),
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help=(
            "comma-separated workload names to measure (kernel kind "
            "only; default: all pinned workloads).  Unknown names are "
            "an error."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "CI smoke mode: 1 repeat, 10%% simulated durations, lead "
            "backend only — NOT comparable against committed baselines"
        ),
    )
    args = parser.parse_args(argv)
    schedulers = [s for s in args.schedulers.split(",") if s.strip()]
    if args.variants == "auto":
        variants = list(default_variants())
    elif args.variants == "none":
        variants = []
    else:
        variants = [v for v in args.variants.split(",") if v.strip()]
    if args.quick:
        args.repeats = 1
        args.duration_scale = min(args.duration_scale, 0.1)
        schedulers = schedulers[:1]
        print(
            "--quick: 1 repeat, duration scale "
            f"{args.duration_scale}, backend {schedulers[0]} only "
            "(not baseline-comparable)"
        )

    workload_filter = None
    if args.workloads:
        workload_filter = [w for w in args.workloads.split(",") if w.strip()]

    if args.kind == "kernel":
        results = run_kernel_suite(
            args.repeats,
            args.duration_scale,
            schedulers,
            variants,
            workloads=workload_filter,
        )
        metric = "events_per_sec"
    else:
        results = run_experiment_suite(
            args.repeats, args.duration_scale, schedulers
        )
        metric = "wall_s"

    baseline = None
    if args.keep_baseline:
        with open(args.keep_baseline) as fh:
            baseline = json.load(fh).get("baseline")

    payload = build_payload(args.kind, results, args.repeats, baseline)
    for row in results:
        print(f"{row['name']:32s} {metric} = {row[metric]:,.1f}")
    if args.out:
        write_bench(args.out, payload)
        print(f"snapshot written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
