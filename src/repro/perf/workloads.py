"""Pinned benchmark workloads.

These definitions are the contract between past and future measurements:
the committed ``BENCH_*.json`` baselines were produced by *exactly* these
configurations, so do not change a workload in place — add a new one with
a new name, keep the old, and regenerate the baseline.

Three tiers:

* **Kernel workloads** — dumbbell saturation runs dominated by the event
  loop, queue, and port machinery.  The metric is simulator events per
  wall-clock second; it moves with kernel fast-path changes and very
  little else.
* **Timer-churn workloads** — scheduler stress: thousands of flows each
  keeping several armed timers (RTO / delayed-ACK / probe style) that
  are cancelled and re-armed on every ack arrival, shortly before they
  would fire.  Almost every stored entry dies and *surfaces* at the
  queue head, which is the regime the calendar/wheel backends exist for.
  Same metric as kernel workloads (executed events per wall second).
* **Experiment workloads** — one Fig. 13 benchmark cell per protocol at
  reduced duration.  The metric is wall-clock per cell; it tracks what a
  user actually waits for when regenerating figures.

Every run function takes an optional ``scheduler`` (a
``Simulator(scheduler=...)`` name); the bench suite runs each workload
once per backend and names the rows ``<workload>@<scheduler>``.

Kernel workloads additionally take a ``variant`` — a named kernel-mode
override measured against the plain row:

* ``""`` (plain) — the shipped defaults: batching on, interpreted core;
* ``"unbatched"`` — ``REPRO_BATCH=off``, the pre-batching serial kernel
  (the plain/unbatched ratio is the batching speedup, DESIGN.md §6h);
* ``"compiled"`` — ``REPRO_COMPILED=on``, the mypyc core when built
  (falls back to the interpreted module, making the row a no-op twin).

Variant rows are named ``<workload>@<scheduler>+<variant>``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..config import env as config_env
from ..experiments.common import build_topology
from ..net.topology import dumbbell, fat_tree
from ..sim.engine import Simulator
from ..sim.units import seconds
from ..transport.registry import open_flow


@dataclass(frozen=True)
class KernelWorkload:
    """An n-sender dumbbell saturated for a fixed simulated duration."""

    name: str
    protocol: str
    n_senders: int
    seed: int
    duration_s: float


@dataclass(frozen=True)
class TimerChurnWorkload:
    """n flows x k armed timers, all cancelled and re-armed per ack.

    Each flow holds ``len(timer_delays_ns)`` pending timers.  An "ack"
    arrives every ``ack_gap_ns`` (plus a small deterministic jitter),
    cancels every pending timer — each of them 10-110 us short of
    firing, so the dead entries surface at the queue head instead of
    being swept by compaction — and re-arms them all.  Timer delays are
    datacenter-scale (sub-262 us, DCTCP-style RTOmin territory).  No RNG
    anywhere: the event trace is bit-identical on every backend.
    """

    name: str
    n_flows: int
    duration_s: float
    timer_delays_ns: Tuple[int, ...] = (
        150_000,
        175_000,
        200_000,
        225_000,
        250_000,
    )
    ack_gap_ns: int = 140_000


@dataclass(frozen=True)
class FabricWorkload:
    """Cross-pod flows saturating a k-ary fat tree under a routing policy.

    Exercises the multi-path forwarding path — candidate-set lookup plus
    a policy ``select`` call per packet per hop — which none of the
    dumbbell workloads touch.  ``spray`` is the pinned policy because it
    takes the selection branch on every single packet (ECMP caches the
    pick per flow), making it the upper bound on routing overhead.
    """

    name: str
    protocol: str
    routing: str
    k: int
    n_flows: int
    seed: int
    duration_s: float


@dataclass(frozen=True)
class ShardedFabricWorkload:
    """Pod-traffic on a fat tree, run serial or pod-sharded.

    The serial/sharded twin rows are the pinned speedup measurement for
    ``repro.sim.shard``: the same workload (same seed, bit-identical
    results — pinned by tests/shard) run once on one Simulator and once
    across ``pod_shards`` pod partitions plus the core shard with the
    conservative-lookahead coordinator.  ``pod_shards=0`` is the serial
    reference.  ``lead_only`` keeps the suite from multiplying these
    (comparatively slow) rows across every scheduler backend — the
    shard/serial ratio, not the backend, is what the row measures.
    """

    name: str
    protocol: str
    k: int
    pod_shards: int  # 0 = serial reference (one Simulator)
    flows_per_pod: int
    seed: int
    duration_s: float
    lead_only: bool = True


@dataclass(frozen=True)
class TelemetryWorkload:
    """A kernel dumbbell run with a telemetry session attached.

    Same shape as :class:`KernelWorkload` plus a telemetry mode; the row
    it produces is the pinned cost of the observability machinery (slot
    recorder + flight recorder subscriptions on the tracer's dispatch
    path).  Compared against its telemetry-off twin it bounds the
    telemetry-on overhead; its *absence* from the hot path is gated by
    the twin staying flat against the committed baseline.
    """

    name: str
    protocol: str
    n_senders: int
    seed: int
    duration_s: float
    telemetry: str = "full"


@dataclass(frozen=True)
class ExperimentWorkload:
    """One Fig. 13 testbed benchmark cell (workload generator + FCT)."""

    name: str
    protocol: str
    duration_s: float
    drain_s: float
    seed: int


AnyKernelWorkload = Union[
    KernelWorkload,
    TimerChurnWorkload,
    FabricWorkload,
    TelemetryWorkload,
    ShardedFabricWorkload,
]

KERNEL_WORKLOADS: Tuple[AnyKernelWorkload, ...] = (
    KernelWorkload("dumbbell_tfc_4", "tfc", 4, 1, 0.4),
    KernelWorkload("dumbbell_dctcp_8", "dctcp", 8, 2, 0.2),
    KernelWorkload("dumbbell_tcp_8", "tcp", 8, 3, 0.2),
    TimerChurnWorkload("timer_churn_16k", 16384, 0.0012),
    TimerChurnWorkload("timer_churn_32k", 32768, 0.0006),
    FabricWorkload("fattree4_tfc_spray_8", "tfc", "spray", 4, 8, 4, 0.05),
    TelemetryWorkload("dumbbell_tfc_4_telemetry", "tfc", 4, 1, 0.4),
    ShardedFabricWorkload("fattree8_tfc_serial", "tfc", 8, 0, 4, 5, 0.004),
    ShardedFabricWorkload("fattree8_tfc_sharded4", "tfc", 8, 4, 4, 5, 0.004),
)

EXPERIMENT_WORKLOADS: Tuple[ExperimentWorkload, ...] = (
    ExperimentWorkload("fig13_testbed_tfc", "tfc", 0.3, 0.3, 0),
    ExperimentWorkload("fig13_testbed_dctcp", "dctcp", 0.3, 0.3, 0),
    ExperimentWorkload("fig13_testbed_tcp", "tcp", 0.3, 0.3, 0),
)


#: Kernel-mode variants the bench suite can measure (see module docstring).
VARIANT_NAMES = ("", "unbatched", "compiled")


def _variant_env(variant: Optional[str]) -> Dict[str, str]:
    """``config_env`` overrides implementing a named kernel variant."""
    if not variant:
        return {}
    if variant == "unbatched":
        return {"batch": "off"}
    if variant == "compiled":
        return {"compiled": "on"}
    raise ValueError(
        f"unknown kernel variant {variant!r} (expected one of "
        f"{VARIANT_NAMES[1:]})"
    )


def _row_name(
    workload_name: str,
    scheduler: Optional[str],
    variant: Optional[str] = None,
) -> str:
    name = f"{workload_name}@{scheduler}" if scheduler else workload_name
    return f"{name}+{variant}" if variant else name


def _annotate_variant(row: Dict[str, float], variant: Optional[str]) -> None:
    if variant:
        row["variant"] = variant


def run_kernel_workload(
    workload: AnyKernelWorkload,
    duration_scale: float = 1.0,
    scheduler: Optional[str] = None,
    variant: Optional[str] = None,
) -> Dict[str, float]:
    """Run one kernel workload; returns events, wall_s, events_per_sec.

    ``duration_scale`` shrinks the simulated window for smoke runs (CI);
    scaled runs are *not* comparable against the committed baselines.
    """
    if isinstance(workload, TimerChurnWorkload):
        return run_churn_workload(workload, duration_scale, scheduler, variant)
    if isinstance(workload, FabricWorkload):
        return run_fabric_workload(workload, duration_scale, scheduler, variant)
    if isinstance(workload, TelemetryWorkload):
        return run_telemetry_workload(
            workload, duration_scale, scheduler, variant
        )
    if isinstance(workload, ShardedFabricWorkload):
        return run_sharded_fabric_workload(
            workload, duration_scale, scheduler, variant
        )
    with config_env(scheduler=scheduler, **_variant_env(variant)):
        topo = build_topology(
            dumbbell,
            workload.protocol,
            buffer_bytes=256_000,
            n_senders=workload.n_senders,
            seed=workload.seed,
        )
        receiver = topo.host(workload.n_senders)
        for i in range(workload.n_senders):
            open_flow(topo.host(i), receiver, workload.protocol)
        start = time.perf_counter()
        topo.network.run_for(seconds(workload.duration_s * duration_scale))
        wall = time.perf_counter() - start
    events = topo.sim.events_processed
    row = {
        "name": _row_name(workload.name, scheduler, variant),
        "workload": workload.name,
        "scheduler": scheduler or "adaptive",
        "protocol": workload.protocol,
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }
    _annotate_variant(row, variant)
    return row


def run_telemetry_workload(
    workload: TelemetryWorkload,
    duration_scale: float = 1.0,
    scheduler: Optional[str] = None,
    variant: Optional[str] = None,
) -> Dict[str, float]:
    """Run one telemetry-on dumbbell workload on the given backend."""
    from ..obs import drain_pending

    with config_env(
        scheduler=scheduler,
        telemetry=workload.telemetry,
        **_variant_env(variant),
    ):
        topo = build_topology(
            dumbbell,
            workload.protocol,
            buffer_bytes=256_000,
            n_senders=workload.n_senders,
            seed=workload.seed,
        )
        receiver = topo.host(workload.n_senders)
        for i in range(workload.n_senders):
            open_flow(topo.host(i), receiver, workload.protocol)
        start = time.perf_counter()
        topo.network.run_for(seconds(workload.duration_s * duration_scale))
        wall = time.perf_counter() - start
    drain_pending()  # nothing exports; keep the pending queue clean
    events = topo.sim.events_processed
    row = {
        "name": _row_name(workload.name, scheduler, variant),
        "workload": workload.name,
        "scheduler": scheduler or "adaptive",
        "protocol": workload.protocol,
        "telemetry": workload.telemetry,
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }
    _annotate_variant(row, variant)
    return row


def run_churn_workload(
    workload: TimerChurnWorkload,
    duration_scale: float = 1.0,
    scheduler: Optional[str] = None,
    variant: Optional[str] = None,
) -> Dict[str, float]:
    """Run one timer-churn workload on the given backend."""
    with config_env(**_variant_env(variant)):
        sim = Simulator(scheduler=scheduler) if scheduler else Simulator()
    timers = workload.timer_delays_ns
    # Per-slot base delay precomputed (the j*977 de-aliasing stagger is
    # static); the ack handler only adds the per-step jitter.
    base = tuple(t + j * 977 for j, t in enumerate(timers))
    indexes = range(len(timers))
    pending = [[None] * len(timers) for _ in range(workload.n_flows)]
    schedule = sim.schedule
    ack_gap = workload.ack_gap_ns

    def timer_fire(i: int, j: int) -> None:
        # Clearing the slot inside the callback keeps the kernel's
        # handle contract: a fired handle is never cancelled later.
        pending[i][j] = None

    def ack(i: int, step: int) -> None:
        slots = pending[i]
        jitter = (i * 2654435761 + step * 40503) & 2047
        for j in indexes:
            handle = slots[j]
            if handle is not None:
                handle.cancel()
            slots[j] = schedule(base[j] + jitter, timer_fire, i, j)
        schedule(ack_gap + jitter, ack, i, step + 1)

    for i in range(workload.n_flows):
        schedule((i * 7919) % ack_gap, ack, i, 0)

    duration_ns = seconds(workload.duration_s * duration_scale)
    start = time.perf_counter()
    sim.run(until_ns=duration_ns)
    wall = time.perf_counter() - start
    events = sim.events_processed
    row = {
        "name": _row_name(workload.name, scheduler, variant),
        "workload": workload.name,
        "scheduler": scheduler or "adaptive",
        "protocol": "timers",
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }
    _annotate_variant(row, variant)
    return row


def run_fabric_workload(
    workload: FabricWorkload,
    duration_scale: float = 1.0,
    scheduler: Optional[str] = None,
    variant: Optional[str] = None,
) -> Dict[str, float]:
    """Run one fat-tree multi-path workload on the given backend."""
    with config_env(scheduler=scheduler, **_variant_env(variant)):
        topo = build_topology(
            fat_tree,
            workload.protocol,
            buffer_bytes=256_000,
            k=workload.k,
            seed=workload.seed,
            routing=workload.routing,
        )
        n_hosts = len(topo.hosts)
        for i in range(workload.n_flows):
            open_flow(
                topo.hosts[i],
                topo.hosts[n_hosts // 2 + i],
                workload.protocol,
            )
        start = time.perf_counter()
        topo.network.run_for(seconds(workload.duration_s * duration_scale))
        wall = time.perf_counter() - start
    events = topo.sim.events_processed
    row = {
        "name": _row_name(workload.name, scheduler, variant),
        "workload": workload.name,
        "scheduler": scheduler or "adaptive",
        "protocol": workload.protocol,
        "routing": workload.routing,
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }
    _annotate_variant(row, variant)
    return row


def run_sharded_fabric_workload(
    workload: ShardedFabricWorkload,
    duration_scale: float = 1.0,
    scheduler: Optional[str] = None,
    variant: Optional[str] = None,
) -> Dict[str, float]:
    """Run one sharded-fabric workload (serial when ``pod_shards == 0``).

    Wall-clock covers the whole run including coordination (worker
    startup, epoch barriers, message exchange), so the serial/sharded
    events-per-second ratio is the honest end-to-end speedup, not a
    per-shard number.
    """
    from ..sim.shard import (
        ShardSpec,
        plan_fat_tree,
        run_serial_reference,
        run_sharded,
    )
    from ..sim.shard.workload import build_pod_traffic, collect_pod_traffic

    plan = plan_fat_tree(k=workload.k, pod_shards=max(workload.pod_shards, 1))
    spec = ShardSpec(
        plan=plan,
        build=build_pod_traffic,
        collect=collect_pod_traffic,
        end_ns=seconds(workload.duration_s * duration_scale),
        root_seed=workload.seed,
        build_kwargs={
            "k": workload.k,
            "protocol": workload.protocol,
            "flows_per_pod": workload.flows_per_pod,
        },
    )
    with config_env(scheduler=scheduler, **_variant_env(variant)):
        if workload.pod_shards == 0:
            outcome = run_serial_reference(spec)
            events, wall = outcome.events, outcome.wall_s
            extra: Dict[str, float] = {"shards": 0}
        else:
            result = run_sharded(spec)
            events, wall = result.events, result.wall_s
            extra = {
                "shards": result.shards,
                "epochs": result.epochs,
                "messages": result.messages,
                "exec_mode": result.mode,
            }
    row = {
        "name": _row_name(workload.name, scheduler, variant),
        "workload": workload.name,
        "scheduler": scheduler or "adaptive",
        "protocol": workload.protocol,
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        **extra,
    }
    _annotate_variant(row, variant)
    return row


def run_experiment_workload(
    workload: ExperimentWorkload,
    duration_scale: float = 1.0,
    scheduler: Optional[str] = None,
) -> Dict[str, float]:
    """Run one Fig. 13 cell; returns wall-clock seconds for the cell."""
    from ..experiments.fig13_benchmark import run_benchmark

    with config_env(scheduler=scheduler):
        start = time.perf_counter()
        result = run_benchmark(
            workload.protocol,
            scale="testbed",
            duration_s=workload.duration_s * duration_scale,
            drain_s=workload.drain_s * duration_scale,
            seed=workload.seed,
        )
        wall = time.perf_counter() - start
    return {
        "name": _row_name(workload.name, scheduler),
        "workload": workload.name,
        "scheduler": scheduler or "adaptive",
        "protocol": workload.protocol,
        "wall_s": wall,
        "flows_launched": result.flows_launched,
        "completed": result.collector.completed(),
    }
