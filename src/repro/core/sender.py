"""TFC sender endpoint (paper section 5.1).

The sender does *no* congestion probing: its window is whatever the last
RMA-marked ACK carried (the minimum allocation along the path).  Its three
responsibilities are:

1. **Round marking** — the SYN carries the RM bit (so switches count the
   new flow towards ``E`` immediately, Fig. 2); after every received RMA
   the next outgoing data packet carries RM — exactly one mark per round.
2. **Window acquisition** (section 4.6) — after the handshake it sends an
   RM-marked zero-payload probe and waits for the allocation instead of
   blasting data with a guessed window; this is what protects highly
   concurrent new flows from overrunning buffers.
3. **Window field initialisation** — every outgoing data packet's window
   field starts at the 0xffff sentinel so switches can only lower it.

Loss is rare by design, so recovery is minimal: classic triple-dupack fast
retransmit and RTO retransmission, neither of which touches the window
(the switch owns the window).
"""

from __future__ import annotations

from ..net.packet import MSS, Packet, WINDOW_SENTINEL
from ..sim.timers import Timer
from ..sim.trace import FAST_RETRANSMIT
from ..transport.base import FlowState, Receiver, Sender

DUPACK_THRESHOLD = 3


class TfcSender(Sender):
    """Explicit-window sender driven entirely by switch allocations."""

    protocol_name = "tfc"

    #: Idle time after which the held window is considered stale and the
    #: sender re-enters window acquisition before transmitting again (the
    #: TFC analogue of Linux's congestion-window restart after idle).  The
    #: allocation W = T/E is only valid for the slot that computed it; an
    #: on-off flow resuming with a held window from many slots ago would
    #: burst unpaced — with hundreds of synchronised senders (incast round
    #: boundaries) those bursts are exactly what overruns buffers.
    idle_reacquire_ns = 500_000  # 0.5 ms, several datacenter RTTs

    #: A flow resuming after *any* gap with a held window above this limit
    #: re-acquires even if the gap was shorter than idle_reacquire_ns.  At
    #: a round tail the effective-flow count collapses and the last
    #: stragglers are legitimately granted near-full-pipe windows; carrying
    #: such a window into the next synchronised round would burst it all.
    resume_burst_limit = 4 * MSS

    def __init__(self, *args, weight: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        self.weight = int(weight)
        self.cwnd = 0.0  # nothing may be sent before the first allocation
        self.window_acquired = False
        self._mark_next = False
        self._probe_timer = Timer(
            self.sim, self._resend_probe, name=f"tfc-probe:{self.flow_key}"
        )
        self.window_updates = 0
        self.reacquisitions = 0
        self._last_activity_ns = 0

    # ------------------------------------------------------------------
    # Round marking
    # ------------------------------------------------------------------
    def syn_hook(self, packet: Packet) -> None:
        packet.rm = True  # marked SYN counts towards E at every switch
        packet.weight = self.weight

    def next_packet_hook(self, packet: Packet) -> None:
        packet.window = WINDOW_SENTINEL
        packet.weight = self.weight
        self._last_activity_ns = self.sim.now
        if self._mark_next and not packet.fin:
            packet.rm = True
            self._mark_next = False

    def queue_bytes(self, nbytes: int) -> None:
        idle_ns = self.sim.now - self._last_activity_ns
        if (
            self.window_acquired
            and self.flight_size == 0
            and self.state is FlowState.ESTABLISHED
            and (
                idle_ns > self.idle_reacquire_ns
                or self.cwnd > self.resume_burst_limit
            )
        ):
            # Resuming after idle: the held window is stale.  Drop back to
            # the acquisition phase so the fresh grant flows through the
            # switch delay function, which paces the simultaneous resumes
            # of an incast round instead of letting them burst.
            self.window_acquired = False
            self.cwnd = 0.0
            self.reacquisitions += 1
            self._send_probe()
        super().queue_bytes(nbytes)

    # ------------------------------------------------------------------
    # Window acquisition phase
    # ------------------------------------------------------------------
    def on_established(self, packet: Packet) -> None:
        self._send_probe()

    def _send_probe(self) -> None:
        probe = self._make_packet(seq=self.snd_nxt, payload=0, rm=True)
        probe.window = WINDOW_SENTINEL
        probe.weight = self.weight
        self._last_activity_ns = self.sim.now
        self.host.send(probe)
        self._probe_timer.start(2 * self.rto.current_rto_ns)

    def _resend_probe(self) -> None:
        if not self.window_acquired and self.state is FlowState.ESTABLISHED:
            self._send_probe()

    # ------------------------------------------------------------------
    # Window updates from RMA ACKs
    # ------------------------------------------------------------------
    def ack_hook(self, packet: Packet) -> None:
        if not packet.rma:
            return
        self.cwnd = float(packet.window)
        self.window_updates += 1
        self._mark_next = True
        if not self.window_acquired:
            self.window_acquired = True
            self._probe_timer.stop()
            self.try_send()

    # ------------------------------------------------------------------
    # Minimal loss recovery (no window changes — the switch owns W)
    # ------------------------------------------------------------------
    def on_duplicate_ack(self, packet: Packet) -> None:
        if self.dupacks == DUPACK_THRESHOLD:
            self.stats.fast_retransmits += 1
            self.tracer.emit(FAST_RETRANSMIT, sender=self)
            self.retransmit_head()

    def on_timeout(self) -> None:
        # The base class retransmits the head; when the window was never
        # acquired (probe or its RMA lost) re-enter acquisition instead.
        if not self.window_acquired:
            self._send_probe()

    def close(self) -> None:
        self._probe_timer.stop()
        super().close()


class TfcReceiver(Receiver):
    """Copies allocations from RM data packets onto RMA ACKs.

    The SYN is RM-marked purely for flow counting; its SYN-ACK must *not*
    grant a window (new flows take their window from the acquisition probe,
    section 4.6), so only non-SYN RM packets produce RMA ACKs.
    """

    def ack_decoration_hook(self, ack: Packet, data_packet: Packet) -> None:
        if data_packet.rm and not data_packet.syn:
            ack.rma = True
            ack.window = min(float(self.awnd_bytes), data_packet.window)
