"""Recovery metrics and the chaos acceptance criterion.

The acceptance bar for the fault work: under every fault primitive, TFC
reconverges to at least 90% of its pre-fault aggregate goodput with zero
invariant-monitor violations.  The full catalogue runs in the slow suite;
a two-fault subset stays in tier-1 as a regression canary.
"""

import pytest

from repro.experiments.chaos import FAULT_KINDS, run_chaos
from repro.experiments.common import build_topology
from repro.faults import FaultInjector, measure_recovery
from repro.net.topology import leaf_spine
from repro.sim.units import milliseconds, seconds
from repro.transport.registry import open_flow

MS = milliseconds(1)


# ----------------------------------------------------------------------
# measure_recovery on synthetic series
# ----------------------------------------------------------------------
def series(values, step_ns=MS):
    return [(i * step_ns, v) for i, v in enumerate(values)]


def test_measure_recovery_happy_path():
    # 5 baseline samples at 10, dip to 2, back above 9 from sample 8 on.
    data = series([10, 10, 10, 10, 10, 2, 4, 7, 9.5, 9.6, 10, 10, 10, 10])
    report = measure_recovery(
        data, fault_start_ns=5 * MS, threshold=0.9, hold_samples=3
    )
    assert report.baseline == pytest.approx(10.0)
    assert report.dip_depth == pytest.approx(0.8)
    assert report.reconverge_ns == 8 * MS
    assert report.time_to_reconverge_ns == 3 * MS
    assert report.recovered
    assert "reconverged in 3.00 ms" in report.summary()


def test_measure_recovery_never_reconverges():
    data = series([10, 10, 10, 10, 2, 3, 2, 3, 2, 3])
    report = measure_recovery(data, fault_start_ns=4 * MS, hold_samples=2)
    assert report.reconverge_ns is None
    assert report.time_to_reconverge_ns is None
    assert not report.recovered
    assert "never reconverged" in report.summary()


def test_measure_recovery_hold_must_be_consecutive():
    # Reaches the target once, dips again, then holds.
    data = series([10, 10, 10, 1, 9.5, 1, 9.5, 9.5, 9.5, 9.5])
    report = measure_recovery(data, fault_start_ns=3 * MS, hold_samples=3)
    assert report.reconverge_ns == 6 * MS  # the start of the real hold


def test_measure_recovery_settle_skips_fault_window():
    # Goodput never actually dips, but recovery may only be declared
    # after the fault window (the cure) has passed.
    data = series([10] * 12)
    report = measure_recovery(
        data, fault_start_ns=4 * MS, settle_ns=3 * MS, hold_samples=2
    )
    assert report.reconverge_ns == 7 * MS
    assert report.dip_depth == 0.0


def test_measure_recovery_validates():
    data = series([10, 10, 10, 10])
    with pytest.raises(ValueError):
        measure_recovery(data, fault_start_ns=2 * MS, threshold=0.0)
    with pytest.raises(ValueError):
        measure_recovery(data, fault_start_ns=0)  # no pre-fault samples
    with pytest.raises(ValueError):
        measure_recovery(series([0, 0, 0]), fault_start_ns=2 * MS)


# ----------------------------------------------------------------------
# Chaos acceptance
# ----------------------------------------------------------------------
def assert_clean_recovery(result):
    report = result.report
    assert not result.violations, result.violations[0].report()
    assert report.recovered, (
        f"{result.fault}: never reconverged to "
        f"{report.threshold:.0%} of baseline ({report.summary()})"
    )
    assert result.invariant_checks > 0


@pytest.mark.parametrize("fault", ["switch_reset", "delimiter_kill"])
def test_chaos_fast_subset_recovers_cleanly(fault):
    """Tier-1 canary: the two state-wiping faults recover >= 90%."""
    assert_clean_recovery(run_chaos(fault))


@pytest.mark.slow
@pytest.mark.parametrize("fault", FAULT_KINDS)
def test_chaos_full_catalogue_recovers_cleanly(fault):
    """Acceptance: every fault primitive reconverges to >= 90% of the
    pre-fault goodput with zero invariant violations."""
    assert_clean_recovery(run_chaos(fault))


def test_recovery_report_registers_metrics():
    from repro.obs import MetricRegistry

    registry = MetricRegistry()
    data = series([10, 10, 10, 10, 10, 2, 4, 7, 9.5, 9.6, 10, 10, 10])
    report = measure_recovery(
        data, fault_start_ns=5 * MS, hold_samples=3, post_fault_timeouts=2
    )
    report.register(registry)
    assert registry.get("recovery.baseline_bps").value == pytest.approx(10.0)
    assert registry.get("recovery.dip_depth").value == pytest.approx(0.8)
    assert registry.get("recovery.reconverge_ns").value == report.reconverge_ns
    assert registry.get("recovery.post_fault_timeouts").value == 2
    # never-reconverged runs stay numeric
    bad = measure_recovery(
        series([10, 10, 10, 10, 1, 1, 1, 1]), fault_start_ns=4 * MS
    )
    bad.register(registry, prefix="bad")
    assert registry.get("bad.reconverge_ns").value == -1.0


def test_chaos_telemetry_export(tmp_path):
    """run_chaos(telemetry_dir=...) exports the labelled file trio with
    the recovery report, invariant counters and goodput timeline folded
    into the metrics — without changing the scenario's outcome."""
    import json

    from repro.obs import drain_pending

    drain_pending()
    reference = run_chaos("switch_reset")
    result = run_chaos("switch_reset", telemetry_dir=str(tmp_path))
    assert result.report == reference.report
    assert result.goodput_series == reference.goodput_series
    names = sorted(p.name for p in tmp_path.iterdir())
    assert names == [
        "chaos_switch_reset_1.flight.jsonl",
        "chaos_switch_reset_1.metrics.jsonl",
        "chaos_switch_reset_1.slots.csv",
    ]
    rows = {
        row["name"]: row
        for row in map(
            json.loads,
            (tmp_path / "chaos_switch_reset_1.metrics.jsonl")
            .read_text()
            .splitlines(),
        )
    }
    assert rows["recovery.baseline_bps"]["value"] == result.report.baseline
    assert rows["invariant.checks"]["value"] == result.invariant_checks
    assert rows["chaos.goodput_bps"]["points"] == len(result.goodput_series)
    # the fault itself is in the flight ring
    flight = [
        json.loads(line)
        for line in (tmp_path / "chaos_switch_reset_1.flight.jsonl")
        .read_text()
        .splitlines()
    ]
    assert any(r["topic"] == "fault.injected" for r in flight)


# ----------------------------------------------------------------------
# link_down rerouting on a multi-path fabric
# ----------------------------------------------------------------------
def _spine_cut_run(reroute, routing):
    """Two TFC flows crossing a 2-spine fabric; one uplink dies at 30 ms.

    Returns (bytes received by fault onset, bytes received in the 60 ms
    after it, number of route rebuilds).
    """
    topo = build_topology(
        leaf_spine,
        "tfc",
        buffer_bytes=512_000,
        n_leaves=2,
        hosts_per_leaf=2,
        spines=2,
        seed=7,
        routing=routing,
    )
    net = topo.network
    senders = [
        open_flow(topo.hosts[i], topo.hosts[2 + i], "tfc") for i in range(2)
    ]
    leaf0, spine0 = topo.switches[2], topo.switches[0]
    injector = FaultInjector(net)
    injector.link_down(
        leaf0.port_towards(spine0.node_id), milliseconds(30), reroute=reroute
    )
    pre_fault = {}

    def snapshot():
        pre_fault["bytes"] = sum(s.receiver.bytes_received for s in senders)

    net.sim.schedule_at(milliseconds(30), snapshot)
    net.run_for(seconds(0.09))
    total = sum(s.receiver.bytes_received for s in senders)
    return pre_fault["bytes"], total - pre_fault["bytes"], net.route_rebuilds


@pytest.mark.parametrize("routing", ["single", "ecmp"])
def test_link_down_reroute_restores_goodput(routing):
    """With reroute=True a dead spine uplink diverts traffic onto the
    surviving equal-cost uplink; goodput after the fault stays at least
    half the pre-fault rate (TFC re-learns tokens on the new path)."""
    pre_bytes, post_bytes, rebuilds = _spine_cut_run(True, routing)
    assert rebuilds == 1
    # 30 ms of pre-fault traffic vs 60 ms post-fault: full recovery would
    # deliver ~2x the pre-fault bytes; demand >= 1x (>= half rate).
    assert post_bytes >= pre_bytes


@pytest.mark.parametrize("routing", ["single", "ecmp"])
def test_link_down_without_reroute_blackholes(routing):
    """The regression this hook fixes: without rerouting the stale route
    keeps pointing into the cut and the flows strand (only the in-flight
    tail arrives)."""
    pre_bytes, post_bytes, rebuilds = _spine_cut_run(False, routing)
    assert rebuilds == 0
    assert post_bytes < pre_bytes * 0.05
