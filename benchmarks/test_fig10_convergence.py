"""Figure 10 — convergence rate when a new flow joins.

Paper: zooming on the third flow's start, TFC reaches its fair share in
about one round trip, DCTCP needs tens of milliseconds, and TCP barely
converges within the window.
"""

from conftest import run_once

from repro.experiments import run_staggered_flows


def run_all():
    # Finer goodput sampling than Fig. 9 so convergence is resolvable.
    return {
        proto: run_staggered_flows(
            proto, interval_s=0.15, tail_s=0.3, goodput_sample_ms=2.0
        )
        for proto in ("tfc", "dctcp", "tcp")
    }


def test_fig10_convergence(benchmark, report):
    results = run_once(benchmark, run_all)

    link = 1e9
    rows = []
    conv = {}
    for proto, result in results.items():
        value = result.convergence_ns(2, link)
        conv[proto] = value
        rows.append(
            [proto.upper(), "no convergence" if value is None else f"{value / 1e6:.1f}"]
        )
    report(
        "Fig. 10: time for flow 3 to reach its fair share (ms)",
        ["protocol", "convergence time"],
        rows,
    )

    assert conv["tfc"] is not None
    # TFC converges within a couple of sampling intervals (~1 round in
    # reality; 2 ms sampling floor here).
    assert conv["tfc"] <= 6e6
    if conv["dctcp"] is not None:
        assert conv["tfc"] <= conv["dctcp"]
    if conv["tcp"] is not None:
        assert conv["tfc"] <= conv["tcp"]
