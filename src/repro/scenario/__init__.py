"""``repro.scenario`` — the declarative scenario layer.

One YAML document (or plain dict) describes a complete simulation run —
topology, routing, fabric, per-tenant transport + workload mix, fault
schedule, telemetry mode, duration and seed — and this package turns it
into a validated :class:`Scenario` and then into an
:class:`~repro.experiments.common.ExperimentResult`:

    from repro.scenario import get_scenario, run_scenario
    result = run_scenario(get_scenario("multi-tenant-mix"), seed=1)
    result["jain_tenants"]

Validation is eager and precise (:class:`ScenarioError` names the exact
field path), the registry resolves ``scenarios/*.yaml`` plus
programmatic registrations, and ``run_scenario`` keeps the simulator's
determinism contract: same scenario + seed -> bit-identical results.
"""

from .loader import load_scenario_dict, load_scenario_file, load_scenario_text
from .registry import (
    SCENARIOS_ENV_VAR,
    default_scenario_names,
    get_scenario,
    glob_scenarios,
    list_scenarios,
    register_scenario,
    resolve,
    scenarios_dir,
    unregister_scenario,
)
from .run import run_scenario
from .schema import (
    FAULT_KINDS,
    TOPOLOGY_KINDS,
    WORKLOAD_KINDS,
    FaultSpec,
    HostSelector,
    Scenario,
    ScenarioError,
    TenantSpec,
    TopologySpec,
    WorkloadSpec,
    scenario_from_dict,
)

__all__ = [
    "Scenario",
    "ScenarioError",
    "TopologySpec",
    "TenantSpec",
    "WorkloadSpec",
    "FaultSpec",
    "HostSelector",
    "TOPOLOGY_KINDS",
    "WORKLOAD_KINDS",
    "FAULT_KINDS",
    "scenario_from_dict",
    "load_scenario_text",
    "load_scenario_file",
    "load_scenario_dict",
    "register_scenario",
    "unregister_scenario",
    "list_scenarios",
    "get_scenario",
    "glob_scenarios",
    "resolve",
    "scenarios_dir",
    "default_scenario_names",
    "SCENARIOS_ENV_VAR",
    "run_scenario",
]
