"""Shared plumbing for the per-figure experiment drivers.

Every driver follows the same recipe: build a topology with the queue
discipline its protocol needs, install TFC agents when applicable, attach
samplers, run, and return a small result object that both the benchmark
harness and the tests can assert on.  The pieces shared by all of them
live here.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from ..core.params import TfcParams
from ..net.topology import Topology
from ..obs import maybe_install as maybe_install_telemetry
from ..transport.registry import (
    get_protocol,
    registered_protocols,
    resolve_legacy_params,
)


class _ProtocolLabels(Mapping):
    """Live view of the registry's display labels.

    A plain dict snapshot would go stale the moment a test or experiment
    calls ``register_protocol``; this reads through to the registry so
    report tables always label exactly the protocols that exist.
    """

    def __getitem__(self, name: str) -> str:
        return get_protocol(name).display_label

    def __iter__(self) -> Iterator[str]:
        return iter(registered_protocols())

    def __len__(self) -> int:
        return len(registered_protocols())


PROTOCOL_LABELS = _ProtocolLabels()

#: The paper's own comparison set — the default sweep of every figure.
ALL_PROTOCOLS = ("tfc", "dctcp", "tcp")

#: The full comparison grid including the related-work baselines
#: (DESIGN.md §6k) — what the ``baselines`` figure and the scenario
#: fairness head-to-heads sweep.
BASELINE_PROTOCOLS = ("tfc", "dctcp", "tcp", "pfc", "bfc", "tbtcp", "tracks", "fairq")


@dataclass
class ExperimentResult:
    """Generic result container: named scalars plus named series."""

    name: str
    protocol: str
    scalars: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, list] = field(default_factory=dict)

    def __getitem__(self, key: str) -> float:
        return self.scalars[key]


def derive_cell_seed(root_seed: int, *labels) -> int:
    """Deterministic child seed for one experiment cell.

    Hashes ``(root_seed, labels)`` the same way :class:`repro.sim.rng.
    SeedSequence` derives streams, so a cell's seed depends only on its
    identity — not on the order cells run in, the worker process it lands
    on, or which other cells exist.  That is what makes ``--jobs N`` output
    bit-identical to a serial run.
    """
    tag = ":".join(str(part) for part in labels)
    digest = hashlib.sha256(f"{int(root_seed)}:cell:{tag}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def build_topology(
    builder: Callable[..., Topology],
    protocol: str,
    buffer_bytes: int,
    protocol_params: Optional[object] = None,
    tfc_params: Optional[TfcParams] = None,
    ecn_threshold_bytes: int = 32_000,
    pfc_params=None,
    **builder_kwargs,
) -> Topology:
    """Build a topology wired for ``protocol`` (queues + switch agents).

    All protocol behaviour flows through the registry's
    :class:`~repro.transport.registry.Protocol` hooks: the spec's queue
    factory picks the port discipline, its installer attaches switch
    agents.  ``protocol_params`` is the typed per-protocol parameter
    object (an instance of ``spec.params_cls``); the older
    ``tfc_params``/``ecn_threshold_bytes`` keywords still work and map
    onto the same slot when the protocol matches.

    ``pfc_params`` (a :class:`repro.net.pfc.PfcParams`) forces a lossless
    fabric with explicit thresholds regardless of protocol — the
    pathology scenarios use it to pin tight XOFF/XON watermarks; without
    it the fabric is installed only for lossless protocols or when
    ``$REPRO_LOSSLESS`` asks for one (with buffer-scaled defaults).
    """
    spec = get_protocol(protocol)
    params = resolve_legacy_params(
        spec,
        params=protocol_params,
        tfc_params=tfc_params,
        pfc_params=pfc_params,
        ecn_threshold_bytes=ecn_threshold_bytes,
    )
    topo = builder(
        buffer_bytes=buffer_bytes,
        queue_factory=spec.port_queue_factory(buffer_bytes, params),
        **builder_kwargs,
    )
    spec.install(topo.network, params, pfc_params=pfc_params)
    # Env-selected telemetry ($REPRO_TELEMETRY / runner --telemetry)
    # attaches here — the one chokepoint every experiment cell, chaos
    # scenario and perf workload builds through.  One dict lookup when off.
    maybe_install_telemetry(topo.network)
    return topo


def format_rate(bps: float) -> str:
    """Human-readable rate for report tables."""
    if bps >= 1e9:
        return f"{bps / 1e9:.2f} Gbps"
    return f"{bps / 1e6:.0f} Mbps"


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Minimal fixed-width ASCII table used by the bench reports."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def render(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    lines = [render(headers), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)
