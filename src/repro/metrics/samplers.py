"""Periodic samplers for the time-series figures.

The paper plots queue length over time (Figs. 8, 11b, 12b, 14b), per-flow
goodput over time (Figs. 9-11) and aggregate throughput (Figs. 12a, 15a).
Each sampler schedules itself on the simulator at a fixed interval and
records a series; derived statistics (mean/max, convergence time) come out
afterwards.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..net.port import Port
from ..sim.engine import Simulator
from ..sim.units import SECOND

Series = List[Tuple[int, float]]  # (time_ns, value)


class PeriodicSampler:
    """Base: calls ``probe()`` every ``interval_ns`` and records the value."""

    def __init__(self, sim: Simulator, interval_ns: int, start_ns: int = 0):
        if interval_ns <= 0:
            raise ValueError("sampling interval must be positive")
        self._sim = sim
        self.interval_ns = interval_ns
        self.series: Series = []
        self._stopped = False
        sim.schedule_at(max(start_ns, sim.now), self._tick)

    def probe(self) -> float:
        """Return the current value of the measured quantity."""
        raise NotImplementedError

    def stop(self) -> None:
        """Stop sampling (the pending event is skipped when it fires)."""
        self._stopped = True

    def register(self, registry, name: str) -> None:
        """Expose this sampler's series as a registry timeline.

        Zero-copy: the :class:`~repro.obs.Timeline` adopts the live series
        list, so samples recorded before *and* after registration all show
        up in the registry's export.
        """
        registry.timeline(name).adopt(self.series)

    def _tick(self) -> None:
        if self._stopped:
            return
        self.series.append((self._sim.now, self.probe()))
        self._sim.schedule(self.interval_ns, self._tick)

    # ------------------------------------------------------------------
    @property
    def values(self) -> List[float]:
        """Just the sampled values (no timestamps)."""
        return [value for _, value in self.series]

    def max(self) -> float:
        """Largest sample seen (0.0 when nothing sampled)."""
        return max(self.values, default=0.0)

    def mean(self) -> float:
        """Mean of samples (0.0 when nothing sampled)."""
        values = self.values
        return sum(values) / len(values) if values else 0.0


class QueueSampler(PeriodicSampler):
    """Samples a port's instantaneous queue occupancy in bytes."""

    def __init__(self, sim: Simulator, port: Port, interval_ns: int, start_ns: int = 0):
        self._port = port
        super().__init__(sim, interval_ns, start_ns)

    def probe(self) -> float:
        return float(self._port.queue.byte_length)


class RateSampler(PeriodicSampler):
    """Differentiates a monotone byte counter into a rate in bits/s.

    ``counter`` is any zero-argument callable returning cumulative bytes
    (e.g. ``lambda: receiver.bytes_received`` for per-flow goodput, or
    ``lambda: port.tx_bytes`` for link throughput).
    """

    def __init__(
        self,
        sim: Simulator,
        counter: Callable[[], int],
        interval_ns: int,
        start_ns: int = 0,
        label: str = "",
    ):
        self._counter = counter
        self._last: Optional[int] = None
        self.label = label
        super().__init__(sim, interval_ns, start_ns)

    def probe(self) -> float:
        current = self._counter()
        if self._last is None:
            rate = 0.0
        else:
            rate = (current - self._last) * 8 * SECOND / self.interval_ns
        self._last = current
        return rate


def convergence_time_ns(
    series: Series,
    target: float,
    tolerance: float = 0.1,
    hold_samples: int = 3,
) -> Optional[int]:
    """When did a rate series first reach and hold ``target`` +/- tolerance?

    Used for the Fig. 10 convergence comparison: the answer is the first
    timestamp from which ``hold_samples`` consecutive samples sit within
    ``tolerance`` (fractional) of the target.  None when it never converges.
    """
    if target <= 0:
        raise ValueError("target rate must be positive")
    run = 0
    start_ns: Optional[int] = None
    for t, value in series:
        if abs(value - target) <= tolerance * target:
            if run == 0:
                start_ns = t
            run += 1
            if run >= hold_samples:
                return start_ns
        else:
            run = 0
            start_ns = None
    return None
