"""Discrete-event simulation kernel.

A :class:`Simulator` owns a monotonic integer-nanosecond clock and a binary
heap of pending events.  Events scheduled for the same instant fire in the
order they were scheduled (FIFO tie-breaking via a monotonically increasing
sequence number), which makes every run fully deterministic.

The kernel is deliberately tiny: components interact only through
``schedule`` / ``cancel`` and the read-only ``now`` property.  Everything
network-specific lives in :mod:`repro.net` and above.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .units import SECOND, to_seconds

Callback = Callable[..., None]


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` and compared by
    ``(time, seq)`` so the heap pops them in deterministic order.  Cancelling
    marks the event dead; the heap lazily discards dead entries.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callback, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so the engine skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time}ns #{self.seq} {name}{state}>"


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, negative delays)."""


class Simulator:
    """The event loop: a clock plus a priority queue of events."""

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._heap: list[Event] = []
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in integer nanoseconds."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current simulation time in float seconds (reporting only)."""
        return to_seconds(self._now)

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_ns: int, callback: Callback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns}ns in the past")
        return self.schedule_at(self._now + delay_ns, callback, *args)

    def schedule_at(self, time_ns: int, callback: Callback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, now is {self._now}ns"
            )
        event = Event(time_ns, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until_ns: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events in order until the queue drains or a bound is hit.

        ``until_ns`` is inclusive: events scheduled exactly at ``until_ns``
        still execute, and the clock is left at ``until_ns`` if the horizon
        was reached (so samplers see the full window).  Returns the number of
        events processed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until_ns is not None and event.time > until_ns:
                    break
                if max_events is not None and processed >= max_events:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.callback(*event.args)
                processed += 1
                self._events_processed += 1
        finally:
            self._running = False
        if until_ns is not None and self._now < until_ns:
            remaining = [e for e in self._heap if not e.cancelled]
            if not remaining or min(remaining).time > until_ns:
                self._now = until_ns
        return processed

    def run_for(self, duration_ns: int) -> int:
        """Run for ``duration_ns`` of simulated time from the current clock."""
        return self.run(until_ns=self._now + duration_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now / SECOND:.6f}s"
            f" pending={len(self._heap)} done={self._events_processed}>"
        )
