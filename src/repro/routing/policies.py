"""The four routing policies.

* :class:`SinglePathPolicy` — today's behavior: the BFS-elected fixed
  next hop, with the policy hook left detached so the forwarding fast
  path is the exact pre-multipath code.  The default.
* :class:`EcmpPolicy` — per-flow equal-cost multi-path: a seeded FNV-1a
  hash of the 5-tuple pins every flow to one candidate for its lifetime
  (no reordering, but hash collisions concentrate flows — the classic
  failure mode the collision experiment measures).
* :class:`FlowletPolicy` — ECMP per *flowlet*: when a flow goes idle
  for longer than ``gap_ns``, the next burst may be re-hashed onto a
  different path.  The gap defaults to a couple of fabric RTTs so the
  in-flight tail of the previous burst lands before the new path's
  first packet can overtake it (CONGA/LetFlow's safety argument).
* :class:`SprayPolicy` — per-packet round-robin over the candidates:
  perfect load balance, maximal reordering.  The stress case for the
  transport's out-of-order reassembly and TFC's RM round accounting.

All per-flow state is keyed by ``(switch_id, flow_key)`` so one policy
instance serves every switch in the network without cross-talk.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from ..sim.units import microseconds
from .base import RoutingPolicy, flow_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..net.network import Network
    from ..net.node import Switch
    from ..net.packet import Packet


class SinglePathPolicy(RoutingPolicy):
    """Fixed BFS next hop — bit-identical to the pre-routing datapath."""

    name = "single"

    def install(self, network: "Network") -> None:
        # Deliberately do NOT attach to switches: with ``switch.routing``
        # left as None, Switch.forward takes the original single-path
        # branch and the golden-determinism constants hold by
        # construction, not by accident.
        self.salt = network.seeds.spawn("routing").root_seed

    def select(self, switch: "Switch", packet: "Packet") -> int:
        return switch.forwarding_table[packet.dst]


class EcmpPolicy(RoutingPolicy):
    """Deterministic per-flow 5-tuple hash over the equal-cost set."""

    name = "ecmp"

    def __init__(self) -> None:
        super().__init__()
        self._pinned: Dict[Tuple[int, int, int, int, int], int] = {}

    def on_routes_rebuilt(self, network: "Network") -> None:
        # Candidate sets changed; pinned ports may point at dead links.
        self._pinned.clear()

    def select(self, switch: "Switch", packet: "Packet") -> int:
        candidates = switch.multipath_table[packet.dst]
        if len(candidates) == 1:
            return candidates[0]
        key = (switch.node_id, *packet.flow_key)
        port = self._pinned.get(key)
        if port is None:
            index = flow_hash(self.salt, *key) % len(candidates)
            port = candidates[index]
            self._pinned[key] = port
        return port


class FlowletPolicy(RoutingPolicy):
    """Idle-gap flowlet switching (re-hash after ``gap_ns`` of silence)."""

    name = "flowlet"

    #: Default inter-flowlet gap: ~2 fabric RTTs on the 20 us-link
    #: topologies (the same order as LetFlow's table timeouts).
    DEFAULT_GAP_NS = microseconds(300)

    def __init__(self, gap_ns: int = DEFAULT_GAP_NS) -> None:
        super().__init__()
        if gap_ns <= 0:
            raise ValueError(f"flowlet gap must be positive, got {gap_ns}")
        self.gap_ns = gap_ns
        # (switch_id, *flow_key) -> [last_seen_ns, port, flowlet_seq]
        self._flows: Dict[Tuple[int, int, int, int, int], List[int]] = {}

    def on_routes_rebuilt(self, network: "Network") -> None:
        self._flows.clear()

    def select(self, switch: "Switch", packet: "Packet") -> int:
        candidates = switch.multipath_table[packet.dst]
        if len(candidates) == 1:
            return candidates[0]
        key = (switch.node_id, *packet.flow_key)
        now = switch.sim.now
        state = self._flows.get(key)
        if state is not None and now - state[0] <= self.gap_ns:
            state[0] = now
            return state[1]
        # New flowlet: the sequence number folds into the hash so
        # successive flowlets of one flow can land on different paths.
        seq = 0 if state is None else state[2] + 1
        index = flow_hash(self.salt, *key, seq) % len(candidates)
        port = candidates[index]
        self._flows[key] = [now, port, seq]
        return port


class SprayPolicy(RoutingPolicy):
    """Per-packet round-robin — the reordering stress case."""

    name = "spray"

    def __init__(self) -> None:
        super().__init__()
        # (switch_id, dst) -> next round-robin offset.  Keyed by
        # destination, not flow: interleaving flows advance one shared
        # counter, which is exactly how per-packet spraying behaves on
        # hardware that round-robins the port group.
        self._cursor: Dict[Tuple[int, int], int] = {}

    def on_routes_rebuilt(self, network: "Network") -> None:
        self._cursor.clear()

    def select(self, switch: "Switch", packet: "Packet") -> int:
        candidates = switch.multipath_table[packet.dst]
        n = len(candidates)
        if n == 1:
            return candidates[0]
        key = (switch.node_id, packet.dst)
        offset = self._cursor.get(key, 0)
        self._cursor[key] = offset + 1
        return candidates[offset % n]
