"""Output-port packet queues and composable loss models.

Two disciplines are enough for the paper's evaluation:

* :class:`DropTailQueue` — FIFO with a byte capacity; arrivals that do not
  fit are dropped (the testbed NetFPGA boards have 256 KB per port).
* :class:`EcnQueue` — the same FIFO, but arrivals are CE-marked when the
  instantaneous queue occupancy exceeds the threshold ``K`` (DCTCP's step
  marking at the switch).

For robustness testing every queue additionally accepts a pluggable
:class:`LossModel` consulted before admission — lossy optics, bursty
interference (:class:`GilbertElliottLoss`), or one-way failures
(:class:`FilteredLoss` over a packet predicate).  All loss models draw from
an explicitly supplied RNG (a :class:`random.Random`, normally a named
stream from :class:`repro.sim.rng.SeedSequence`), so every loss pattern is
reproducible from the run's root seed.

Queues never touch the simulator clock; the owning :class:`~repro.net.port.
Port` drives them.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Optional

from ..sim.rng import SeedSequence
from .packet import Packet


class LossModel:
    """Decides, packet by packet, whether a fault eats an arrival."""

    __slots__ = ()

    def should_drop(self, packet: Packet) -> bool:
        """Whether this arrival is lost to the modelled fault."""
        raise NotImplementedError


class BernoulliLoss(LossModel):
    """Independent per-packet loss with a fixed probability."""

    __slots__ = ("probability", "_rng")

    def __init__(self, probability: float, rng: random.Random):
        if not 0.0 <= probability < 1.0:
            raise ValueError(
                f"drop probability must be in [0, 1), got {probability}"
            )
        self.probability = probability
        self._rng = rng

    def should_drop(self, packet: Packet) -> bool:
        return self.probability > 0 and self._rng.random() < self.probability


class GilbertElliottLoss(LossModel):
    """Two-state Markov (Gilbert–Elliott) loss: quiet spells punctuated by
    loss bursts.

    Each arrival first advances the chain (good -> bad with probability
    ``p_enter_bad``, bad -> good with ``p_exit_bad``), then is dropped with
    the loss rate of the resulting state.  Mean burst length is
    ``1/p_exit_bad`` packets; mean gap between bursts ``1/p_enter_bad``.
    """

    __slots__ = (
        "_rng",
        "p_enter_bad",
        "p_exit_bad",
        "loss_good",
        "loss_bad",
        "bad",
    )

    def __init__(
        self,
        rng: random.Random,
        p_enter_bad: float,
        p_exit_bad: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ):
        for name, value in (
            ("p_enter_bad", p_enter_bad),
            ("p_exit_bad", p_exit_bad),
        ):
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        for name, value in (("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self._rng = rng
        self.p_enter_bad = p_enter_bad
        self.p_exit_bad = p_exit_bad
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False

    def should_drop(self, packet: Packet) -> bool:
        if self.bad:
            if self._rng.random() < self.p_exit_bad:
                self.bad = False
        elif self._rng.random() < self.p_enter_bad:
            self.bad = True
        loss = self.loss_bad if self.bad else self.loss_good
        if loss <= 0.0:
            return False
        return loss >= 1.0 or self._rng.random() < loss


class FilteredLoss(LossModel):
    """Applies an inner loss model only to packets matching a predicate.

    The canonical use is one-way ACK loss (``match=is_pure_ack``): data
    flows one way unharmed while the reverse control channel is lossy —
    the failure mode that exercises sender RTO and TFC probe retries.
    Non-matching packets do not advance the inner model's state.
    """

    __slots__ = ("inner", "match")

    def __init__(self, inner: LossModel, match: Callable[[Packet], bool]):
        self.inner = inner
        self.match = match

    def should_drop(self, packet: Packet) -> bool:
        return self.match(packet) and self.inner.should_drop(packet)


def is_pure_ack(packet: Packet) -> bool:
    """Predicate for :class:`FilteredLoss`: payload-free ACK segments."""
    return packet.is_ack and packet.payload == 0


class DropTailQueue:
    """FIFO byte-bounded queue with drop-tail admission.

    ``loss_model`` is the fault-injection hook: when set, every arrival is
    offered to it before admission and dropped (counted in
    ``faulted_drops``) when the model says so.  The fault engine toggles it
    at scheduled times; it is None — one attribute test per enqueue — in
    normal runs.
    """

    __slots__ = (
        "capacity_bytes",
        "_queue",
        "_bytes",
        "drops",
        "dropped_bytes",
        "enqueues",
        "max_bytes_seen",
        "loss_model",
        "faulted_drops",
    )

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self.drops = 0
        self.dropped_bytes = 0
        self.enqueues = 0
        self.max_bytes_seen = 0
        self.loss_model: Optional[LossModel] = None
        self.faulted_drops = 0

    # ------------------------------------------------------------------
    @property
    def byte_length(self) -> int:
        """Current occupancy in bytes (buffered IP packet bytes)."""
        return self._bytes

    @property
    def packet_length(self) -> int:
        """Current occupancy in packets."""
        return len(self._queue)

    def admit(self, packet: Packet) -> bool:
        """Whether ``packet`` fits right now (without enqueueing it)."""
        return self._bytes + packet.size <= self.capacity_bytes

    def enqueue(self, packet: Packet) -> bool:
        """Append ``packet``; returns False (and counts a drop) on overflow."""
        size = packet.size
        if self.loss_model is not None and self.loss_model.should_drop(packet):
            self.faulted_drops += 1
            self.drops += 1
            self.dropped_bytes += size
            return False
        new_bytes = self._bytes + size
        if new_bytes > self.capacity_bytes:
            self.drops += 1
            self.dropped_bytes += size
            return False
        self._mark(packet)
        self._queue.append(packet)
        self._bytes = new_bytes
        self.enqueues += 1
        if new_bytes > self.max_bytes_seen:
            self.max_bytes_seen = new_bytes
        return True

    def dequeue(self) -> Optional[Packet]:
        """Pop the head packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        return packet

    def _mark(self, packet: Packet) -> None:
        """Admission-time hook for marking disciplines (no-op here)."""

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self._bytes}/{self.capacity_bytes}B"
            f" pkts={len(self._queue)} drops={self.drops}>"
        )


class FaultyQueue(DropTailQueue):
    """Drop-tail queue constructed with a loss model already attached.

    The general fault-injection queue: compose any :class:`LossModel`
    (Bernoulli, Gilbert–Elliott, filtered one-way loss) with drop-tail
    admission.  The model can also be swapped or cleared at runtime via
    the ``loss_model`` attribute every queue exposes.
    """

    __slots__ = ()

    def __init__(
        self, capacity_bytes: int, loss_model: Optional[LossModel] = None
    ):
        super().__init__(capacity_bytes)
        self.loss_model = loss_model


class RandomDropQueue(FaultyQueue):
    """Thin wrapper over :class:`FaultyQueue` with Bernoulli loss.

    Loss patterns must be reproducible across runs, so the RNG is explicit:
    pass either ``rng`` (normally a named stream from
    :class:`repro.sim.rng.SeedSequence`) or ``seed`` (from which a
    deterministic stream is derived) — never ambient module-level
    randomness.
    """

    __slots__ = ("drop_probability",)

    def __init__(
        self,
        capacity_bytes: int,
        drop_probability: float,
        rng: Optional[random.Random] = None,
        seed: Optional[int] = None,
    ):
        if (rng is None) == (seed is None):
            raise ValueError("provide exactly one of rng= or seed=")
        if rng is None:
            rng = SeedSequence(seed).stream("random-drop")
        super().__init__(capacity_bytes, BernoulliLoss(drop_probability, rng))
        self.drop_probability = drop_probability

    @property
    def random_drops(self) -> int:
        """Drops caused by the loss model (alias kept for older callers)."""
        return self.faulted_drops


class EcnQueue(DropTailQueue):
    """Drop-tail queue with DCTCP step marking.

    An arriving packet is CE-marked when the queue occupancy *at admission*
    (including the packet itself) exceeds ``mark_threshold_bytes``, matching
    the instantaneous-queue marking DCTCP configures on switches.
    """

    __slots__ = ("mark_threshold_bytes", "marks")

    def __init__(self, capacity_bytes: int, mark_threshold_bytes: int):
        super().__init__(capacity_bytes)
        if mark_threshold_bytes <= 0:
            raise ValueError(
                f"mark threshold must be positive, got {mark_threshold_bytes}"
            )
        self.mark_threshold_bytes = mark_threshold_bytes
        self.marks = 0

    def _mark(self, packet: Packet) -> None:
        if (
            packet.ecn_capable
            and self._bytes + packet.size > self.mark_threshold_bytes
        ):
            packet.ecn_ce = True
            self.marks += 1
