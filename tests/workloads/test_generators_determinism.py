"""Same seed -> identical flow schedule, for every workload generator.

Each generator is run twice on freshly built topologies with the same
seed and the resulting *flow fingerprint* (every sender's byte/timeout
accounting plus the FCT records) must match exactly — parametrized over
scheduler backends, which must also agree with each other (the repo's
bit-identity contract extends to the generators' RNG streams).
"""

import pytest

from repro.config import SCHEDULER_NAMES, env
from repro.experiments.common import build_topology
from repro.metrics.fct import FctCollector
from repro.net.topology import testbed as build_testbed
from repro.sim.units import MILLISECOND, microseconds
from repro.transport.base import Sender
from repro.workloads.collective import AllReduceWorkload
from repro.workloads.empirical import BenchmarkWorkload
from repro.workloads.incast import IncastCoordinator
from repro.workloads.mixer import MultiTenantMixer
from repro.workloads.onoff import OnOffSource
from repro.workloads.storage import ReplicationWorkload
from repro.transport.registry import open_flow

DURATION = 2 * MILLISECOND
RUN_FOR = 3 * MILLISECOND


def fingerprint(network, collector=None):
    """Every sender's accounting plus the FCT record list, as one value."""
    rows = []
    for host in network.hosts:
        for key, endpoint in sorted(host._connections.items()):
            if not isinstance(endpoint, Sender):
                continue
            stats = endpoint.stats
            rows.append(
                (
                    host.name,
                    key,
                    endpoint.tenant,
                    stats.bytes_sent,
                    stats.bytes_acked,
                    stats.timeouts,
                    stats.retransmissions,
                    stats.complete_ns,
                )
            )
    records = tuple(
        (r.category, r.tenant, r.size_bytes, r.fct_ns, r.timeouts)
        for r in (collector.records if collector is not None else ())
    )
    return (tuple(sorted(rows)), records)


def _drive(build_workload):
    """Build a testbed, run ``build_workload`` on it, fingerprint it."""
    collector = FctCollector()
    topo = build_topology(build_testbed, "tfc", 256_000, seed=3)
    build_workload(topo, collector)
    topo.network.run_for(RUN_FOR)
    return fingerprint(topo.network, collector)


def _empirical(topo, collector):
    BenchmarkWorkload(
        topo.hosts, "tfc", DURATION,
        query_rate_per_s=3000.0, query_fanin=4,
        short_rate_per_s=800.0, background_rate_per_s=400.0,
        seed_name="det", collector=collector, tenant="t",
    )


def _incast(topo, collector):
    IncastCoordinator(
        topo.hosts[0], topo.hosts[1:6], "tfc",
        block_bytes=24_000, rounds=4,
        request_delay_ns=microseconds(40), tenant="t",
    )


def _onoff(topo, collector):
    for host in topo.hosts[:4]:
        sender = open_flow(host, topo.hosts[-1], "tfc", size_bytes=0, tenant="t")
        sender.fin_on_empty = False
        OnOffSource(
            host.sim, sender,
            on_ns=microseconds(200), off_ns=microseconds(200),
            burst_bytes=32_000, cycles=4,
        )


def _allreduce_ring(topo, collector):
    AllReduceWorkload(
        topo.hosts[:6], "tfc", chunk_bytes=16_000, iterations=2,
        mode="ring", tenant="t", collector=collector,
    )


def _allreduce_tree(topo, collector):
    AllReduceWorkload(
        topo.hosts[:7], "tfc", chunk_bytes=16_000, iterations=2,
        mode="tree", compute_gap_ns=microseconds(30),
        tenant="t", collector=collector,
    )


def _storage_fanout(topo, collector):
    ReplicationWorkload(
        topo.hosts, "tfc", DURATION, replicas=2, mode="fanout",
        write_rate_per_s=3000.0, value_bytes=32_000,
        tenant="t", collector=collector, seed_name="det",
    )


def _storage_chain(topo, collector):
    ReplicationWorkload(
        topo.hosts, "tfc", DURATION, replicas=2, mode="chain",
        write_rate_per_s=2000.0, value_bytes=24_000,
        tenant="t", collector=collector, seed_name="det",
    )


def _mixer(topo, collector):
    MultiTenantMixer(
        topo.network,
        [
            (
                "search",
                lambda name, coll: BenchmarkWorkload(
                    topo.hosts[:5], "tfc", DURATION,
                    query_rate_per_s=2000.0, query_fanin=3,
                    seed_name=f"mix:{name}", collector=coll, tenant=name,
                ),
            ),
            (
                "training",
                lambda name, coll: AllReduceWorkload(
                    topo.hosts[5:9], "tfc", chunk_bytes=16_000,
                    iterations=2, tenant=name, collector=coll,
                ),
            ),
        ],
        collector=collector,
    )


GENERATORS = {
    "empirical": _empirical,
    "incast": _incast,
    "onoff": _onoff,
    "allreduce_ring": _allreduce_ring,
    "allreduce_tree": _allreduce_tree,
    "storage_fanout": _storage_fanout,
    "storage_chain": _storage_chain,
    "mixer": _mixer,
}


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_same_seed_same_schedule(name):
    build = GENERATORS[name]
    assert _drive(build) == _drive(build)


@pytest.mark.parametrize("name", sorted(GENERATORS))
@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
def test_identical_across_scheduler_backends(name, scheduler):
    build = GENERATORS[name]
    with env(scheduler="heap"):
        baseline = _drive(build)
    with env(scheduler=scheduler):
        assert _drive(build) == baseline


# ----------------------------------------------------------------------
# Transport-parametrized fingerprints: every registered baseline drives
# the empirical workload to the same bit-identical contract as tfc.
# ----------------------------------------------------------------------
NEW_TRANSPORTS = ("bfc", "tbtcp", "tracks", "fairq")


def _drive_protocol(protocol):
    """The empirical workload on a testbed running ``protocol``."""
    collector = FctCollector()
    topo = build_topology(build_testbed, protocol, 256_000, seed=3)
    BenchmarkWorkload(
        topo.hosts, protocol, DURATION,
        query_rate_per_s=3000.0, query_fanin=4,
        short_rate_per_s=800.0, background_rate_per_s=400.0,
        seed_name="det", collector=collector, tenant="t",
    )
    topo.network.run_for(RUN_FOR)
    return fingerprint(topo.network, collector)


@pytest.mark.parametrize("protocol", NEW_TRANSPORTS)
def test_transports_same_seed_same_schedule(protocol):
    assert _drive_protocol(protocol) == _drive_protocol(protocol)


@pytest.mark.parametrize("protocol", NEW_TRANSPORTS)
@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
def test_transports_identical_across_scheduler_backends(protocol, scheduler):
    with env(scheduler="heap"):
        baseline = _drive_protocol(protocol)
    with env(scheduler=scheduler):
        assert _drive_protocol(protocol) == baseline
