"""Unit tests for the TFC per-port switch agent, driven by crafted packets."""

import pytest

from repro.core.params import TfcParams
from repro.core.switch_agent import TfcPortAgent, _quantize_window, enable_tfc
from repro.net.network import Network
from repro.net.packet import MSS, Packet, WINDOW_SENTINEL
from repro.sim.units import GBPS, bandwidth_delay_product, microseconds


def build_agent(params=None):
    net = Network(seed=0)
    a = net.add_host("A")
    b = net.add_host("B")
    sw = net.add_switch("SW")
    net.cable(a, sw, GBPS, microseconds(5))
    sw_to_b, _ = net.cable(sw, b, GBPS, microseconds(5))
    net.build_routes()
    agent = TfcPortAgent(sw, sw_to_b, params or TfcParams())
    sw_to_b.agent = agent
    return net, agent, a, b


def data_packet(a, b, sport=100, rm=False, payload=MSS, syn=False, fin=False):
    return Packet(
        a.node_id, b.node_id, sport, 200,
        payload=payload, rm=rm, syn=syn, fin=fin,
    )


def advance(net, delta_ns):
    """Move the clock forward so agent timestamps differ."""
    net.sim.schedule(delta_ns, lambda: None)
    net.sim.run()


# ----------------------------------------------------------------------
# Window quantisation helper
# ----------------------------------------------------------------------
def test_quantize_whole_packets():
    assert _quantize_window(2.9 * MSS) == 2 * MSS
    assert _quantize_window(float(MSS)) == MSS
    assert _quantize_window(10_000.0) == 6 * MSS


def test_quantize_keeps_sub_mss_fractional():
    assert _quantize_window(700.0) == 700.0


# ----------------------------------------------------------------------
# Delimiter election and E counting
# ----------------------------------------------------------------------
def test_first_rm_packet_elected_delimiter():
    net, agent, a, b = build_agent()
    pkt = data_packet(a, b, sport=1, rm=True)
    agent.on_transit(pkt)
    assert agent.delimiter_key == pkt.flow_key


def test_effective_flows_counted_per_slot():
    net, agent, a, b = build_agent()
    agent.on_transit(data_packet(a, b, sport=1, rm=True))  # delimiter
    advance(net, 10_000)
    for sport in (2, 3, 4):
        agent.on_transit(data_packet(a, b, sport=sport, rm=True))
    # Delimiter counts as the initial 1.
    assert agent.effective_flows == 4
    # Non-RM packets do not count.
    agent.on_transit(data_packet(a, b, sport=5, rm=False))
    assert agent.effective_flows == 4


def test_marked_syn_counts_toward_e():
    net, agent, a, b = build_agent()
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    agent.on_transit(data_packet(a, b, sport=2, rm=True, syn=True, payload=0))
    assert agent.effective_flows == 2


def test_slot_closes_on_delimiter_rm_and_updates_window():
    net, agent, a, b = build_agent()
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    advance(net, 100_000)
    # Election slot: publishes W from counted E but skips rho adjustment.
    agent.on_transit(data_packet(a, b, sport=2, rm=True))
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    assert agent.slot_index == 0  # adjustment skipped on election slot
    tokens_before = agent.tokens
    # Next slot: saturate with traffic then close.
    for _ in range(8):
        agent.on_transit(data_packet(a, b, sport=2))
    advance(net, 100_000)
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    assert agent.slot_index == 1
    assert agent.rttm_ns == 100_000


def test_fin_drops_delimiter_and_next_rm_takes_over():
    net, agent, a, b = build_agent()
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    agent.on_transit(data_packet(a, b, sport=1, fin=True, payload=0))
    assert agent.delimiter_key is None
    new_pkt = data_packet(a, b, sport=7, rm=True)
    agent.on_transit(new_pkt)
    assert agent.delimiter_key == new_pkt.flow_key


def test_silent_delimiter_reelected_after_backoff():
    net, agent, a, b = build_agent()
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    rtt_last = agent.rtt_last_ns
    # Less than 4 x rtt_last of silence: delimiter keeps its seat.
    advance(net, 3 * rtt_last)
    agent.on_transit(data_packet(a, b, sport=2, rm=True))
    assert agent.delimiter_key == (a.node_id, b.node_id, 1, 200)
    # Beyond 4 x rtt_last: the next foreign RM is adopted.
    advance(net, 5 * rtt_last)
    pkt = data_packet(a, b, sport=3, rm=True)
    agent.on_transit(pkt)
    assert agent.delimiter_key == pkt.flow_key


# ----------------------------------------------------------------------
# rtt_b measurement
# ----------------------------------------------------------------------
def test_rttb_tracks_minimum_of_full_frames():
    net, agent, a, b = build_agent()
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    advance(net, 120_000)
    agent.on_transit(data_packet(a, b, sport=1, rm=True))  # election slot
    advance(net, 90_000)
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    assert agent.rttb_ns == 90_000
    advance(net, 130_000)
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    assert agent.rttb_ns == 90_000  # min is kept


def test_small_frames_do_not_update_rttb():
    net, agent, a, b = build_agent()
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    advance(net, 100_000)
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    rttb_before = agent.rttb_ns
    advance(net, 10_000)
    # A tiny RM frame closes the slot but must not poison rtt_b.
    agent.on_transit(data_packet(a, b, sport=1, rm=True, payload=0))
    assert agent.rttb_ns == rttb_before
    assert agent.rttm_ns == 10_000  # rtt_m does update


def test_rttb_refresch_ages_out_stale_minimum():
    params = TfcParams(rttb_refresh_slots=2)
    net, agent, a, b = build_agent(params)
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    advance(net, 50_000)
    agent.on_transit(data_packet(a, b, sport=1, rm=True))  # election slot
    for gap in (50_000, 100_000, 100_000, 100_000):
        advance(net, gap)
        agent.on_transit(data_packet(a, b, sport=1, rm=True))
    # The old 50 us minimum must have been aged out by the refresh.
    assert agent.rttb_ns == 100_000


# ----------------------------------------------------------------------
# Window stamping
# ----------------------------------------------------------------------
def test_stamp_lowers_window_field_only_downwards():
    net, agent, a, b = build_agent()
    pkt = data_packet(a, b, rm=True)
    assert pkt.window == WINDOW_SENTINEL
    agent.on_transit(pkt)
    assert pkt.window <= agent.window
    # A packet already carrying a smaller window is left alone.
    pkt2 = data_packet(a, b, sport=9, rm=False)
    pkt2.window = 100.0
    agent.on_transit(pkt2)
    assert pkt2.window == 100.0


def test_grant_budget_prevents_harmonic_overcommit():
    """A burst of RM probes within one slot is granted at most ~T total."""
    net, agent, a, b = build_agent()
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    advance(net, 1000)
    granted = []
    for sport in range(2, 40):
        pkt = data_packet(a, b, sport=sport, rm=True, payload=0)
        agent.on_transit(pkt)
        granted.append(pkt.window)
    assert sum(granted) <= agent.tokens + 40 * 64 + MSS


def test_pure_acks_count_bytes_but_not_flows():
    net, agent, a, b = build_agent()
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    before = agent.effective_flows
    ack = Packet(a.node_id, b.node_id, 5, 6, is_ack=True, rma=True)
    agent.on_transit(ack)
    assert agent.effective_flows == before
    assert agent.arrived_bytes > 0


# ----------------------------------------------------------------------
# Token adjustment
# ----------------------------------------------------------------------
def run_slots(agent, net, a, b, rho_bytes, slots, gap_ns=100_000):
    """Close `slots` slots, each carrying `rho_bytes` of traffic."""
    for _ in range(slots):
        filler = rho_bytes
        while filler > 0:
            payload = min(MSS, filler)
            agent.on_transit(data_packet(a, b, sport=2, payload=payload))
            filler -= payload
        advance(net, gap_ns)
        agent.on_transit(data_packet(a, b, sport=1, rm=True))


def test_underutilisation_boosts_tokens():
    net, agent, a, b = build_agent()
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    advance(net, 100_000)
    agent.on_transit(data_packet(a, b, sport=1, rm=True))  # election
    tokens_start = agent.tokens
    run_slots(agent, net, a, b, rho_bytes=3_000, slots=10)
    assert agent.tokens > tokens_start


def test_overutilisation_shrinks_tokens():
    net, agent, a, b = build_agent()
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    advance(net, 100_000)
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    run_slots(agent, net, a, b, rho_bytes=9_000, slots=5)  # settle
    tokens_before = agent.tokens
    run_slots(agent, net, a, b, rho_bytes=14_000, slots=10)  # rho > 1
    assert agent.tokens < tokens_before


def test_tokens_clamped_to_bdp_range():
    params = TfcParams(max_token_bdp_factor=2.0, rho_floor=0.25)
    net, agent, a, b = build_agent(params)
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    advance(net, 100_000)
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    run_slots(agent, net, a, b, rho_bytes=MSS, slots=60)
    bdp = bandwidth_delay_product(agent.rate_bps, agent.rttb_ns)
    assert agent.tokens <= 2.0 * bdp * (1 + 1e-9)
    assert agent.tokens >= 0.25 * bdp * (1 - 1e-9)


def test_eq7_mode_uses_bdp_base():
    params = TfcParams(token_adjustment="eq7", queue_drain=False)
    net, agent, a, b = build_agent(params)
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    advance(net, 100_000)
    agent.on_transit(data_packet(a, b, sport=1, rm=True))
    run_slots(agent, net, a, b, rho_bytes=9_000, slots=40)
    bdp = bandwidth_delay_product(agent.rate_bps, agent.rttb_ns)
    rho = agent.last_rho
    # Fixed point of the literal Eq. 7 under EWMA: T = bdp * rho0 / rho.
    assert agent.tokens == pytest.approx(bdp * 0.97 / rho, rel=0.3)


def test_enable_tfc_installs_agent_on_every_switch_port():
    net = Network(seed=0)
    a = net.add_host("A")
    b = net.add_host("B")
    s1 = net.add_switch("S1")
    s2 = net.add_switch("S2")
    net.cable(a, s1, GBPS, 1000)
    net.cable(s1, s2, GBPS, 1000)
    net.cable(s2, b, GBPS, 1000)
    net.build_routes()
    installed = enable_tfc(net)
    assert installed == 4  # two ports per switch
    for sw in (s1, s2):
        for port in sw.ports:
            assert isinstance(port.agent, TfcPortAgent)
    # Hosts keep plain NICs.
    assert a.ports[0].agent is None
