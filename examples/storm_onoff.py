#!/usr/bin/env python3
"""Silent flows: the Storm-style on-off pattern the paper motivates with.

Two hosts share a bottleneck.  One runs a steady bulk flow; the other is
a Storm-like executor connection that bursts for 20 ms and then goes
silent for 20 ms, over and over, without ever closing.  The script shows
the TFC property that makes this work:

* while the bursty flow is silent it drops out of the effective-flow
  count immediately, so the steady flow's window doubles within a slot
  (no bandwidth is wasted on a silent-but-open connection — the failure
  mode the paper pins on D3-style SYN/FIN flow counting);
* when the burst resumes it re-acquires a window and is back to its fair
  share within about one RTT.

Run::

    python examples/storm_onoff.py
"""

from repro.experiments.common import build_topology
from repro.metrics import RateSampler
from repro.net import dumbbell
from repro.sim.units import milliseconds, seconds
from repro.transport import open_flow
from repro.workloads import OnOffSource


def main() -> None:
    topo = build_topology(dumbbell, "tfc", buffer_bytes=256_000, n_senders=2)
    net = topo.network
    receiver = topo.hosts[-1]

    steady = open_flow(topo.hosts[0], receiver, "tfc")
    bursty = open_flow(topo.hosts[1], receiver, "tfc", size_bytes=0)
    bursty.fin_on_empty = False
    source = OnOffSource(
        net.sim,
        bursty,
        on_ns=milliseconds(20),
        off_ns=milliseconds(20),
        burst_bytes=1_200_000,  # ~half the link for the on-phase
        start_ns=milliseconds(50),
    )

    steady_rate = RateSampler(
        net.sim, (lambda: steady.receiver.bytes_received), milliseconds(5)
    )
    bursty_rate = RateSampler(
        net.sim, (lambda: bursty.receiver.bytes_received), milliseconds(5)
    )

    net.run_for(seconds(0.25))

    agent = topo.bottleneck("main").agent
    print("time(ms)  steady(Mbps)  bursty(Mbps)")
    for (t, s), (_, b) in zip(steady_rate.series, bursty_rate.series):
        print(f"{t / 1e6:8.1f}  {s / 1e6:12.0f}  {b / 1e6:12.0f}")
    print()
    print(f"bursts sent: {source.bursts_sent}")
    print(f"drops: {net.total_drops()}, bursty timeouts: {bursty.stats.timeouts}")
    print(f"bursty flow re-acquisitions: {bursty.reacquisitions}")
    print(
        "While the bursty flow is silent the steady flow runs near line "
        "rate;\nduring bursts both hold ~half — with zero queue buildup "
        f"(current W={agent.window:.0f} B)."
    )


if __name__ == "__main__":
    main()
