"""T-RACKs: receiver-side tail-loss probes recover without the RTO."""

import pytest

from repro.experiments.common import build_topology
from repro.net.topology import dumbbell
from repro.sim.units import MILLISECOND, milliseconds
from repro.transport.registry import open_flow
from repro.transport.tracks import TracksParams


class _DropOnce:
    """Loss model that drops exactly one packet matching the predicate."""

    def __init__(self, predicate):
        self.predicate = predicate
        self.done = False

    def should_drop(self, packet) -> bool:
        if not self.done and self.predicate(packet):
            self.done = True
            return True
        return False


def test_params_validation():
    TracksParams()
    with pytest.raises(ValueError, match="tail timer"):
        TracksParams(tail_timer_ns=0)
    with pytest.raises(ValueError, match="dupack"):
        TracksParams(dupacks=0)


def _run_with_tail_drop(protocol, size_bytes=100_000, run_ms=300):
    """One flow whose final data segment is dropped at the bottleneck.

    With no data behind it, no organic duplicate ACKs exist: plain TCP
    must burn its (Linux-like, 200 ms) min RTO; a T-RACKs receiver
    notices the quiet flow after 1 ms and forges the dupack train.
    """
    topo = build_topology(
        dumbbell, protocol, buffer_bytes=256_000, n_senders=1, seed=1
    )
    last_seq = (size_bytes // 1460) * 1460
    if last_seq == size_bytes:  # exact multiple: last full segment
        last_seq -= 1460
    topo.bottleneck("main").queue.loss_model = _DropOnce(
        lambda p: p.payload > 0 and p.seq == last_seq
    )
    sender = open_flow(
        topo.host(0),
        topo.host(1),
        protocol,
        size_bytes=size_bytes,
        min_rto_ns=200 * MILLISECOND,
    )
    topo.network.run_for(milliseconds(run_ms))
    return sender


def test_tail_loss_recovers_before_rto():
    tracks = _run_with_tail_drop("tracks")
    tcp = _run_with_tail_drop("tcp")
    assert tracks.stats.bytes_acked == 100_000
    assert tcp.stats.bytes_acked == 100_000
    # Plain TCP waited out the full min RTO; T-RACKs recovered via fast
    # retransmit two orders of magnitude earlier.
    assert tcp.stats.timeouts >= 1
    assert tcp.stats.complete_ns > 200 * MILLISECOND
    assert tracks.stats.timeouts == 0
    assert tracks.stats.complete_ns < 20 * MILLISECOND
    assert tracks.receiver.tail_probes >= 1


def test_probes_on_idle_flow_are_inert():
    """A long-lived flow that goes quiet mid-connection: probes fire but
    the sender (flight == 0) ignores the forged dupacks — no spurious
    retransmissions, no window cuts."""
    topo = build_topology(
        dumbbell, "tracks", buffer_bytes=256_000, n_senders=1, seed=1
    )
    sender = open_flow(
        topo.host(0), topo.host(1), "tracks", size_bytes=50_000
    )
    sender.fin_on_empty = False  # transfer ends but the flow stays open
    topo.network.run_for(milliseconds(30))
    assert sender.stats.bytes_acked == 50_000
    receiver = sender.receiver
    assert receiver.tail_probes > 0  # the quiet timer kept firing...
    assert sender.stats.retransmissions == 0  # ...with zero side effects
    assert sender.stats.timeouts == 0


def test_completed_flow_stops_the_timer():
    """After the FIN the receiver goes silent: no probe traffic keeps a
    finished simulation alive."""
    topo = build_topology(
        dumbbell, "tracks", buffer_bytes=256_000, n_senders=1, seed=1
    )
    sender = open_flow(topo.host(0), topo.host(1), "tracks", size_bytes=50_000)
    topo.network.run_for(milliseconds(30))
    assert sender.stats.bytes_acked == 50_000
    assert sender.receiver.fin_seen
    events_after_done = topo.sim.events_processed
    topo.network.run_for(milliseconds(30))
    # A few scheduler housekeeping events may tick, but no probe storm:
    # the receiver fired nothing new.
    assert sender.receiver.tail_probes == 0
    assert topo.sim.events_processed - events_after_done <= 2
