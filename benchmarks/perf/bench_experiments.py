#!/usr/bin/env python
"""Regenerate BENCH_experiments.json at the repo root (run from the repo root).

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_experiments.py [--repeats N]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.perf.bench import main  # noqa: E402

if __name__ == "__main__":
    out = "BENCH_experiments.json"
    argv = ["--kind", "experiments", "--out", out]
    if os.path.exists(out):
        argv += ["--keep-baseline", out]
    sys.exit(main(argv + sys.argv[1:]))
