"""Shard-aware flow installation.

``open_flow`` creates a sender and a receiver together; on a shard that
owns only one end of a flow, instantiating the other half would make an
unowned host transmit.  :func:`open_shard_flow` splits the two, with
one invariant that keeps every shard's state bit-identical to the
serial build: **port allocation always happens on both hosts in every
shard**, in the same global installation order, so each host's
``allocate_port`` counter advances identically everywhere and the
(sport, dport) pair of every flow is the same in every process.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ...sim.units import MILLISECOND
from .partition import ShardContext


def open_shard_flow(
    ctx: ShardContext,
    src,
    dst,
    protocol: str = "tfc",
    size_bytes: Optional[int] = None,
    start_ns: Optional[int] = None,
    on_complete=None,
    min_rto_ns: int = 10 * MILLISECOND,
    awnd_bytes: Optional[int] = None,
    weight: Optional[float] = None,
) -> Tuple[Optional[object], Optional[object]]:
    """Open ``src -> dst`` on whichever ends this shard owns.

    Mirrors ``repro.transport.registry.open_flow`` (same defaults, same
    sender/receiver classes) and returns ``(sender, receiver)`` where
    either may be None on a shard that owns only the other end.  A
    serial context (``ctx.shard_id is None``) owns both and reproduces
    ``open_flow`` exactly, back-reference included.

    Call this in the *same order* in every shard — the port-counter
    alignment invariant above is what makes cross-shard flow keys agree.
    """
    from ...transport.registry import get_protocol

    spec = get_protocol(protocol)
    sport = src.allocate_port()
    dport = dst.allocate_port()
    owns_src = ctx.owns(src.name)
    owns_dst = ctx.owns(dst.name)
    common = {} if awnd_bytes is None else {"awnd_bytes": awnd_bytes}

    sender = None
    if owns_src:
        sender_kwargs = dict(common)
        if weight is not None:
            if not spec.supports_weight:
                raise ValueError(
                    "weighted allocation is a TFC feature "
                    f"({spec.name!r} does not support flow weights)"
                )
            sender_kwargs["weight"] = weight
        sender = spec.sender_cls(
            src,
            dst.node_id,
            dport,
            size_bytes=size_bytes,
            sport=sport,
            min_rto_ns=min_rto_ns,
            on_complete=on_complete,
            **sender_kwargs,
        )

    receiver = None
    if owns_dst:
        flow_key = (src.node_id, dst.node_id, sport, dport)
        receiver = spec.receiver_cls(dst, flow_key, **common)

    if sender is not None and receiver is not None:
        sender.receiver = receiver  # tests-only convenience, as open_flow

    if sender is not None:
        if start_ns is None or start_ns <= src.sim.now:
            sender.start()
        else:
            src.sim.schedule_at(start_ns, sender.start)
    return sender, receiver
