"""DCTCP (SIGCOMM 2010) — the paper's stronger baseline.

DCTCP = NewReno plus ECN-proportional backoff:

* data packets are sent ECN-capable; switches running :class:`~repro.net.
  queues.EcnQueue` CE-mark them past the threshold ``K``;
* the receiver echoes the CE bit on every ACK (per-packet ACKs make the
  delayed-ACK echo state machine unnecessary);
* once per window the sender updates ``alpha = (1-g) alpha + g F`` with
  ``F`` the fraction of CE-echoed bytes, and on any mark in the window cuts
  ``cwnd *= (1 - alpha/2)`` — once per window, like a real DCTCP sender.

Paper parameters: K = 32 KB (1 Gbps testbed), g = 1/16.
"""

from __future__ import annotations

from ..net.packet import MSS, Packet
from .base import Receiver
from .newreno import NewRenoSender

DEFAULT_G = 1.0 / 16.0


class DctcpSender(NewRenoSender):
    """NewReno with ECN-fraction proportional window reduction."""

    protocol_name = "dctcp"

    def __init__(self, *args, g: float = DEFAULT_G, **kwargs):
        super().__init__(*args, **kwargs)
        self.g = g
        self.alpha = 1.0
        self._window_end = 0        # seq after which the observation window rolls
        self._acked_bytes = 0
        self._marked_bytes = 0
        self._cut_this_window = False

    def next_packet_hook(self, packet: Packet) -> None:
        super().next_packet_hook(packet)
        packet.ecn_capable = True

    def on_ack_accepted(self, packet: Packet, newly_acked: int) -> None:
        # Roll the observation window *before* reacting to this ACK's mark,
        # otherwise a cut triggered by the window's first ACK would be
        # forgotten by the roll and the next mark would cut a second time.
        if packet.ack >= self._window_end:
            self._roll_observation_window()
        self._acked_bytes += newly_acked
        if packet.ecn_echo:
            self._marked_bytes += newly_acked
            if not self._cut_this_window and not self.in_recovery:
                # React immediately on the first mark of the window, using
                # the alpha from the previous observation window.
                self._cut_this_window = True
                self.ssthresh = max(
                    self.cwnd * (1 - self.alpha / 2.0), 2.0 * MSS
                )
                self.cwnd = self.ssthresh
        super().on_ack_accepted(packet, newly_acked)

    def _roll_observation_window(self) -> None:
        if self._acked_bytes > 0:
            fraction = self._marked_bytes / self._acked_bytes
            self.alpha = (1 - self.g) * self.alpha + self.g * fraction
        self._acked_bytes = 0
        self._marked_bytes = 0
        self._cut_this_window = False
        self._window_end = self.snd_nxt


class DctcpReceiver(Receiver):
    """Echoes the CE mark of each data packet on its ACK."""

    def ack_decoration_hook(self, ack: Packet, data_packet: Packet) -> None:
        ack.ecn_echo = data_packet.ecn_ce
