"""Workload generators: bulk, on-off, incast, empirical benchmark,
ML collectives, storage replication, and the multi-tenant mixer."""

from .bulk import concurrent_flows, staggered_flows
from .collective import AllReduceWorkload, ring_steps, tree_steps
from .distributions import (
    QUERY_RESPONSE_BYTES,
    SHORT_MESSAGE_SIZES,
    WEB_SEARCH_FLOW_SIZES,
    PiecewiseCdf,
    exponential_interarrival_ns,
    poisson_arrival_times_ns,
)
from .empirical import BenchmarkWorkload
from .incast import IncastCoordinator
from .mixer import (
    MixReport,
    MultiTenantMixer,
    TenantStats,
    per_tenant_stats,
    tenant_goodputs_bps,
    tenant_jain_index,
    tenant_senders,
)
from .onoff import OnOffSource, PacedSource
from .storage import ReplicationWorkload

__all__ = [
    "concurrent_flows",
    "staggered_flows",
    "QUERY_RESPONSE_BYTES",
    "SHORT_MESSAGE_SIZES",
    "WEB_SEARCH_FLOW_SIZES",
    "PiecewiseCdf",
    "exponential_interarrival_ns",
    "poisson_arrival_times_ns",
    "BenchmarkWorkload",
    "IncastCoordinator",
    "OnOffSource",
    "PacedSource",
    "AllReduceWorkload",
    "ring_steps",
    "tree_steps",
    "ReplicationWorkload",
    "MultiTenantMixer",
    "MixReport",
    "TenantStats",
    "per_tenant_stats",
    "tenant_goodputs_bps",
    "tenant_jain_index",
    "tenant_senders",
]
