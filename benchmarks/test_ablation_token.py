"""Ablation — token adjustment variants (DESIGN.md section 5).

Quantifies the design decisions the reproduction had to make around
Eq. 7:

* ``iterative`` vs the paper's literal ``eq7`` form (the literal form's
  fixed point is sqrt(rho0 x losses), so it leaves goodput on the table
  under sender window quantisation);
* the queue-drain safety term on vs off (off lets a transient backlog
  linger for ~1/(1-alpha) slots).
"""

from conftest import run_once

from repro.core.params import TfcParams
from repro.metrics.samplers import QueueSampler
from repro.net.topology import dumbbell
from repro.sim.units import microseconds, seconds
from repro.transport.registry import configure_network, open_flow, queue_factory_for


def run_variant(params, n_flows=5, duration_s=0.8):
    topo = dumbbell(
        n_senders=n_flows, queue_factory=queue_factory_for("tfc", 256_000)
    )
    configure_network(topo.network, "tfc", params)
    receiver = topo.hosts[-1]
    flows = [open_flow(host, receiver, "tfc") for host in topo.hosts[:n_flows]]
    sampler = QueueSampler(topo.sim, topo.bottleneck("main"), microseconds(100))
    topo.network.run_for(seconds(duration_s))
    goodput = sum(f.stats.bytes_acked for f in flows) * 8 / duration_s
    return {
        "goodput_bps": goodput,
        "queue_mean": sampler.mean(),
        "queue_max": sampler.max(),
        "drops": topo.network.total_drops(),
    }


VARIANTS = {
    "iterative (default)": TfcParams(),
    "eq7 (paper literal)": TfcParams(token_adjustment="eq7"),
    "no queue drain": TfcParams(queue_drain=False),
    "unbounded boost": TfcParams(token_boost_limit=1000.0),
}


def run_all():
    return {name: run_variant(params) for name, params in VARIANTS.items()}


def test_ablation_token_adjustment(benchmark, report):
    results = run_once(benchmark, run_all)

    report(
        "Ablation: token adjustment variants (5 flows, 1 Gbps)",
        ["variant", "goodput (Mbps)", "queue mean (B)", "queue max (B)", "drops"],
        [
            [
                name,
                f"{r['goodput_bps'] / 1e6:.0f}",
                f"{r['queue_mean']:.0f}",
                f"{r['queue_max']:.0f}",
                r["drops"],
            ]
            for name, r in results.items()
        ],
    )

    default = results["iterative (default)"]
    eq7 = results["eq7 (paper literal)"]
    # The compounding form recovers the quantisation loss the literal
    # form cannot.
    assert default["goodput_bps"] > eq7["goodput_bps"]
    # Every variant stays loss-free in this benign steady-state scenario.
    assert all(r["drops"] == 0 for r in results.values())
