"""On-off (intermittent) flow sources.

The paper motivates effective-flow counting with Storm-style connections
that "transmit data intermittently" — a flow stays open but is silent
between bursts, and TFC must stop counting it while silent (Fig. 7).
:class:`OnOffSource` drives a long-lived sender through alternating active
and silent phases; during an active phase it keeps a burst of bytes queued,
during a silent phase it queues nothing (the connection stays established).
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Simulator
from ..transport.base import Sender


class OnOffSource:
    """Feeds a sender bursts of data on a fixed on/off cadence.

    Each cycle queues ``burst_bytes`` at the start of the on-phase, then
    stays silent for the off-phase.  ``cycles=None`` repeats forever.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: Sender,
        on_ns: int,
        off_ns: int,
        burst_bytes: int,
        cycles: Optional[int] = None,
        start_ns: int = 0,
    ):
        if on_ns <= 0 or off_ns < 0:
            raise ValueError("on_ns must be positive and off_ns >= 0")
        if burst_bytes <= 0:
            raise ValueError("burst_bytes must be positive")
        self._sim = sim
        self.sender = sender
        self.on_ns = on_ns
        self.off_ns = off_ns
        self.burst_bytes = burst_bytes
        self.cycles_remaining = cycles
        self.bursts_sent = 0
        self.active = False
        self._stopped = False
        sim.schedule_at(max(start_ns, sim.now), self._begin_on_phase)

    def stop(self) -> None:
        """Stop cycling (the sender is left as-is, silent)."""
        self._stopped = True
        self.active = False

    def _begin_on_phase(self) -> None:
        if self._stopped:
            return
        if self.cycles_remaining is not None and self.cycles_remaining <= 0:
            self.sender.finish()
            return
        self.active = True
        self.sender.queue_bytes(self.burst_bytes)
        self.bursts_sent += 1
        self._sim.schedule(self.on_ns, self._begin_off_phase)

    def _begin_off_phase(self) -> None:
        if self._stopped:
            return
        self.active = False
        if self.cycles_remaining is not None:
            self.cycles_remaining -= 1
        self._sim.schedule(self.off_ns, self._begin_on_phase)


class PacedSource:
    """Keeps a long-lived sender topped up at a fixed average byte rate.

    Useful for partially loading a link (ablation and utilisation tests):
    every ``interval_ns`` it queues ``rate_bps x interval`` worth of bytes.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: Sender,
        rate_bps: int,
        interval_ns: int,
        start_ns: int = 0,
    ):
        if rate_bps <= 0 or interval_ns <= 0:
            raise ValueError("rate and interval must be positive")
        self._sim = sim
        self.sender = sender
        self.rate_bps = rate_bps
        self.interval_ns = interval_ns
        self._stopped = False
        sim.schedule_at(max(start_ns, sim.now), self._tick)

    def stop(self) -> None:
        """Stop feeding the sender."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        chunk = round(self.rate_bps * self.interval_ns / (8 * 1_000_000_000))
        if chunk > 0:
            self.sender.queue_bytes(chunk)
        self._sim.schedule(self.interval_ns, self._tick)
